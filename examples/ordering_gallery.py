"""Ordering gallery: draw paper Fig. 4's two-level pseudo-Hilbert curve.

Run:  python examples/ordering_gallery.py

Renders the exact 13x11 domain of paper Fig. 4 — 4x4 tiles indexed by
a rectangular Hilbert curve, classic Hilbert curves inside — as a text
diagram showing each cell's position along the curve and the tile
boundaries, then contrasts the partition shapes produced by
pseudo-Hilbert, Morton, and row-major orderings (the Section 3.2.3
connectivity argument, visualized).
"""

import numpy as np

from repro.ordering import make_ordering, pseudo_hilbert_order


def draw_curve_positions(ordering_rank, rows, cols, tile=None):
    """Grid of curve positions; '|' and '-' mark tile boundaries."""
    lines = []
    for r in range(rows - 1, -1, -1):  # print top row first (y up)
        cells = []
        for c in range(cols):
            pos = ordering_rank[r * cols + c]
            sep = "|" if tile and c % tile == 0 and c else " "
            cells.append(f"{sep}{pos:>3}")
        lines.append("".join(cells))
        if tile and r % tile == 0 and r:
            lines.append("-" * (4 * cols))
    return "\n".join(lines)


def draw_partitions(ordering, rows, cols, num_partitions):
    """Letter-coded map of equal contiguous index ranges."""
    n = rows * cols
    bounds = np.round(np.linspace(0, n, num_partitions + 1)).astype(int)
    owner = np.searchsorted(bounds, np.arange(n), side="right") - 1
    letters = "ABCDEFGHIJKLMNOP"
    grid = np.empty((rows, cols), dtype="<U1")
    for flat_pos in range(n):
        flat_rm = ordering.perm[flat_pos]
        grid[flat_rm // cols, flat_rm % cols] = letters[owner[flat_pos]]
    return "\n".join("".join(row) for row in grid[::-1])


def main() -> None:
    print("paper Fig. 4: two-level pseudo-Hilbert ordering of a 13x11 domain")
    print("(4x4 tiles; numbers are positions along the curve)\n")
    two = pseudo_hilbert_order(13, 11, tile_size=4)
    print(draw_curve_positions(two.rank, 13, 11, tile=4))
    steps = np.abs(np.diff(two.perm % 11)) + np.abs(np.diff(two.perm // 11))
    print(f"\ncurve connectivity: {np.mean(steps == 1):.1%} of steps are "
          f"unit moves ({two.num_tiles} tiles)")

    print("\npartition shapes, 16x16 domain cut into 4 contiguous ranges:")
    for name in ("pseudo-hilbert", "morton", "row-major"):
        o = make_ordering(name, 16, 16, tile_size=4)
        print(f"\n{name}:")
        print(draw_partitions(o, 16, 16, 4))
    print("\n(pseudo-Hilbert ranges are compact connected blocks; row-major "
          "ranges are strips;\n Morton ranges are compact here but fragment "
          "for non-power-of-four range sizes)")


if __name__ == "__main__":
    main()
