"""Shale-rock (RDS1-style) reconstruction study: CG vs SIRT, L-curve.

Run:  python examples/shale_reconstruction.py

Reproduces the paper's Fig. 8 workflow on a scaled shale phantom:
run CG and SIRT side by side, trace their L-curves, find the CG
overfitting corner, and compare image quality at the paper's operating
points (30 CG iterations vs 45 SIRT iterations).  Also sweeps the
x-ray dose to show where iterative reconstruction pays off.
"""

import numpy as np

from repro import get_dataset, preprocess
from repro.solvers import cgls, lcurve_corner, sirt
from repro.utils import psnr, render_table


def main() -> None:
    spec = get_dataset("RDS1").scaled(0.0625)  # 94 x 128 shale scan
    geometry = spec.geometry()
    operator, _ = preprocess(geometry)
    print(f"dataset {spec.name}: sinogram {geometry.sinogram_shape}, "
          f"nnz {operator.matrix.nnz:,}")

    sinogram, truth = spec.sinogram(operator, incident_photons=3e3, seed=0)
    y = operator.sinogram_to_ordered(sinogram)

    # --- convergence study (Fig. 8a) ---------------------------------
    res_cg = cgls(operator, y, num_iterations=100)
    res_sirt = sirt(operator, y, num_iterations=100)
    r_cg, s_cg = res_cg.lcurve()
    corner = lcurve_corner(r_cg, s_cg)
    print(f"\nCG L-curve corner at iteration {corner} "
          "(the paper stops at ~30 on full RDS1)")

    rows = []
    for it in (1, 5, 15, 30, 60, 100):
        rows.append([it, f"{r_cg[it]:.4g}", f"{res_sirt.residual_norms[it]:.4g}"])
    print(render_table(["iteration", "CG residual", "SIRT residual"], rows))

    # --- image quality at the paper's operating points (Fig. 8b-d) ---
    img_cg = operator.ordered_to_image(cgls(operator, y, num_iterations=30).x)
    img_sirt = operator.ordered_to_image(sirt(operator, y, num_iterations=45).x)
    print(f"\n30 CG iterations : PSNR {psnr(img_cg, truth):.2f} dB")
    print(f"45 SIRT iterations: PSNR {psnr(img_sirt, truth):.2f} dB")

    # --- dose sweep ----------------------------------------------------
    print("\ndose sweep (CG, 30 iterations):")
    rows = []
    for photons in (3e2, 3e3, 3e4, 3e5):
        noisy, _ = spec.sinogram(operator, incident_photons=photons, seed=1)
        res = cgls(operator, operator.sinogram_to_ordered(noisy), num_iterations=30)
        rows.append([f"{photons:g}", f"{psnr(operator.ordered_to_image(res.x), truth):.2f} dB"])
    print(render_table(["incident photons", "PSNR"], rows))

    np.savez("shale_result.npz", cg=img_cg, sirt=img_sirt, phantom=truth)
    print("\nsaved images to shale_result.npz")


if __name__ == "__main__":
    main()
