"""Mouse-brain showcase (paper Fig. 1), scaled to this machine.

Run:  python examples/brain_showcase.py

Reconstructs a brain-like phantom with multi-scale structure (skull,
tissue, vessels), then zooms progressively into the vessel detail the
way Fig. 1 zooms into brain arteries — saving each zoom level.  Ends
by modelling the full 11293^2 run on 4096 KNL nodes against the
paper's ~10-second headline.
"""

import numpy as np

from repro import preprocess, reconstruct
from repro.dist import model_solution_time
from repro.geometry import ParallelBeamGeometry
from repro.machine import get_machine
from repro.phantoms import beer_law_sinogram, brain_phantom
from repro.utils import format_bytes, format_seconds, psnr, save_pgm

SIZE = 256
ANGLES = 360


def main() -> None:
    geometry = ParallelBeamGeometry(ANGLES, SIZE)
    operator, report = preprocess(geometry)
    print(f"preprocessing {format_seconds(report.total_seconds)}; "
          f"matrix nnz {operator.matrix.nnz:,}")

    truth = brain_phantom(SIZE, seed=0)
    sinogram = beer_law_sinogram(operator.project_image(truth),
                                 incident_photons=1e5, seed=0)
    result = reconstruct(sinogram, geometry, solver="cg", iterations=30,
                         operator=operator)
    print(f"30 CG iterations in {format_seconds(result.solve_seconds)}, "
          f"PSNR {psnr(result.image, truth):.1f} dB")

    # Progressive zooms, as in Fig. 1: full slice -> quarter -> vessels.
    zooms = {}
    img = result.image
    for level, frac in enumerate((1.0, 0.5, 0.25)):
        k = int(SIZE * frac)
        lo = (SIZE - k) // 2
        zooms[f"zoom{level}"] = img[lo : lo + k, lo : lo + k]
        detail = zooms[f"zoom{level}"].std()
        print(f"zoom level {level}: {k}x{k} crop, detail (std) {detail:.3f}")

    np.savez("brain_showcase.npz", phantom=truth, reconstruction=img, **zooms)
    for name, crop in zooms.items():
        save_pgm(f"brain_{name}.pgm", crop)
    print("saved zooms to brain_showcase.npz and brain_zoom*.pgm")

    # Full-size projection: the paper's headline run.
    point = model_solution_time(4501, 11283, get_machine("theta"), 4096)
    footprint = 2 * 1.18 * 4501 * 11283**2 * 8
    print(f"\nfull-size model (4501x11283 on 4096 KNL nodes): "
          f"{format_seconds(point.total_seconds)} for 30 CG iterations "
          f"(paper: ~10 s), footprint {format_bytes(footprint)} "
          "(paper: 10.2 TiB)")


if __name__ == "__main__":
    main()
