"""3D volume pipeline: preprocess once, reconstruct every slice.

Run:  python examples/volume_pipeline.py

The workflow behind paper Table 5's "All Slices" column: the mouse
brain has 11293 slices sharing one scan geometry, so preprocessing is
paid once and its cost vanishes into the per-slice loop.  This example
preprocesses, persists the operator (as a second process would load
it), reconstructs a small stack of slices, and reports the
amortization curve.
"""

import numpy as np

from repro import get_dataset, preprocess
from repro.core import reconstruct_volume
from repro.io import load_operator, save_operator
from repro.utils import format_seconds, psnr, render_table

NUM_SLICES = 6


def main() -> None:
    spec = get_dataset("RDS1").scaled(0.0625)  # 94 x 128 shale slices
    geometry = spec.geometry()

    operator, report = preprocess(geometry)
    print(f"preprocessing once: {format_seconds(report.total_seconds)} "
          f"(tracing {format_seconds(report.tracing_seconds)})")

    save_operator("volume_operator.npz", operator)
    operator = load_operator("volume_operator.npz")
    print("operator persisted and reloaded (the beamline hand-off)")

    # Each 'slice' is the same sample with independent noise; a real 3D
    # scan varies the content slice to slice but not the geometry.
    sinograms = np.stack(
        [spec.sinogram(operator, incident_photons=1e5, seed=s)[0]
         for s in range(NUM_SLICES)]
    )
    result = reconstruct_volume(sinograms, operator,
                                preprocess_report=report, iterations=20)

    truth = spec.phantom(seed=0)
    rows = []
    for k in range(NUM_SLICES):
        rows.append([k, f"{psnr(result.volume[k], spec.phantom(seed=k)):.2f} dB"])
    print(render_table(["slice", "PSNR"], rows, title=f"{NUM_SLICES}-slice stack"))

    print(f"\nper-slice reconstruction: {format_seconds(result.seconds_per_slice)}")
    print(f"preprocessing share of total time: "
          f"{result.amortized_preprocessing_fraction():.1%} "
          f"(tends to 0 as slices grow; the brain has 11293)")

    full_day = report.total_seconds + 11293 * result.seconds_per_slice
    print(f"extrapolated all-slices time at this size: {format_seconds(full_day)}")


if __name__ == "__main__":
    main()
