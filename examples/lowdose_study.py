"""Low-dose study: why iterative reconstruction (the paper's Section 1).

Run:  python examples/lowdose_study.py

The paper motivates MemXCT with the failure of analytical methods on
noisy/undersampled data: "reconstruction quality is often poor when
measurements are noisy".  This example quantifies that across doses
and solvers — FBP (two windows), early-stopped CG, Tikhonov-
regularized CG, and SIRT — and prints an ASCII preview of the best
and worst reconstruction at the lowest dose.
"""

import numpy as np

from repro import get_dataset, preprocess
from repro.solvers import cgls, fbp, regularized_cgls, sirt
from repro.utils import ascii_preview, psnr, render_table, save_pgm


def main() -> None:
    spec = get_dataset("ADS1").scaled(0.375)  # 134 x 96
    geometry = spec.geometry()
    operator, _ = preprocess(geometry)
    truth = spec.phantom()
    print(f"dataset {spec.name}, sinogram {geometry.sinogram_shape}")

    rows = []
    extremes = {}
    for photons in (1e2, 1e3, 1e4, 1e6):
        sino, _ = spec.sinogram(operator, incident_photons=photons, seed=0)
        y = operator.sinogram_to_ordered(sino)
        candidates = {
            "FBP (ramp)": fbp(operator, sino, window="ramp"),
            "FBP (hann)": fbp(operator, sino, window="hann"),
            "CG x10 (early stop)": operator.ordered_to_image(
                cgls(operator, y, num_iterations=10).x
            ),
            "CG+Tikhonov x30": operator.ordered_to_image(
                regularized_cgls(operator, y, strength=2.0, num_iterations=30).x
            ),
            "SIRT x45": operator.ordered_to_image(
                sirt(operator, y, num_iterations=45).x
            ),
        }
        scores = {name: psnr(img, truth) for name, img in candidates.items()}
        rows.append(
            [f"{photons:g}"] + [f"{scores[k]:.2f}" for k in candidates]
        )
        if photons == 1e2:
            best = max(scores, key=scores.get)
            worst = min(scores, key=scores.get)
            extremes = {best: candidates[best], worst: candidates[worst]}

    header = ["photons/ray", "FBP ramp", "FBP hann", "CG x10", "CG+Tik x30", "SIRT x45"]
    print(render_table(header, rows, title="PSNR (dB) vs dose"))

    for name, img in extremes.items():
        print(f"\n{name} at 100 photons/ray:")
        print(ascii_preview(img, width=48, vmin=0, vmax=float(truth.max())))
        fname = f"lowdose_{name.split()[0].lower().strip('+(')}.pgm"
        save_pgm(fname, img)
        print(f"(saved {fname})")


if __name__ == "__main__":
    main()
