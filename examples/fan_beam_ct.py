"""Fan-beam CT through the memory-centric machinery (extension).

Run:  python examples/fan_beam_ct.py

The paper treats parallel-beam synchrotron scans, but nothing in the
memory-centric design is geometry-specific: any ray set can be
memoized.  This example builds a lab-CT-style fan-beam system matrix,
pushes it through the same orderings/buffering/solver stack, and
reconstructs the Shepp-Logan phantom — including a sweep over source
distance showing fan-beam converging to the parallel-beam result.
"""

import numpy as np

from repro.geometry import FanBeamGeometry, ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.phantoms import beer_law_sinogram, shepp_logan
from repro.solvers import MatrixOperator, cgls
from repro.sparse import CSRMatrix, build_buffered
from repro.trace import build_fan_projection_matrix, build_projection_matrix
from repro.utils import ascii_preview, psnr, render_table

SIZE = 96
ANGLES = 180


def build_system(raw, num_angles, num_channels):
    """Apply the full MemXCT treatment to a raw traced matrix."""
    n = num_channels
    tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=16)
    sino = make_ordering("pseudo-hilbert", num_angles, num_channels, min_tiles=16)
    matrix = CSRMatrix.from_scipy(raw).permute(sino.perm, tomo.rank).sort_rows_by_index()
    buffered = build_buffered(matrix, 128, 8192)
    return MatrixOperator(matrix), tomo, sino, buffered


def main() -> None:
    truth = shepp_logan(SIZE)

    print(f"building fan-beam system ({ANGLES} angles x {SIZE} channels)...")
    fan = FanBeamGeometry(ANGLES, SIZE, source_distance=3.0 * SIZE)
    raw_fan = build_fan_projection_matrix(fan)
    op, tomo, sino, buffered = build_system(raw_fan, ANGLES, SIZE)
    print(f"fan matrix nnz {op.matrix.nnz:,}; buffered stages {buffered.num_stages}")

    clean = sino.from_ordered(op.forward(tomo.to_ordered(truth))).astype(np.float64)
    noisy = beer_law_sinogram(clean, incident_photons=1e5, seed=0)
    res = cgls(op, sino.to_ordered(noisy), num_iterations=30)
    img_fan = tomo.from_ordered(res.x)
    print(f"fan-beam reconstruction PSNR: {psnr(img_fan, truth):.2f} dB")
    print(ascii_preview(img_fan, width=48, vmin=0, vmax=float(truth.max())))

    # Convergence to the parallel-beam answer with growing distance.
    par = ParallelBeamGeometry(ANGLES // 2, SIZE)
    raw_par = build_projection_matrix(par)
    op_p, tomo_p, sino_p, _ = build_system(raw_par, ANGLES // 2, SIZE)
    clean_p = sino_p.from_ordered(op_p.forward(tomo_p.to_ordered(truth)))
    img_par = tomo_p.from_ordered(
        cgls(op_p, sino_p.to_ordered(beer_law_sinogram(clean_p, 1e5, seed=0)),
             num_iterations=30).x
    )

    rows = []
    for distance in (1.5 * SIZE, 3 * SIZE, 30 * SIZE):
        g = FanBeamGeometry(ANGLES, SIZE, source_distance=distance)
        opd, tomod, sinod, _ = build_system(build_fan_projection_matrix(g), ANGLES, SIZE)
        cleand = sinod.from_ordered(opd.forward(tomod.to_ordered(truth))).astype(np.float64)
        resd = cgls(opd, sinod.to_ordered(beer_law_sinogram(cleand, 1e5, seed=0)),
                    num_iterations=30)
        img = tomod.from_ordered(resd.x)
        rows.append([f"{distance / SIZE:.1f}x grid", f"{psnr(img, truth):.2f}",
                     f"{psnr(img, img_par):.2f}"])
    print(render_table(
        ["source distance", "PSNR vs phantom", "PSNR vs parallel-beam recon"],
        rows, title="fan-beam vs parallel-beam (larger distance -> more parallel)"))


if __name__ == "__main__":
    main()
