"""Kernel anatomy: orderings, buffering, cache behaviour, tuning.

Run:  python examples/kernels_and_tuning.py

A tour of the single-device optimizations for systems people: compare
the three kernels (CSR baseline, Hilbert-ordered, multi-stage
buffered) on real timings and simulated L2 miss rates, then sweep the
tuning space the way paper Fig. 10 does and print the KNL heat map.
"""

import time

import numpy as np

from repro import get_dataset
from repro.cachesim import miss_rate_buffered, miss_rate_csr
from repro.machine import get_device, heatmap, sweep_tuning, best_configuration
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix, build_buffered
from repro.trace import build_projection_matrix
from repro.utils import render_table


def timeit(fn, *args, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    spec = get_dataset("ADS2").scaled(0.25)
    g = spec.geometry()
    print(f"building {spec.name} ({g.sinogram_shape} sinogram)...")
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    n = g.grid.n
    tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=16)
    sino = make_ordering("pseudo-hilbert", g.num_angles, g.num_channels, min_tiles=16)
    ordered = raw.permute(sino.perm, tomo.rank).sort_rows_by_index()
    buffered = build_buffered(ordered, partition_size=128, buffer_bytes=8192)

    x = np.random.default_rng(0).random(raw.num_cols).astype(np.float32)
    cap = 64 * 1024  # a scaled L2 slice

    rows = [
        ["CSR baseline (row-major)",
         f"{timeit(raw.spmv, x) * 1e3:.2f} ms",
         f"{miss_rate_csr(raw, cap, max_accesses=300_000).miss_rate:.0%}",
         "8 B/FMA"],
        ["CSR + pseudo-Hilbert",
         f"{timeit(ordered.spmv, x) * 1e3:.2f} ms",
         f"{miss_rate_csr(ordered, cap, max_accesses=300_000).miss_rate:.0%}",
         "8 B/FMA"],
        ["multi-stage buffered (16-bit)",
         f"{timeit(buffered.spmv_vectorized, x) * 1e3:.2f} ms",
         f"{miss_rate_buffered(buffered, cap).miss_rate:.0%} (staging stream)",
         "6 B/FMA"],
    ]
    print(render_table(["kernel", "python time", "sim. L2 miss rate",
                        "regular traffic"], rows))
    print(f"\nbuffered layout: {buffered.num_stages} stages total, "
          f"{buffered.stages_per_partition().mean():.1f} per partition, "
          f"map stream {buffered.map.shape[0]:,} entries")

    # --- tuning sweep (Fig. 10) -----------------------------------------
    knl = get_device("KNL")
    points = sweep_tuning(ordered, knl,
                          partition_sizes=[32, 128, 512],
                          buffer_sizes=[2048, 8192, 32768],
                          smts=[1, 2, 4],
                          modeled_num_rows=750 * 512)  # full-size ADS2 rows
    best = best_configuration(points)
    print(f"\nKNL tuning optimum (model): partition {best.partition_size}, "
          f"buffer {best.buffer_bytes // 1024} KB, {best.smt} SMT "
          f"-> {best.gflops:.0f} GFLOPS (paper: 128 / 8 KB / 4 SMT)")

    grid, parts, buffers = heatmap(points, smt=4)
    print("\n4 SMT/core heat map (GFLOPS):")
    header = "part\\buf " + " ".join(f"{b // 1024:>4}K" for b in buffers)
    print(header)
    for i, p in enumerate(parts):
        print(f"{p:>8} " + " ".join(f"{v:5.0f}" for v in grid[i]))


if __name__ == "__main__":
    main()
