"""Quickstart: reconstruct a Shepp-Logan phantom in a few lines.

Run:  python examples/quickstart.py

Demonstrates the minimal MemXCT workflow: build a scan geometry,
preprocess (memoize) once, synthesize a noisy sinogram through the
Beer-law measurement model, and reconstruct with 30 CG iterations —
the paper's recommended configuration.
"""

import numpy as np

from repro import preprocess, reconstruct
from repro.geometry import ParallelBeamGeometry
from repro.phantoms import beer_law_sinogram, shepp_logan
from repro.utils import ascii_preview, format_seconds, psnr, save_pgm


def main() -> None:
    # A 180-angle scan of a 128x128 image (laptop-friendly).
    geometry = ParallelBeamGeometry(num_angles=180, num_channels=128)

    # Preprocessing = the memory-centric step: trace every ray once,
    # order both domains with the two-level pseudo-Hilbert curve, build
    # the transposed and buffered matrices.
    operator, report = preprocess(geometry)
    print(f"preprocessing: {format_seconds(report.total_seconds)} "
          f"(tracing {format_seconds(report.tracing_seconds)}), "
          f"matrix nnz = {operator.matrix.nnz:,}")

    # Simulate a measurement: forward-project the phantom and apply
    # Poisson (Beer-law) noise at a moderate dose.
    truth = shepp_logan(128)
    clean = operator.project_image(truth)
    sinogram = beer_law_sinogram(clean, incident_photons=1e5, seed=0)

    # Reconstruct. The operator is reused, so this is the per-slice
    # cost a beamline user would see.
    result = reconstruct(sinogram, geometry, solver="cg", iterations=30,
                         operator=operator)
    print(f"30 CG iterations: {format_seconds(result.solve_seconds)} "
          f"({format_seconds(result.per_iteration_seconds)}/iteration)")
    print(f"reconstruction PSNR vs phantom: {psnr(result.image, truth):.1f} dB")

    print("\nreconstruction preview:")
    print(ascii_preview(result.image, width=56, vmin=0, vmax=float(truth.max())))

    out = "quickstart_result.npz"
    np.savez(out, reconstruction=result.image, phantom=truth, sinogram=sinogram)
    save_pgm("quickstart_result.pgm", result.image)
    print(f"saved arrays to {out} and image to quickstart_result.pgm")


if __name__ == "__main__":
    main()
