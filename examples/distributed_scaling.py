"""Distributed reconstruction with the simulated-MPI substrate.

Run:  python examples/distributed_scaling.py

Shows the A = R C A_p machinery end to end: decompose both domains
over P simulated ranks, reconstruct (numerically identical to the
serial run), inspect the sparse communication matrix of Fig. 7, verify
the O(MN sqrt(P)) communication law on real decompositions, and print
the modeled strong-scaling curve of Fig. 11(c).
"""

import numpy as np

from repro import get_dataset, preprocess, reconstruct
from repro.dist import (
    DistributedOperator,
    decompose_both,
    strong_scaling_series,
)
from repro.machine import get_machine
from repro.utils import psnr, render_table


def main() -> None:
    spec = get_dataset("ADS2").scaled(0.25)
    geometry = spec.geometry()
    operator, _ = preprocess(geometry, min_tiles=64)
    sinogram, truth = spec.sinogram(operator, incident_photons=1e5, seed=0)

    # --- distributed == serial -----------------------------------------
    serial = reconstruct(sinogram, geometry, iterations=20, operator=operator)
    dist = reconstruct(sinogram, geometry, iterations=20, operator=operator,
                       num_ranks=8)
    diff = np.abs(serial.image - dist.image).max()
    print(f"serial PSNR {psnr(serial.image, truth):.2f} dB; "
          f"8-rank PSNR {psnr(dist.image, truth):.2f} dB; "
          f"max pixel difference {diff:.2e} (float32 reduction order)")

    # --- communication structure ----------------------------------------
    print("\ncommunication volume vs rank count (real decompositions):")
    rows = []
    prev = None
    for ranks in (4, 16, 64):
        td, sd = decompose_both(operator.tomo_ordering, operator.sino_ordering, ranks)
        op = DistributedOperator(operator.matrix, td, sd)
        volume = op.communication_matrix().sum()
        growth = f"{volume / prev:.2f}x" if prev else "-"
        rows.append([ranks, f"{volume / 1024:.0f} KB",
                     f"{op.interaction_counts().mean():.1f}", growth])
        prev = volume
    print(render_table(
        ["ranks", "total comm", "avg partners", "growth per 4x ranks"], rows))
    print("(the paper's law: quadrupling P doubles the total footprint)")

    # --- modeled strong scaling (Fig. 11c) -------------------------------
    print("\nmodeled RDS2 strong scaling on Theta (30 CG iterations):")
    points = strong_scaling_series(4501, 11283, get_machine("theta"),
                                   [128, 512, 2048, 4096])
    rows = [[p.num_nodes, f"{p.total_seconds:.2f} s", f"{p.ap_seconds:.2f} s",
             f"{p.comm_seconds:.3f} s", f"{p.reduction_seconds:.3f} s"]
            for p in points]
    print(render_table(["nodes", "total", "A_p", "C", "R"], rows))


if __name__ == "__main__":
    main()
