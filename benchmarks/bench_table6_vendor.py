"""Table 6 — comparison with vendor SpMV libraries (MKL / cuSPARSE).

Two reproductions of the same claim:

* **measured** — scipy.sparse plays the general-purpose vendor library
  on this machine: we time scipy CSR SpMV against our baseline,
  Hilbert-ordered, and buffered kernels on scaled ADS2 and report the
  relative speedups (paper KNL column: 1.42x / 4.99x / 6.55x);
* **modeled** — device-level speedups for KNL/K80/P100/V100 from the
  performance model with cache-simulated miss rates, reproducing the
  full Table 6 including K80's baseline *slowdown* (0.52x, small L2).
"""

import numpy as np

from repro.cachesim import miss_rate_buffered, miss_rate_csr
from repro.machine import KernelProfile, PerformanceModel, get_device
from repro.utils import render_table

PAPER = {
    "KNL": (1.42, 4.99, 6.55),
    "K80": (0.52, 1.13, 1.56),
    "P100": (1.39, 1.93, 2.23),
    "V100": (1.79, 1.84, 2.11),
}

MAX_TRACE = 400_000


def test_table6_vendor_comparison(report, ads2_scaled, benchmark):
    raw = ads2_scaled["raw"]
    ordered = ads2_scaled["ordered"]
    buffered = ads2_scaled["buffered"]
    x = np.random.default_rng(0).random(raw.num_cols).astype(np.float32)
    scipy_raw = raw.to_scipy()

    import time

    def timeit(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    t_vendor = timeit(scipy_raw.dot, x)
    t_base = timeit(raw.spmv, x)
    t_hilb = timeit(ordered.spmv, x)
    t_buf = timeit(buffered.spmv_vectorized, x)
    measured = (t_vendor / t_base, t_vendor / t_hilb, t_vendor / t_buf)

    # Device-level model: miss rates simulated on *scaled* caches —
    # the scaled 128^2 domain (64 KB) would fit wholly inside any
    # full-size device L2, so each cache is shrunk by the same factor
    # the dataset was (ADS2 full tomogram is 512^2 = 16x the cells).
    rows = [
        [
            "python (scipy as vendor)",
            f"{measured[0]:.2f}x",
            f"{measured[1]:.2f}x",
            f"{measured[2]:.2f}x",
            "measured; scipy's C kernel beats numpy on raw speed",
        ]
    ]
    full_cells = 512 * 512
    scaled_cells = raw.num_cols
    nnz = ordered.nnz
    for dev_name, paper in PAPER.items():
        dev = get_device(dev_name)
        l2 = max(4096, int(dev.l2_bytes) * scaled_cells // full_cells)
        mr_base = miss_rate_csr(
            raw, l2, dev.cache_line_bytes, max_accesses=MAX_TRACE, include_regular=True
        ).miss_rate
        mr_hilb = miss_rate_csr(
            ordered, l2, dev.cache_line_bytes, max_accesses=MAX_TRACE, include_regular=True
        ).miss_rate
        mr_buf = miss_rate_buffered(buffered, l2, dev.cache_line_bytes).miss_rate
        pm = PerformanceModel(dev)
        smt = dev.max_smt
        t_b = pm.projection_time(KernelProfile.csr_baseline(nnz, mr_base), smt=smt)
        t_h = pm.projection_time(KernelProfile.csr_baseline(nnz, mr_hilb), smt=smt)
        t_u = pm.projection_time(
            KernelProfile.buffered(nnz, int(buffered.map.shape[0]), mr_buf), smt=smt
        )
        # Vendor library: a well-tuned general CSR SpMV — bandwidth
        # bound at 8 B/FMA on row-major data with the baseline miss
        # traffic, no latency exposure (MKL/cuSPARSE blocking).
        t_v = pm.projection_time(
            KernelProfile(
                nnz=nnz,
                irregular_accesses=nnz,
                miss_rate=mr_base,
                latency_bound=False,
            ),
            smt=smt,
        )
        rows.append(
            [
                dev_name,
                f"{t_v / t_b:.2f}x (paper {paper[0]}x)",
                f"{t_v / t_h:.2f}x (paper {paper[1]}x)",
                f"{t_v / t_u:.2f}x (paper {paper[2]}x)",
                f"L2 miss: {mr_base:.0%} -> {mr_hilb:.0%} -> {mr_buf:.0%}",
            ]
        )

    table = render_table(
        ["Device", "Baseline", "Pseudo-Hilbert", "Multi-Stage Buffering", "Notes"],
        rows,
        title="Table 6: speedup over vendor SpMV (scaled ADS2, scaled caches)",
    )
    report("table6_vendor", table)

    # Shape assertions on the modeled device rows ("sp_" = speedup over
    # the vendor kernel): the optimizations must rank baseline <=
    # hilbert <= buffered on every device, with buffering ahead of the
    # vendor everywhere (Table 6's bottom row is > 1x on all devices).
    for row in rows[1:]:
        sp_base = float(row[1].split("x")[0])
        sp_hilb = float(row[2].split("x")[0])
        sp_buf = float(row[3].split("x")[0])
        assert sp_base <= sp_hilb * 1.05
        assert sp_hilb <= sp_buf * 1.05
        assert sp_buf > 1.0
    # In python, all our numpy-level kernels are within ~one order of
    # the scipy C kernel (sanity on the measured row).
    assert min(measured) > 0.05

    benchmark(buffered.spmv_vectorized, x)
