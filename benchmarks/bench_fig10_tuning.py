"""Fig. 10 — tuning block size, buffer size, and SMT.

Paper Fig. 10(a)-(c): GFLOPS heat maps for ADS2 on KNL across buffer
sizes (1-256 KB) and block sizes (1-4096) at 1/2/4 SMT per core;
optimum at 4 SMT with 8 KB buffers (4 x 8 KB = 32 KB = L1).  Fig.
10(d): V100 prefers large blocks (512-1024) and large buffers
(48-96 KB).  We sweep the same grid with real buffered structures and
the performance model.
"""

import numpy as np

from repro.machine import best_configuration, get_device, heatmap, sweep_tuning
from repro.utils import render_table


def _heatmap_text(grid, parts, buffers):
    lines = ["part\\buf " + " ".join(f"{b // 1024:>4}K" for b in buffers)]
    for i, p in enumerate(parts):
        cells = " ".join(
            "    -" if not np.isfinite(v) else f"{v:5.0f}" for v in grid[i]
        )
        lines.append(f"{p:>8} {cells}")
    return "\n".join(lines)


def test_fig10_tuning(report, ads2_scaled, benchmark):
    matrix = ads2_scaled["ordered"]
    partition_sizes = [32, 128, 512, 2048]
    buffer_sizes = [2048, 8192, 32768, 131072]
    full_rows = 750 * 512  # ADS2 at paper size, for the scheduler model

    knl = get_device("KNL")
    pts_knl = sweep_tuning(
        matrix, knl, partition_sizes, buffer_sizes, smts=[1, 2, 4],
        modeled_num_rows=full_rows,
    )
    best_knl = best_configuration(pts_knl)

    sections = []
    for smt in (1, 2, 4):
        grid, parts, buffers = heatmap(pts_knl, smt=smt)
        sections.append(f"KNL {smt} SMT/core (GFLOPS):\n" + _heatmap_text(grid, parts, buffers))

    v100 = get_device("V100")
    pts_v100 = sweep_tuning(
        matrix, v100, [128, 512, 1024], [16384, 49152, 98304], smts=[1],
        modeled_num_rows=full_rows,
    )
    best_v100 = best_configuration(pts_v100)
    grid_v, parts_v, buffers_v = heatmap(pts_v100, smt=1)
    sections.append("V100 (GFLOPS):\n" + _heatmap_text(grid_v, parts_v, buffers_v))

    summary = render_table(
        ["Device", "Best partition", "Best buffer", "Best SMT", "GFLOPS", "Paper optimum"],
        [
            ["KNL", best_knl.partition_size, f"{best_knl.buffer_bytes // 1024} KB",
             best_knl.smt, f"{best_knl.gflops:.0f}", "block 128, 8 KB, 4 SMT"],
            ["V100", best_v100.partition_size, f"{best_v100.buffer_bytes // 1024} KB",
             best_v100.smt, f"{best_v100.gflops:.0f}", "block 512-1024, 48-96 KB"],
        ],
        title="Fig. 10: tuning sweep optima (scaled ADS2 structures + perf model)",
    )
    report("fig10_tuning", summary + "\n\n" + "\n\n".join(sections))

    # Shape assertions matching the paper's tuning story:
    # - the KNL optimum does not leak L1: smt * buffer <= 32 KB;
    assert best_knl.smt * best_knl.buffer_bytes <= knl.l1_bytes
    # - 4-SMT configurations dominate 1-SMT at the same (part, buf);
    by_key = {(p.smt, p.partition_size, p.buffer_bytes): p.gflops for p in pts_knl}
    wins = sum(
        by_key[(4, ps, bs)] >= by_key[(1, ps, bs)]
        for ps in partition_sizes
        for bs in buffer_sizes
        if 4 * bs <= knl.l1_bytes
    )
    assert wins >= 2
    # - V100's best buffer is large (>= 48 KB), and 96 KB is valid there
    #   while invalid on P100 (checked in unit tests).
    assert best_v100.buffer_bytes >= 48 * 1024

    benchmark(
        sweep_tuning, matrix, knl, [128], [8192], [4]
    )
