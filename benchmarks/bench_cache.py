"""Plan-cache acceptance — warm vs cold preprocessing at 256x256.

The MemXCT argument (paper Table 5) is that preprocessing is paid once
and amortized over all slices; the persistent plan cache extends the
amortization across *processes*.  This benchmark measures that claim
end-to-end on a 256x256 parallel-beam geometry:

* **cold** — ``preprocess(cache=dir)`` on an empty cache: all four
  stages run, then the plan is stored;
* **warm** — the same call again: the stored plan is loaded and every
  stage is skipped.  Reported as the best of three runs, i.e. the
  steady-state hit cost once the page cache has absorbed the freshly
  written entry (the beamline regime: thousands of hits per store).

Acceptance: warm must be at least 10x faster than cold.
"""

import time

from repro.core import preprocess
from repro.geometry import ParallelBeamGeometry

MIN_SPEEDUP = 10.0
SIZE = 256


def test_warm_cache_speedup(report, tmp_path):
    cachedir = tmp_path / "plans"
    g = ParallelBeamGeometry(SIZE, SIZE)

    t0 = time.perf_counter()
    cold_op, cold_report = preprocess(g, cache=cachedir)
    cold = time.perf_counter() - t0
    assert cold_report.cache_hit is False
    cold_nnz = cold_op.matrix.nnz
    # Free the cold operator so the warm runs measure the hit path, not
    # memory pressure from holding two ~600 MB plans at once.
    del cold_op

    warm_times = []
    warm_nnz = None
    for _ in range(3):
        t0 = time.perf_counter()
        warm_op, warm_report = preprocess(g, cache=cachedir)
        warm_times.append(time.perf_counter() - t0)
        assert warm_report.cache_hit is True
        warm_nnz = warm_op.matrix.nnz
        del warm_op
    warm = min(warm_times)

    entry_bytes = sum(p.stat().st_size for p in cachedir.glob("*.npz"))
    speedup = cold / warm
    lines = [
        f"plan cache warm-vs-cold, {SIZE}x{SIZE} parallel-beam geometry",
        f"  cold preprocess + store : {cold:8.3f} s",
        f"  warm hit (best of 3)    : {warm:8.3f} s",
        f"  speedup                 : {speedup:8.1f} x  (acceptance >= {MIN_SPEEDUP:.0f}x)",
        f"  cache entry size        : {entry_bytes / 1e6:8.1f} MB",
    ]
    report(
        "cache_warm_vs_cold",
        "\n".join(lines),
        extra={
            "size": SIZE,
            "cold_seconds": cold,
            "warm_seconds": warm,
            "warm_runs": warm_times,
            "speedup": speedup,
            "entry_bytes": entry_bytes,
            "min_speedup": MIN_SPEEDUP,
        },
    )

    # The loaded plan is the same operator, not a re-trace.
    assert warm_nnz == cold_nnz
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache only {speedup:.1f}x faster than cold "
        f"(cold {cold:.2f}s, warm {warm:.2f}s)"
    )
