"""Ablation — buffer size vs staging traffic and cache behaviour.

DESIGN.md's design-choice list includes the buffer capacity trade-off
of paper Section 3.3.2: small buffers mean many stages (more map
duplication — each partition footprint element is staged once per
partition regardless, but fragmented stages add sync overhead), while
large buffers leak out of L1.  Here we build the real buffered
structures across capacities and measure (a) stage counts, (b) map
traffic, (c) the staging stream's cache behaviour, (d) the actual
kernel numerics cost in Python — exposing the flat-then-cliff shape
that makes 8-32 KB the sweet spot.
"""

import time

import numpy as np

from repro.cachesim import miss_rate_buffered
from repro.sparse import build_buffered
from repro.utils import render_table

BUFFER_SIZES = [256, 1024, 4096, 8192, 32768, 131072]
CACHE_BYTES = 32 * 1024  # an L1-class cache for the staging stream


def test_ablation_buffer_capacity(report, ads2_scaled, benchmark):
    matrix = ads2_scaled["ordered"]
    x = np.random.default_rng(0).random(matrix.num_cols).astype(np.float32)

    rows = []
    stages = []
    map_lengths = []
    for buffer_bytes in BUFFER_SIZES:
        buffered = build_buffered(matrix, 128, buffer_bytes)
        miss = miss_rate_buffered(buffered, CACHE_BYTES).miss_rate
        t0 = time.perf_counter()
        buffered.spmv_vectorized(x)
        elapsed = time.perf_counter() - t0
        stages.append(buffered.num_stages)
        map_lengths.append(int(buffered.map.shape[0]))
        rows.append(
            [
                f"{buffer_bytes // 1024 or buffer_bytes / 1024:g} KB",
                buffered.num_stages,
                f"{buffered.stages_per_partition().mean():.1f}",
                f"{map_lengths[-1]:,}",
                f"{miss:.1%}",
                f"{elapsed * 1e3:.1f} ms",
            ]
        )

    table = render_table(
        ["Buffer", "Total stages", "Stages/partition", "Map entries",
         "Staging miss rate", "Python kernel"],
        rows,
        title="Ablation: buffer capacity (scaled ADS2, 128-row partitions)",
    )
    report("ablation_buffering", table)

    # Shape assertions:
    # - stage count decreases monotonically with capacity, reaching one
    #   stage per partition once the footprint fits;
    assert all(b <= a for a, b in zip(stages, stages[1:]))
    parts = build_buffered(matrix, 128, BUFFER_SIZES[-1]).partitions.num_partitions
    assert stages[-1] == parts
    # - map traffic is capacity-independent (each footprint element is
    #   staged exactly once per partition);
    assert max(map_lengths) == min(map_lengths)
    # - the staging stream stays cache-friendly at every capacity.
    buffered = build_buffered(matrix, 128, 8192)
    assert miss_rate_buffered(buffered, CACHE_BYTES).miss_rate < 0.5

    benchmark(build_buffered, matrix, 128, 8192)
