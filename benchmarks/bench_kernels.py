"""Kernel micro-benchmarks (performance-regression tracking).

Not tied to a specific paper table — these time each core kernel in
isolation with pytest-benchmark so changes to the implementations are
visible as regressions: tracing, orderings, transposition, the three
SpMV layouts, buffered construction, and the distributed forward.
"""

import numpy as np
import pytest

from repro.dist import DistributedOperator, decompose_both
from repro.ordering import make_ordering, pseudo_hilbert_order
from repro.sparse import build_buffered, build_ell, scan_transpose
from repro.trace import build_projection_matrix


@pytest.fixture(scope="module")
def system(ads2_scaled):
    x = np.random.default_rng(0).random(ads2_scaled["ordered"].num_cols).astype(np.float32)
    y = np.random.default_rng(1).random(ads2_scaled["ordered"].num_rows).astype(np.float32)
    return ads2_scaled, x, y


def test_kernel_trace_angle(benchmark, scaled_specs):
    g = scaled_specs["ADS2"].geometry()
    from repro.trace import trace_angle

    benchmark(trace_angle, g, 7)


def test_kernel_full_trace(benchmark, scaled_specs):
    benchmark(build_projection_matrix, scaled_specs["ADS1"].geometry())


def test_kernel_pseudo_hilbert_build(benchmark):
    benchmark(pseudo_hilbert_order, 512, 512, 32)


def test_kernel_morton_build(benchmark):
    benchmark(make_ordering, "morton", 512, 512)


def test_kernel_scan_transpose(benchmark, system):
    data, _, _ = system
    benchmark(scan_transpose, data["ordered"])


def test_kernel_csr_spmv(benchmark, system):
    data, x, _ = system
    benchmark(data["ordered"].spmv, x)


def test_kernel_buffered_spmv(benchmark, system):
    data, x, _ = system
    benchmark(data["buffered"].spmv_vectorized, x)


def test_kernel_ell_spmv(benchmark, system):
    data, x, _ = system
    ell = build_ell(data["ordered"], 128)
    benchmark(ell.spmv, x)


def test_kernel_buffered_build(benchmark, system):
    data, _, _ = system
    benchmark(build_buffered, data["ordered"], 128, 8192)


def test_kernel_distributed_forward(benchmark, system):
    data, x, _ = system
    td, sd = decompose_both(data["tomo"], data["sino"], 8)
    op = DistributedOperator(data["ordered"], td, sd)
    benchmark(op.forward, x)


def test_kernel_adjoint_spmv(benchmark, system):
    data, _, y = system
    transpose = scan_transpose(data["ordered"])
    benchmark(transpose.spmv, y)
