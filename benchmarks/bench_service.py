"""Service acceptance — coalesced multi-RHS batching and zero-fault tax.

The MemXCT amortization argument applied to a *job server*: compatible
concurrent reconstruction requests share one operator, so the scheduler
coalescing them into a single multi-RHS solve streams the matrix once
per iteration for the whole batch instead of once per job.  This
benchmark submits the same eight same-geometry jobs to two engines:

* **independent** — ``max_batch=1``: eight solo solves, the matrix
  re-streamed for every job;
* **coalesced**   — ``max_batch=8`` with the jobs queued before the
  scheduler starts: one batched solve serves all eight.

Both engines use the partition-padded ELL kernel — the layout where
the regular stream dominates and amortizing it pays (the service's
``kernel="ell"`` knob; see bench_pipeline.py for the per-kernel story).
Results are compared bit-exactly: coalescing never changes arithmetic.

A second phase measures the fault-injection tax: an engine with an
armed injector that (almost) never fires must cost within a few
percent of an engine with no injector at all — robustness plumbing
may not slow down the healthy path.

Acceptance:

* coalesced aggregate wall time is >= 1.5x faster than independent;
* all results bit-identical between the two engines;
* armed-but-idle fault injection overhead is < 5%.

``REPRO_BENCH_SMOKE=1`` shrinks the instance and relaxes the timing
thresholds so CI can exercise the harness quickly.
"""

import os
import time

import numpy as np

from repro.resilience import RetryPolicy
from repro.service import JobSpec, ReconService, ServiceConfig, ServiceFaultConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ANGLES = 90 if SMOKE else 180
CHANNELS = 64 if SMOKE else 128
JOBS = 8
ITERATIONS = 6 if SMOKE else 12
KERNEL = "ell"
MIN_SPEEDUP = 1.1 if SMOKE else 1.5
MAX_FAULT_TAX = 0.25 if SMOKE else 0.05
REPEATS = 2 if SMOKE else 4


def _sinograms():
    rng = np.random.default_rng(42)
    return [rng.random((ANGLES, CHANNELS)) for _ in range(JOBS)]


def _spec():
    return JobSpec(
        num_angles=ANGLES, num_channels=CHANNELS, iterations=ITERATIONS
    )


def _run_engine(tmp, tag, sinos, *, max_batch, faults=None):
    """Queue all jobs, then start the scheduler and time the drain.

    Submitting before ``start`` removes arrival jitter: the coalescing
    engine sees the whole cohort at its first dispatch, the independent
    engine drains the same queue one job at a time.  Preprocessing is
    excluded by warming the operator cache with a throwaway job first.
    """
    config = ServiceConfig(
        spool=str(tmp / tag),
        queue_limit=2 * JOBS,
        max_batch=max_batch,
        coalesce_window_s=0.0,
        kernel=KERNEL,
        retry=RetryPolicy(max_retries=0),
        faults=faults,
    )
    with ReconService(config) as svc:
        warm = svc.submit(sinos[0], _spec())
        svc.start(recover=False)
        assert svc.wait([warm["job_id"]], timeout=600)

        svc.stop(drain=True, timeout=600)
        acks = [svc.submit(s, _spec()) for s in sinos]
        t0 = time.perf_counter()
        svc.start(recover=False)
        assert svc.wait([a["job_id"] for a in acks], timeout=600)
        wall = time.perf_counter() - t0

        images = [svc.result(a["job_id"]) for a in acks]
        sizes = sorted(svc.status(a["job_id"])["batch_size"] for a in acks)
        svc.stop(drain=False, timeout=60)
    return wall, images, sizes


def test_coalesced_batching_speedup(tmp_path, report):
    sinos = _sinograms()
    solo_wall, solo_images, solo_sizes = _run_engine(
        tmp_path, "independent", sinos, max_batch=1
    )
    batch_wall, batch_images, batch_sizes = _run_engine(
        tmp_path, "coalesced", sinos, max_batch=JOBS
    )

    speedup = solo_wall / batch_wall
    exact = all(
        np.array_equal(a, b) for a, b in zip(solo_images, batch_images)
    )
    assert solo_sizes == [1] * JOBS
    assert batch_sizes == [JOBS] * JOBS

    lines = [
        f"service coalescing, {JOBS} jobs of {ANGLES}x{CHANNELS}, "
        f"CG x{ITERATIONS}, {KERNEL} kernel"
        + (" [smoke]" if SMOKE else ""),
        f"  independent (max_batch=1) : {solo_wall:8.3f} s aggregate",
        f"  coalesced   (max_batch={JOBS}) : {batch_wall:8.3f} s aggregate",
        f"  aggregate speedup         : {speedup:8.2f}x  "
        f"(acceptance >= {MIN_SPEEDUP}x)",
        f"  results bit-identical     : {exact}",
    ]
    report(
        "bench_service_coalescing",
        "\n".join(lines),
        extra={
            "independent_seconds": solo_wall,
            "coalesced_seconds": batch_wall,
            "speedup": speedup,
            "bit_exact": exact,
            "smoke": SMOKE,
        },
    )
    assert exact, "coalescing changed the arithmetic"
    assert speedup >= MIN_SPEEDUP, (
        f"coalesced batch only {speedup:.2f}x faster "
        f"(needed {MIN_SPEEDUP}x)"
    )


def test_zero_fault_overhead(tmp_path, report):
    sinos = _sinograms()
    # crash probability ~0 keeps the injector armed (every dispatch
    # draws) without ever firing — this measures pure plumbing tax.
    armed = ServiceFaultConfig(crash=1e-12, seed=1)

    # Interleave the two configurations so slow machine drift (thermal,
    # frequency scaling) hits both equally instead of biasing whichever
    # ran last; best-of-N then discards transient stalls.
    plain_walls, armed_walls = [], []
    for rep in range(REPEATS):
        wall, _, _ = _run_engine(
            tmp_path, f"plain{rep}", sinos, max_batch=JOBS, faults=None
        )
        plain_walls.append(wall)
        wall, _, _ = _run_engine(
            tmp_path, f"armed{rep}", sinos, max_batch=JOBS, faults=armed
        )
        armed_walls.append(wall)
    plain_wall = min(plain_walls)
    armed_wall = min(armed_walls)
    tax = armed_wall / plain_wall - 1.0

    lines = [
        f"service fault-injection tax, {JOBS} coalesced jobs of "
        f"{ANGLES}x{CHANNELS}, CG x{ITERATIONS}, best of {REPEATS}"
        + (" [smoke]" if SMOKE else ""),
        f"  no injector         : {plain_wall:8.3f} s",
        f"  armed, never fires  : {armed_wall:8.3f} s",
        f"  overhead            : {tax * 100:8.2f} %  "
        f"(acceptance < {MAX_FAULT_TAX * 100:.0f}%)",
    ]
    report(
        "bench_service_fault_tax",
        "\n".join(lines),
        extra={
            "plain_seconds": plain_wall,
            "armed_seconds": armed_wall,
            "overhead": tax,
            "smoke": SMOKE,
        },
    )
    assert tax < MAX_FAULT_TAX, (
        f"armed-but-idle fault injection costs {tax * 100:.1f}% "
        f"(allowed {MAX_FAULT_TAX * 100:.0f}%)"
    )
