"""Shared-memory parallel backend acceptance — speedup curve + bit-identity.

The paper's intra-node scaling story (Fig. 9's OpenMP threads over
Hilbert-ordered partition ranges) rendered on the reproduction's
backend: the same reconstruction is run serially and with 2 and 4
workers in both thread and process modes, and the cold preprocessing
(per-angle Siddon tracing) is run serially and fanned out.

Acceptance (speedups are only asserted when the host actually has the
cores — a single-core container can execute the decomposition but not
exhibit it; CI runners enforce the floors):

* every parallel volume is **bit-identical** to the serial volume —
  asserted unconditionally, on any machine;
* with >= 2 cores: best 2-worker reconstruct speedup > 1.3x;
* with >= 4 cores: best 4-worker reconstruct speedup >= 2.0x and cold
  preprocess (tracing) speedup >= 1.5x at 4 workers.

``REPRO_BENCH_PARALLEL_SIZE`` scales the demo (default 256; set 512
for the paper-scale run — tracing grows ~cubically, so budget minutes).
"""

import os
import time

import numpy as np

from repro.core import OperatorConfig, preprocess, reconstruct
from repro.geometry import ParallelBeamGeometry
from repro.phantoms import shepp_logan

SIZE = int(os.environ.get("REPRO_BENCH_PARALLEL_SIZE", "256"))
ITERATIONS = 20
MIN_SPEEDUP_2 = 1.3
MIN_SPEEDUP_4 = 2.0
MIN_PREPROCESS_SPEEDUP_4 = 1.5


def _config(workers=None) -> OperatorConfig:
    return OperatorConfig(
        kernel="buffered", partition_size=128, buffer_bytes=8192, workers=workers
    )


def test_parallel_speedup_curve(report):
    cores = os.cpu_count() or 1
    geometry = ParallelBeamGeometry(SIZE, SIZE)

    # -- cold preprocess: serial vs 4-worker tracing fan-out ------------
    t0 = time.perf_counter()
    operator, serial_report = preprocess(geometry, config=_config())
    preprocess_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    op_parallel, parallel_report = preprocess(geometry, config=_config(workers=4))
    preprocess_parallel = time.perf_counter() - t0
    matrices_equal = (
        np.array_equal(op_parallel.matrix.displ, operator.matrix.displ)
        and np.array_equal(op_parallel.matrix.ind, operator.matrix.ind)
        and np.array_equal(op_parallel.matrix.val, operator.matrix.val)
    )
    op_parallel.close()
    preprocess_speedup = preprocess_serial / preprocess_parallel
    tracing_speedup = (
        serial_report.tracing_seconds / parallel_report.tracing_seconds
    )

    # -- reconstruction: serial vs 2/4 workers, thread and process ------
    sinogram = operator.project_image(shepp_logan(SIZE))

    def solve(workers=None):
        result = reconstruct(
            sinogram,
            geometry,
            solver="cg",
            iterations=ITERATIONS,
            operator=operator,
            workers=workers,
        )
        operator.set_workers(None)
        return result

    solve()  # warm caches (vector plans, allocator) outside timing
    reference = solve()
    timings = {"serial": reference.solve_seconds}
    best = {2: 0.0, 4: 0.0}
    for count in (2, 4):
        for mode in ("thread", "process"):
            result = solve(workers=f"{mode}:{count}")
            assert np.array_equal(result.image, reference.image), (
                f"{mode}:{count} volume differs from serial"
            )
            timings[f"{mode}:{count}"] = result.solve_seconds
            best[count] = max(
                best[count], reference.solve_seconds / result.solve_seconds
            )

    lines = [
        f"parallel backend, {SIZE}x{SIZE} buffered kernel, CG x{ITERATIONS}, "
        f"{cores} core(s)",
        f"  preprocess cold         : {preprocess_serial:8.3f} s serial vs "
        f"{preprocess_parallel:.3f} s at 4 workers "
        f"({preprocess_speedup:.2f}x; tracing {tracing_speedup:.2f}x)",
    ]
    for label, seconds in timings.items():
        speed = timings["serial"] / seconds
        lines.append(
            f"  solve {label:<17} : {seconds:8.3f} s ({speed:5.2f}x)"
        )
    lines += [
        f"  best speedup @2 workers : {best[2]:8.2f}x (floor {MIN_SPEEDUP_2}x, "
        f"enforced with >= 2 cores)",
        f"  best speedup @4 workers : {best[4]:8.2f}x (floor {MIN_SPEEDUP_4}x, "
        f"enforced with >= 4 cores)",
        f"  volumes bit-identical   : True",
        f"  traced matrices equal   : {matrices_equal}",
    ]
    report(
        "parallel_speedup",
        "\n".join(lines),
        extra={
            "size": SIZE,
            "iterations": ITERATIONS,
            "cores": cores,
            "preprocess_serial_seconds": preprocess_serial,
            "preprocess_parallel_seconds": preprocess_parallel,
            "preprocess_speedup": preprocess_speedup,
            "tracing_speedup": tracing_speedup,
            "solve_seconds": timings,
            "best_speedup_2": best[2],
            "best_speedup_4": best[4],
            "min_speedup_2": MIN_SPEEDUP_2,
            "min_speedup_4": MIN_SPEEDUP_4,
        },
    )

    assert matrices_equal, "parallel tracing changed the matrix"
    if cores >= 2:
        assert best[2] > MIN_SPEEDUP_2, (
            f"2-worker speedup {best[2]:.2f}x below {MIN_SPEEDUP_2}x floor"
        )
    if cores >= 4:
        assert best[4] >= MIN_SPEEDUP_4, (
            f"4-worker speedup {best[4]:.2f}x below {MIN_SPEEDUP_4}x floor"
        )
        assert tracing_speedup >= MIN_PREPROCESS_SPEEDUP_4, (
            f"tracing speedup {tracing_speedup:.2f}x below "
            f"{MIN_PREPROCESS_SPEEDUP_4}x floor"
        )
