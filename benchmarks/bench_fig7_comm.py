"""Fig. 7 — sparse communication structure across 16 processes.

Paper Fig. 7 decomposes 256x256 tomogram/sinogram domains over 16
processes and shows: (c) a sparse communication matrix — only
interacting subdomain pairs exchange data; (d) per-pair volumes of
process 7; (e) total send/receive volumes per process.  We rebuild the
same decomposition and print all three, plus the backprojection-
equals-transpose property.
"""

import numpy as np

from repro.dist import DistributedOperator, SimComm, decompose_both
from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix
from repro.utils import render_table

RANKS = 16


def test_fig7_communication_matrix(report, benchmark):
    g = ParallelBeamGeometry(256, 256)
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    tomo = make_ordering("pseudo-hilbert", 256, 256, tile_size=64)
    sino = make_ordering("pseudo-hilbert", 256, 256, tile_size=64)
    matrix = raw.permute(sino.perm, tomo.rank).sort_rows_by_index()
    td, sd = decompose_both(tomo, sino, RANKS)
    comm = SimComm(RANKS)
    op = DistributedOperator(matrix, td, sd, comm=comm)

    volume = op.communication_matrix()  # forward pass, bytes
    partners = op.interaction_counts()
    send_kb = volume.sum(axis=1) / 1024
    recv_kb = volume.sum(axis=0) / 1024

    # (c) the sparse pattern as a text matrix.
    pattern_lines = ["    " + " ".join(f"{q:>2}" for q in range(RANKS))]
    for p in range(RANKS):
        cells = " ".join(" ." if volume[p, q] == 0 else " #" for q in range(RANKS))
        pattern_lines.append(f"{p:>3} {cells}")
    pattern = "\n".join(pattern_lines)

    # (d) pairwise volumes of process 7.
    pair_rows = [
        [q, f"{volume[7, q] / 1024:.1f}", f"{volume[q, 7] / 1024:.1f}"]
        for q in range(RANKS)
        if volume[7, q] or volume[q, 7]
    ]
    pair_table = render_table(
        ["Pair process", "Send (KB)", "Recv (KB)"], pair_rows,
        title="Fig. 7(d): pairwise communication of process 7",
    )

    # (e) totals per process.
    total_rows = [
        [p, f"{send_kb[p]:.1f}", f"{recv_kb[p]:.1f}", int(partners[p])]
        for p in range(RANKS)
    ]
    total_table = render_table(
        ["Process", "Send (KB)", "Recv (KB)", "Partners"], total_rows,
        title="Fig. 7(e): total communication per process",
    )

    sparsity = float((volume > 0).sum()) / (RANKS * (RANKS - 1))
    report(
        "fig7_comm",
        "Fig. 7(c): forward-projection communication matrix "
        f"(sparsity: {sparsity:.0%} of off-diagonal pairs exchange data)\n"
        + pattern
        + "\n\n"
        + pair_table
        + "\n\n"
        + total_table,
    )

    # Shape assertions mirroring the paper's observations:
    # - the matrix is sparse (process 7 talks to ~8 of 15 peers);
    assert 0.2 < sparsity < 0.9
    assert 4 <= partners[7] <= 12
    # - pair volumes are asymmetric across peers (more data to nearer
    #   subdomains);
    sent7 = volume[7][volume[7] > 0]
    assert sent7.max() > 2 * sent7.min()
    # - backprojection communication is the exact transpose.
    x = np.random.default_rng(0).random(matrix.num_cols).astype(np.float32)
    op.forward(x)
    fwd_log = comm.log.volume_bytes.copy()
    comm.reset_log()
    op.adjoint(np.random.default_rng(1).random(matrix.num_rows).astype(np.float32))
    np.testing.assert_array_equal(comm.log.volume_bytes, fwd_log.T)

    benchmark(op.forward, x)
