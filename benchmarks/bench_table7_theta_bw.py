"""Table 7 — fastest reconstructions on Theta vs Blue Waters.

Paper: RDS1 runs fastest on 128 nodes of both machines (Theta ~1.7x
faster); RDS2 on 2048 Theta nodes vs 4096 Blue Waters nodes (7.4x);
the 12000x8192 weak-scaled dataset on 4096 nodes (7.5x).  We sweep the
model over node counts, pick each machine's best, and compare.
"""

import numpy as np

from repro.dist import model_solution_time
from repro.machine import get_machine
from repro.utils import format_seconds, render_table

CASES = [
    # name, M, N, candidate node counts, paper (BW, Theta)
    ("RDS1", 1501, 2048, [32, 64, 128, 256, 512], ("805 ms @128", "474 ms @128")),
    ("RDS2", 4501, 11283, [128, 256, 512, 1024, 2048, 4096], ("74 s @4096", "10 s @2048")),
    ("12000x8192", 12000, 8192, [4096], ("24.4 s @4096", "3.25 s @4096")),
]


def _best(machine, m, n, nodes):
    best = None
    for p in nodes:
        t = model_solution_time(m, n, machine, p).total_seconds
        if best is None or t < best[0]:
            best = (t, p)
    return best


def test_table7_theta_vs_bluewaters(report, benchmark):
    theta = get_machine("theta")
    bw = get_machine("bluewaters")
    rows = []
    ratios = {}
    for name, m, n, nodes, paper in CASES:
        t_bw, p_bw = _best(bw, m, n, nodes)
        t_th, p_th = _best(theta, m, n, nodes)
        ratios[name] = t_bw / t_th
        rows.append(
            [
                name,
                f"{format_seconds(t_bw)} @{p_bw}",
                f"{format_seconds(t_th)} @{p_th}",
                f"{t_bw / t_th:.1f}x",
                f"BW {paper[0]}, Theta {paper[1]}",
            ]
        )

    table = render_table(
        ["Dataset", "Blue Waters (model)", "Theta (model)", "Theta advantage", "Paper"],
        rows,
        title="Table 7: best modeled solution times, Theta vs Blue Waters",
    )
    report("table7_theta_bw", table)

    # Shape: Theta wins everywhere; the gap widens on the larger
    # communication-heavy datasets (paper: 1.7x -> 7.4x / 7.5x).
    assert all(r > 1.0 for r in ratios.values())
    assert ratios["RDS2"] > ratios["RDS1"]

    benchmark(model_solution_time, 4501, 11283, theta, 2048)
