"""Autotuner quality and the fp32 compute-path payoff.

Two claims from docs/autotuning.md, measured on real layouts:

1. **Pruned search is near-exhaustive**: the predict-then-trial search
   (top-K candidates measured, then refined) lands within 5% of a
   fully exhaustive measured sweep of the same candidate space — or
   within this host's measurement noise of it, since the buffered
   configurations form a plateau whose internal ranking drifts
   run-to-run.
2. **fp32 halves the vector traffic**: at 256x256, batched SpMV in
   float32 is >= 1.5x faster than float64 (the multi-RHS path is pure
   streaming, so the 2x byte reduction shows through); single-vector
   SpMV, where index traffic is not amortized, still gains >= 1.1x.
"""

import time

import numpy as np

from repro.autotune import Autotuner
from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix, build_buffered, build_ell, scan_transpose
from repro.trace import build_projection_matrix
from repro.utils import render_table


def _traced(num_angles, num_channels, dtype="float32"):
    g = ParallelBeamGeometry(num_angles, num_channels)
    raw = CSRMatrix.from_scipy(build_projection_matrix(g), dtype=dtype)
    n = g.grid.n
    tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=16)
    sino = make_ordering("pseudo-hilbert", g.num_angles, g.num_channels, min_tiles=16)
    return raw.permute(sino.perm, tomo.rank).sort_rows_by_index()


def _best_of(fn, x, repeats=7):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(x)
        times.append(time.perf_counter() - t0)
    return min(times)


def test_fp32_spmv_speedup(report):
    """float32 vs float64 SpMV at 256x256 (paper-kernel value dtypes)."""
    m64 = _traced(256, 256, dtype="float64")
    m32 = m64.astype("float32")
    rng = np.random.default_rng(0)
    x32 = rng.random(m32.num_cols, dtype=np.float32)
    x64 = x32.astype(np.float64)
    X32 = rng.random((m32.num_cols, 8), dtype=np.float32)
    X64 = X32.astype(np.float64)

    t_single_32 = _best_of(m32.spmv, x32)
    t_single_64 = _best_of(m64.spmv, x64)
    t_batch_32 = _best_of(m32.spmv_batch, X32)
    t_batch_64 = _best_of(m64.spmv_batch, X64)
    single_speedup = t_single_64 / t_single_32
    batch_speedup = t_batch_64 / t_batch_32

    rows = [
        ["single-vector", f"{t_single_32 * 1e3:.2f} ms", f"{t_single_64 * 1e3:.2f} ms",
         f"{single_speedup:.2f}x", ">= 1.1x"],
        ["batched (8 RHS)", f"{t_batch_32 * 1e3:.2f} ms", f"{t_batch_64 * 1e3:.2f} ms",
         f"{batch_speedup:.2f}x", ">= 1.5x"],
    ]
    report(
        "autotune_fp32_speedup",
        render_table(
            ["SpMV", "fp32", "fp64", "speedup", "floor"],
            rows,
            title=f"fp32 vs fp64 SpMV, 256x256 (nnz = {m32.nnz:,})",
        ),
        extra={
            "single_speedup": single_speedup,
            "batch_speedup": batch_speedup,
            "nnz": m32.nnz,
        },
    )
    # The multi-RHS path streams values/vectors with index traffic
    # amortized over 8 columns — the 2x byte halving must show.
    assert batch_speedup >= 1.5, f"batched fp32 speedup {batch_speedup:.2f}x < 1.5x"
    assert single_speedup >= 1.1, f"single fp32 speedup {single_speedup:.2f}x < 1.1x"


def test_tuned_config_within_5pct_of_exhaustive(report):
    """Top-K pruned search vs an exhaustive measured sweep."""
    matrix = _traced(128, 128)
    transpose = scan_transpose(matrix)

    partition_sizes = (64, 128, 256)
    buffer_sizes = (8192, 32768)
    tuner = Autotuner(
        partition_sizes=partition_sizes,
        buffer_sizes=buffer_sizes,
        workers_options=(1,),
        top_k=3,
        trial_repeats=5,
        seed=0,
    )
    outcome = tuner.tune(matrix, transpose, mode="auto")

    # Exhaustive: measure every candidate with the identical timer,
    # interleaved over several rounds so slow drift (turbo, cache
    # state) cannot skew one candidate's number, and score the tuned
    # pick from the same sweep so both sides share one measurement.
    # Median over rounds: a single lucky sample must not crown a
    # winner the tuner could never reproduce.
    space = tuner.candidate_space()
    rounds = {cand: [] for cand in space}
    for _ in range(3):
        for cand in space:
            rounds[cand].append(tuner._time_candidate(matrix, transpose, cand))
    sweep = {cand: float(np.median(times)) for cand, times in rounds.items()}
    best_cand = min(space, key=lambda c: sweep[c])
    best_seconds = sweep[best_cand]
    tuned_seconds = sweep[outcome.best.candidate]
    ratio = tuned_seconds / best_seconds
    # When the tuned pick's fastest round beats the "best" config's
    # slowest round, the two are within this host's measurement noise
    # and the sweep's ranking between them is not meaningful.  The
    # tuner's own trial time is the third witness: host conditions
    # drift between the tune pass and the sweep pass, and a pick that
    # measured at the sweep-best level when it was chosen was not a
    # search failure.
    within_noise = min(rounds[outcome.best.candidate]) <= max(rounds[best_cand])
    fast_when_chosen = outcome.best.measured_seconds <= 1.05 * best_seconds

    rows = [
        ["tuned (top-3 trials)", outcome.best.candidate.kernel,
         outcome.best.candidate.partition_size,
         f"{outcome.best.candidate.buffer_bytes // 1024} KB",
         f"{tuned_seconds * 1e3:.3f} ms"],
        ["exhaustive best", best_cand.kernel, best_cand.partition_size,
         f"{best_cand.buffer_bytes // 1024} KB", f"{best_seconds * 1e3:.3f} ms"],
    ]
    report(
        "autotune_vs_exhaustive",
        render_table(
            ["search", "kernel", "partition", "buffer", "fwd+adj"],
            rows,
            title=(
                f"pruned vs exhaustive search, 128x128 "
                f"({len(space)} candidates, ratio {ratio:.3f})"
            ),
        ),
        extra={
            "ratio": ratio,
            "within_noise": within_noise,
            "fast_when_chosen": fast_when_chosen,
            "candidates": len(space),
            "trials": len(outcome.trials),
        },
    )
    assert ratio <= 1.05 or within_noise or fast_when_chosen, (
        f"tuned config is {ratio:.3f}x the exhaustive best (> 1.05, "
        f"outside measurement noise, and was not competitive when "
        f"chosen): {outcome.best.candidate} vs {best_cand}"
    )
