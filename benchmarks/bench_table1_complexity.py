"""Table 1 — computational complexities of Trace vs MemXCT.

Validates the three scaling laws empirically on executed distributed
instances (scaled ADS2, P in {1, 4, 16, 64}):

* memory per rank ~ MN^2/P (+ MN/sqrt(P) overlap term);
* compute per rank ~ MN^2/P (partial-projection nnz);
* MemXCT communication total ~ MN sqrt(P) vs Trace's N^2 log P
  allreduce.

The fitted exponents are the reproduced result: quadrupling P should
roughly double MemXCT's total communication (sqrt law) while Trace's
grows with log P but starts orders of magnitude higher per rank.
"""

import numpy as np

from repro.dist import (
    DistributedOperator,
    DuplicatedOperator,
    decompose_both,
    trace_comm_elements,
)
from repro.utils import render_table

from conftest import build_ordered

RANK_COUNTS = [1, 4, 16, 64]


def test_table1_complexity(report, scaled_specs, benchmark):
    spec = scaled_specs["ADS2"]
    matrix, tomo, sino = build_ordered(spec, min_tiles=256)
    m, n = spec.num_projections, spec.num_channels

    rows = []
    comm_elements = []
    for p in RANK_COUNTS:
        td, sd = decompose_both(tomo, sino, p)
        op = DistributedOperator(matrix, td, sd)
        per_rank_nnz = op.per_rank_nnz()
        comm = op.communication_matrix().sum() / 4  # bytes -> elements
        comm_elements.append(comm)
        # Measured Trace-style traffic: the duplicated-domain allreduce
        # of one backprojection (the paper's O(N^2 log P) term).
        duplicated = DuplicatedOperator(matrix, p)
        trace_measured = duplicated.allreduce_bytes_per_backprojection() / 4
        trace_closed = trace_comm_elements(n, p) * p  # total across ranks
        rows.append(
            [
                p,
                f"{per_rank_nnz.max():,}",
                f"{per_rank_nnz.max() / matrix.nnz:.4f}",
                f"{int(comm):,}",
                f"{int(trace_measured):,}",
                f"{int(trace_closed):,}",
            ]
        )

    # Fit the sqrt(P) exponent on the measured communication volumes.
    logs_p = np.log(RANK_COUNTS[1:])
    logs_c = np.log(np.asarray(comm_elements[1:]))
    exponent = float(np.polyfit(logs_p, logs_c, 1)[0])

    table = render_table(
        ["P", "max nnz/rank (A_p)", "fraction of total", "MemXCT comm (elems)",
         "Trace allreduce measured", "Trace closed form"],
        rows,
        title=(
            "Table 1: measured complexity scaling on scaled ADS2 "
            f"({m}x{n})\nfitted MemXCT comm exponent: P^{exponent:.2f} "
            "(paper: P^0.5); compute/memory per rank ~ 1/P"
        ),
    )
    report("table1_complexity", table)

    # Compute scales as 1/P (load balanced within 2x).
    first = 1
    for i, p in enumerate(RANK_COUNTS):
        td, sd = decompose_both(tomo, sino, p)
        op = DistributedOperator(matrix, td, sd)
        assert op.per_rank_nnz().max() < 2.0 * matrix.nnz / p
    # Communication exponent near 1/2.
    assert 0.3 < exponent < 0.75
    # At the largest executed P, MemXCT per-rank traffic beats Trace's.
    memxct_per_rank = comm_elements[-1] / RANK_COUNTS[-1]
    assert memxct_per_rank < trace_comm_elements(n, RANK_COUNTS[-1])
    # ... and the *measured* totals agree: the sparse exchange moves
    # less data than the duplicated-domain allreduce.
    dup = DuplicatedOperator(matrix, RANK_COUNTS[-1])
    assert comm_elements[-1] < dup.allreduce_bytes_per_backprojection() / 4

    # Timed kernel: one distributed forward at P=16.
    td, sd = decompose_both(tomo, sino, 16)
    op = DistributedOperator(matrix, td, sd)
    x = np.random.default_rng(0).random(matrix.num_cols).astype(np.float32)
    benchmark(op.forward, x)
