"""Ablation — scan-based vs atomic-style (randomized) transposition.

Paper Section 3.5.1: MemXCT builds the backprojection matrix with a
scan-based transposition *because* it preserves the intra-row nonzero
order established by the Hilbert layout; an atomic-based construction
randomizes it.  This ablation measures what that choice is worth: the
L2 miss rate of the backprojection gather stream and the buffered-
layout staging traffic under both constructions.
"""

import numpy as np

from repro.cachesim import miss_rate_csr
from repro.sparse import build_buffered, randomized_transpose, scan_transpose
from repro.utils import render_table

# The ordering of gathers within a row only matters once the per-row
# footprint (one sinusoid, ~M distinct lines) exceeds the cache: pick a
# capacity below that so the visiting order decides hits vs misses.
CACHE_BYTES = 2 * 1024
MAX_TRACE = 300_000


def test_ablation_transpose_locality(report, ads2_scaled, benchmark):
    matrix = ads2_scaled["ordered"]
    scan = scan_transpose(matrix)
    rand = randomized_transpose(matrix, seed=0)

    miss_scan = miss_rate_csr(
        scan, CACHE_BYTES, max_accesses=MAX_TRACE, include_regular=True
    ).miss_rate
    miss_rand = miss_rate_csr(
        rand, CACHE_BYTES, max_accesses=MAX_TRACE, include_regular=True
    ).miss_rate

    # The randomized layout also needs intra-row sorting before the
    # buffered build would even be valid — measure the staging cost on
    # the honest comparison: scan vs (randomized + re-sort).
    buf_scan = build_buffered(scan, 128, 8192)
    buf_rand = build_buffered(rand.sort_rows_by_index(), 128, 8192)

    rows = [
        ["scan-based (order-preserving)", f"{miss_scan:.1%}",
         f"{buf_scan.map.shape[0]:,}"],
        ["atomic-style (randomized)", f"{miss_rand:.1%}",
         f"{buf_rand.map.shape[0]:,} (after re-sorting rows)"],
    ]
    table = render_table(
        ["Transposition", "Backprojection L2 miss rate", "Staging map entries"],
        rows,
        title="Ablation: transposition scheme vs backprojection locality (scaled ADS2)",
    )
    report("ablation_transpose", table)

    # The scan-based construction must preserve the gather locality.
    assert miss_scan < miss_rand
    # Both represent the same matrix, so footprints (distinct inputs per
    # partition) match once rows are re-sorted.
    assert buf_scan.map.shape[0] == buf_rand.map.shape[0]

    y = np.random.default_rng(0).random(scan.num_cols).astype(np.float32)
    benchmark(scan.spmv, y)
