"""Fig. 11 — weak and strong scaling up to 4096 nodes.

Four panels: weak scaling of ADS3 on Theta and ADS2 on Blue Waters
(x8 nodes per step), strong scaling of RDS2 on Theta (128-4096 nodes)
and RDS1 on Blue Waters (32-4096).  The kernel decomposition (A_p, C,
R) follows the paper's factorization; the communication constant is
*fitted from executed decompositions* at small P (validating the
O(MN sqrt(P)) law on the way), then the model extrapolates.

Shapes to reproduce: weak scaling flat except C ~ sqrt(P); strong
scaling ~1/P for A_p with C eventually dominating; Blue Waters
saturating earlier than Theta (paper 4.3.2).
"""

import numpy as np

from repro.dist import (
    DistributedOperator,
    decompose_both,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.machine import get_machine
from repro.utils import render_table

from conftest import build_ordered


def _fit_overlap_constant(scaled_specs):
    """Fit c in comm_elements = c * M * N * sqrt(P) from real runs."""
    spec = scaled_specs["ADS2"]
    matrix, tomo, sino = build_ordered(spec, min_tiles=256)
    m, n = spec.num_projections, spec.num_channels
    constants = []
    for p in (16, 64):
        td, sd = decompose_both(tomo, sino, p)
        op = DistributedOperator(matrix, td, sd)
        elements = op.communication_matrix().sum() / 4
        constants.append(elements / (m * n * np.sqrt(p)))
    return float(np.mean(constants)), constants


def _series_table(points, title):
    rows = [p.row() for p in points]
    return render_table(
        ["Nodes", "Sinogram", "Total (s)", "A_p (s)", "C (s)", "R (s)"], rows, title=title
    )


def test_fig11_scaling(report, scaled_specs, benchmark):
    overlap, fitted = _fit_overlap_constant(scaled_specs)
    kwargs = {"overlap_constant": overlap}

    weak_theta = weak_scaling_series(1500, 1024, get_machine("theta"), 4, **kwargs)
    weak_bw = weak_scaling_series(750, 512, get_machine("bluewaters"), 5, **kwargs)
    strong_theta = strong_scaling_series(
        4501, 11283, get_machine("theta"), [128, 256, 512, 1024, 2048, 4096], **kwargs
    )
    strong_bw = strong_scaling_series(
        1501, 2048, get_machine("bluewaters"), [32, 64, 128, 256, 512, 1024, 4096], **kwargs
    )

    sections = [
        f"fitted overlap constant c = {overlap:.3f} "
        f"(per-P fits: {', '.join(f'{c:.3f}' for c in fitted)}; law: elems = c*M*N*sqrt(P))",
        _series_table(weak_theta, "Fig. 11(a): ADS3/Theta weak scaling (x8 nodes per step)"),
        _series_table(weak_bw, "Fig. 11(b): ADS2/Blue Waters weak scaling"),
        _series_table(strong_theta, "Fig. 11(c): RDS2/Theta strong scaling"),
        _series_table(strong_bw, "Fig. 11(d): RDS1/Blue Waters strong scaling"),
    ]
    report("fig11_scaling", "\n\n".join(sections))

    # Weak scaling: A_p flat within 2x; C grows monotonically.
    ap = [p.ap_seconds for p in weak_theta]
    assert max(ap) / min(ap) < 2.0
    comm = [p.comm_seconds for p in weak_theta[1:]]
    assert all(b > a for a, b in zip(comm, comm[1:]))

    # Strong scaling: totals fall then flatten; Theta's RDS2 still
    # improves at 2048 (paper: good scaling to 2048 nodes).
    t_tot = [p.total_seconds for p in strong_theta]
    assert t_tot[4] < t_tot[0]  # 2048 < 128 nodes
    # Blue Waters saturates earlier: its last doubling gains little.
    b_tot = [p.total_seconds for p in strong_bw]
    gain_early = b_tot[0] / b_tot[2]  # 32 -> 128 nodes
    gain_late = b_tot[4] / b_tot[6]  # 512 -> 4096 nodes
    assert gain_early > gain_late

    # RDS2 reconstruction on Theta lands in the near-real-time regime
    # (paper: ~10 s at 2048 nodes; the model underestimates absolute
    # times at extreme P — it omits load imbalance and barrier costs —
    # so only the seconds-not-minutes shape is asserted).
    best_rds2 = min(t_tot)
    assert 0.05 < best_rds2 < 120.0

    benchmark(
        strong_scaling_series, 4501, 11283, get_machine("theta"), [1024], **kwargs
    )
