"""Hierarchical two-level exchange — measured split + modeled crossover.

Petascale XCT (arXiv 2009.07226, Fig. 11) replaces MemXCT's flat
Alltoallv with a two-level exchange on multi-GPU nodes: ranks stage
their remote payloads at a node leader over the intra-node fabric,
leaders trade one aggregated message per node pair over the network,
and the partial-projection compute hides the inter-node transfer.
Two phases reproduce that story at laptop scale:

* **Measured** — an executed 4-rank decomposition of scaled ADS1 runs
  the same CG solve through a flat :class:`SimComm` and a 2x2
  :class:`HierComm`.  The images must be bit-identical, the flat
  logical log must be unchanged by the hierarchy, and the recorded
  two-level split must be conservative: every byte in the aggregated
  node-to-node exchange also appears as cross-node traffic in the flat
  log, carried by strictly fewer network messages.
* **Modeled** — :func:`find_hier_crossover` sweeps the alpha-beta model
  over doubling node counts, flat vs hierarchical (with and without
  comm/compute overlap), asserting the Fig. 11 shape: the two-level
  exchange wins from some node count onward and stays ahead, and
  overlap can only help it.

``REPRO_BENCH_SMOKE=1`` shrinks the executed solve and the modeled
sweep so CI can exercise the harness quickly.
"""

import os

import numpy as np

from repro.dist import (
    DistributedOperator,
    decompose_both,
    find_hier_crossover,
)
from repro.machine import get_machine
from repro.solvers import cgls
from repro.topology import HierComm, Topology
from repro.utils import render_table

from conftest import build_ordered

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ITERATIONS = 4 if SMOKE else 12
NODE_STEPS = 9 if SMOKE else 13  # 1 .. 256 / 1 .. 4096
MACHINE = "dgx1"  # 8 ranks/node: the strongest intra/inter contrast


def _measured_split(scaled_specs):
    """Run one solve flat and hierarchical; return the traffic ledger."""
    spec = scaled_specs["ADS1"]
    matrix, tomo, sino = build_ordered(spec)
    td, sd = decompose_both(tomo, sino, 4)
    flat = DistributedOperator(matrix, td, sd)
    topo = Topology.hierarchical(2, 2)
    hier = DistributedOperator(
        matrix, td, sd, comm=HierComm(topo), topology=topo
    )
    truth = np.random.default_rng(0).random(flat.num_pixels).astype(np.float32)
    y = flat.forward(truth)
    flat.comm.reset_log()
    hier.comm.reset_log()
    img_flat = cgls(flat, y, num_iterations=ITERATIONS).x
    img_hier = cgls(hier, y, num_iterations=ITERATIONS).x
    assert np.array_equal(img_flat, img_hier), "hierarchical path changed bits"

    # The flat logical log is unchanged by the accounting layer.
    assert np.array_equal(flat.comm.log.volume_bytes, hier.comm.log.volume_bytes)

    node_of = topo.node_map()
    volume = hier.comm.log.volume_bytes
    counts = hier.comm.log.message_counts
    cross_bytes = sum(
        int(volume[p, q])
        for p in range(4)
        for q in range(4)
        if p != q and node_of[p] != node_of[q]
    )
    cross_messages = sum(
        int(counts[p, q])
        for p in range(4)
        for q in range(4)
        if p != q and node_of[p] != node_of[q]
    )
    log = hier.comm.hier
    return {
        "flat_off_diag_bytes": int(volume.sum() - np.trace(volume)),
        "cross_node_bytes": cross_bytes,
        "cross_node_messages": cross_messages,
        "intra_bytes": log.intra_bytes,
        "intra_messages": log.intra_messages,
        "inter_bytes": log.inter_bytes(),
        "inter_messages": log.inter_messages,
    }


def _crossover_table(result, title):
    rows = [
        [
            p["nodes"],
            f"{p['flat_comm_seconds']:.4f}",
            f"{p['hier_comm_seconds']:.4f}",
            f"{p['flat_total_seconds']:.4f}",
            f"{p['hier_total_seconds']:.4f}",
            f"{p['overlap_saved_seconds']:.4f}",
        ]
        for p in result["points"]
    ]
    return render_table(
        ["Nodes", "C flat (s)", "C hier (s)", "Total flat (s)",
         "Total hier (s)", "Overlap saved (s)"],
        rows,
        title=title,
    )


def test_hier_comm_crossover(report, scaled_specs, benchmark):
    split = _measured_split(scaled_specs)

    # Conservation: the aggregated inter-node exchange carries at most
    # what the flat log shows crossing node boundaries, in strictly
    # fewer network messages; the staging hops are new intra traffic.
    assert 0 < split["inter_bytes"] <= split["cross_node_bytes"]
    assert 0 < split["inter_messages"] < split["cross_node_messages"]
    assert split["intra_bytes"] > 0 and split["intra_messages"] > 0

    machine = get_machine(MACHINE)
    node_counts = [2**k for k in range(NODE_STEPS)]
    m, n = 1501, 2048  # RDS1 full size; the model is closed-form
    overlapped = find_hier_crossover(m, n, machine, node_counts=node_counts)
    sequential = find_hier_crossover(
        m, n, machine, node_counts=node_counts, overlap=False
    )

    measured_rows = [
        ["flat off-diagonal", f"{split['flat_off_diag_bytes']:,}"],
        ["  of which cross-node", f"{split['cross_node_bytes']:,}"],
        ["hier intra (staging + same-node)", f"{split['intra_bytes']:,}"],
        ["hier inter (node pairs)", f"{split['inter_bytes']:,}"],
        [
            "network messages, flat -> hier",
            f"{split['cross_node_messages']:,} -> {split['inter_messages']:,}",
        ],
    ]
    sections = [
        render_table(
            ["traffic class", "bytes"],
            measured_rows,
            title="measured 4-rank / 2x2-node split (scaled ADS1, bit-exact)",
        ),
        _crossover_table(
            overlapped,
            f"modeled RDS1 on {machine.name} "
            f"({overlapped['ranks_per_node']} ranks/node, with overlap)",
        ),
        _crossover_table(
            sequential,
            f"modeled RDS1 on {machine.name} (without overlap)",
        ),
        f"crossover: hierarchical wins from "
        f"{overlapped['crossover_nodes']} nodes with overlap, "
        f"{sequential['crossover_nodes']} without",
    ]
    report(
        "hier_comm_crossover",
        "\n\n".join(sections),
        extra={"split": split,
               "crossover_overlap": overlapped["crossover_nodes"],
               "crossover_sequential": sequential["crossover_nodes"]},
    )

    # Fig. 11 shape: the two-level exchange wins from some node count
    # onward and stays ahead through the largest sampled count.
    assert overlapped["crossover_nodes"] is not None
    assert overlapped["crossover_nodes"] > 1
    last = overlapped["points"][-1]
    assert last["hier_total_seconds"] < last["flat_total_seconds"]
    assert last["hier_comm_seconds"] < last["flat_comm_seconds"]

    # Overlap can only help the hierarchical path: pointwise no slower,
    # and the crossover arrives no later than the sequential one.
    for with_ov, without in zip(overlapped["points"], sequential["points"]):
        assert with_ov["hier_total_seconds"] <= without["hier_total_seconds"]
        assert with_ov["overlap_saved_seconds"] >= 0.0
    if sequential["crossover_nodes"] is not None:
        assert overlapped["crossover_nodes"] <= sequential["crossover_nodes"]
    assert any(p["overlap_saved_seconds"] > 0 for p in overlapped["points"])

    benchmark(
        find_hier_crossover, m, n, machine, node_counts=[node_counts[-1]]
    )
