"""Fig. 5 — data access patterns on 2D domains (the worked example).

Paper Fig. 5 shows one backprojection ray footprint (30 accesses on
the tomogram domain) and one forward-projection pixel footprint
(sinusoid on the sinogram domain) over 16x16 domains with 64 B cache
lines: row-major ordering costs 16 misses on both (64 % / 53 %),
Hilbert ordering costs 6 and 7 (24 % / 23 %).  We regenerate the
example with real traced footprints and cold-miss counting.
"""

import numpy as np

from repro.cachesim import cold_misses_for_footprint
from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix, scan_transpose
from repro.trace import build_projection_matrix
from repro.utils import render_table


def test_fig5_access_patterns(report, benchmark):
    g = ParallelBeamGeometry(25, 16)
    A = CSRMatrix.from_scipy(build_projection_matrix(g))

    # Tomogram footprint: a near-diagonal ray's pixel accesses.
    ray = int(g.ray_index(25 // 4, 8))
    tomo_accesses = A.ind[A.displ[ray] : A.displ[ray + 1]].astype(np.int64)

    # Sinogram footprint: on a 16x16 sinogram domain (16 angles), one
    # pixel's sinusoid touches every angle row once or twice — the
    # paper's ~25 accesses over 16 rows.
    g16 = ParallelBeamGeometry(16, 16)
    A16 = CSRMatrix.from_scipy(build_projection_matrix(g16))
    AT = scan_transpose(A16)
    pixel = 10 * 16 + 4
    sino_accesses = AT.ind[AT.displ[pixel] : AT.displ[pixel + 1]].astype(np.int64)

    rows = []
    results = {}
    for label, accesses, domain, paper in [
        ("tomogram (ray)", tomo_accesses, (16, 16), (16, "53%", 7, "23%")),
        ("sinogram (pixel)", sino_accesses, (16, 16), (16, "64%", 6, "24%")),
    ]:
        rm = make_ordering("row-major", *domain)
        hb = make_ordering("hilbert", *domain)
        m_rm, n_acc = cold_misses_for_footprint(accesses, rm)
        m_hb, _ = cold_misses_for_footprint(accesses, hb)
        results[label] = (m_rm, m_hb, n_acc)
        rows.append(
            [
                label,
                n_acc,
                f"{m_rm} ({m_rm / n_acc:.0%})",
                f"paper: {paper[0]} ({paper[1]})",
                f"{m_hb} ({m_hb / n_acc:.0%})",
                f"paper: {paper[2]} ({paper[3]})",
            ]
        )

    table = render_table(
        ["Footprint", "Accesses", "Row-major misses", "", "Hilbert misses", ""],
        rows,
        title="Fig. 5: single-footprint cold misses, 16-wide domains, 64 B lines",
    )
    report("fig5_access", table)

    m_rm, m_hb, n_acc = results["tomogram (ray)"]
    assert m_rm == 16  # the paper's exact value: one miss per row
    assert m_hb <= 8
    assert m_hb / n_acc < 0.3
    m_rm2, m_hb2, _ = results["sinogram (pixel)"]
    assert m_hb2 < m_rm2

    benchmark(cold_misses_for_footprint, tomo_accesses, make_ordering("hilbert", 16, 16))
