"""Fig. 6 — partition data reuse and multi-stage buffer shapes.

Paper Fig. 6(a): a 64^2-cell partition of a 256^2 domain reuses each
gathered input 46.63x (tomogram partition reading the sinogram) and
64.73x (sinogram partition reading the tomogram) on average.
Fig. 6(b): with a 32 KB buffer those partitions stage their inputs in
4 and 3 stages respectively.  We rebuild the exact 256x256 instance
and measure both.
"""

import numpy as np

from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import (
    CSRMatrix,
    RowPartitions,
    build_buffered,
    partition_data_reuse,
    scan_transpose,
)
from repro.trace import build_projection_matrix
from repro.utils import render_table

PARTITION_CELLS = 64 * 64  # one 64x64 subdomain per partition
BUFFER_BYTES = 32 * 1024


def test_fig6_reuse_and_staging(report, benchmark):
    g = ParallelBeamGeometry(256, 256)
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    tomo = make_ordering("pseudo-hilbert", 256, 256, tile_size=64)
    sino = make_ordering("pseudo-hilbert", 256, 256, tile_size=64)
    fwd = raw.permute(sino.perm, tomo.rank).sort_rows_by_index()  # sinogram rows
    adj = scan_transpose(fwd)  # tomogram rows

    parts_fwd = RowPartitions(fwd.num_rows, PARTITION_CELLS)
    parts_adj = RowPartitions(adj.num_rows, PARTITION_CELLS)
    reuse_sino_partition = partition_data_reuse(fwd, parts_fwd)  # reads tomogram
    reuse_tomo_partition = partition_data_reuse(adj, parts_adj)  # reads sinogram

    buf_fwd = build_buffered(fwd, PARTITION_CELLS, BUFFER_BYTES)
    buf_adj = build_buffered(adj, PARTITION_CELLS, BUFFER_BYTES)

    rows = [
        [
            "sinogram partition reading tomogram domain (forward)",
            f"{reuse_sino_partition.mean():.2f}",
            "46.63",
            f"{buf_fwd.stages_per_partition().mean():.1f}",
            "4",
        ],
        [
            "tomogram partition reading sinogram domain (backproj.)",
            f"{reuse_tomo_partition.mean():.2f}",
            "64.73",
            f"{buf_adj.stages_per_partition().mean():.1f}",
            "3",
        ],
    ]
    table = render_table(
        ["Partition", "Avg data reuse", "Paper reuse", "Stages (32 KB buffer)",
         "Paper stages"],
        rows,
        title="Fig. 6: 64x64 partitions of 256x256 domains",
    )
    report("fig6_reuse", table)

    # Shape assertions: the paper's exact instance, so the reuse
    # averages should land close to its 46.63 / 64.73.
    assert abs(reuse_sino_partition.mean() - 46.63) < 5.0
    assert abs(reuse_tomo_partition.mean() - 64.73) < 5.0
    assert reuse_tomo_partition.mean() > reuse_sino_partition.mean()
    assert 1 <= buf_fwd.stages_per_partition().mean() <= 8
    assert 1 <= buf_adj.stages_per_partition().mean() <= 8

    x = np.random.default_rng(0).random(fwd.num_cols).astype(np.float32)
    benchmark(buf_fwd.spmv_vectorized, x)
