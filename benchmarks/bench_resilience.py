"""Resilience overhead and recovery cost.

The resilience layer (docs/resilience.md) must be free when unused:
the fault-injection hooks in ``SimComm`` and the checkpoint/health
hooks in the solvers sit on the per-collective and per-iteration
paths, so their zero-fault cost is measured here against the plain
distributed solve.  Acceptance: < 5% overhead with no faults, no
checkpointing, and no monitor attached.

The same scenario is then run under chaos (drops + corruptions + one
rank crash) to price recovery: retries, healed messages, degradation,
and the bit-exactness of transient-fault healing all land in the JSON
report via the ``fault.*`` / ``checkpoint.*`` / ``health.*`` counters
the conftest capture already collects.
"""

import time

import numpy as np

from repro.core import OperatorConfig, preprocess
from repro.dist import DistributedOperator, SimComm, decompose_both
from repro.geometry import ParallelBeamGeometry
from repro.resilience import CheckpointManager, FaultConfig, FaultInjector, HealthMonitor
from repro.solvers import cgls

MAX_OVERHEAD = 0.05
NUM_RANKS = 4
ITERATIONS = 20
REPEATS = 5


def _build(operator, injector=None):
    tomo_dec, sino_dec = decompose_both(
        operator.tomo_ordering, operator.sino_ordering, NUM_RANKS
    )
    comm = SimComm(NUM_RANKS, fault_injector=injector) if injector else None
    return DistributedOperator(operator.matrix, tomo_dec, sino_dec, comm=comm)


def _best_of(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_resilience_overhead_and_recovery(report):
    geometry = ParallelBeamGeometry(48, 64)
    operator, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"))
    truth = np.random.default_rng(0).random(operator.num_pixels).astype(np.float32)
    y = operator.forward(truth)

    # Plain distributed solve: no injector, no checkpoint, no monitor.
    plain_op = _build(operator)
    plain = _best_of(lambda: cgls(plain_op, y, num_iterations=ITERATIONS))

    # Armed but idle: injector attached with all probabilities zero,
    # plus an in-memory checkpoint policy and a health monitor — the
    # configuration a cautious production run would use.  Only the
    # solve is timed; operator construction is identical either way.
    armed_op = _build(operator, injector=FaultInjector(FaultConfig(seed=0)))
    armed = _best_of(
        lambda: cgls(
            armed_op, y, num_iterations=ITERATIONS,
            checkpoint=CheckpointManager(every=5),
            health=HealthMonitor(),
        )
    )
    overhead = armed / plain - 1.0

    # Chaos run: transient faults heal bit-exactly, one crash degrades.
    clean = cgls(plain_op, y, num_iterations=ITERATIONS)
    transient = FaultInjector(FaultConfig(drop=0.05, corrupt=0.02, seed=7))
    chaotic = cgls(
        _build(operator, injector=transient), y, num_iterations=ITERATIONS
    )
    transient_bit_exact = bool(np.array_equal(chaotic.x, clean.x))

    crash_inj = FaultInjector(
        FaultConfig(drop=0.05, corrupt=0.02, crashes=((5, 1),), seed=21)
    )
    crash_op = _build(operator, injector=crash_inj)
    t0 = time.perf_counter()
    crashed = cgls(crash_op, y, num_iterations=ITERATIONS)
    crash_seconds = time.perf_counter() - t0
    scale = float(np.max(np.abs(clean.x)))
    crash_err = float(np.max(np.abs(crashed.x - clean.x))) / scale
    # Degradation moves partition boundaries (different float summation
    # order), so mid-convergence iterates drift; the claim is that the
    # degraded solve *converges equivalently*, measured on the residual.
    crash_residual_ratio = crashed.residual_norms[-1] / clean.residual_norms[-1]

    lines = [
        f"resilience overhead, {NUM_RANKS} ranks x {ITERATIONS} CG iterations "
        f"(48x64 geometry, best of {REPEATS})",
        f"  plain distributed solve  : {plain * 1e3:8.2f} ms",
        f"  armed (injector+ckpt+hm) : {armed * 1e3:8.2f} ms",
        f"  zero-fault overhead      : {overhead * 100:8.2f} %  "
        f"(acceptance < {MAX_OVERHEAD * 100:.0f}%)",
        "recovery cost under chaos (drop=0.05, corrupt=0.02):",
        f"  transient faults healed  : {transient.stats.retries} retries, "
        f"bit-exact = {transient_bit_exact}",
        f"  + rank crash (4 -> {crash_op.num_ranks} ranks): "
        f"{crash_seconds * 1e3:.2f} ms, max rel err {crash_err:.2e}, "
        f"residual ratio {crash_residual_ratio:.4f}",
    ]
    report(
        "resilience_overhead",
        "\n".join(lines),
        extra={
            "num_ranks": NUM_RANKS,
            "iterations": ITERATIONS,
            "plain_seconds": plain,
            "armed_seconds": armed,
            "overhead_fraction": overhead,
            "max_overhead": MAX_OVERHEAD,
            "transient_bit_exact": transient_bit_exact,
            "transient_fault_stats": transient.stats.as_dict(),
            "crash_fault_stats": crash_inj.stats.as_dict(),
            "crash_degradations": list(crash_op.degradations),
            "crash_max_rel_err": crash_err,
            "crash_residual_ratio": crash_residual_ratio,
        },
    )

    assert transient_bit_exact
    assert crash_op.degradations and crash_op.num_ranks == NUM_RANKS - 1
    assert abs(crash_residual_ratio - 1.0) < 0.05
    assert overhead < MAX_OVERHEAD, (
        f"resilience hooks cost {overhead * 100:.1f}% on the zero-fault path "
        f"(plain {plain * 1e3:.2f} ms, armed {armed * 1e3:.2f} ms)"
    )
