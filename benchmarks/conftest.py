"""Shared benchmark fixtures and the report helper.

Each benchmark regenerates one table or figure of the paper, printing a
paper-vs-measured comparison and writing it to ``benchmarks/out/`` so
EXPERIMENTS.md can reference the artifacts.  Scaled dataset instances
are built once per session (tracing dominates setup cost).

Every benchmark runs inside an ``repro.obs`` capture; ``report`` writes
a structured ``<name>.json`` next to each ``<name>.txt`` with the obs
counter totals and span summary accumulated up to the report call, so
downstream tooling can diff quantities (FLOPs, bytes, comm volume)
across commits instead of scraping text tables.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core import OperatorConfig, get_dataset, preprocess
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix

OUT_DIR = Path(__file__).parent / "out"

#: Linear scale factors used for the laptop-size instances of each
#: dataset (full sizes exceed this machine; see DESIGN.md Section 6).
SCALES = {
    "ADS1": 0.25,  # 90 x 64
    "ADS2": 0.25,  # 188 x 128
    "ADS3": 0.1875,  # 282 x 192
    "ADS4": 0.125,  # 300 x 256
    "RDS1": 0.125,  # 188 x 256
    "RDS2": 0.034,  # 154 x 384
}


@pytest.fixture(autouse=True)
def bench_capture():
    """Observe every benchmark: spans + counters for the JSON report."""
    with obs.capture() as cap:
        yield cap


def _span_summary(cap: obs.Capture) -> dict:
    """Aggregate captured spans: {name: {count, total_seconds}}."""
    summary: dict[str, dict] = {}
    for record in cap.spans:
        entry = summary.setdefault(record.name, {"count": 0, "total_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += record.duration
    return summary


@pytest.fixture()
def report(bench_capture, request):
    """Writer: report(name, text) -> benchmarks/out/<name>.{txt,json} + stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str, extra: dict | None = None) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "bench": name,
            "test": request.node.nodeid,
            "counters": {
                c.name: {"unit": c.unit, "total": c.total, "events": c.events}
                for c in bench_capture.counters.values()
            },
            "spans": _span_summary(bench_capture),
        }
        if extra:
            payload["extra"] = extra
        (OUT_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=sys.stderr)

    return _write


@pytest.fixture(scope="session")
def scaled_specs():
    """Scaled DatasetSpec per paper dataset."""
    return {name: get_dataset(name).scaled(factor) for name, factor in SCALES.items()}


def build_ordered(spec, ordering_name="pseudo-hilbert", min_tiles=16):
    """Trace a scaled dataset and return (matrix, tomo, sino) in order."""
    g = spec.geometry()
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    n = g.grid.n
    tomo = make_ordering(ordering_name, n, n, min_tiles=min_tiles)
    sino = make_ordering(ordering_name, g.num_angles, g.num_channels, min_tiles=min_tiles)
    if ordering_name == "row-major":
        return raw, tomo, sino
    return raw.permute(sino.perm, tomo.rank).sort_rows_by_index(), tomo, sino


@pytest.fixture(scope="session")
def ads2_scaled(scaled_specs):
    """Scaled ADS2 in both row-major and pseudo-Hilbert order plus a
    buffered layout — the workhorse instance for Tables 4/6, Fig. 10."""
    from repro.sparse import build_buffered

    spec = scaled_specs["ADS2"]
    raw, _, _ = build_ordered(spec, "row-major")
    ordered, tomo, sino = build_ordered(spec)
    buffered = build_buffered(ordered, partition_size=128, buffer_bytes=8192)
    return {
        "spec": spec,
        "raw": raw,
        "ordered": ordered,
        "tomo": tomo,
        "sino": sino,
        "buffered": buffered,
    }
