"""Shared benchmark fixtures and the report helper.

Each benchmark regenerates one table or figure of the paper, printing a
paper-vs-measured comparison and writing it to ``benchmarks/out/`` so
EXPERIMENTS.md can reference the artifacts.  Scaled dataset instances
are built once per session (tracing dominates setup cost).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core import OperatorConfig, get_dataset, preprocess
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix

OUT_DIR = Path(__file__).parent / "out"

#: Linear scale factors used for the laptop-size instances of each
#: dataset (full sizes exceed this machine; see DESIGN.md Section 6).
SCALES = {
    "ADS1": 0.25,  # 90 x 64
    "ADS2": 0.25,  # 188 x 128
    "ADS3": 0.1875,  # 282 x 192
    "ADS4": 0.125,  # 300 x 256
    "RDS1": 0.125,  # 188 x 256
    "RDS2": 0.034,  # 154 x 384
}


@pytest.fixture(scope="session")
def report():
    """Writer: report(name, text) -> benchmarks/out/<name>.txt + stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=sys.stderr)

    return _write


@pytest.fixture(scope="session")
def scaled_specs():
    """Scaled DatasetSpec per paper dataset."""
    return {name: get_dataset(name).scaled(factor) for name, factor in SCALES.items()}


def build_ordered(spec, ordering_name="pseudo-hilbert", min_tiles=16):
    """Trace a scaled dataset and return (matrix, tomo, sino) in order."""
    g = spec.geometry()
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    n = g.grid.n
    tomo = make_ordering(ordering_name, n, n, min_tiles=min_tiles)
    sino = make_ordering(ordering_name, g.num_angles, g.num_channels, min_tiles=min_tiles)
    if ordering_name == "row-major":
        return raw, tomo, sino
    return raw.permute(sino.perm, tomo.rank).sort_rows_by_index(), tomo, sino


@pytest.fixture(scope="session")
def ads2_scaled(scaled_specs):
    """Scaled ADS2 in both row-major and pseudo-Hilbert order plus a
    buffered layout — the workhorse instance for Tables 4/6, Fig. 10."""
    from repro.sparse import build_buffered

    spec = scaled_specs["ADS2"]
    raw, _, _ = build_ordered(spec, "row-major")
    ordered, tomo, sino = build_ordered(spec)
    buffered = build_buffered(ordered, partition_size=128, buffer_bytes=8192)
    return {
        "spec": spec,
        "raw": raw,
        "ordered": ordered,
        "tomo": tomo,
        "sino": sino,
        "buffered": buffered,
    }
