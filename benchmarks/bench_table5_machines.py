"""Table 5 — RDS1 reconstruction on various node counts and machines.

Paper Table 5 reports preprocessing and 30-CG-iteration reconstruction
times for RDS1 on 1/8/32 Theta (KNL), 8/32 Cooley (K80) and 32 Blue
Waters (K20X) nodes, plus the projected time to reconstruct all 2048
slices.  We regenerate it from the machine models: per-kernel times
come from the performance model (including the MCDRAM-fit superlinear
effect), communication from the alpha-beta model, preprocessing from
the Amdahl model calibrated at one point.
"""

from repro.dist import model_preprocessing_time, model_solution_time
from repro.machine import get_machine
from repro.utils import format_seconds, render_table

# (machine, nodes) rows exactly as in the paper, with paper values
# (preproc s, speedup, recon s, speedup, all-slices) for comparison.
PAPER_ROWS = [
    ("theta", 1, "139 s / 63.3 s / 1.44 d"),
    ("theta", 8, "16.5 s / 3.33 s / 1.89 h"),
    ("cooley", 8, "25.5 s / 2.89 s / 1.64 h"),
    ("bluewaters", 32, "14.6 s / 1.82 s / 62.1 m"),
    ("theta", 32, "4.54 s / 1.37 s / 46.8 m"),
    ("cooley", 32, "6.31 s / 1.22 s / 41.6 m"),
]

M, N = 1501, 2048  # RDS1 full size
SLICES = 2048


def test_table5_nodes_machines(report, benchmark):
    base_preproc = model_preprocessing_time(M, N, 1)
    base = model_solution_time(M, N, get_machine("theta"), 1)

    rows = []
    recon_by_key = {}
    for machine_name, nodes, paper in PAPER_ROWS:
        machine = get_machine(machine_name)
        preproc = model_preprocessing_time(M, N, nodes)
        point = model_solution_time(M, N, machine, nodes)
        recon = point.total_seconds
        recon_by_key[(machine_name, nodes)] = recon
        all_slices = preproc + SLICES * recon
        rows.append(
            [
                f"{nodes}-{machine.name.split()[1]}",
                format_seconds(preproc),
                f"{base_preproc / preproc:.1f}x",
                format_seconds(recon),
                f"{base.total_seconds / recon:.1f}x",
                format_seconds(all_slices),
                paper,
            ]
        )

    table = render_table(
        ["Nodes-Machine", "Preproc.", "Speed.", "Recon.", "Speed.", "All Slices",
         "Paper (pre/rec/all)"],
        rows,
        title="Table 5: RDS1 reconstruction across machines (model-predicted)",
    )
    report("table5_machines", table)

    # Shape assertions from the paper's Table 5:
    theta1 = recon_by_key[("theta", 1)]
    theta8 = recon_by_key[("theta", 8)]
    theta32 = recon_by_key[("theta", 32)]
    # Super-linear 1 -> 8 node speedup on Theta (paper: 19x > 8x).
    assert theta1 / theta8 > 8.0
    # 32 nodes of every machine land within one order of magnitude.
    recon32 = [recon_by_key[k] for k in recon_by_key if k[1] == 32]
    assert max(recon32) / min(recon32) < 10.0
    # All-slice time drops from ~days to ~an hour class.
    assert base_preproc + SLICES * theta1 > 20 * (base_preproc + SLICES * theta32)

    benchmark(model_solution_time, M, N, get_machine("theta"), 32)
