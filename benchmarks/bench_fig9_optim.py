"""Fig. 9 — single-device performance of the three optimization levels.

For ADS1..ADS4 (scaled) x {baseline CSR, pseudo-Hilbert, multi-stage
buffering} we measure:

* real Python kernel times (relative speedups are genuine measurements);
* L2 miss rates from the cache simulator (Fig. 9(b)) — caches are
  scaled with the datasets so the capacity ratio matches full size;
* modeled KNL GFLOPS / bandwidth and GPU GFLOPS (Fig. 9(a), (c)-(f))
  using the measured miss rates and full-size dataset footprints.

Paper shapes to reproduce: baseline KNL GFLOPS *fall* with dataset
size (latency bound, rising miss rate); Hilbert ordering lifts all
datasets (most on KNL, least on V100 with its big L2); buffering adds
~1.3x on KNL (ADS2+) and modest gains on GPUs; ADS3/4 drop on KNL as
regular data spills MCDRAM.
"""

import time

import numpy as np

from repro.cachesim import miss_rate_buffered, miss_rate_csr
from repro.core import get_dataset
from repro.machine import KernelProfile, PerformanceModel, get_device
from repro.sparse import build_buffered
from repro.utils import render_table

from conftest import SCALES, build_ordered

DATASET_NAMES = ["ADS1", "ADS2", "ADS3", "ADS4"]
MAX_TRACE = 300_000

# Paper Fig. 9(a) KNL GFLOPS, eyeballed from the bars (baseline,
# hilbert, buffered) for context in the report.
PAPER_KNL = {
    "ADS1": (14, 22, 22),
    "ADS2": (10, 46, 62),
    "ADS3": (7, 26, 33),
    "ADS4": (5, 17, 23),
}


def _time_kernel(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_fig9_optimization_levels(report, benchmark):
    knl = get_device("KNL")
    pm_knl = PerformanceModel(knl)
    gpu_models = {d: PerformanceModel(get_device(d)) for d in ("K80", "P100", "V100")}

    rows = []
    knl_gflops = {}
    miss_rates = {}
    for name in DATASET_NAMES:
        spec = get_dataset(name).scaled(SCALES[name])
        raw, _, _ = build_ordered(spec, "row-major")
        ordered, _, _ = build_ordered(spec)
        buffered = build_buffered(ordered, 128, 8192)
        x = np.random.default_rng(0).random(raw.num_cols).astype(np.float32)

        # Scaled cache: keep the capacity/domain ratio of a 1 MB L2
        # slice at full size (domains shrink by SCALES[name]^2).
        full_cells = get_dataset(name).num_channels ** 2
        cap = max(2048, (1 << 20) * spec.num_channels**2 // full_cells)
        cap = 1 << int(np.log2(cap))
        mr_base = miss_rate_csr(
            raw, cap, max_accesses=MAX_TRACE, include_regular=True
        ).miss_rate
        mr_hilb = miss_rate_csr(
            ordered, cap, max_accesses=MAX_TRACE, include_regular=True
        ).miss_rate
        mr_buf = miss_rate_buffered(buffered, cap).miss_rate
        miss_rates[name] = (mr_base, mr_hilb, mr_buf)

        t_base = _time_kernel(raw.spmv, x)
        t_hilb = _time_kernel(ordered.spmv, x)
        t_buf = _time_kernel(buffered.spmv_vectorized, x)

        # Model at FULL dataset size with the measured miss rates.
        full = get_dataset(name)
        nnz = int(full.estimated_nnz)
        reg_csr = full.regular_bytes(8.0)[0]
        reg_buf = full.regular_bytes(6.0)[0]
        p_base = KernelProfile.csr_baseline(nnz, mr_base, reg_csr)
        p_hilb = KernelProfile.csr_baseline(nnz, mr_hilb, reg_csr)
        p_buf = KernelProfile.buffered(nnz, nnz // 40, mr_buf, reg_buf)
        g_base = pm_knl.gflops(p_base, smt=2)
        g_hilb = pm_knl.gflops(p_hilb, smt=4)
        g_buf = pm_knl.gflops(p_buf, smt=4)
        knl_gflops[name] = (g_base, g_hilb, g_buf)
        bw_buf = pm_knl.bandwidth_utilization(p_buf, smt=4)

        gpu_cells = []
        for dev in ("K80", "P100", "V100"):
            if name in ("ADS3", "ADS4"):
                gpu_cells.append("n/a (exceeds GPU memory)")
                continue
            gm = gpu_models[dev]
            gpu_cells.append(
                f"{gm.gflops(p_base):.0f}/{gm.gflops(p_hilb):.0f}/{gm.gflops(p_buf):.0f}"
            )

        rows.append(
            [
                name,
                f"{mr_base:.0%}/{mr_hilb:.0%}/{mr_buf:.0%}",
                f"{t_base / t_hilb:.2f}x/{t_base / t_buf:.2f}x",
                f"{g_base:.0f}/{g_hilb:.0f}/{g_buf:.0f}",
                f"{PAPER_KNL[name][0]}/{PAPER_KNL[name][1]}/{PAPER_KNL[name][2]}",
                f"{bw_buf:.0f}",
                *gpu_cells,
            ]
        )

    table = render_table(
        ["Dataset", "L2 miss b/h/buf", "Python speedup h/buf",
         "KNL GFLOPS (model)", "KNL GFLOPS (paper)", "KNL BW GB/s",
         "K80 GFLOPS", "P100 GFLOPS", "V100 GFLOPS"],
        rows,
        title="Fig. 9: optimization levels (baseline / pseudo-Hilbert / buffered)",
    )
    report("fig9_optim", table)

    # Shape assertions.  ADS1 is exempt from the strict improvements:
    # the paper itself notes it "does not benefit from Hilbert ordering
    # as much as other datasets due to its small size" (Section 4.2.2),
    # and at ADS1's domain:cache ratio the baseline barely misses.
    for name in DATASET_NAMES:
        b, h, u = miss_rates[name]
        gb, gh, gu = knl_gflops[name]
        if name == "ADS1":
            assert h <= b + 0.02
            assert gh >= 0.9 * gb
        else:
            assert h < b, f"{name}: Hilbert must cut the miss rate"
            assert gh > gb, f"{name}: Hilbert must lift KNL GFLOPS"
        assert gu >= 0.9 * gh, f"{name}: buffering must not regress"
    # Baseline GFLOPS fall with dataset size (paper 4.2.1).
    assert knl_gflops["ADS4"][0] < knl_gflops["ADS1"][0]
    # MCDRAM spill: ADS4's optimized GFLOPS below ADS2's.
    assert knl_gflops["ADS4"][2] < knl_gflops["ADS2"][2]

    # Benchmark target: the buffered kernel on scaled ADS2.
    spec = get_dataset("ADS2").scaled(SCALES["ADS2"])
    ordered, _, _ = build_ordered(spec)
    buffered = build_buffered(ordered, 128, 8192)
    x = np.random.default_rng(1).random(ordered.num_cols).astype(np.float32)
    benchmark(buffered.spmv_vectorized, x)
