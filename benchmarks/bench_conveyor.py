"""Overlapped I/O conveyor acceptance — disk time hides under the solve.

The streaming executor's chunk loop is ``source -> condition -> solve ->
sink``.  Run synchronously (``prefetch=0``), the read and write latency
of every chunk adds to the solve wall time; with the conveyor
(``prefetch=2``), a reader thread pulls the next chunks ahead of the
solve and a writer thread drains finished slabs behind it, so the same
latency overlaps the compute and all that remains exposed is the first
read and the last write.

Real disk latency is too machine-dependent to assert on, so the
benchmark *injects* it: the source and sink sleep a fixed fraction
(40%) of the measured per-chunk solve time on every chunk.  That makes
the acceptance ratios scale-invariant:

* **serial** (prefetch=0) pays solve + 2 x 0.4 x solve per chunk —
  must come out at >= MIN_SERIAL_RATIO x the pure solve, proving the
  injected latency is actually large enough to matter;
* **conveyor** (prefetch=2) must stay <= MAX_CONVEYOR_RATIO x the pure
  solve — the same latency, hidden;
* the streamed volume is **bit-identical** to the in-memory volume —
  threading never changes arithmetic.

``REPRO_BENCH_SMOKE=1`` shrinks the instance and relaxes the timing
ratios (CI machines are noisy); bit-exactness is always enforced.
"""

import os
import time

import numpy as np

from repro import obs
from repro.dataio import ArraySource, VolumeSink
from repro.pipeline import demo_stack, reconstruct_stack

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SIZE = 64 if SMOKE else 96
SLICES = 8 if SMOKE else 16
CHUNK_SLICES = 2
ITERATIONS = 6 if SMOKE else 10
PREFETCH = 2
#: Injected I/O latency as a fraction of the measured per-chunk solve.
DELAY_FRACTION = 0.4
MIN_DELAY_SECONDS = 0.03
MIN_SERIAL_RATIO = 1.2 if SMOKE else 1.5
MAX_CONVEYOR_RATIO = 1.5 if SMOKE else 1.15


class _SlowSource(ArraySource):
    """ArraySource with an injected per-chunk read latency."""

    def __init__(self, stack, delay: float):
        super().__init__(stack)
        self.delay = delay

    def read(self, start, stop):
        time.sleep(self.delay)
        return super().read(start, stop)


class _SlowSink(VolumeSink):
    """VolumeSink with an injected per-slab write latency."""

    def __init__(self, num_slices, n, delay: float):
        super().__init__(num_slices, n)
        self.delay = delay

    def write(self, start, stop, slab):
        time.sleep(self.delay)
        super().write(start, stop, slab)


def test_conveyor_overlaps_io(report):
    demo = demo_stack(size=SIZE, num_slices=SLICES, poisson=False)
    common = dict(
        stages=[],
        operator=demo.operator,
        solver="cg",
        iterations=ITERATIONS,
        chunk_slices=CHUNK_SLICES,
    )
    num_chunks = SLICES // CHUNK_SLICES

    # Warm both code paths, then measure the pure in-memory solve.
    reconstruct_stack(demo.sinograms[:CHUNK_SLICES], demo.geometry, **common)
    t0 = time.perf_counter()
    reference = reconstruct_stack(demo.sinograms, demo.geometry, **common)
    pure_wall = time.perf_counter() - t0

    delay = max(MIN_DELAY_SECONDS, DELAY_FRACTION * pure_wall / num_chunks)
    n = demo.geometry.num_channels

    def streamed(prefetch: int):
        source = _SlowSource(demo.sinograms, delay)
        sink = _SlowSink(SLICES, n, delay)
        t0 = time.perf_counter()
        reconstruct_stack(source, demo.geometry, sink=sink, prefetch=prefetch, **common)
        return time.perf_counter() - t0, sink.volume

    with obs.capture() as cap_serial:
        serial_wall, serial_volume = streamed(prefetch=0)
    with obs.capture() as cap_conveyor:
        conveyor_wall, conveyor_volume = streamed(prefetch=PREFETCH)

    serial_ratio = serial_wall / pure_wall
    conveyor_ratio = conveyor_wall / pure_wall
    serial_exact = np.array_equal(serial_volume, reference.volume)
    conveyor_exact = np.array_equal(conveyor_volume, reference.volume)
    read_s = cap_conveyor.total(obs.DATAIO_READ_SECONDS)
    write_s = cap_conveyor.total(obs.DATAIO_WRITE_SECONDS)

    lines = [
        f"overlapped I/O conveyor, {SIZE}x{SIZE}, {SLICES} slices in "
        f"{num_chunks} chunks, CG x{ITERATIONS}"
        + (" [smoke]" if SMOKE else ""),
        f"  injected latency        : {delay * 1e3:8.1f} ms per chunk "
        f"read and per slab write",
        f"  pure solve (in-memory)  : {pure_wall:8.3f} s",
        f"  serial   (prefetch=0)   : {serial_wall:8.3f} s "
        f"({serial_ratio:5.2f}x pure; acceptance >= {MIN_SERIAL_RATIO:.2f}x)",
        f"  conveyor (prefetch={PREFETCH})   : {conveyor_wall:8.3f} s "
        f"({conveyor_ratio:5.2f}x pure; acceptance <= {MAX_CONVEYOR_RATIO:.2f}x)",
        f"  hidden I/O (conveyor)   : {read_s:8.3f} s read + "
        f"{write_s:.3f} s write overlapped",
        f"  streamed == in-memory   : serial {serial_exact}, "
        f"conveyor {conveyor_exact} (bit-exact)",
    ]
    report(
        "conveyor",
        "\n".join(lines),
        extra={
            "smoke": SMOKE,
            "pure_seconds": pure_wall,
            "serial_seconds": serial_wall,
            "conveyor_seconds": conveyor_wall,
            "delay_seconds": delay,
            "serial_ratio": serial_ratio,
            "conveyor_ratio": conveyor_ratio,
        },
    )

    assert serial_exact and conveyor_exact
    assert serial_ratio >= MIN_SERIAL_RATIO, (
        f"serial run only {serial_ratio:.2f}x pure solve; injected latency "
        "too small to demonstrate overlap"
    )
    assert conveyor_ratio <= MAX_CONVEYOR_RATIO, (
        f"conveyor run at {conveyor_ratio:.2f}x pure solve; I/O is not "
        "hiding under the compute"
    )
