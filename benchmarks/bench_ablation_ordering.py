"""Ablation — why pseudo-Hilbert and not Morton or row-major?

DESIGN.md calls out the two properties the ordering must deliver
(paper Section 3.2): cache locality *and* partition connectivity.
This ablation quantifies both for all four ordering schemes on the
same dataset: L2 miss rates of the SpMV gather stream, partition
connectivity (fraction of ordered partitions that form one connected
2D region), and distributed communication volume.

Expected outcome (the paper's argument): Morton nearly matches
Hilbert on cache miss rate but produces disconnected partitions,
which inflates the communication footprint; row-major fails on both
axes.
"""

import numpy as np

from repro.cachesim import miss_rate_csr
from repro.dist import DistributedOperator, decompose_both
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix
from repro.utils import render_table

from conftest import build_ordered

ORDERINGS = ["row-major", "morton", "hilbert", "pseudo-hilbert"]
CACHE_BYTES = 16 * 1024
# Deliberately not a power of four: aligned power-of-four runs of a
# Morton order happen to be perfect squares, masking its weakness.
# Real partition sizes (thread blocks of 128/192 rows, uneven rank
# splits) are not aligned, and there Morton partitions disconnect.
PARTITION_CELLS = 192
MAX_TRACE = 300_000


def _connectivity(ordering, partition_cells):
    """Fraction of equal-size partitions forming a single connected
    region in 2D (4-neighbour)."""
    x, y = ordering.coordinates()
    n = ordering.num_cells
    connected = 0
    total = 0
    for start in range(0, n - partition_cells + 1, partition_cells):
        cells = set(
            zip(
                x[start : start + partition_cells].tolist(),
                y[start : start + partition_cells].tolist(),
            )
        )
        # BFS from one cell.
        seed = next(iter(cells))
        seen = {seed}
        frontier = [seed]
        while frontier:
            cx, cy = frontier.pop()
            for nx, ny in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                if (nx, ny) in cells and (nx, ny) not in seen:
                    seen.add((nx, ny))
                    frontier.append((nx, ny))
        total += 1
        connected += seen == cells
    return connected / total if total else 1.0


def test_ablation_ordering_schemes(report, scaled_specs, benchmark):
    spec = scaled_specs["ADS2"]
    g = spec.geometry()
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    n = g.grid.n

    rows = []
    results = {}
    for name in ORDERINGS:
        tomo = make_ordering(name, n, n, min_tiles=64)
        sino = make_ordering(name, g.num_angles, g.num_channels, min_tiles=64)
        matrix = (
            raw if name == "row-major"
            else raw.permute(sino.perm, tomo.rank).sort_rows_by_index()
        )
        miss = miss_rate_csr(matrix, CACHE_BYTES, max_accesses=MAX_TRACE).miss_rate
        conn = _connectivity(tomo, PARTITION_CELLS)
        td, sd = decompose_both(tomo, sino, 16)
        comm_kb = DistributedOperator(matrix, td, sd).communication_matrix().sum() / 1024
        results[name] = (miss, conn, comm_kb)
        rows.append([name, f"{miss:.1%}", f"{conn:.0%}", f"{comm_kb:.0f} KB"])

    table = render_table(
        ["Ordering", "L2 miss rate", "Connected partitions", "Comm volume (P=16)"],
        rows,
        title="Ablation: ordering schemes on scaled ADS2 "
        f"({PARTITION_CELLS}-cell partitions, {CACHE_BYTES // 1024} KB cache)",
    )
    report("ablation_ordering", table)

    # The paper's claims, as assertions:
    # 1. Hilbert-family orderings cut the miss rate vs row-major.
    assert results["pseudo-hilbert"][0] < 0.7 * results["row-major"][0]
    # 2. Morton caches almost as well as Hilbert...
    assert results["morton"][0] < 0.8 * results["row-major"][0]
    # 3. ...but yields disconnected partitions where the curve schemes
    #    stay (near-)fully connected (paper Section 3.2.3).
    assert results["morton"][1] < results["pseudo-hilbert"][1]
    assert results["pseudo-hilbert"][1] > 0.9
    # 4. Connected partitions reduce communication vs row-major.
    assert results["pseudo-hilbert"][2] < results["row-major"][2]

    tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=64)
    benchmark(_connectivity, tomo, PARTITION_CELLS)
