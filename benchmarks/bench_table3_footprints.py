"""Table 3 — dataset details and memory footprints.

Regenerates the irregular/regular footprint columns of paper Table 3
for all six datasets: irregular data is the domain vectors (exact),
regular data extrapolates the measured nnz chord law to full size.
A traced scaled instance validates the law on the way.
"""

import numpy as np

from repro.core import DATASETS, TABLE3_PAPER, get_dataset
from repro.trace import build_projection_matrix, projection_matrix_stats
from repro.utils import format_bytes, render_table


def test_table3_footprints(report, scaled_specs, benchmark):
    # Timed kernel: tracing the scaled ADS1 instance (the memoization
    # step whose product the footprints describe).
    spec = scaled_specs["ADS1"]
    traced = benchmark(build_projection_matrix, spec.geometry())
    measured_chord = projection_matrix_stats(traced)["chord_constant"]

    rows = []
    for name in sorted(DATASETS):
        full = get_dataset(name)
        irr = full.irregular_bytes()
        reg = full.regular_bytes()
        paper = TABLE3_PAPER[name]
        rows.append(
            [
                name,
                f"{full.num_projections}x{full.num_channels}",
                f"{format_bytes(irr[0])}/{format_bytes(irr[1])}",
                f"{format_bytes(paper['irregular'][0])}/{format_bytes(paper['irregular'][1])}",
                f"{format_bytes(reg[0])}/{format_bytes(reg[1])}",
                f"{format_bytes(paper['regular'][0])}/{format_bytes(paper['regular'][1])}",
            ]
        )
        # Shape check: computed values within tolerance of the paper's.
        assert irr[0] == np.float64(irr[0])
        assert np.isclose(irr[0], paper["irregular"][0], rtol=0.10)
        assert np.isclose(reg[0], paper["regular"][0], rtol=0.30)

    table = render_table(
        ["Dataset", "Sinogram", "Irregular (computed)", "Irregular (paper)",
         "Regular (computed)", "Regular (paper)"],
        rows,
        title=(
            "Table 3: dataset memory footprints (forward/backprojection)\n"
            f"chord law nnz = c*M*N^2, c={measured_chord:.3f} measured at "
            f"{spec.name} vs {1.18:.2f} assumed"
        ),
    )
    report("table3_footprints", table)
    assert abs(measured_chord - 1.18) < 0.08
