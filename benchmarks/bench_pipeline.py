"""Streaming pipeline acceptance — batched multi-RHS vs looped slices.

The MemXCT amortization argument applied to 3D stacks: the operator's
regular streams (values, indices, padding) are the dominant memory
traffic of an SpMV, and a slab of ``S`` right-hand sides lets one pass
over those streams serve every slice at once.  This benchmark
reconstructs an 8-slice 128x128 stack through the full pipeline
(dark/flat normalization, negative log, ring suppression, center
correction, CG) twice:

* **looped**  — ``reconstruct_stack(..., batch=False)``: one
  single-slice CG per slice, re-streaming the matrix for each;
* **batched** — ``reconstruct_stack(..., batch=True)``: one multi-RHS
  CG over the ``(rays, 8)`` slab, streaming the matrix once per
  iteration.

The comparison uses the partition-padded ELL kernel — the GPU-style
coalesced layout of the paper — where the regular stream is the
dominant cost and amortizing it is worth >2x.  (The CSR and buffered
batch paths share the same bit-exact contract but their single-slice
loops are already gather-bound, so the regular-stream amortization is
a wash there at laptop sizes; see docs/pipeline.md.)

Acceptance:

* batched solve is at least 2x faster per slice than the looped solve;
* the two volumes are bit-identical (batching never changes arithmetic);
* rotation-center search recovers the injected shift within 0.5 px.
"""

import time

import numpy as np

from repro import obs
from repro.core import OperatorConfig
from repro.pipeline import demo_stack, reconstruct_stack

MIN_SPEEDUP = 2.0
CENTER_TOL = 0.5
SIZE = 128
SLICES = 8
ITERATIONS = 10
INJECTED_SHIFT = 1.75


def test_batched_stack_speedup(report):
    demo = demo_stack(
        size=SIZE,
        num_slices=SLICES,
        center_shift=INJECTED_SHIFT,
        poisson=False,
        config=OperatorConfig(kernel="ell"),
    )
    common = dict(
        darks=demo.darks,
        flats=demo.flats,
        operator=demo.operator,
        solver="cg",
        iterations=ITERATIONS,
    )

    # Warm both code paths (allocator, imports) outside the timed region.
    reconstruct_stack(demo.raw[:1], demo.geometry, batch=True, **common)

    with obs.capture() as cap_batch:
        t0 = time.perf_counter()
        batched = reconstruct_stack(demo.raw, demo.geometry, batch=True, **common)
        batched_wall = time.perf_counter() - t0
    with obs.capture() as cap_loop:
        t0 = time.perf_counter()
        looped = reconstruct_stack(demo.raw, demo.geometry, batch=False, **common)
        looped_wall = time.perf_counter() - t0

    speedup = looped.solve_seconds / batched.solve_seconds
    bit_exact = np.array_equal(batched.volume, looped.volume)
    found = batched.extra["center_shift"]
    center_error = abs(found - demo.center_shift)
    reg_batch = cap_batch.total(obs.SPMV_REGULAR_BYTES)
    reg_loop = cap_loop.total(obs.SPMV_REGULAR_BYTES)

    lines = [
        f"streaming pipeline, {SIZE}x{SIZE} ELL kernel, {SLICES} slices, "
        f"CG x{ITERATIONS}",
        f"  looped solve            : {looped.solve_seconds:8.3f} s "
        f"({looped.solve_seconds / SLICES * 1e3:7.1f} ms/slice)",
        f"  batched solve           : {batched.solve_seconds:8.3f} s "
        f"({batched.solve_seconds / SLICES * 1e3:7.1f} ms/slice)",
        f"  speedup                 : {speedup:8.2f} x  (acceptance >= "
        f"{MIN_SPEEDUP:.0f}x)",
        f"  regular stream traffic  : {reg_loop / 1e9:8.2f} GB looped vs "
        f"{reg_batch / 1e9:.2f} GB batched",
        f"  volumes bit-identical   : {bit_exact}",
        f"  center shift            : injected {demo.center_shift:+.3f} px, "
        f"found {found:+.3f} px (err {center_error:.3f}, "
        f"acceptance <= {CENTER_TOL} px)",
    ]
    report(
        "pipeline_batched_vs_looped",
        "\n".join(lines),
        extra={
            "size": SIZE,
            "slices": SLICES,
            "iterations": ITERATIONS,
            "kernel": "ell",
            "looped_solve_seconds": looped.solve_seconds,
            "batched_solve_seconds": batched.solve_seconds,
            "looped_wall_seconds": looped_wall,
            "batched_wall_seconds": batched_wall,
            "speedup": speedup,
            "regular_bytes_looped": reg_loop,
            "regular_bytes_batched": reg_batch,
            "bit_exact": bit_exact,
            "injected_shift": demo.center_shift,
            "found_shift": found,
            "center_error": center_error,
            "min_speedup": MIN_SPEEDUP,
            "center_tolerance": CENTER_TOL,
        },
    )

    assert bit_exact, "batched and looped volumes diverged"
    assert speedup >= MIN_SPEEDUP, (
        f"batched solve only {speedup:.2f}x faster than looped "
        f"(looped {looped.solve_seconds:.2f}s, batched "
        f"{batched.solve_seconds:.2f}s)"
    )
    assert center_error <= CENTER_TOL, (
        f"center search missed injected shift by {center_error:.3f} px"
    )
