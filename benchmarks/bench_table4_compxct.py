"""Table 4 — MemXCT vs the compute-centric approach (Trace).

The paper runs 45 SIRT iterations with both codes on one KNL and
reports 49.2x (ADS2, MCDRAM-resident) and 6.86x (RDS1, DRAM-bound)
per-iteration speedups.  Here both operators execute the identical
SIRT recurrence in Python — the only difference is memoization vs
on-the-fly ray tracing — so the measured speedup isolates exactly the
redundant-computation cost.  Absolute Python times differ from C, but
the *direction and scale* of the advantage is the reproduced claim.
"""

import time

import numpy as np

from repro.core import CompXCTOperator, OperatorConfig, preprocess
from repro.solvers import sirt
from repro.utils import render_table

SIRT_ITERATIONS = 45
PAPER_SPEEDUPS = {"ADS2": 49.2, "RDS1": 6.86}


def _measure(spec):
    g = spec.geometry()
    t0 = time.perf_counter()
    op, rep = preprocess(g, config=OperatorConfig(partition_size=128, buffer_bytes=8192))
    preproc = time.perf_counter() - t0

    truth = spec.phantom()
    y = op.project_image(truth).reshape(-1)
    y_ordered = op.sinogram_to_ordered(y.reshape(g.sinogram_shape))

    t0 = time.perf_counter()
    sirt(op, y_ordered, num_iterations=SIRT_ITERATIONS)
    mem_recon = time.perf_counter() - t0

    comp = CompXCTOperator(g)
    t0 = time.perf_counter()
    sirt(comp, y, num_iterations=SIRT_ITERATIONS)
    comp_recon = time.perf_counter() - t0
    return preproc, mem_recon, comp_recon


def test_table4_memxct_vs_compxct(report, scaled_specs, benchmark):
    rows = []
    speedups = {}
    for name in ("ADS2", "RDS1"):
        spec = scaled_specs[name]
        preproc, mem_recon, comp_recon = _measure(spec)
        speedup = comp_recon / mem_recon
        speedups[name] = speedup
        rows.append(
            [name, "Trace (CompXCT)", "n/a", f"{comp_recon:.2f} s",
             f"{comp_recon / SIRT_ITERATIONS * 1e3:.1f} ms", "1x"]
        )
        rows.append(
            [name, "MemXCT", f"{preproc:.2f} s", f"{mem_recon:.2f} s",
             f"{mem_recon / SIRT_ITERATIONS * 1e3:.1f} ms",
             f"{speedup:.2f}x (paper {PAPER_SPEEDUPS[name]}x)"]
        )

    table = render_table(
        ["Dataset", "Code", "Preproc.", "Reconst.", "Per-Iter.", "Speedup"],
        rows,
        title=(
            f"Table 4: {SIRT_ITERATIONS} SIRT iterations, memoized vs on-the-fly "
            "(scaled instances, Python kernels)"
        ),
    )
    report("table4_compxct", table)

    # Shape assertions: MemXCT wins on both datasets, by more where the
    # data is smaller relative to tracing cost.
    assert speedups["ADS2"] > 3.0
    assert speedups["RDS1"] > 1.5

    # Timed kernel for pytest-benchmark: one memoized SIRT iteration.
    spec = scaled_specs["ADS2"]
    op, _ = preprocess(spec.geometry())
    y = op.sinogram_to_ordered(op.project_image(spec.phantom()))
    benchmark(lambda: sirt(op, y, num_iterations=1))
