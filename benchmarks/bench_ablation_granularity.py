"""Ablation — tile granularity vs load balance vs preprocessing cost.

Paper Section 3.4: "While processes are not perfectly load balanced,
it can be improved by finer tile granularity at the cost of more
preprocessing."  We sweep the tile size of the two-level ordering,
decompose over a fixed rank count, and measure all three sides of the
trade: compute load imbalance (max/mean nnz per rank), communication
volume, and ordering-construction time.
"""

import time

import numpy as np

from repro.dist import DistributedOperator, decompose_both
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix
from repro.utils import render_table

RANKS = 16
TILE_SIZES = [32, 16, 8, 4]


def test_ablation_tile_granularity(report, scaled_specs, benchmark):
    spec = scaled_specs["ADS2"]
    g = spec.geometry()
    raw = CSRMatrix.from_scipy(build_projection_matrix(g))
    n = g.grid.n

    rows = []
    imbalances = []
    preproc_times = []
    for tile in TILE_SIZES:
        t0 = time.perf_counter()
        tomo = make_ordering("pseudo-hilbert", n, n, tile_size=tile)
        sino = make_ordering(
            "pseudo-hilbert", g.num_angles, g.num_channels, tile_size=tile
        )
        matrix = raw.permute(sino.perm, tomo.rank).sort_rows_by_index()
        td, sd = decompose_both(tomo, sino, RANKS)
        op = DistributedOperator(matrix, td, sd)
        elapsed = time.perf_counter() - t0

        nnz = op.per_rank_nnz().astype(np.float64)
        imbalance = nnz.max() / nnz.mean()
        imbalances.append(imbalance)
        preproc_times.append(elapsed)
        rows.append(
            [
                f"{tile}x{tile}",
                tomo.two_level.num_tiles,
                f"{td.load_imbalance():.3f}",
                f"{imbalance:.3f}",
                f"{op.communication_matrix().sum() / 1024:.0f} KB",
                f"{elapsed:.2f} s",
            ]
        )

    table = render_table(
        ["Tile", "Tiles (tomo)", "Cell imbalance", "nnz imbalance",
         "Comm volume", "Decomposition+ordering time"],
        rows,
        title=f"Ablation: tile granularity at P = {RANKS} (scaled ADS2)",
    )
    report("ablation_granularity", table)

    # The paper's trade-off: finer tiles improve the compute balance...
    assert imbalances[-1] <= imbalances[0] + 1e-9
    # ...and balance is decent at reasonable granularity.
    assert imbalances[-1] < 1.5

    benchmark(make_ordering, "pseudo-hilbert", n, n, 8)
