"""Scenario acceptance — the try-center sweep as one batched solve.

The tomocupy-style rotation-center search reconstructs the same slice
at ``S`` candidate centers.  Run naively that is ``S`` independent CG
solves, each re-streaming the operator's regular streams (values,
indices, padding) every iteration.  The batched-RHS machinery packs
the candidates into one ``(rays, S)`` slab and streams the matrix once
per iteration for all of them — the pipeline benchmark's amortization
argument applied to an alignment workload.

The comparison uses the partition-padded ELL kernel, where the regular
stream dominates and amortizing it matters most.

Acceptance:

* the batched sweep is at least 1.5x faster than the looped sweep;
* every candidate's reconstruction is **bit-identical** between the
  two paths (batching never changes arithmetic);
* the entropy score finds the injected axis shift within 0.5 px.
"""

import time

import numpy as np

from repro import obs
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.phantoms import shepp_logan
from repro.scenarios import center_slab, nominal_center, shift_sinogram, try_center
from repro.solvers import cgls

MIN_SPEEDUP = 1.5
CENTER_TOL = 0.5
SIZE = 128
ANGLES = 160
ITERATIONS = 10
INJECTED_SHIFT = 1.75
CANDIDATES = np.arange(-3.0, 3.25, 0.5)  # 13 candidates around nominal


def test_try_center_batched_vs_looped(report):
    geometry = ParallelBeamGeometry(ANGLES, SIZE)
    operator, _ = preprocess(
        geometry, config=OperatorConfig(kernel="ell"), cache="off"
    )
    phantom = shepp_logan(SIZE)
    sinogram = operator.project_image(phantom)
    off_center = shift_sinogram(sinogram, -INJECTED_SHIFT)
    centers = nominal_center(geometry) + CANDIDATES
    slab = center_slab(operator, off_center, centers)

    # Warm both code paths outside the timed region.
    try_center(geometry, off_center, centers[:2], num_iterations=1, operator=operator)
    cgls(operator, slab[:, 0], num_iterations=1)

    t0 = time.perf_counter()
    swept = try_center(
        geometry, off_center, centers, num_iterations=ITERATIONS, operator=operator
    )
    batched_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    looped = [
        cgls(operator, slab[:, j], num_iterations=ITERATIONS).x
        for j in range(centers.size)
    ]
    looped_wall = time.perf_counter() - t0

    speedup = looped_wall / batched_wall
    bit_exact = all(
        np.array_equal(swept.batch.column(j).x, looped[j])
        for j in range(centers.size)
    )
    center_error = abs(swept.best_center - (nominal_center(geometry) + INJECTED_SHIFT))

    lines = [
        f"try-center sweep, {ANGLES}x{SIZE} ELL kernel, "
        f"{centers.size} candidates, CG x{ITERATIONS}",
        f"  looped sweep           : {looped_wall:8.3f} s "
        f"({looped_wall / centers.size * 1e3:7.1f} ms/candidate)",
        f"  batched sweep          : {batched_wall:8.3f} s "
        f"({batched_wall / centers.size * 1e3:7.1f} ms/candidate)",
        f"  speedup                : {speedup:8.2f} x  (acceptance >= "
        f"{MIN_SPEEDUP:.1f}x)",
        f"  columns bit-identical  : {bit_exact}",
        f"  center                 : injected {INJECTED_SHIFT:+.3f} px, found "
        f"{swept.best_center - nominal_center(geometry):+.3f} px "
        f"(err {center_error:.3f}, acceptance <= {CENTER_TOL} px)",
    ]
    report(
        "scenarios_try_center",
        "\n".join(lines),
        extra={
            "size": SIZE,
            "angles": ANGLES,
            "candidates": int(centers.size),
            "iterations": ITERATIONS,
            "kernel": "ell",
            "looped_wall_seconds": looped_wall,
            "batched_wall_seconds": batched_wall,
            "speedup": speedup,
            "bit_exact": bit_exact,
            "injected_shift": INJECTED_SHIFT,
            "found_shift": swept.best_center - nominal_center(geometry),
            "center_error": center_error,
            "min_speedup": MIN_SPEEDUP,
            "center_tolerance": CENTER_TOL,
        },
    )

    assert bit_exact, "batched and looped candidate reconstructions diverged"
    assert speedup >= MIN_SPEEDUP, (
        f"batched sweep only {speedup:.2f}x faster than looped "
        f"(looped {looped_wall:.2f}s, batched {batched_wall:.2f}s)"
    )
    assert center_error <= CENTER_TOL, (
        f"entropy score missed injected shift by {center_error:.3f} px"
    )
