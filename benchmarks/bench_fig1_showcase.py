"""Fig. 1 — the headline reconstruction: a mouse-brain slice in ~10 s.

The paper reconstructs an 11293^2 tomogram from a 4501x11283 sinogram
with 30 CG iterations in ~10 s on 4096 KNL nodes (10.2 TiB footprint).
We run the same pipeline end-to-end on the scaled brain phantom
(quality + real timing), then model the full-size run on 4096 Theta
nodes and compare with the paper's headline number.
"""

import numpy as np

from repro.core import preprocess, reconstruct
from repro.dist import model_preprocessing_time, model_solution_time
from repro.machine import get_machine
from repro.utils import format_bytes, format_seconds, psnr, render_table


def test_fig1_brain_showcase(report, scaled_specs, benchmark):
    spec = scaled_specs["RDS2"]
    g = spec.geometry()
    op, prep = preprocess(g)
    sino, truth = spec.sinogram(op, incident_photons=1e5, seed=0)
    res = reconstruct(sino, g, solver="cg", iterations=30, operator=op)
    quality = psnr(res.image, truth)

    # Full-size model on 4096 Theta nodes.
    full_m, full_n = 4501, 11283
    point = model_solution_time(full_m, full_n, get_machine("theta"), 4096)
    preproc_full = model_preprocessing_time(full_m, full_n, 4096)
    # Table 3: 5.1 TiB per direction -> 10.2 TiB total footprint.
    footprint = 2 * 1.18 * full_m * full_n**2 * 8

    rows = [
        ["scaled run (this machine)",
         f"{spec.num_projections}x{spec.num_channels}",
         format_seconds(res.solve_seconds), f"PSNR {quality:.1f} dB", "executed"],
        ["full size, 4096 KNL (model)",
         f"{full_m}x{full_n}",
         format_seconds(point.total_seconds),
         f"footprint {format_bytes(footprint)}",
         "paper: ~10 s, 10.2 TiB"],
        ["full preprocessing (model)", "-", format_seconds(preproc_full), "-",
         "amortized over 11293 slices"],
    ]
    table = render_table(
        ["Run", "Sinogram", "30 CG iterations", "Quality / memory", "Reference"],
        rows,
        title="Fig. 1: mouse-brain reconstruction showcase",
    )
    report("fig1_showcase", table)

    # The reconstruction must recover the phantom structure.
    assert quality > 18.0
    # The modeled full-size time lands in the paper's near-real-time
    # regime (seconds, not minutes).
    assert point.total_seconds < 60.0
    # Footprint matches the paper's 10.2 TiB within rounding.
    assert 0.7 < footprint / (10.2 * 2**40) < 1.3

    benchmark(lambda: reconstruct(sino, g, iterations=3, operator=op))
