"""Fig. 8 — iterative convergence: CG vs SIRT L-curves on RDS1.

Paper Fig. 8(a): over 500 iterations, CG's L-curve develops a corner
near iteration 30 — after which the solution norm grows while the
image degrades (noise being fitted) — while SIRT has not converged
even at 500 iterations.  Figs. 8(b)-(d): early-stopped CG beats 45
SIRT iterations on image quality.

We reproduce on the scaled shale phantom with Beer-law noise: run both
solvers, apply the early-termination heuristic (Section 3.5.2) to the
CG residual/solution-norm series, and verify with PSNR that (1) the
heuristic stops near the true quality peak and (2) the stopped CG
image matches or beats SIRT at the paper's operating points.  The
scaled problem converges faster than full RDS1, so the stop lands near
iteration ~25 rather than exactly 30.
"""

import numpy as np

from repro.core import preprocess
from repro.solvers import cgls, lcurve_corner, overfit_onset, sirt
from repro.utils import psnr, render_table

TOTAL_ITERATIONS = 120
DOSE = 1e5


def test_fig8_convergence(report, scaled_specs, benchmark):
    spec = scaled_specs["RDS1"].scaled(0.5)  # 94 x 128
    g = spec.geometry()
    op, _ = preprocess(g)
    sino, truth = spec.sinogram(op, incident_photons=DOSE, seed=0)
    y = op.sinogram_to_ordered(sino)

    # Track PSNR and periodic snapshots during the single long CG run.
    psnr_track = {}
    snapshots = {}

    def cb(it, x):
        if it % 5 == 0 or it == 1:
            psnr_track[it] = psnr(op.ordered_to_image(x), truth)
            snapshots[it] = x.copy()

    res_cg = cgls(op, y, num_iterations=TOTAL_ITERATIONS, callback=cb)
    res_sirt = sirt(op, y, num_iterations=TOTAL_ITERATIONS)

    r_cg, s_cg = res_cg.lcurve()
    r_sirt, s_sirt = res_sirt.lcurve()
    corner = lcurve_corner(r_cg, s_cg)
    stop = overfit_onset(r_cg, s_cg, residual_tol=0.01, growth_tol=1e-4)
    stop_snap = min(snapshots, key=lambda it: abs(it - stop))
    cg_stopped = snapshots[stop_snap]
    res_sirt45 = sirt(op, y, num_iterations=45)
    peak_iter = max(psnr_track, key=psnr_track.get)

    rows = []
    for it in (1, 10, 30, 50, 100, TOTAL_ITERATIONS):
        rows.append(
            [it, f"{r_cg[it]:.4g}", f"{s_cg[it]:.4g}",
             f"{r_sirt[it]:.4g}", f"{s_sirt[it]:.4g}"]
        )
    table = render_table(
        ["Iteration", "CG residual", "CG ||x||", "SIRT residual", "SIRT ||x||"],
        rows,
        title=(
            "Fig. 8(a): L-curve series (scaled RDS1 shale, Beer-law noise)\n"
            f"early-termination heuristic stops CG at iteration {stop} "
            f"(paper: ~30 at full size; max-curvature corner diagnostic: {corner})\n"
            f"CG PSNR peaks at iteration {peak_iter}; "
            f"stopped CG (iter {stop_snap}) PSNR "
            f"{psnr(op.ordered_to_image(cg_stopped), truth):.1f} dB"
            f" vs 45 SIRT iters {psnr(op.ordered_to_image(res_sirt45.x), truth):.1f} dB"
            f" vs {TOTAL_ITERATIONS} SIRT iters "
            f"{psnr(op.ordered_to_image(res_sirt.x), truth):.1f} dB"
        ),
    )
    report("fig8_convergence", table)

    # Shape assertions:
    # - CG dominates SIRT at equal iteration counts (Fig. 8(a)).
    for it in (10, 30, 50, TOTAL_ITERATIONS):
        assert r_cg[it] < r_sirt[it]
    # - SIRT is far from CG's converged residual even at the full
    #   budget (paper: not converged at 500).
    assert r_sirt[TOTAL_ITERATIONS] > 1.5 * r_cg[TOTAL_ITERATIONS]
    # - overfitting is real: past the quality peak, more CG iterations
    #   reduce the residual but hurt PSNR.
    late = max(psnr_track)
    if peak_iter != late:
        assert psnr_track[peak_iter] > psnr_track[late]
        assert r_cg[late] < r_cg[peak_iter]
    # - the heuristic stop lands near the quality peak.
    assert abs(stop_snap - peak_iter) <= 15
    # - stopped CG matches or beats 45 SIRT iterations (Fig. 8(c)-(d)).
    assert psnr(op.ordered_to_image(cg_stopped), truth) >= psnr(
        op.ordered_to_image(res_sirt45.x), truth
    ) - 0.5
    # - the solution norm grows overall up to the stop (the L shape's
    #   vertical arm; CGLS norms may dip transiently).
    assert s_cg[stop] > s_cg[1]

    benchmark(lambda: cgls(op, y, num_iterations=5))
