"""Worker-count parsing and the three execution backends.

The parallel layer reproduces the *intra-node* decomposition of the
paper (Section 4.1): each OpenMP thread owns a contiguous range of
Hilbert-ordered row partitions.  In this reproduction the "threads"
come from one of three interchangeable backends:

``serial``
    No pool at all — the caller runs the tasks inline.  This is the
    reference execution every other backend must match bit-for-bit.
``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    kernels release the GIL inside their C loops, so partition-range
    SpMV scales across threads without pickling anything.
``process``
    A fork-context :class:`~concurrent.futures.ProcessPoolExecutor`
    whose workers attach the operator's arrays from POSIX shared
    memory (see :mod:`repro.parallel.shm`).  Used when thread scaling
    is GIL-bound (many tiny partitions) or explicitly requested.

Worker counts resolve from, in priority order: an explicit
``workers=`` argument / ``--workers`` flag, the ``REPRO_WORKERS``
environment variable, and finally serial.  A spec is either a count
(``4`` — thread mode), a mode name (``"process"`` — one worker per
CPU), ``"auto"``, or ``"mode:count"`` (``"process:4"``).

This module imports only the standard library so every layer — sparse,
trace, pipeline — can use it without cycles.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = [
    "ENV_WORKERS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "parse_workers",
    "make_backend",
    "shutdown_shared_pools",
]

#: Environment variable consulted when no explicit worker spec is given.
ENV_WORKERS = "REPRO_WORKERS"

_MODES = ("serial", "thread", "process")


def _cpu_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def parse_workers(spec: int | str | None, *, env: bool = True) -> tuple[int, str]:
    """Resolve a worker spec into ``(workers, mode)``.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable (and
    to serial when that is unset).  Counts below 2 collapse to
    ``(1, "serial")`` — a one-worker pool would only add overhead.
    """
    if spec is None:
        raw = os.environ.get(ENV_WORKERS) if env else None
        if raw is None or not raw.strip():
            return 1, "serial"
        return parse_workers(raw.strip(), env=False)
    if isinstance(spec, bool):
        raise TypeError("workers must be an int or str, not bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"workers must be >= 1, got {spec}")
        return (spec, "thread") if spec > 1 else (1, "serial")
    if not isinstance(spec, str):
        raise TypeError(f"workers must be an int, str or None, got {type(spec)!r}")

    text = spec.strip().lower()
    if not text:
        return 1, "serial"
    mode: str | None = None
    count: int | None = None
    if ":" in text:
        head, _, tail = text.partition(":")
        mode, count_text = head.strip(), tail.strip()
        if mode not in _MODES:
            raise ValueError(f"unknown worker mode {head!r} (expected one of {_MODES})")
        if not count_text.isdigit():
            raise ValueError(f"bad worker count {tail!r} in spec {spec!r}")
        count = int(count_text)
    elif text.isdigit():
        count = int(text)
    elif text == "auto":
        count = _cpu_workers()
    elif text in _MODES:
        mode = text
        count = 1 if text == "serial" else _cpu_workers()
    else:
        raise ValueError(
            f"bad workers spec {spec!r}: expected a count, 'auto', one of "
            f"{_MODES}, or 'mode:count'"
        )
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {count} in spec {spec!r}")
    if mode == "serial" or (count == 1 and mode != "process"):
        return 1, "serial"
    return count, mode or "thread"


class ExecutionBackend:
    """Common interface: ordered ``map`` over a task sequence."""

    mode: str = "serial"
    workers: int = 1

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """Inline execution — the bit-identity reference."""

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return [fn(task) for task in tasks]


# Thread pools are shared per worker count: an ambient ``REPRO_WORKERS``
# would otherwise spin up (and leak) a pool per operator instance.
_THREAD_POOLS: dict[int, ThreadPoolExecutor] = {}
_THREAD_POOLS_LOCK = threading.Lock()


class ThreadBackend(ExecutionBackend):
    """Shared-pool thread execution (NumPy releases the GIL)."""

    mode = "thread"

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError(f"thread backend needs >= 2 workers, got {workers}")
        self.workers = workers

    def _pool(self) -> ThreadPoolExecutor:
        with _THREAD_POOLS_LOCK:
            pool = _THREAD_POOLS.get(self.workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"repro-worker-{self.workers}",
                )
                _THREAD_POOLS[self.workers] = pool
            return pool

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return list(self._pool().map(fn, tasks))

    def close(self) -> None:
        # The pool is shared; it outlives any one backend.  Tests that
        # need a hard teardown call shutdown_shared_pools().
        pass


def shutdown_shared_pools() -> None:
    """Tear down every shared thread pool (test/process-exit hygiene)."""
    with _THREAD_POOLS_LOCK:
        pools = list(_THREAD_POOLS.values())
        _THREAD_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


class ProcessBackend(ExecutionBackend):
    """Fork-context process pool with an attach-on-init hook.

    ``initializer``/``initargs`` run once in every worker; the SpMV
    engine uses them to attach the operator's shared-memory segments so
    per-task payloads stay tiny.  The pool is created lazily on first
    ``map`` and torn down by :meth:`close`.
    """

    mode = "process"

    def __init__(
        self,
        workers: int,
        *,
        initializer: Callable | None = None,
        initargs: Iterable = (),
    ):
        if workers < 1:
            raise ValueError(f"process backend needs >= 1 worker, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return list(self._ensure_pool().map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_backend(
    workers: int,
    mode: str,
    *,
    initializer: Callable | None = None,
    initargs: Iterable = (),
) -> ExecutionBackend:
    """Build the backend for a resolved ``(workers, mode)`` pair."""
    if mode == "serial" or workers < 2:
        return SerialBackend()
    if mode == "thread":
        return ThreadBackend(workers)
    if mode == "process":
        return ProcessBackend(workers, initializer=initializer, initargs=initargs)
    raise ValueError(f"unknown backend mode {mode!r}")
