"""POSIX shared-memory export of numpy arrays for the process backend.

The process backend must hand workers the operator's matrix arrays
(hundreds of MB at paper scale) and the per-call input vector without
pickling them into every task.  Both travel through
:class:`multiprocessing.shared_memory.SharedMemory`:

* the **parent** packs a named set of arrays into one segment
  (:class:`SharedArrays`) and ships only the segment name plus a tiny
  manifest ``{name: (shape, dtype, offset)}``;
* **workers** attach the segment and rebuild zero-copy views
  (:func:`attach_arrays`) or safe copies (:func:`read_copy`).

Lifecycle discipline (this exact split is what keeps the resource
tracker quiet): only the parent ever *creates* and *unlinks* segments;
workers only *attach*.  Long-lived attachments (the operator arrays)
are cached in a per-process registry so the backing mmap outlives the
numpy views; transient attachments (per-call inputs) are copied out and
closed immediately so the parent may unlink as soon as the dispatch
drains.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedArrays",
    "Manifest",
    "attach_arrays",
    "read_copy",
    "detach_all",
]

_ALIGN = 64

#: ``{array name: (shape tuple, dtype string, byte offset)}``.
Manifest = dict


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class SharedArrays:
    """A named set of numpy arrays packed into one shared segment.

    >>> shared = SharedArrays({"x": x})
    >>> task = (shared.name, shared.manifest)   # picklable, tiny
    ...
    >>> shared.dispose()                        # close + unlink
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        manifest: Manifest = {}
        offset = 0
        packed: list[tuple[int, np.ndarray]] = []
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            manifest[name] = (array.shape, array.dtype.str, offset)
            packed.append((offset, array))
            offset += array.nbytes
        self.manifest = manifest
        self.nbytes = offset
        # SharedMemory refuses size 0; a one-byte segment still lets
        # zero-size arrays round-trip through their (shape, dtype).
        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for start, array in packed:
            if array.nbytes:
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=self.shm.buf, offset=start
                )
                view[...] = array
                del view
        self._disposed = False

    @property
    def name(self) -> str:
        return self.shm.name

    def dispose(self) -> None:
        """Close and unlink the segment (parent side; idempotent)."""
        if self._disposed:
            return
        self._disposed = True
        self.shm.close()
        self.shm.unlink()


# Worker-side cache of attached segments.  The SharedMemory object must
# stay referenced for as long as any numpy view into it exists, so
# attachments live here until detach_all().
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach_arrays(name: str, manifest: Manifest) -> dict[str, np.ndarray]:
    """Attach a segment and rebuild zero-copy views of its arrays.

    The attachment is cached per process; repeated calls with the same
    segment name reuse it.  Views stay valid until :func:`detach_all`.
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
    views: dict[str, np.ndarray] = {}
    for key, (shape, dtype, offset) in manifest.items():
        views[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
    return views


def read_copy(name: str, manifest: Manifest) -> dict[str, np.ndarray]:
    """Attach a segment transiently and copy its arrays out.

    For per-call payloads (input vectors): the copy lets this process
    close the attachment immediately, so the parent can unlink the
    segment the moment the dispatch completes.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        out: dict[str, np.ndarray] = {}
        for key, (shape, dtype, offset) in manifest.items():
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
            out[key] = np.array(view, copy=True)
            del view
        return out
    finally:
        segment.close()


def detach_all() -> None:
    """Close every cached attachment (worker shutdown hygiene)."""
    while _ATTACHED:
        _, segment = _ATTACHED.popitem()
        segment.close()
