"""Partition-parallel SpMV engine over the three matrix layouts.

The decomposition mirrors the paper's OpenMP strategy: the row
partitions (Hilbert-ordered, so spatially coherent) are split into one
**contiguous range per worker**.  Every layout — CSR row blocks,
stage-grouped buffered, partition-padded ELL — produces a disjoint,
contiguous span of output rows per partition range, so the parallel
result is the concatenation of the per-worker results in partition
order.  Within each range the kernels execute exactly the serial
instruction stream, which makes parallel output **bit-identical** to
serial output for every backend (the determinism contract the tests
enforce).

Thread mode shares the layouts directly.  Process mode exports each
layout's arrays into POSIX shared memory once, at engine construction;
workers attach in their pool initializer and rebuild zero-copy views,
so a task is just ``(direction, part0, part1, input-segment name)``.

This module deliberately knows nothing about operators or geometry —
it receives layouts and a partition size explicitly, keeping
``repro.parallel`` import-cycle-free below ``repro.core``.
"""

from __future__ import annotations

import weakref
from time import perf_counter

import numpy as np

from ..obs import (
    PARALLEL_DISPATCHES,
    PARALLEL_SHM_BYTES,
    PARALLEL_TASKS,
    REGISTRY,
    add_count,
    emit_span,
)
from ..sparse.buffering import BufferedMatrix
from ..sparse.csr import CSRMatrix
from ..sparse.ell import ELLPartitioned
from ..sparse.partition import RowPartitions
from . import shm
from .backend import ProcessBackend, SerialBackend, make_backend

__all__ = ["ParallelSpmvEngine", "partition_ranges"]


def partition_ranges(num_partitions: int, workers: int) -> list[tuple[int, int]]:
    """Balanced contiguous split of ``[0, num_partitions)`` into ranges.

    At most ``workers`` non-empty ranges; the first
    ``num_partitions % workers`` ranges get one extra partition.
    """
    if num_partitions <= 0:
        return []
    workers = max(1, min(workers, num_partitions))
    base, extra = divmod(num_partitions, workers)
    ranges: list[tuple[int, int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


# -- layout helpers (uniform view over the three formats) ---------------


def _layout_partitions(layout, partition_size: int) -> int:
    if isinstance(layout, CSRMatrix):
        return RowPartitions(layout.num_rows, partition_size).num_partitions
    return layout.partitions.num_partitions


def _slice_layout(layout, part0: int, part1: int, partition_size: int):
    if isinstance(layout, CSRMatrix):
        row0 = part0 * partition_size
        row1 = min(part1 * partition_size, layout.num_rows)
        return layout.row_block(row0, row1)
    return layout.partition_slice(part0, part1)


def _kernel_call(layout, x: np.ndarray, batched: bool) -> np.ndarray:
    """Apply the layout's production kernel — the one the operator uses.

    Buffered layouts expose a slow literal kernel (``spmv``) and a
    vectorized one (``spmv_vectorized``, bit-identical); the operator
    runs the vectorized one, so worker slices must too.
    """
    if batched:
        return layout.spmv_batch(x)
    vectorized = getattr(layout, "spmv_vectorized", None)
    return vectorized(x) if vectorized is not None else layout.spmv(x)


def _flatten_layout(layout) -> tuple[str, dict[str, np.ndarray], dict]:
    """Decompose a layout into shm-exportable arrays plus scalar meta."""
    if isinstance(layout, CSRMatrix):
        arrays = {"displ": layout.displ, "ind": layout.ind, "val": layout.val}
        return "csr", arrays, {"num_cols": layout.num_cols}
    if isinstance(layout, BufferedMatrix):
        arrays = {
            "partdispl": layout.partdispl,
            "stagedispl": layout.stagedispl,
            "map": layout.map,
            "displ": layout.displ,
            "ind": layout.ind,
            "val": layout.val,
        }
        meta = {
            "num_cols": layout.num_cols,
            "num_rows": layout.num_rows,
            "partition_size": layout.partitions.partition_size,
            "buffer_elements": layout.buffer_elements,
        }
        return "buffered", arrays, meta
    if isinstance(layout, ELLPartitioned):
        rows = np.array([slab.shape[1] for slab in layout.ind_slabs], dtype=np.int64)

        def flat(slabs: list[np.ndarray], dtype) -> np.ndarray:
            if not slabs:
                return np.empty(0, dtype=dtype)
            return np.concatenate([slab.ravel() for slab in slabs])

        arrays = {
            "widths": np.asarray(layout.widths, dtype=np.int64),
            "rows": rows,
            "ind_flat": flat(layout.ind_slabs, np.int32),
            "val_flat": flat(layout.val_slabs, np.float32),
        }
        meta = {
            "num_cols": layout.num_cols,
            "num_rows": layout.num_rows,
            "partition_size": layout.partitions.partition_size,
        }
        return "ell", arrays, meta
    raise TypeError(f"unsupported layout type {type(layout)!r}")


def _rebuild_layout(kind: str, arrays: dict[str, np.ndarray], meta: dict):
    """Inverse of :func:`_flatten_layout` over (possibly shm-backed) views."""
    if kind == "csr":
        return CSRMatrix(
            displ=arrays["displ"],
            ind=arrays["ind"],
            val=arrays["val"],
            num_cols=meta["num_cols"],
            # Without this an fp64 operator's values would be silently
            # downcast to the float32 default on worker-side rebuild.
            value_dtype=arrays["val"].dtype.name,
        )
    if kind == "buffered":
        return BufferedMatrix(
            partitions=RowPartitions(meta["num_rows"], meta["partition_size"]),
            buffer_elements=meta["buffer_elements"],
            partdispl=arrays["partdispl"],
            stagedispl=arrays["stagedispl"],
            map=arrays["map"],
            displ=arrays["displ"],
            ind=arrays["ind"],
            val=arrays["val"],
            num_cols=meta["num_cols"],
        )
    if kind == "ell":
        widths = arrays["widths"]
        rows = arrays["rows"]
        sizes = widths * rows
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        ind_slabs = []
        val_slabs = []
        for p in range(len(sizes)):
            lo, hi = offsets[p], offsets[p + 1]
            shape = (int(widths[p]), int(rows[p]))
            ind_slabs.append(arrays["ind_flat"][lo:hi].reshape(shape))
            val_slabs.append(arrays["val_flat"][lo:hi].reshape(shape))
        return ELLPartitioned(
            partitions=RowPartitions(meta["num_rows"], meta["partition_size"]),
            widths=widths,
            ind_slabs=ind_slabs,
            val_slabs=val_slabs,
            num_cols=meta["num_cols"],
        )
    raise ValueError(f"unknown layout kind {kind!r}")


# -- process-worker side ------------------------------------------------

# Populated by _worker_init in every pool worker:
# {direction: (layout, partition_size)}.
_WORKER_LAYOUTS: dict[str, tuple[object, int]] = {}


def _worker_init(payload: dict) -> None:
    """Pool initializer: attach shm segments, rebuild layouts once."""
    _WORKER_LAYOUTS.clear()
    for direction, (kind, seg_name, manifest, meta, partition_size) in payload.items():
        arrays = shm.attach_arrays(seg_name, manifest)
        _WORKER_LAYOUTS[direction] = (
            _rebuild_layout(kind, arrays, meta),
            partition_size,
        )


def _process_task(task: tuple) -> tuple[np.ndarray, float, float]:
    """One worker task: SpMV of a partition range against a shm input."""
    direction, part0, part1, batched, seg_name, manifest = task
    start = perf_counter()
    layout, partition_size = _WORKER_LAYOUTS[direction]
    x = shm.read_copy(seg_name, manifest)["x"]
    sub = _slice_layout(layout, part0, part1, partition_size)
    y = _kernel_call(sub, x, batched)
    return y, start, perf_counter()


# -- the engine ---------------------------------------------------------


class ParallelSpmvEngine:
    """Dispatch forward/adjoint SpMV across partition-range workers.

    Parameters
    ----------
    workers, mode:
        Resolved backend spec (see :func:`repro.parallel.parse_workers`).
    partition_size:
        Rows per partition — the decomposition granularity for CSR
        layouts (buffered/ELL carry their own partitioning).
    forward_layout, adjoint_layout:
        The two kernel objects; any of :class:`CSRMatrix`,
        :class:`BufferedMatrix`, :class:`ELLPartitioned`.
    """

    def __init__(
        self,
        *,
        workers: int,
        mode: str,
        partition_size: int,
        forward_layout,
        adjoint_layout,
    ):
        self.workers = workers
        self.mode = mode
        self.partition_size = partition_size
        self._layouts = {"forward": forward_layout, "adjoint": adjoint_layout}
        self._ranges = {
            direction: partition_ranges(
                _layout_partitions(layout, partition_size), workers
            )
            for direction, layout in self._layouts.items()
        }
        self._slices: dict[str, list] = {}
        self._segments: list[shm.SharedArrays] = []
        self._closed = False
        if mode == "process":
            payload = {}
            shm_bytes = 0
            for direction, layout in self._layouts.items():
                kind, arrays, meta = _flatten_layout(layout)
                shared = shm.SharedArrays(arrays)
                self._segments.append(shared)
                shm_bytes += shared.nbytes
                payload[direction] = (
                    kind,
                    shared.name,
                    shared.manifest,
                    meta,
                    partition_size,
                )
            add_count(PARALLEL_SHM_BYTES, shm_bytes)
            self._backend = make_backend(
                workers, mode, initializer=_worker_init, initargs=(payload,)
            )
        else:
            self._backend = make_backend(workers, mode)
            for direction, layout in self._layouts.items():
                self._slices[direction] = [
                    _slice_layout(layout, p0, p1, partition_size)
                    for p0, p1 in self._ranges[direction]
                ]
        # Shared-memory segments must not outlive the process even if
        # close() is never called explicitly.
        self._finalizer = weakref.finalize(
            self, _release, self._backend, list(self._segments)
        )

    # -- dispatch -------------------------------------------------------

    def apply(self, direction: str, x: np.ndarray) -> np.ndarray:
        """Run the ``direction`` kernel on ``x`` (1D vector or 2D slab).

        Falls back to the plain serial kernel when the decomposition
        is degenerate (one range or serial backend).
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        layout = self._layouts[direction]
        ranges = self._ranges[direction]
        batched = x.ndim == 2
        if len(ranges) < 2 or isinstance(self._backend, SerialBackend):
            return _kernel_call(layout, x, batched)
        observing = REGISTRY.active
        if self.mode == "process":
            shared_x = shm.SharedArrays({"x": np.ascontiguousarray(x)})
            try:
                if observing:
                    add_count(PARALLEL_SHM_BYTES, shared_x.nbytes)
                tasks = [
                    (direction, p0, p1, batched, shared_x.name, shared_x.manifest)
                    for p0, p1 in ranges
                ]
                results = self._backend.map(_process_task, tasks)
            finally:
                shared_x.dispose()
        else:
            slices = self._slices[direction]

            def run(sub) -> tuple[np.ndarray, float, float]:
                start = perf_counter()
                y = _kernel_call(sub, x, batched)
                return y, start, perf_counter()

            results = self._backend.map(run, slices)

        if observing:
            add_count(PARALLEL_DISPATCHES, 1)
            add_count(PARALLEL_TASKS, len(ranges))
            for index, ((_, start, end), (p0, p1)) in enumerate(zip(results, ranges)):
                emit_span(
                    "parallel.worker",
                    start,
                    end,
                    worker=index,
                    direction=direction,
                    part0=p0,
                    part1=p1,
                    mode=self.mode,
                )
        return np.concatenate([y for y, _, _ in results])

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the backend down and unlink shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release(self._backend, self._segments)
        self._segments = []

    def __enter__(self) -> "ParallelSpmvEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _release(backend, segments: list) -> None:
    # Workers only attach; the pool must drain before the parent
    # unlinks, or late tasks would attach a vanished segment.
    backend.close()
    for shared in segments:
        shared.dispose()
