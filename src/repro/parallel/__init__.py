"""repro.parallel — shared-memory parallel execution backend.

Reproduces the intra-node parallelism of the paper (OpenMP threads
over contiguous Hilbert-ordered partition ranges, Section 4.1) on top
of three interchangeable backends:

* ``serial`` — inline execution, the bit-identity reference;
* ``thread`` — a shared thread pool (NumPy kernels release the GIL);
* ``process`` — a fork-context process pool whose workers attach the
  operator's arrays from POSIX shared memory.

Because every worker owns a contiguous partition range and reductions
concatenate in fixed partition-major order, parallel results are
**bit-identical** to serial results on all three matrix layouts — the
backends change wall time, never numerics.

Worker counts resolve from ``workers=`` arguments / ``--workers``
flags, then the ``REPRO_WORKERS`` environment variable, then serial.
See ``docs/parallel.md`` for the full guide.
"""

from .backend import (
    ENV_WORKERS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    parse_workers,
    shutdown_shared_pools,
)
from .spmv import ParallelSpmvEngine, partition_ranges

__all__ = [
    "ENV_WORKERS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "make_backend",
    "parse_workers",
    "shutdown_shared_pools",
    "ParallelSpmvEngine",
    "partition_ranges",
]
