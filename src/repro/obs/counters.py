"""Typed counters for the paper's key quantities.

Each counter has a *unit*; incrementing an existing counter with a
conflicting unit raises, so "bytes added to a FLOP counter" is caught
at the instrumentation point rather than in a confusing report.

The canonical names below cover the quantities MemXCT's evaluation is
built on (Tables 3-7, Figs 5-11): SpMV work, regular/irregular memory
traffic, buffered-kernel stage counts, and simulated communication
volume.  Ad-hoc counters with other names are allowed — the registry
creates them on first increment with whatever unit is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Counter",
    "unit_of",
    "SPMV_FLOPS",
    "SPMV_CALLS",
    "SPMV_REGULAR_BYTES",
    "SPMV_IRREGULAR_BYTES",
    "BUFFER_STAGES",
    "COMM_BYTES",
    "COMM_MESSAGES",
    "SOLVER_ITERATIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_BYTES_READ",
    "CACHE_BYTES_WRITTEN",
    "CACHE_EVICTIONS",
]

#: FMA work of every SpMV executed (2 flops per stored nonzero).
SPMV_FLOPS = "spmv.flops"
#: Number of forward/adjoint kernel invocations.
SPMV_CALLS = "spmv.calls"
#: Streamed matrix bytes (ind + val) moved by SpMV — paper "regular data".
SPMV_REGULAR_BYTES = "spmv.regular_bytes"
#: Gathered vector bytes touched by SpMV — paper "irregular data".
SPMV_IRREGULAR_BYTES = "spmv.irregular_bytes"
#: Buffer stages executed by the multi-stage buffered kernel.
BUFFER_STAGES = "buffer.stages"
#: Remote (off-diagonal) bytes moved by simulated MPI collectives.
COMM_BYTES = "comm.bytes"
#: Remote point-to-point messages inside simulated collectives.
COMM_MESSAGES = "comm.messages"
#: Iterations completed across all solvers.
SOLVER_ITERATIONS = "solver.iterations"
#: Operator plans served from the on-disk plan cache.
CACHE_HITS = "cache.hits"
#: Plan-cache lookups that found no (usable) entry.
CACHE_MISSES = "cache.misses"
#: Bytes read from plan-cache entries on hits.
CACHE_BYTES_READ = "cache.bytes_read"
#: Bytes written to the plan cache when storing entries.
CACHE_BYTES_WRITTEN = "cache.bytes_written"
#: Entries removed by the size-capped eviction policy.
CACHE_EVICTIONS = "cache.evictions"

#: Default unit per canonical counter name.
CANONICAL_UNITS = {
    SPMV_FLOPS: "flop",
    SPMV_CALLS: "call",
    SPMV_REGULAR_BYTES: "byte",
    SPMV_IRREGULAR_BYTES: "byte",
    BUFFER_STAGES: "stage",
    COMM_BYTES: "byte",
    COMM_MESSAGES: "message",
    SOLVER_ITERATIONS: "iteration",
    CACHE_HITS: "hit",
    CACHE_MISSES: "miss",
    CACHE_BYTES_READ: "byte",
    CACHE_BYTES_WRITTEN: "byte",
    CACHE_EVICTIONS: "entry",
}


def unit_of(name: str) -> str:
    """Default unit of a counter name ("count" for ad-hoc counters)."""
    return CANONICAL_UNITS.get(name, "count")


@dataclass
class Counter:
    """A named accumulator with a fixed unit."""

    name: str
    unit: str
    total: float = 0.0
    events: int = 0

    def add(self, value: float, unit: str | None = None) -> None:
        """Accumulate ``value``; rejects a mismatched unit."""
        if unit is not None and unit != self.unit:
            raise ValueError(
                f"counter {self.name!r} has unit {self.unit!r}, "
                f"refusing increment in {unit!r}"
            )
        self.total += value
        self.events += 1
