"""Typed counters for the paper's key quantities.

Each counter has a *unit*; incrementing an existing counter with a
conflicting unit raises, so "bytes added to a FLOP counter" is caught
at the instrumentation point rather than in a confusing report.

The canonical names below cover the quantities MemXCT's evaluation is
built on (Tables 3-7, Figs 5-11): SpMV work, regular/irregular memory
traffic, buffered-kernel stage counts, and simulated communication
volume.  Ad-hoc counters with other names are allowed — the registry
creates them on first increment with whatever unit is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Counter",
    "unit_of",
    "SPMV_FLOPS",
    "SPMV_CALLS",
    "SPMV_REGULAR_BYTES",
    "SPMV_IRREGULAR_BYTES",
    "BUFFER_STAGES",
    "COMM_BYTES",
    "COMM_MESSAGES",
    "COMM_INTRA_BYTES",
    "COMM_INTRA_MESSAGES",
    "COMM_INTER_BYTES",
    "COMM_INTER_MESSAGES",
    "SOLVER_ITERATIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_BYTES_READ",
    "CACHE_BYTES_WRITTEN",
    "CACHE_EVICTIONS",
    "AUTOTUNE_HITS",
    "AUTOTUNE_MISSES",
    "AUTOTUNE_CANDIDATES",
    "AUTOTUNE_TRIALS",
    "DTYPE_FP32_SPMV",
    "DTYPE_FP64_SPMV",
    "SCENARIO_RUNS",
    "SCENARIO_VIEWS_DROPPED",
    "SCENARIO_CENTER_CANDIDATES",
    "FAULT_DROPS",
    "FAULT_CORRUPTIONS",
    "FAULT_DELAYS",
    "FAULT_CRASHES",
    "FAULT_RETRIES",
    "FAULT_RECOVERIES",
    "CHECKPOINT_SAVES",
    "CHECKPOINT_RESTORES",
    "CHECKPOINT_BYTES_WRITTEN",
    "HEALTH_EVENTS",
    "HEALTH_ROLLBACKS",
    "PIPELINE_SLICES",
    "PIPELINE_CHUNKS",
    "PIPELINE_RESUMED_SLICES",
    "DATAIO_READ_SECONDS",
    "DATAIO_WRITE_SECONDS",
    "DATAIO_QUEUE_DEPTH",
    "DATAIO_BYTES_READ",
    "DATAIO_BYTES_WRITTEN",
    "DATAIO_READ_RETRIES",
    "SERVICE_SUBMITTED",
    "SERVICE_REJECTED",
    "SERVICE_COMPLETED",
    "SERVICE_FAILED",
    "SERVICE_EXPIRED",
    "SERVICE_RETRIES",
    "SERVICE_BATCHES",
    "SERVICE_COALESCED_JOBS",
    "SERVICE_RECOVERED",
    "SERVICE_JOURNAL_RECORDS",
    "SERVICE_EVICTIONS",
    "PARALLEL_TASKS",
    "PARALLEL_DISPATCHES",
    "PARALLEL_SHM_BYTES",
]

#: FMA work of every SpMV executed (2 flops per stored nonzero).
SPMV_FLOPS = "spmv.flops"
#: Number of forward/adjoint kernel invocations.
SPMV_CALLS = "spmv.calls"
#: Streamed matrix bytes (ind + val) moved by SpMV — paper "regular data".
SPMV_REGULAR_BYTES = "spmv.regular_bytes"
#: Gathered vector bytes touched by SpMV — paper "irregular data".
SPMV_IRREGULAR_BYTES = "spmv.irregular_bytes"
#: Buffer stages executed by the multi-stage buffered kernel.
BUFFER_STAGES = "buffer.stages"
#: Remote (off-diagonal) bytes moved by simulated MPI collectives.
COMM_BYTES = "comm.bytes"
#: Remote point-to-point messages inside simulated collectives.
COMM_MESSAGES = "comm.messages"
#: Bytes moved over the intra-node fabric by hierarchical collectives
#: (same-node messages plus rank<->leader staging hops).
COMM_INTRA_BYTES = "comm.intra_bytes"
#: Intra-node messages inside hierarchical collectives.
COMM_INTRA_MESSAGES = "comm.intra_messages"
#: Aggregated leader-to-leader bytes crossing the inter-node network.
COMM_INTER_BYTES = "comm.inter_bytes"
#: Aggregated node-pair messages crossing the inter-node network.
COMM_INTER_MESSAGES = "comm.inter_messages"
#: Iterations completed across all solvers.
SOLVER_ITERATIONS = "solver.iterations"
#: Operator plans served from the on-disk plan cache.
CACHE_HITS = "cache.hits"
#: Plan-cache lookups that found no (usable) entry.
CACHE_MISSES = "cache.misses"
#: Bytes read from plan-cache entries on hits.
CACHE_BYTES_READ = "cache.bytes_read"
#: Bytes written to the plan cache when storing entries.
CACHE_BYTES_WRITTEN = "cache.bytes_written"
#: Entries removed by the size-capped eviction policy.
CACHE_EVICTIONS = "cache.evictions"
#: Injected message-loss faults (message never arrived, retried).
FAULT_DROPS = "fault.drops"
#: Injected payload corruptions caught by the receive-side checksum.
FAULT_CORRUPTIONS = "fault.corruptions"
#: Injected message delays (delivered late; backoff time charged).
FAULT_DELAYS = "fault.delays"
#: Simulated rank crashes (each triggers graceful degradation).
FAULT_CRASHES = "fault.crashes"
#: Re-delivery attempts made by the reliable-transport retry loop.
FAULT_RETRIES = "fault.retries"
#: Faults fully healed (messages re-delivered, crashed ranks absorbed).
FAULT_RECOVERIES = "fault.recoveries"
#: Solver-state snapshots persisted by the checkpoint manager.
CHECKPOINT_SAVES = "checkpoint.saves"
#: Solver-state snapshots restored (resume or health rollback).
CHECKPOINT_RESTORES = "checkpoint.restores"
#: Bytes written to checkpoint files.
CHECKPOINT_BYTES_WRITTEN = "checkpoint.bytes_written"
#: Numerical-health incidents (NaN/Inf or sustained divergence).
HEALTH_EVENTS = "health.events"
#: Health-triggered rollbacks to the last checkpoint.
HEALTH_ROLLBACKS = "health.rollbacks"
#: Sinogram slices reconstructed by the streaming stack pipeline.
PIPELINE_SLICES = "pipeline.slices"
#: Slice chunks processed by the streaming stack pipeline.
PIPELINE_CHUNKS = "pipeline.chunks"
#: Slices skipped on resume because a chunk checkpoint covered them.
PIPELINE_RESUMED_SLICES = "pipeline.resumed_slices"
#: Wall seconds the conveyor's reader spent pulling chunks from a source.
DATAIO_READ_SECONDS = "dataio.read_seconds"
#: Wall seconds the conveyor's writer spent pushing slabs into a sink.
DATAIO_WRITE_SECONDS = "dataio.write_seconds"
#: Read-queue depth sampled each time the reader enqueues a chunk
#: (total / events = mean prefetch occupancy).
DATAIO_QUEUE_DEPTH = "dataio.queue_depth"
#: Raw stack bytes pulled from chunk sources.
DATAIO_BYTES_READ = "dataio.bytes_read"
#: Volume bytes pushed into chunk sinks.
DATAIO_BYTES_WRITTEN = "dataio.bytes_written"
#: Source reads re-attempted after a transient failure (OSError etc.).
DATAIO_READ_RETRIES = "dataio.read_retries"
#: Jobs offered to the service (accepted or rejected).
SERVICE_SUBMITTED = "service.submitted"
#: Submissions rejected with backpressure (queue full / rate limit).
SERVICE_REJECTED = "service.rejected"
#: Jobs finished with a durable result.
SERVICE_COMPLETED = "service.completed"
#: Jobs that exhausted their retry budget (or failed permanently).
SERVICE_FAILED = "service.failed"
#: Jobs cancelled because their deadline passed.
SERVICE_EXPIRED = "service.expired"
#: Solve attempts re-run after a transient job failure.
SERVICE_RETRIES = "service.retries"
#: Batched solves executed by the scheduler (1 per dispatch).
SERVICE_BATCHES = "service.batches"
#: Jobs that shared a coalesced multi-RHS solve with at least one peer.
SERVICE_COALESCED_JOBS = "service.coalesced_jobs"
#: Acknowledged jobs re-queued by journal replay after a restart.
SERVICE_RECOVERED = "service.recovered"
#: Records appended to the job journal.
SERVICE_JOURNAL_RECORDS = "service.journal_records"
#: Terminal-job result payloads evicted from the spool (TTL / size cap).
SERVICE_EVICTIONS = "service.evictions"
#: Worker tasks executed by the shared-memory parallel backend.
PARALLEL_TASKS = "parallel.tasks"
#: Parallel fan-outs dispatched (one per backend.map / engine apply).
PARALLEL_DISPATCHES = "parallel.dispatches"
#: Bytes placed in multiprocessing shared memory by the process backend.
PARALLEL_SHM_BYTES = "parallel.shm_bytes"
#: Autotuning requests satisfied by a persisted record (warm lookup).
AUTOTUNE_HITS = "autotune.hits"
#: Autotuning requests that had to run the search.
AUTOTUNE_MISSES = "autotune.misses"
#: Configurations scored by the perf-model/cachesim prediction stage.
AUTOTUNE_CANDIDATES = "autotune.candidates"
#: Measured trials run on the prediction stage's top candidates.
AUTOTUNE_TRIALS = "autotune.trials"
#: SpMV kernel applications computed in float32 (default and fp32 paths).
DTYPE_FP32_SPMV = "dtype.fp32_spmv"
#: SpMV kernel applications computed in float64 (opt-in fp64 path).
DTYPE_FP64_SPMV = "dtype.fp64_spmv"

#: Scenario reconstructions run (sparse-view, limited-angle, try-center).
SCENARIO_RUNS = "scenario.runs"
#: Projection views dropped by a degraded-scan scenario.
SCENARIO_VIEWS_DROPPED = "scenario.views_dropped"
#: Rotation-center candidates scored by a try-center sweep.
SCENARIO_CENTER_CANDIDATES = "scenario.center_candidates"

#: Default unit per canonical counter name.
CANONICAL_UNITS = {
    SPMV_FLOPS: "flop",
    SPMV_CALLS: "call",
    SPMV_REGULAR_BYTES: "byte",
    SPMV_IRREGULAR_BYTES: "byte",
    BUFFER_STAGES: "stage",
    COMM_BYTES: "byte",
    COMM_MESSAGES: "message",
    COMM_INTRA_BYTES: "byte",
    COMM_INTRA_MESSAGES: "message",
    COMM_INTER_BYTES: "byte",
    COMM_INTER_MESSAGES: "message",
    SOLVER_ITERATIONS: "iteration",
    CACHE_HITS: "hit",
    CACHE_MISSES: "miss",
    CACHE_BYTES_READ: "byte",
    CACHE_BYTES_WRITTEN: "byte",
    CACHE_EVICTIONS: "entry",
    FAULT_DROPS: "message",
    FAULT_CORRUPTIONS: "message",
    FAULT_DELAYS: "message",
    FAULT_CRASHES: "rank",
    FAULT_RETRIES: "attempt",
    FAULT_RECOVERIES: "event",
    CHECKPOINT_SAVES: "snapshot",
    CHECKPOINT_RESTORES: "snapshot",
    CHECKPOINT_BYTES_WRITTEN: "byte",
    HEALTH_EVENTS: "event",
    HEALTH_ROLLBACKS: "rollback",
    PIPELINE_SLICES: "slice",
    PIPELINE_CHUNKS: "chunk",
    PIPELINE_RESUMED_SLICES: "slice",
    DATAIO_READ_SECONDS: "second",
    DATAIO_WRITE_SECONDS: "second",
    DATAIO_QUEUE_DEPTH: "chunk",
    DATAIO_BYTES_READ: "byte",
    DATAIO_BYTES_WRITTEN: "byte",
    DATAIO_READ_RETRIES: "attempt",
    SERVICE_SUBMITTED: "job",
    SERVICE_REJECTED: "job",
    SERVICE_COMPLETED: "job",
    SERVICE_FAILED: "job",
    SERVICE_EXPIRED: "job",
    SERVICE_RETRIES: "attempt",
    SERVICE_BATCHES: "solve",
    SERVICE_COALESCED_JOBS: "job",
    SERVICE_RECOVERED: "job",
    SERVICE_JOURNAL_RECORDS: "record",
    SERVICE_EVICTIONS: "job",
    PARALLEL_TASKS: "task",
    PARALLEL_DISPATCHES: "dispatch",
    PARALLEL_SHM_BYTES: "byte",
    AUTOTUNE_HITS: "hit",
    AUTOTUNE_MISSES: "miss",
    AUTOTUNE_CANDIDATES: "candidate",
    AUTOTUNE_TRIALS: "trial",
    DTYPE_FP32_SPMV: "call",
    DTYPE_FP64_SPMV: "call",
    SCENARIO_RUNS: "run",
    SCENARIO_VIEWS_DROPPED: "view",
    SCENARIO_CENTER_CANDIDATES: "candidate",
}


def unit_of(name: str) -> str:
    """Default unit of a counter name ("count" for ad-hoc counters)."""
    return CANONICAL_UNITS.get(name, "count")


@dataclass
class Counter:
    """A named accumulator with a fixed unit."""

    name: str
    unit: str
    total: float = 0.0
    events: int = 0

    def add(self, value: float, unit: str | None = None) -> None:
        """Accumulate ``value``; rejects a mismatched unit."""
        if unit is not None and unit != self.unit:
            raise ValueError(
                f"counter {self.name!r} has unit {self.unit!r}, "
                f"refusing increment in {unit!r}"
            )
        self.total += value
        self.events += 1
