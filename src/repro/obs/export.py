"""Chrome-trace / Perfetto JSON export.

Writes the ``traceEvents`` JSON consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: spans become complete ("X") duration events —
nesting on a track is inferred from time containment — and counter
increments become counter ("C") tracks.  Timestamps are microseconds
relative to the earliest captured event, so traces start at t=0.
"""

from __future__ import annotations

import json
from typing import Iterable

from .spans import SpanRecord

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1
_TID = 1


def chrome_trace(
    spans: Iterable[SpanRecord],
    counter_events: Iterable[tuple[float, str, float]] = (),
) -> dict:
    """Build the Chrome-trace JSON object for one capture."""
    spans = list(spans)
    counter_events = list(counter_events)
    starts = [record.start for record in spans] + [t for t, _, _ in counter_events]
    origin = min(starts) if starts else 0.0

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "repro (MemXCT reproduction)"},
        }
    ]
    for record in sorted(spans, key=lambda r: r.start):
        event = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": (record.start - origin) * 1e6,
            "dur": record.duration * 1e6,
            "pid": _PID,
            "tid": _TID,
        }
        if record.attrs:
            event["args"] = {k: _jsonable(v) for k, v in record.attrs.items()}
        events.append(event)
    for t, name, running_total in counter_events:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": (t - origin) * 1e6,
                "pid": _PID,
                "args": {name: running_total},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path,
    spans: Iterable[SpanRecord],
    counter_events: Iterable[tuple[float, str, float]] = (),
) -> None:
    """Serialize :func:`chrome_trace` to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, counter_events), fh)


def _jsonable(value):
    """Coerce span attributes to JSON-safe scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return value.item()  # numpy scalar
    except AttributeError:
        return repr(value)
