"""repro.obs — zero-dependency observability (spans, counters, export).

The instrumentation substrate behind every performance claim the
reproduction makes.  Three pieces:

* **Spans** (:class:`span` / :func:`traced`) — named, timed, nested
  regions.  The four preprocessing stages, every SpMV kernel call, and
  every solver iteration are spans.
* **Counters** (:func:`add_count` + canonical names in
  :mod:`repro.obs.counters`) — typed accumulators for the paper's key
  quantities: SpMV FLOPs, regular/irregular bytes, buffer stages,
  simulated communication volume.
* **Capture/export** (:func:`capture`, :class:`Capture`) — scoped
  collection so tests and benchmarks assert on exactly what ran, plus
  Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

Everything is off by default.  With no capture active, instrumentation
points cost one attribute check — the kernels run at uninstrumented
speed (enforced by an overhead test).

    from repro import obs

    with obs.capture() as cap:
        operator, report = preprocess(geometry)
        result = cgls(operator, y)
    cap.total(obs.SPMV_FLOPS)          # work executed
    cap.find_spans("solver.iteration")  # one per CG iteration
    cap.write_chrome_trace("trace.json")

See ``docs/observability.md`` for the full guide.
"""

from .counters import (
    AUTOTUNE_CANDIDATES,
    AUTOTUNE_HITS,
    AUTOTUNE_MISSES,
    AUTOTUNE_TRIALS,
    BUFFER_STAGES,
    CACHE_BYTES_READ,
    CACHE_BYTES_WRITTEN,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    CHECKPOINT_BYTES_WRITTEN,
    CHECKPOINT_RESTORES,
    CHECKPOINT_SAVES,
    COMM_BYTES,
    COMM_INTER_BYTES,
    COMM_INTER_MESSAGES,
    COMM_INTRA_BYTES,
    COMM_INTRA_MESSAGES,
    COMM_MESSAGES,
    DATAIO_BYTES_READ,
    DATAIO_BYTES_WRITTEN,
    DATAIO_QUEUE_DEPTH,
    DATAIO_READ_RETRIES,
    DATAIO_READ_SECONDS,
    DATAIO_WRITE_SECONDS,
    FAULT_CORRUPTIONS,
    FAULT_CRASHES,
    FAULT_DELAYS,
    FAULT_DROPS,
    FAULT_RECOVERIES,
    FAULT_RETRIES,
    HEALTH_EVENTS,
    HEALTH_ROLLBACKS,
    PARALLEL_DISPATCHES,
    PARALLEL_SHM_BYTES,
    PARALLEL_TASKS,
    PIPELINE_CHUNKS,
    PIPELINE_RESUMED_SLICES,
    PIPELINE_SLICES,
    SERVICE_BATCHES,
    SERVICE_COALESCED_JOBS,
    SERVICE_COMPLETED,
    SERVICE_EVICTIONS,
    SERVICE_EXPIRED,
    SERVICE_FAILED,
    SERVICE_JOURNAL_RECORDS,
    SERVICE_RECOVERED,
    SERVICE_REJECTED,
    SERVICE_RETRIES,
    SERVICE_SUBMITTED,
    SOLVER_ITERATIONS,
    DTYPE_FP32_SPMV,
    DTYPE_FP64_SPMV,
    SCENARIO_RUNS,
    SCENARIO_VIEWS_DROPPED,
    SCENARIO_CENTER_CANDIDATES,
    SPMV_CALLS,
    SPMV_FLOPS,
    SPMV_IRREGULAR_BYTES,
    SPMV_REGULAR_BYTES,
    Counter,
    unit_of,
)
from .export import chrome_trace, write_chrome_trace
from .registry import REGISTRY, Capture, Registry, add_count, capture
from .spans import SpanRecord, emit_span, span, traced

__all__ = [
    "AUTOTUNE_CANDIDATES",
    "AUTOTUNE_HITS",
    "AUTOTUNE_MISSES",
    "AUTOTUNE_TRIALS",
    "BUFFER_STAGES",
    "CACHE_BYTES_READ",
    "CACHE_BYTES_WRITTEN",
    "CACHE_EVICTIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CHECKPOINT_BYTES_WRITTEN",
    "CHECKPOINT_RESTORES",
    "CHECKPOINT_SAVES",
    "COMM_BYTES",
    "COMM_INTER_BYTES",
    "COMM_INTER_MESSAGES",
    "COMM_INTRA_BYTES",
    "COMM_INTRA_MESSAGES",
    "COMM_MESSAGES",
    "DATAIO_BYTES_READ",
    "DATAIO_BYTES_WRITTEN",
    "DATAIO_QUEUE_DEPTH",
    "DATAIO_READ_RETRIES",
    "DATAIO_READ_SECONDS",
    "DATAIO_WRITE_SECONDS",
    "DTYPE_FP32_SPMV",
    "DTYPE_FP64_SPMV",
    "FAULT_CORRUPTIONS",
    "FAULT_CRASHES",
    "FAULT_DELAYS",
    "FAULT_DROPS",
    "FAULT_RECOVERIES",
    "FAULT_RETRIES",
    "HEALTH_EVENTS",
    "HEALTH_ROLLBACKS",
    "PARALLEL_DISPATCHES",
    "PARALLEL_SHM_BYTES",
    "PARALLEL_TASKS",
    "PIPELINE_CHUNKS",
    "PIPELINE_RESUMED_SLICES",
    "PIPELINE_SLICES",
    "SERVICE_BATCHES",
    "SERVICE_COALESCED_JOBS",
    "SERVICE_COMPLETED",
    "SERVICE_EVICTIONS",
    "SERVICE_EXPIRED",
    "SERVICE_FAILED",
    "SERVICE_JOURNAL_RECORDS",
    "SERVICE_RECOVERED",
    "SERVICE_REJECTED",
    "SERVICE_RETRIES",
    "SERVICE_SUBMITTED",
    "SCENARIO_CENTER_CANDIDATES",
    "SCENARIO_RUNS",
    "SCENARIO_VIEWS_DROPPED",
    "SOLVER_ITERATIONS",
    "SPMV_CALLS",
    "SPMV_FLOPS",
    "SPMV_IRREGULAR_BYTES",
    "SPMV_REGULAR_BYTES",
    "Counter",
    "unit_of",
    "chrome_trace",
    "write_chrome_trace",
    "REGISTRY",
    "Capture",
    "Registry",
    "add_count",
    "capture",
    "SpanRecord",
    "emit_span",
    "span",
    "traced",
]
