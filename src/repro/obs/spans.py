"""Span tracing: context manager, decorator, and the span record.

A span is one named, timed region.  Spans nest through the registry's
stack, so the capture can rebuild the call tree (preprocess stages
under ``preprocess``, solver iterations under ``solver.solve``).

``span`` always measures wall time — ``sp.duration`` is valid whether
or not observation is active — but it allocates a record and touches
the registry only when a capture is open.  Hot paths that cannot
afford even the two ``perf_counter`` calls should guard on
``REGISTRY.active`` themselves (see ``core/operator.py``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from time import perf_counter

__all__ = ["SpanRecord", "span", "traced", "emit_span"]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    Times are ``time.perf_counter()`` seconds; ``parent`` links to the
    span that was open when this one started (None for roots).
    """

    name: str
    start: float
    end: float = 0.0
    attrs: dict = field(default_factory=dict)
    parent: "SpanRecord | None" = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class span:
    """Context manager timing one named region.

    >>> with span("preprocess.tracing", angles=128) as sp:
    ...     ...
    >>> sp.duration
    """

    __slots__ = ("name", "attrs", "start", "end", "_record")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self._record = None

    def __enter__(self) -> "span":
        from .registry import REGISTRY

        self.start = perf_counter()
        if REGISTRY.active:
            self._record = REGISTRY.begin_span(self.name, self.attrs, self.start)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if self._record is not None:
            from .registry import REGISTRY

            REGISTRY.end_span(self._record, self.end)
            self._record = None
        return False

    @property
    def duration(self) -> float:
        return self.end - self.start


def emit_span(name: str, start: float, end: float, **attrs) -> None:
    """Record an already-timed region as a finished span.

    Used when the timed work ran somewhere the registry's span stack
    cannot follow — a worker thread or a worker process.  The
    coordinator measures (or collects) ``perf_counter`` start/end
    stamps and emits the span afterwards; it nests under whatever span
    the coordinator currently has open.  No-op when observation is
    inactive.
    """
    from .registry import REGISTRY

    if not REGISTRY.active:
        return
    record = REGISTRY.begin_span(name, attrs, start)
    REGISTRY.end_span(record, end)


def traced(name: str | None = None, **attrs):
    """Decorator form of :class:`span`.

    >>> @traced("solver.fbp")
    ... def fbp(...): ...

    With observation inactive the wrapper is one attribute check plus
    the undecorated call.
    """

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from .registry import REGISTRY

            if not REGISTRY.active:
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
