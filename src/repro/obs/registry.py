"""The process-global observation registry and ``capture()`` scoping.

One :class:`Registry` exists per process (module-level ``REGISTRY``).
It holds the currently-open span stack and the list of active
:class:`Capture` sinks.  When no capture is active the registry is
*inactive* and every instrumentation point reduces to a single
attribute check — the hot SpMV paths stay within noise of the
uninstrumented kernels (asserted by ``tests/test_obs.py``).

Captures nest and overlap freely: a span or counter increment is
delivered to **every** capture active at the time it completes, so a
test can scope its assertions with an inner ``capture()`` while the CLI
keeps an outer one open for trace export.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from .counters import Counter, unit_of
from .spans import SpanRecord

__all__ = ["Capture", "Registry", "REGISTRY", "capture", "add_count"]


@dataclass
class Capture:
    """One observation sink: finished spans plus counter totals.

    ``spans`` lists spans in *completion* order (children before
    parents, like a post-order walk); ``counters`` maps counter name to
    its accumulated :class:`Counter`; ``counter_events`` is the
    timestamped increment log ``(t, name, running_total)`` that the
    Chrome-trace export renders as counter tracks.
    """

    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, Counter] = field(default_factory=dict)
    counter_events: list[tuple[float, str, float]] = field(default_factory=list)

    # -- counter queries -------------------------------------------------

    def total(self, name: str) -> float:
        """Accumulated value of a counter (0.0 when never incremented)."""
        counter = self.counters.get(name)
        return counter.total if counter is not None else 0.0

    def events(self, name: str) -> int:
        """Number of increments a counter received."""
        counter = self.counters.get(name)
        return counter.events if counter is not None else 0

    # -- span queries ----------------------------------------------------

    def span_names(self) -> list[str]:
        """Names of captured spans, in completion order."""
        return [record.name for record in self.spans]

    def find_spans(self, name: str) -> list[SpanRecord]:
        """All captured spans with the given name."""
        return [record for record in self.spans if record.name == name]

    def roots(self) -> list[SpanRecord]:
        """Captured spans whose parent was not captured (tree roots)."""
        captured = {id(record) for record in self.spans}
        return [
            record
            for record in self.spans
            if record.parent is None or id(record.parent) not in captured
        ]

    def children(self, record: SpanRecord) -> list[SpanRecord]:
        """Captured direct children of a span."""
        return [r for r in self.spans if r.parent is record]

    # -- export ----------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto JSON object."""
        from .export import chrome_trace

        return chrome_trace(self.spans, self.counter_events)

    def write_chrome_trace(self, path) -> None:
        """Write the capture as a Chrome-trace JSON file."""
        from .export import write_chrome_trace

        write_chrome_trace(path, self.spans, self.counter_events)


class Registry:
    """Span stack plus active capture sinks; inactive by default."""

    __slots__ = ("active", "_captures", "_stack")

    def __init__(self) -> None:
        self.active = False
        self._captures: list[Capture] = []
        self._stack: list[SpanRecord] = []

    # -- span plumbing (called by spans.span) ----------------------------

    def begin_span(self, name: str, attrs: dict, start: float) -> SpanRecord:
        record = SpanRecord(
            name=name,
            start=start,
            attrs=attrs,
            parent=self._stack[-1] if self._stack else None,
        )
        self._stack.append(record)
        return record

    def end_span(self, record: SpanRecord, end: float) -> None:
        record.end = end
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        elif record in self._stack:  # defensive: mis-nested exit
            self._stack.remove(record)
        for cap in self._captures:
            cap.spans.append(record)

    # -- counters --------------------------------------------------------

    def add_count(self, name: str, value: float, unit: str | None = None) -> None:
        if not self._captures:
            return
        resolved = unit if unit is not None else unit_of(name)
        for cap in self._captures:
            counter = cap.counters.get(name)
            if counter is None:
                counter = Counter(name=name, unit=resolved)
                cap.counters[name] = counter
            counter.add(value, unit=resolved)
            cap.counter_events.append((_now(), name, counter.total))

    # -- capture scoping -------------------------------------------------

    @contextmanager
    def capture(self):
        cap = Capture()
        self._captures.append(cap)
        self.active = True
        try:
            yield cap
        finally:
            self._captures.remove(cap)
            self.active = bool(self._captures)


def _now() -> float:
    from time import perf_counter

    return perf_counter()


#: The process-global registry used by all instrumentation points.
REGISTRY = Registry()


def capture():
    """Scope observation: ``with obs.capture() as cap: ...``.

    Everything that *completes* inside the scope — spans, counter
    increments — lands in the yielded :class:`Capture`.
    """
    return REGISTRY.capture()


def add_count(name: str, value: float, unit: str | None = None) -> None:
    """Increment a counter on every active capture (no-op when inactive)."""
    if REGISTRY.active:
        REGISTRY.add_count(name, value, unit)
