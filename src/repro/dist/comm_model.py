"""Alpha-beta communication cost model with the paper's handshake term.

Paper Section 3.4.3 derives the MemXCT communication complexity
``O(MN / sqrt(P) + P)``: when the rank count quadruples, the total
sinogram-overlap footprint doubles (hence ``1/sqrt(P)`` per rank) and
an extra ``O(sqrt(P))`` handshake term appears per rank because the
number of interacting neighbours grows with the subdomain perimeter.
The compute-centric alternative pays ``O(N^2 log P)`` for the
``Allreduce`` over duplicated tomograms.

This module turns logged or predicted traffic into seconds via the
standard alpha-beta model, and provides the closed-form complexity
curves for both approaches (Table 1 / Fig. 11 guide lines).
"""

from __future__ import annotations

import numpy as np

from ..machine.specs import MachineSpec
from .simmpi import CommLog

__all__ = [
    "alltoallv_time",
    "alltoallv_time_from_log",
    "allreduce_time",
    "memxct_comm_elements",
    "trace_comm_elements",
]


def alltoallv_time(
    volume_bytes: np.ndarray,
    machine: MachineSpec,
    include_device_transfer: bool = True,
) -> float:
    """Seconds for one sparse ``Alltoallv`` given a pairwise byte matrix.

    Per rank: ``alpha * partners + max(sent, received) / beta``; the
    collective finishes when the slowest rank does.  GPU machines also
    pay host-device staging of the payload over the PCIe/NVLink link
    (the paper includes host-device time in its ``C`` kernel numbers).
    """
    volume = np.asarray(volume_bytes, dtype=np.float64)
    if volume.ndim != 2 or volume.shape[0] != volume.shape[1]:
        raise ValueError(f"volume matrix must be square, got {volume.shape}")
    remote = volume.copy()
    np.fill_diagonal(remote, 0.0)
    sent = remote.sum(axis=1)
    received = remote.sum(axis=0)
    partners = ((remote + remote.T) > 0).sum(axis=1)
    per_rank = machine.net_latency_s * partners + np.maximum(sent, received) / machine.net_bw
    if include_device_transfer and machine.device.kind == "gpu":
        per_rank = per_rank + (sent + received) / machine.device.link_bw
    return float(per_rank.max()) if per_rank.size else 0.0


def alltoallv_time_from_log(log: CommLog, machine: MachineSpec) -> float:
    """Cost of the traffic accumulated in a :class:`CommLog`."""
    return alltoallv_time(log.volume_bytes, machine)


def allreduce_time(num_elements: int, num_ranks: int, machine: MachineSpec) -> float:
    """Seconds for an ``Allreduce`` of ``num_elements`` float32 values.

    Recursive-doubling model: ``log2(P)`` rounds, each moving the full
    payload — the ``O(N^2 log P)`` cost of the compute-centric
    approach's duplicated-domain reduction (paper Table 1).
    """
    if num_ranks <= 1:
        return 0.0
    rounds = int(np.ceil(np.log2(num_ranks)))
    payload = 4.0 * num_elements
    per_round = machine.net_latency_s + payload / machine.net_bw
    if machine.device.kind == "gpu":
        per_round += 2.0 * payload / machine.device.link_bw
    return rounds * per_round


def memxct_comm_elements(
    num_projections: int, num_channels: int, num_ranks: int, overlap_constant: float = 1.0
) -> float:
    """Closed-form MemXCT communication volume (elements, total).

    ``O(M N sqrt(P))`` total — i.e. ``O(M N / sqrt(P))`` per rank — per
    paper Section 3.4.3.  ``overlap_constant`` is fitted from executed
    decompositions at small ``P`` (see :mod:`repro.dist.scaling`).
    """
    return overlap_constant * num_projections * num_channels * np.sqrt(max(num_ranks, 1))


def trace_comm_elements(num_channels: int, num_ranks: int) -> float:
    """Closed-form compute-centric (Trace) communication volume.

    ``O(N^2 log P)``: the duplicated ``N x N`` tomogram is all-reduced
    each backprojection.
    """
    if num_ranks <= 1:
        return 0.0
    return num_channels * num_channels * np.log2(num_ranks)
