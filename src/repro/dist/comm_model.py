"""Alpha-beta communication cost model with the paper's handshake term.

Paper Section 3.4.3 derives the MemXCT communication complexity
``O(MN / sqrt(P) + P)``: when the rank count quadruples, the total
sinogram-overlap footprint doubles (hence ``1/sqrt(P)`` per rank) and
an extra ``O(sqrt(P))`` handshake term appears per rank because the
number of interacting neighbours grows with the subdomain perimeter.
The compute-centric alternative pays ``O(N^2 log P)`` for the
``Allreduce`` over duplicated tomograms.

This module turns logged or predicted traffic into seconds via the
standard alpha-beta model, and provides the closed-form complexity
curves for both approaches (Table 1 / Fig. 11 guide lines).

Hierarchical extension (Petascale XCT, arXiv 2009.07226): with a
two-level :class:`~repro.topology.Topology`, the exchange splits into
rank<->leader staging over the intra-node fabric
(``MachineSpec.intra_latency_s`` / ``intra_bw``) and one aggregated
leader-to-leader message per node pair over the network
(``net_latency_s`` / ``net_bw``) — :func:`hier_alltoallv_time` costs
exactly the traffic split :class:`~repro.topology.HierComm` records.
:func:`overlapped_exchange_time` models the comm/compute overlap where
partial-projection compute hides inter-node exchange time.

Units: all latencies in seconds, bandwidths in bytes/second, payloads
in bytes (element counts are converted at 4 bytes — float32 wire
format) — so every function returns seconds.
"""

from __future__ import annotations

import numpy as np

from ..machine.specs import MachineSpec
from ..topology import Topology
from .simmpi import CommLog

__all__ = [
    "alltoallv_time",
    "alltoallv_time_from_log",
    "allreduce_time",
    "hier_alltoallv_time",
    "overlapped_exchange_time",
    "memxct_comm_elements",
    "trace_comm_elements",
]


def _check_volume(volume_bytes: np.ndarray) -> np.ndarray:
    volume = np.asarray(volume_bytes, dtype=np.float64)
    if volume.ndim != 2 or volume.shape[0] != volume.shape[1]:
        raise ValueError(f"volume matrix must be square, got {volume.shape}")
    if volume.size and volume.min() < 0:
        raise ValueError("volume matrix entries must be non-negative bytes")
    return volume


def alltoallv_time(
    volume_bytes: np.ndarray,
    machine: MachineSpec,
    include_device_transfer: bool = True,
) -> float:
    """Seconds for one flat sparse ``Alltoallv`` given a pairwise byte matrix.

    ``volume_bytes[p, q]`` is the payload (bytes) rank ``p`` sends to
    rank ``q``; the diagonal (self-sends) is ignored.  Per rank:
    ``alpha * partners + max(sent, received) / beta`` with ``alpha =
    net_latency_s`` (seconds per message startup) and ``beta = net_bw``
    (bytes/second); the collective finishes when the slowest rank does.
    GPU machines also pay host-device staging of the payload over the
    PCIe/NVLink link (the paper includes host-device time in its ``C``
    kernel numbers).  Entries must be non-negative; returns seconds.
    """
    volume = _check_volume(volume_bytes)
    remote = volume.copy()
    np.fill_diagonal(remote, 0.0)
    sent = remote.sum(axis=1)
    received = remote.sum(axis=0)
    partners = ((remote + remote.T) > 0).sum(axis=1)
    per_rank = machine.net_latency_s * partners + np.maximum(sent, received) / machine.net_bw
    if include_device_transfer and machine.device.kind == "gpu":
        per_rank = per_rank + (sent + received) / machine.device.link_bw
    return float(per_rank.max()) if per_rank.size else 0.0


def alltoallv_time_from_log(log: CommLog, machine: MachineSpec) -> float:
    """Cost of the traffic accumulated in a :class:`CommLog`."""
    return alltoallv_time(log.volume_bytes, machine)


def allreduce_time(num_elements: int, num_ranks: int, machine: MachineSpec) -> float:
    """Seconds for an ``Allreduce`` of ``num_elements`` float32 values.

    Recursive-doubling model: ``log2(P)`` rounds, each moving the full
    ``4 * num_elements``-byte payload over the ``net_latency_s`` /
    ``net_bw`` network link — the ``O(N^2 log P)`` cost of the
    compute-centric approach's duplicated-domain reduction (paper
    Table 1).  ``num_elements`` must be non-negative and ``num_ranks``
    at least 1 (a single rank reduces locally for free).
    """
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be at least 1, got {num_ranks}")
    if num_elements < 0:
        raise ValueError(f"num_elements must be non-negative, got {num_elements}")
    if num_ranks == 1:
        return 0.0
    rounds = int(np.ceil(np.log2(num_ranks)))
    payload = 4.0 * num_elements
    per_round = machine.net_latency_s + payload / machine.net_bw
    if machine.device.kind == "gpu":
        per_round += 2.0 * payload / machine.device.link_bw
    return rounds * per_round


def hier_alltoallv_time(
    volume_bytes: np.ndarray,
    topology: Topology,
    machine: MachineSpec,
    include_device_transfer: bool = True,
) -> float:
    """Seconds for the two-level exchange of a pairwise byte matrix.

    Costs the hierarchical message pattern of
    :class:`~repro.topology.HierComm` under the α–β model with
    separate link classes: same-node messages and rank<->leader
    staging hops use the intra-node fabric (``intra_latency_s`` /
    ``intra_bw``); the aggregated leader-to-leader exchange uses the
    network (``net_latency_s`` / ``net_bw``).  The three stages are
    sequential (stage-up, inter exchange, stage-down), each finishing
    when its slowest participant does.  Returns seconds.
    """
    volume = _check_volume(volume_bytes)
    if volume.shape[0] != topology.num_ranks:
        raise ValueError(
            f"volume matrix is {volume.shape[0]}x{volume.shape[0]}, "
            f"topology spans {topology.num_ranks} ranks"
        )
    node_of = np.asarray(topology.node_map())
    num_nodes = topology.num_nodes
    remote = volume.copy()
    np.fill_diagonal(remote, 0.0)
    same_node = node_of[:, None] == node_of[None, :]
    intra_pair = np.where(same_node, remote, 0.0)
    cross = np.where(same_node, 0.0, remote)
    # Aggregated node-to-node volumes.
    inter = np.zeros((num_nodes, num_nodes), dtype=np.float64)
    np.add.at(inter, (node_of[:, None], node_of[None, :]), cross)
    leaders = np.asarray([topology.leader(g) for g in range(num_nodes)])
    is_leader = np.zeros(topology.num_ranks, dtype=bool)
    is_leader[leaders] = True

    alpha_i, beta_i = machine.intra_latency_s, machine.intra_bw
    # Stage-up: same-node pairwise traffic plus each non-leader rank's
    # combined remote payload moving to its leader.
    up_bytes = intra_pair.sum(axis=1) + np.where(is_leader, 0.0, cross.sum(axis=1))
    up_msgs = (intra_pair > 0).sum(axis=1) + (
        (~is_leader) & (cross.sum(axis=1) > 0)
    ).astype(np.int64)
    stage_up = alpha_i * up_msgs + up_bytes / beta_i
    # Stage-down: the mirror fan-out on the receive side.
    down_bytes = np.where(is_leader, 0.0, cross.sum(axis=0))
    down_msgs = ((~is_leader) & (cross.sum(axis=0) > 0)).astype(np.int64)
    stage_down = alpha_i * down_msgs + down_bytes / beta_i
    # Inter-node: one aggregated message per interacting node pair.
    node_partners = ((inter + inter.T) > 0).sum(axis=1)
    node_sent = inter.sum(axis=1)
    node_recv = inter.sum(axis=0)
    inter_time = machine.net_latency_s * node_partners + np.maximum(
        node_sent, node_recv
    ) / machine.net_bw
    total = (
        (float(stage_up.max()) if stage_up.size else 0.0)
        + (float(inter_time.max()) if inter_time.size else 0.0)
        + (float(stage_down.max()) if stage_down.size else 0.0)
    )
    if include_device_transfer and machine.device.kind == "gpu":
        total += float((node_sent + node_recv).max()) / machine.device.link_bw if num_nodes else 0.0
    return total


def overlapped_exchange_time(
    intra_seconds: float, inter_seconds: float, compute_seconds: float
) -> float:
    """Exchange wall time when compute hides the inter-node transfer.

    Petascale XCT overlaps the partial-projection compute (``A_p``)
    with the inter-node exchange: only the part of the network time
    that outlasts the compute is exposed.  The intra-node staging is
    serialized with the compute (it produces/consumes the buffers the
    kernels touch), so the exchange contributes ``intra + max(0, inter
    - compute)`` seconds of wall time.  All inputs in seconds,
    non-negative.
    """
    if intra_seconds < 0 or inter_seconds < 0 or compute_seconds < 0:
        raise ValueError("times must be non-negative seconds")
    return intra_seconds + max(0.0, inter_seconds - compute_seconds)


def memxct_comm_elements(
    num_projections: int, num_channels: int, num_ranks: int, overlap_constant: float = 1.0
) -> float:
    """Closed-form MemXCT communication volume (elements, total).

    ``O(M N sqrt(P))`` total — i.e. ``O(M N / sqrt(P))`` per rank — per
    paper Section 3.4.3.  ``overlap_constant`` is fitted from executed
    decompositions at small ``P`` (see :mod:`repro.dist.scaling`).
    """
    return overlap_constant * num_projections * num_channels * np.sqrt(max(num_ranks, 1))


def trace_comm_elements(num_channels: int, num_ranks: int) -> float:
    """Closed-form compute-centric (Trace) communication volume.

    ``O(N^2 log P)``: the duplicated ``N x N`` tomogram is all-reduced
    each backprojection.
    """
    if num_ranks <= 1:
        return 0.0
    return num_channels * num_channels * np.log2(num_ranks)
