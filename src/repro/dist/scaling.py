"""Scaling experiment driver (paper Fig. 11, Tables 5 and 7).

Two ingredients:

* **measured structure** — for rank counts that fit on this machine, we
  actually build the decomposition and the distributed operator at a
  scaled-down geometry and *measure* the communication footprint.
  Fitting ``total elements = c * M * N * sqrt(P)`` across executed rank
  counts validates the paper's ``O(MN sqrt(P))`` law and produces the
  overlap constant ``c``;
* **closed-form model** — the per-kernel times ``A_p`` (performance
  model on per-rank sub-matrices, including whether the per-rank
  regular data fits MCDRAM — the source of the paper's super-linear
  speedups), ``C`` (alpha-beta with the ``O(sqrt(P))`` handshake term)
  and ``R`` (reduction traffic at memory bandwidth), composed over the
  solver's iterations.

The benches plot both, so the shapes of Fig. 11 (weak scaling flat
except ``C ~ sqrt(P)``; strong scaling ``~ 1/P`` until communication
dominates) come out of the same mechanics the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.perf_model import KernelProfile, PerformanceModel
from ..machine.specs import MachineSpec
from ..utils.metrics import REGULAR_BYTES_BUFFERED, REGULAR_BYTES_CSR

__all__ = [
    "ScalingPoint",
    "model_solution_time",
    "weak_scaling_series",
    "strong_scaling_series",
    "model_preprocessing_time",
    "find_hier_crossover",
]

#: Default Siddon chord constant: nnz ~= chord * M * N^2 (measured
#: ~1.18 for the raster geometry; verified across scales in tests).
DEFAULT_CHORD_CONSTANT = 1.18

#: Ray-tracing + matrix-construction throughput of the (C/OpenMP)
#: preprocessing, seconds per nonzero per node.  Single-point
#: calibration against paper Table 5 (139 s for RDS1 on one KNL node);
#: the *scaling* of preprocessing across nodes is model output.
PREPROC_SECONDS_PER_NNZ = 19e-9

#: Per-rank interacting-neighbour count ~= HANDSHAKE_CONSTANT * sqrt(P)
#: (subdomain perimeter effect; measured from executed decompositions).
DEFAULT_HANDSHAKE_CONSTANT = 4.0


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve: per-solution kernel times (s).

    ``comm_seconds`` is the exchange *wall* time; on a hierarchical
    point it splits into ``intra_seconds`` (staging over the intra-node
    fabric) plus the exposed part of ``inter_seconds`` (the inter-node
    network time, of which ``overlap_saved_seconds`` was hidden behind
    the ``A_p`` compute when overlap modelling is on).
    """

    num_nodes: int
    num_projections: int
    num_channels: int
    ap_seconds: float
    comm_seconds: float
    reduction_seconds: float
    iterations: int
    intra_seconds: float = 0.0
    inter_seconds: float = 0.0
    overlap_saved_seconds: float = 0.0
    topology: str = "flat"

    @property
    def total_seconds(self) -> float:
        return self.ap_seconds + self.comm_seconds + self.reduction_seconds

    def row(self) -> tuple:
        return (
            self.num_nodes,
            f"{self.num_projections}x{self.num_channels}",
            round(self.total_seconds, 4),
            round(self.ap_seconds, 4),
            round(self.comm_seconds, 4),
            round(self.reduction_seconds, 4),
        )


def model_solution_time(
    num_projections: int,
    num_channels: int,
    machine: MachineSpec,
    num_nodes: int,
    iterations: int = 30,
    overlap_constant: float = 1.0,
    chord_constant: float = DEFAULT_CHORD_CONSTANT,
    handshake_constant: float = DEFAULT_HANDSHAKE_CONSTANT,
    optimization: str = "buffered",
    miss_rate: float = 0.05,
    hierarchical: bool = False,
    overlap: bool = False,
) -> ScalingPoint:
    """Model a full iterative solution (paper's 30-CG-iteration runs).

    Each iteration performs one forward and one backprojection, each
    consisting of ``A_p`` + ``C`` + ``R``.

    Parameters
    ----------
    overlap_constant:
        Fitted ``c`` in ``comm elements = c * M * N * sqrt(P)``.
    optimization:
        ``"buffered"`` (full MemXCT) or ``"csr"`` (Hilbert-ordered
        baseline) — selects regular bytes/FMA and latency exposure.
    miss_rate:
        Cache-simulated L2 miss rate of the irregular stream.
    hierarchical:
        Model the two-level exchange of Petascale XCT: the node's
        ``devices_per_node`` ranks stage over the intra-node fabric
        (``intra_latency_s`` / ``intra_bw``), then one leader per node
        runs the Alltoallv over ``num_nodes`` participants — the
        handshake and posting terms shrink from rank count to node
        count at the price of two intra-node payload hops and an
        ``devices_per_node``-times larger aggregate through each NIC.
    overlap:
        With ``hierarchical``, hide the inter-node exchange behind the
        ``A_p`` compute: only ``max(0, inter - ap)`` is exposed
        (``overlap_saved_seconds`` records the hidden part).
    """
    ranks = num_nodes * machine.devices_per_node
    nnz_total = chord_constant * num_projections * num_channels * num_channels
    nnz_per_rank = nnz_total / ranks

    if optimization == "buffered":
        bytes_per_fma = REGULAR_BYTES_BUFFERED
        profile = KernelProfile.buffered(
            nnz=int(nnz_per_rank),
            map_length=int(nnz_per_rank / 40),  # typical reuse ~40-65 (Fig. 6a)
            miss_rate=miss_rate,
            regular_data_bytes=nnz_per_rank * REGULAR_BYTES_BUFFERED,
        )
    elif optimization == "csr":
        bytes_per_fma = REGULAR_BYTES_CSR
        profile = KernelProfile.csr_baseline(
            nnz=int(nnz_per_rank),
            miss_rate=miss_rate,
            regular_data_bytes=nnz_per_rank * REGULAR_BYTES_CSR,
        )
    else:
        raise ValueError(f"unknown optimization {optimization!r}")
    del bytes_per_fma

    model = PerformanceModel(machine.device)
    ap = model.projection_time(profile, smt=machine.device.max_smt)

    # C: per-rank payload O(MN / sqrt(P)), O(sqrt(P)) handshakes with
    # actual partners, plus the Alltoallv posting cost O(P) — Table 1's
    # "MN/sqrt(P) + P" communication complexity.
    comm_elements_total = (
        overlap_constant * num_projections * num_channels * np.sqrt(ranks)
    )
    payload_per_rank = 4.0 * comm_elements_total / ranks
    intra = inter = saved = 0.0
    topology_label = "flat"
    if not hierarchical:
        partners = min(handshake_constant * np.sqrt(ranks), max(ranks - 1, 0))
        posting = 0.2 * machine.net_latency_s * ranks
        comm = machine.net_latency_s * partners + posting + payload_per_rank / machine.net_bw
        if machine.device.kind == "gpu":
            comm += 2.0 * payload_per_rank / machine.device.link_bw
        if ranks == 1:
            comm = 0.0
    else:
        # Two-level exchange: ranks stage their remote payload to the
        # node leader over the intra fabric (up + down hops), leaders
        # run the Alltoallv over num_nodes participants with the
        # devices_per_node-times aggregated payload.
        ranks_per_node = machine.devices_per_node
        topology_label = f"nodes:{num_nodes},ranks:{ranks_per_node}"
        if ranks_per_node > 1:
            intra = 2.0 * (
                machine.intra_latency_s + payload_per_rank / machine.intra_bw
            )
        if num_nodes > 1:
            node_partners = min(
                handshake_constant * np.sqrt(num_nodes), max(num_nodes - 1, 0)
            )
            posting = 0.2 * machine.net_latency_s * num_nodes
            node_payload = payload_per_rank * ranks_per_node
            inter = (
                machine.net_latency_s * node_partners
                + posting
                + node_payload / machine.net_bw
            )
            if machine.device.kind == "gpu":
                # The leader stages the node aggregate through its own
                # host-device link.
                inter += 2.0 * node_payload / machine.device.link_bw
        if overlap:
            exposed = max(0.0, inter - ap)
            saved = inter - exposed
            inter_wall = exposed
        else:
            inter_wall = inter
        comm = intra + inter_wall
        if ranks == 1:
            comm = intra = inter = saved = 0.0

    # R: the owner streams the received partials through memory once.
    reduction_bytes = 2.0 * payload_per_rank  # read partial + update owner copy
    red = reduction_bytes / model.effective_bandwidth(reduction_bytes) if ranks > 1 else 0.0

    per_projection = ap + comm + red
    scale = 2.0 * iterations  # forward + backprojection per iteration
    return ScalingPoint(
        num_nodes=num_nodes,
        num_projections=num_projections,
        num_channels=num_channels,
        ap_seconds=ap * scale,
        comm_seconds=comm * scale,
        reduction_seconds=red * scale,
        iterations=iterations,
        intra_seconds=intra * scale,
        inter_seconds=inter * scale,
        overlap_saved_seconds=saved * scale,
        topology=topology_label,
    )


def weak_scaling_series(
    root_projections: int,
    root_channels: int,
    machine: MachineSpec,
    steps: int,
    nodes_start: int = 1,
    **model_kwargs,
) -> list[ScalingPoint]:
    """Weak scaling: each step doubles M and N and multiplies nodes by 8.

    Cost grows as ``M N^2`` (x8 per step), so work per node is constant
    — paper Section 4.3.1's protocol for Fig. 11(a)-(b).
    """
    points = []
    for step in range(steps):
        points.append(
            model_solution_time(
                root_projections << step,
                root_channels << step,
                machine,
                nodes_start * (8**step),
                **model_kwargs,
            )
        )
    return points


def strong_scaling_series(
    num_projections: int,
    num_channels: int,
    machine: MachineSpec,
    node_counts: list[int],
    **model_kwargs,
) -> list[ScalingPoint]:
    """Strong scaling: fixed dataset, doubling node counts (Fig. 11(c)-(d))."""
    return [
        model_solution_time(num_projections, num_channels, machine, nodes, **model_kwargs)
        for nodes in node_counts
    ]


def find_hier_crossover(
    num_projections: int,
    num_channels: int,
    machine: MachineSpec,
    node_counts: list[int] | None = None,
    overlap: bool = True,
    **model_kwargs,
) -> dict:
    """Locate where the hierarchical exchange overtakes the flat one.

    Models the same strong-scaling sweep twice — flat and hierarchical
    (with comm/compute overlap by default) — and reports the smallest
    node count from which the hierarchical total solution time wins *and
    stays ahead* for every larger sampled count.  Mid-sweep, while the
    payload is bandwidth-dominated, flat is cheaper (no staging hops,
    no M-times aggregate through one NIC); as the posting/handshake
    latency terms grow with rank count, the two-level exchange's
    per-*node* costs take over — the crossover of Petascale XCT
    Fig. 11.  (A single node has no inter-node network at all, so a
    trivial win there does not count as the crossover.)

    Returns a dict with the per-node-count pairs (``points``: node
    count, flat/hier comm and total seconds) and ``crossover_nodes``
    (None when the sweep never settles in hierarchical's favour).
    """
    if node_counts is None:
        node_counts = [2**k for k in range(13)]  # 1 .. 4096
    points = []
    for nodes in node_counts:
        flat = model_solution_time(
            num_projections, num_channels, machine, nodes, **model_kwargs
        )
        hier = model_solution_time(
            num_projections,
            num_channels,
            machine,
            nodes,
            hierarchical=True,
            overlap=overlap,
            **model_kwargs,
        )
        points.append(
            {
                "nodes": nodes,
                "flat_comm_seconds": flat.comm_seconds,
                "hier_comm_seconds": hier.comm_seconds,
                "flat_total_seconds": flat.total_seconds,
                "hier_total_seconds": hier.total_seconds,
                "overlap_saved_seconds": hier.overlap_saved_seconds,
            }
        )
    crossover = None
    for point in reversed(points):
        if point["nodes"] > 1 and point["hier_total_seconds"] < point["flat_total_seconds"]:
            crossover = point["nodes"]
        else:
            break
    return {
        "machine": machine.name,
        "ranks_per_node": machine.devices_per_node,
        "overlap": overlap,
        "points": points,
        "crossover_nodes": crossover,
    }


def model_preprocessing_time(
    num_projections: int,
    num_channels: int,
    num_nodes: int,
    chord_constant: float = DEFAULT_CHORD_CONSTANT,
    serial_fraction: float = 0.002,
) -> float:
    """Model the 4-step preprocessing (Section 3.5) on ``num_nodes`` nodes.

    Ray tracing / transposition / buffer construction parallelize over
    ranks; a small serial fraction (ordering construction, global
    prefix sums) bounds the speedup, Amdahl-style.
    """
    nnz = chord_constant * num_projections * num_channels * num_channels
    base = nnz * PREPROC_SECONDS_PER_NNZ
    return base * (serial_fraction + (1.0 - serial_fraction) / num_nodes)
