"""Domain-duplication distributed baseline (Trace-style).

The compute-centric codes the paper compares against (Trace, paper
refs [10, 11]) parallelize the other way: sinogram rows are
partitioned across ranks and the **whole tomogram is duplicated** on
every rank, because backprojection scatters into it concurrently.
Each backprojection therefore ends with an ``MPI_Allreduce`` over the
full duplicated domain — the ``O(N^2 log P)`` communication and
``O(N^2)`` per-rank memory terms of paper Table 1.

This operator implements that scheme exactly (over the simulated
communicator, numerically identical to the MemXCT operator) so the
benchmarks can measure both approaches' traffic on equal footing.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix, scan_transpose
from .simmpi import SimComm

__all__ = ["DuplicatedOperator"]


class DuplicatedOperator:
    """Sinogram-partitioned, tomogram-duplicated projection operator.

    Vectors are in the same ordered coordinates as the matrix.  Forward
    projection is embarrassingly parallel (each rank computes its own
    sinogram rows from its full tomogram replica); backprojection
    produces one full-size partial tomogram per rank which the
    allreduce then sums.
    """

    def __init__(self, matrix: CSRMatrix, num_ranks: int, comm: SimComm | None = None):
        if num_ranks <= 0:
            raise ValueError(f"rank count must be positive, got {num_ranks}")
        self.matrix = matrix
        self.num_ranks = num_ranks
        self.comm = comm if comm is not None else SimComm(num_ranks)
        if self.comm.size != num_ranks:
            raise ValueError(f"communicator has {self.comm.size} ranks, expected {num_ranks}")
        # Contiguous sinogram-row ranges per rank.
        self.row_bounds = np.round(
            np.linspace(0, matrix.num_rows, num_ranks + 1)
        ).astype(np.int64)
        self._row_blocks: list[CSRMatrix] = []
        self._row_blocks_t: list[CSRMatrix] = []
        for p in range(num_ranks):
            r0, r1 = self.row_bounds[p], self.row_bounds[p + 1]
            rows = np.arange(r0, r1, dtype=np.int64)
            block = matrix.permute(rows, None)
            self._row_blocks.append(block)
            self._row_blocks_t.append(scan_transpose(block))

    @property
    def num_rays(self) -> int:
        return self.matrix.num_rows

    @property
    def num_pixels(self) -> int:
        return self.matrix.num_cols

    @property
    def per_rank_memory_elements(self) -> int:
        """Duplicated-domain memory per rank: the full tomogram."""
        return self.num_pixels

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``y = A x``: each rank projects its rows from its replica."""
        x32 = np.asarray(x, dtype=np.float32)
        if x32.shape[0] != self.num_pixels:
            raise ValueError(f"x has {x32.shape[0]} entries, expected {self.num_pixels}")
        pieces = [block.spmv(x32) for block in self._row_blocks]
        return np.concatenate(pieces)

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        """``x = A^T y``: per-rank partials reduced over the full domain.

        The allreduce of the ``N^2`` duplicated tomogram is what the
        paper's Table 1 charges as ``O(N^2 log P)`` communication.
        """
        y = np.asarray(y, dtype=np.float32)
        if y.shape[0] != self.num_rays:
            raise ValueError(f"y has {y.shape[0]} entries, expected {self.num_rays}")
        partials = []
        for p in range(self.num_ranks):
            r0, r1 = self.row_bounds[p], self.row_bounds[p + 1]
            partials.append(self._row_blocks_t[p].spmv(y[r0:r1]))
        return self.comm.allreduce_sum(partials)

    def row_sums(self) -> np.ndarray:
        return self.matrix.row_sums()

    def col_sums(self) -> np.ndarray:
        return self.matrix.col_sums()

    def allreduce_bytes_per_backprojection(self) -> int:
        """Exact traffic one backprojection generates (all ranks)."""
        per_rank = int(2 * (self.num_ranks - 1) / self.num_ranks * 4 * self.num_pixels)
        return per_rank * self.num_ranks if self.num_ranks > 1 else 0
