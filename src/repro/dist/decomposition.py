"""Both-domain decomposition over MPI ranks (paper Section 3.4, Fig. 4b).

Traditional distributed XCT partitions one domain and duplicates the
other; MemXCT partitions *both* the tomogram and the sinogram.  Each
rank owns one contiguous range of the two-level pseudo-Hilbert curve in
each domain — whole tiles, so subdomains are connected 2D regions.
Tile granularity controls load balance ("it can be improved by finer
tile granularity at the cost of more preprocessing").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ordering import DomainOrdering

__all__ = ["Decomposition", "decompose_domain", "decompose_both"]


@dataclass(frozen=True)
class Decomposition:
    """Contiguous curve-range ownership of one domain by ``num_ranks``.

    ``bounds`` has ``num_ranks + 1`` entries; rank ``p`` owns ordered
    positions ``bounds[p]:bounds[p + 1]``.
    """

    ordering: DomainOrdering
    num_ranks: int
    bounds: np.ndarray

    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Rank owning each ordered position (vectorized)."""
        return np.searchsorted(self.bounds, np.asarray(positions), side="right") - 1

    def rank_size(self, rank: int) -> int:
        """Number of cells owned by ``rank``."""
        return int(self.bounds[rank + 1] - self.bounds[rank])

    def load_imbalance(self) -> float:
        """``max / mean`` cells per rank (1.0 = perfect balance)."""
        sizes = np.diff(self.bounds).astype(np.float64)
        mean = sizes.mean()
        return float(sizes.max() / mean) if mean > 0 else 1.0

    def scatter(self, ordered: np.ndarray) -> list[np.ndarray]:
        """Split an ordered-domain vector into per-rank pieces."""
        return [
            np.asarray(ordered)[self.bounds[p] : self.bounds[p + 1]]
            for p in range(self.num_ranks)
        ]

    def gather(self, pieces: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank pieces into one ordered-domain vector."""
        if len(pieces) != self.num_ranks:
            raise ValueError(f"expected {self.num_ranks} pieces, got {len(pieces)}")
        return np.concatenate([np.asarray(p) for p in pieces])


def decompose_domain(ordering: DomainOrdering, num_ranks: int) -> Decomposition:
    """Assign contiguous curve ranges of one domain to ranks.

    For a two-level (pseudo-Hilbert) ordering, cuts are placed on tile
    boundaries — each subdomain is "a single or several tiles" exactly
    as in paper Fig. 4(b).  For tile-less orderings the cells are split
    evenly (used by comparison baselines).
    """
    if num_ranks <= 0:
        raise ValueError(f"rank count must be positive, got {num_ranks}")
    n = ordering.num_cells
    if ordering.two_level is not None and ordering.two_level.num_tiles >= num_ranks:
        tile_displ = ordering.two_level.tile_displ
        # Greedy: advance each cut to the tile boundary nearest the
        # ideal even split.
        bounds = np.zeros(num_ranks + 1, dtype=np.int64)
        bounds[-1] = n
        for p in range(1, num_ranks):
            target = round(p * n / num_ranks)
            idx = np.searchsorted(tile_displ, target)
            lo = tile_displ[max(idx - 1, 0)]
            hi = tile_displ[min(idx, len(tile_displ) - 1)]
            bounds[p] = lo if target - lo <= hi - target else hi
        bounds = np.maximum.accumulate(bounds)
    else:
        bounds = np.round(np.linspace(0, n, num_ranks + 1)).astype(np.int64)
    return Decomposition(ordering=ordering, num_ranks=num_ranks, bounds=bounds)


def decompose_both(
    tomo_ordering: DomainOrdering,
    sino_ordering: DomainOrdering,
    num_ranks: int,
) -> tuple[Decomposition, Decomposition]:
    """Decompose tomogram and sinogram domains over the same ranks."""
    return (
        decompose_domain(tomo_ordering, num_ranks),
        decompose_domain(sino_ordering, num_ranks),
    )
