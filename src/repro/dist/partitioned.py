"""Distributed MemXCT operator: the ``A = R C A_p`` factorization.

Paper Section 3.4: each rank owns one tomogram subdomain and one
sinogram subdomain (contiguous pseudo-Hilbert tile ranges).  Forward
projection is three steps —

* ``A_p`` — each rank forward-projects *its tomogram columns* into
  partial sums for every sinogram row it intersects;
* ``C``   — partial sinogram data moves to the rows' owners through a
  sparse ``Alltoallv`` (only interacting pairs exchange data);
* ``R``   — owners reduce overlapping partials.

Backprojection is the transpose path ``A^T = A_p^T C^T R^T``: owners
*duplicate* their sinogram values to every interacting rank, which
backprojects onto its own tomogram columns — no reduction on the
tomogram side because column ownership is disjoint.  Both passes are
pure gather/reduce; there are no scatter races anywhere.

The operator is numerically exact: ``forward``/``adjoint`` results are
bit-wise reproducible re-partitionings of the serial SpMV (verified in
tests for arbitrary rank counts).

Graceful degradation: when the (fault-injected) communicator reports a
rank crash, the serial-facade passes redistribute the dead rank's
tomogram columns and sinogram rows to the survivors, attach a fresh
communicator (same fault injector, same RNG stream), and re-execute
the pass.  On a flat topology the both-domain decomposition is rebuilt
globally over the surviving rank count; on a hierarchical topology
(``topology=`` / ambient ``REPRO_TOPOLOGY``) each crashed rank's curve
ranges are absorbed by the nearest surviving rank **of its own node
group first** — redistribution stays on the intra-node fabric and the
shrunken topology keeps node locality — falling back to the nearest
global neighbour only when a whole node died.  The solve continues;
only the partitioning changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import FAULT_RECOVERIES, add_count, span
from ..resilience.faults import RankCrashError
from ..sparse import CSRMatrix, scan_transpose
from ..topology import HierComm, HierLog, Topology
from .decomposition import Decomposition, decompose_both
from .simmpi import CommLog, SimComm

__all__ = ["DistributedOperator", "RankData"]

_VALUE_BYTES = 4  # float32 sinogram payloads on the wire


@dataclass
class RankData:
    """Preprocessed per-rank state.

    Attributes
    ----------
    partial_matrix:
        ``A_p`` — rows are this rank's *touched* sinogram rows (global
        ordered indices in ``touched_rows``), columns are the rank's
        local tomogram cells.
    partial_transpose:
        Scan-based transpose of ``A_p`` for backprojection.
    touched_rows:
        Sorted global sinogram positions with at least one nonzero in
        this rank's tomogram columns.
    send_segments:
        ``send_segments[q] = (lo, hi)`` slice of ``touched_rows`` owned
        by rank ``q`` (contiguous because ownership ranges are
        contiguous in curve order).
    """

    partial_matrix: CSRMatrix
    partial_transpose: CSRMatrix
    touched_rows: np.ndarray
    send_segments: list[tuple[int, int]]


class DistributedOperator:
    """MemXCT's distributed forward/backprojection over a SimComm.

    Vectors are in *ordered* coordinates: ``x`` along the tomogram
    curve, ``y`` along the sinogram curve.  The serial-API methods
    (:meth:`forward` / :meth:`adjoint`) scatter, execute all ranks, and
    gather, so the operator plugs directly into the solvers.
    """

    def __init__(
        self,
        matrix: CSRMatrix | None,
        tomo_dec: Decomposition,
        sino_dec: Decomposition,
        comm: SimComm | None = None,
        rank_data: list[RankData] | None = None,
        topology: Topology | None = None,
    ):
        if tomo_dec.num_ranks != sino_dec.num_ranks:
            raise ValueError("tomogram and sinogram decompositions must agree on ranks")
        if matrix is not None:
            if matrix.num_rows != sino_dec.ordering.num_cells:
                raise ValueError("matrix rows must match the sinogram domain")
            if matrix.num_cols != tomo_dec.ordering.num_cells:
                raise ValueError("matrix columns must match the tomogram domain")
        elif rank_data is None:
            raise ValueError("either a global matrix or per-rank data is required")
        self.matrix = matrix
        self.tomo_dec = tomo_dec
        self.sino_dec = sino_dec
        self.num_ranks = tomo_dec.num_ranks
        if topology is not None and topology.num_ranks != self.num_ranks:
            raise ValueError(
                f"topology spans {topology.num_ranks} ranks, "
                f"decompositions have {self.num_ranks}"
            )
        if comm is not None:
            self.comm = comm
            # An explicit communicator wins: a HierComm carries its own
            # topology, anything else runs flat.
            self.topology = getattr(comm, "topology", None) or Topology.flat(comm.size)
        else:
            self.topology = (
                topology if topology is not None else Topology.ambient(self.num_ranks)
            )
            self.comm = (
                SimComm(self.num_ranks)
                if self.topology.is_flat
                else HierComm(self.topology)
            )
        self.retired_logs: list[CommLog] = []
        self.degradations: list[dict] = []
        self._recv_local_ids: list[list[np.ndarray]] = []
        if rank_data is not None:
            if len(rank_data) != self.num_ranks:
                raise ValueError(
                    f"expected {self.num_ranks} rank-data entries, got {len(rank_data)}"
                )
            self.ranks = rank_data
        else:
            self.ranks = []
            self._build()
        self._build_recv_ids()

    # -- preprocessing --------------------------------------------------

    def _build(self) -> None:
        scipy_matrix = self.matrix.to_scipy().tocsc()
        sino_bounds = self.sino_dec.bounds
        for p in range(self.num_ranks):
            c0, c1 = self.tomo_dec.bounds[p], self.tomo_dec.bounds[p + 1]
            col_slice = scipy_matrix[:, c0:c1].tocsr()
            touched = np.flatnonzero(np.diff(col_slice.indptr)).astype(np.int64)
            partial = CSRMatrix.from_scipy(col_slice[touched])
            segments = []
            cuts = np.searchsorted(touched, sino_bounds)
            for q in range(self.num_ranks):
                segments.append((int(cuts[q]), int(cuts[q + 1])))
            self.ranks.append(
                RankData(
                    partial_matrix=partial,
                    partial_transpose=scan_transpose(partial),
                    touched_rows=touched,
                    send_segments=segments,
                )
            )

    def _build_recv_ids(self) -> None:
        """Receiver-side local row ids for the reduction step."""
        sino_bounds = self.sino_dec.bounds
        self._recv_local_ids = [
            [
                self.ranks[p].touched_rows[slice(*self.ranks[p].send_segments[q])]
                - sino_bounds[q]
                for p in range(self.num_ranks)
            ]
            for q in range(self.num_ranks)
        ]

    # -- protocol properties ---------------------------------------------

    @property
    def num_rays(self) -> int:
        return self.sino_dec.ordering.num_cells

    @property
    def num_pixels(self) -> int:
        return self.tomo_dec.ordering.num_cells

    # -- distributed passes -----------------------------------------------

    def forward_pieces(self, x_pieces: list[np.ndarray]) -> list[np.ndarray]:
        """Distributed forward projection on per-rank tomogram pieces."""
        # A_p: partial forward projections.
        partials = [
            self.ranks[p].partial_matrix.spmv(np.asarray(x_pieces[p], dtype=np.float32))
            for p in range(self.num_ranks)
        ]
        # C: sparse exchange of partial sinogram segments.
        send = [
            [
                partials[p][slice(*self.ranks[p].send_segments[q])].astype(
                    np.float32, copy=False
                )
                for q in range(self.num_ranks)
            ]
            for p in range(self.num_ranks)
        ]
        recv = self.comm.alltoallv(send)
        # R: overlapped reduction at the owners.
        y_pieces = []
        for q in range(self.num_ranks):
            y_q = np.zeros(self.sino_dec.rank_size(q), dtype=np.float64)
            for p in range(self.num_ranks):
                ids = self._recv_local_ids[q][p]
                if ids.shape[0]:
                    np.add.at(y_q, ids, recv[q][p].astype(np.float64))
            y_pieces.append(y_q)
        return y_pieces

    def adjoint_pieces(self, y_pieces: list[np.ndarray]) -> list[np.ndarray]:
        """Distributed backprojection on per-rank sinogram pieces."""
        # R^T/C^T: owners duplicate their sinogram values to interactors.
        send = [
            [
                np.asarray(y_pieces[q], dtype=np.float32)[self._recv_local_ids[q][p]]
                for p in range(self.num_ranks)
            ]
            for q in range(self.num_ranks)
        ]
        recv = self.comm.alltoallv(send)
        # A_p^T: local backprojection onto owned tomogram columns.
        x_pieces = []
        for p in range(self.num_ranks):
            # Segments arrive in ascending owner order = ascending
            # touched-row order, so concatenation realigns with A_p rows.
            y_sub = np.concatenate(
                [recv[p][q] for q in range(self.num_ranks)]
                or [np.empty(0, dtype=np.float32)]
            )
            x_pieces.append(self.ranks[p].partial_transpose.spmv(y_sub))
        return x_pieces

    # -- graceful degradation ----------------------------------------------

    def degrade(self, dead_ranks) -> None:
        """Redistribute crashed ranks' subdomains to the survivors.

        On a flat topology the both-domain decomposition is rebuilt
        globally over ``num_ranks - len(dead_ranks)`` ranks (survivors
        renumber).  On a hierarchical topology each dead rank's curve
        ranges are absorbed by the nearest surviving rank of its own
        node group — keeping the redistribution on the intra-node
        fabric — with the nearest global neighbour as fallback when an
        entire node died; the shrunken :class:`Topology` preserves the
        survivors' node placement.  Either way ``A_p``/``A_p^T`` and
        the exchange segments are re-partitioned and a fresh
        communicator inherits the fault injector so the chaos schedule
        keeps running.  Requires the global matrix — per-rank-only
        operators cannot re-shard the lost columns.
        """
        dead = sorted(set(int(r) for r in dead_ranks))
        survivors = self.num_ranks - len(dead)
        if survivors < 1:
            raise RankCrashError(dead)
        if self.matrix is None:
            raise RuntimeError(
                "cannot degrade: operator was built from per-rank data only; "
                "the global matrix is required to redistribute a dead rank"
            )
        with span("resilience.degrade", dead=dead, survivors=survivors):
            injector = self.comm.fault_injector
            if injector is not None:
                injector.consume_crashes()
                injector.record_recovery(len(dead))
            self.retired_logs.append(self.comm.log)
            record = {
                "dead": dead,
                "from_ranks": self.num_ranks,
                "to_ranks": survivors,
                "topology": self.topology.describe(),
            }
            if self.topology.is_flat:
                self.tomo_dec, self.sino_dec = decompose_both(
                    self.tomo_dec.ordering, self.sino_dec.ordering, survivors
                )
                self.topology = Topology.flat(survivors)
                self.comm = SimComm(survivors, fault_injector=injector)
            else:
                absorbed_by = self._absorption_targets(dead)
                record["absorbed_by"] = absorbed_by
                self.tomo_dec = _absorb_ranges(self.tomo_dec, absorbed_by)
                self.sino_dec = _absorb_ranges(self.sino_dec, absorbed_by)
                self.topology = self.topology.without_ranks(set(dead))
                self.comm = HierComm(self.topology, fault_injector=injector)
            self.degradations.append(record)
            self.num_ranks = survivors
            self.ranks = []
            self._build()
            self._build_recv_ids()
        add_count(FAULT_RECOVERIES, len(dead))

    def _absorption_targets(self, dead: list[int]) -> dict[int, int]:
        """Surviving rank that inherits each dead rank's curve ranges.

        Prefers the nearest survivor inside the dead rank's node group
        (ties go left); node groups are contiguous rank runs, so the
        same-node nearest never skips a survivor and the absorbed
        ranges always merge into tile-aligned bounds.  When a whole
        node died, falls back to the globally nearest survivor.
        """
        dead_set = set(dead)
        alive = [r for r in range(self.num_ranks) if r not in dead_set]
        targets: dict[int, int] = {}
        for d in dead:
            group = self.topology.group(self.topology.node_of(d))
            candidates = [r for r in group if r not in dead_set] or alive
            targets[d] = min(candidates, key=lambda r: (abs(r - d), r))
        return targets

    def _absorbing_crashes(self, apply_pass):
        """Run a serial-facade pass, degrading past any rank crashes."""
        while True:
            try:
                return apply_pass()
            except RankCrashError as exc:
                self.degrade(exc.ranks)

    # -- serial facade (solver protocol) -----------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` with ordered-domain vectors."""
        x = np.asarray(x)

        def run():
            pieces = self.tomo_dec.scatter(x)
            return self.sino_dec.gather(self.forward_pieces(pieces))

        return self._absorbing_crashes(run)

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        """``x = A^T y`` with ordered-domain vectors."""
        y = np.asarray(y)

        def run():
            pieces = self.sino_dec.scatter(y)
            return self.tomo_dec.gather(self.adjoint_pieces(pieces))

        return self._absorbing_crashes(run)

    def row_sums(self) -> np.ndarray:
        if self.matrix is not None:
            return self.matrix.row_sums()
        return self.forward(np.ones(self.num_pixels, dtype=np.float32))

    def col_sums(self) -> np.ndarray:
        if self.matrix is not None:
            return self.matrix.col_sums()
        return self.adjoint(np.ones(self.num_rays, dtype=np.float32))

    # -- accounting ---------------------------------------------------------

    def communication_matrix(self) -> np.ndarray:
        """Forward-pass bytes between every rank pair (paper Fig. 7(c)).

        Entry ``[p, q]`` is what ``p`` sends to ``q`` during ``C``; the
        backprojection matrix is its transpose (paper Section 3.4.2).
        """
        volume = np.zeros((self.num_ranks, self.num_ranks), dtype=np.int64)
        for p in range(self.num_ranks):
            for q in range(self.num_ranks):
                lo, hi = self.ranks[p].send_segments[q]
                if p != q:
                    volume[p, q] = (hi - lo) * _VALUE_BYTES
        return volume

    def interaction_counts(self) -> np.ndarray:
        """Number of interacting partner ranks per rank."""
        volume = self.communication_matrix()
        return ((volume + volume.T) > 0).sum(axis=1)

    def per_rank_nnz(self) -> np.ndarray:
        """Nonzeros of each rank's ``A_p`` (compute load balance)."""
        return np.asarray([r.partial_matrix.nnz for r in self.ranks], dtype=np.int64)

    def reduction_elements(self) -> int:
        """Total elements summed by ``R`` in one forward pass."""
        return int(sum(r.touched_rows.shape[0] for r in self.ranks))

    def last_comm_log(self) -> CommLog:
        """Traffic log of the underlying communicator."""
        return self.comm.log

    def hier_log(self) -> HierLog | None:
        """Two-level traffic split (None on a flat communicator)."""
        return getattr(self.comm, "hier", None)


def _absorb_ranges(dec: Decomposition, absorbed_by: dict[int, int]) -> Decomposition:
    """Merge dead ranks' curve ranges into their absorbing survivors.

    Every dead rank maps to a survivor on the same side of any other
    survivor (nearest-neighbour assignment over contiguous groups), so
    each survivor inherits a contiguous run of ranks and the new
    bounds are a subset of the old tile-aligned cuts.
    """
    sizes = np.diff(dec.bounds)
    merged = sizes.astype(np.int64).copy()
    for d, t in absorbed_by.items():
        merged[t] += merged[d]
        merged[d] = 0
    survivor_sizes = np.asarray(
        [merged[r] for r in range(dec.num_ranks) if r not in absorbed_by],
        dtype=np.int64,
    )
    bounds = np.zeros(survivor_sizes.shape[0] + 1, dtype=np.int64)
    np.cumsum(survivor_sizes, out=bounds[1:])
    return Decomposition(
        ordering=dec.ordering, num_ranks=survivor_sizes.shape[0], bounds=bounds
    )
