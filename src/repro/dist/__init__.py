"""Distributed-memory substrate: simulated MPI, both-domain
decomposition, the A = R C A_p partitioned operator, communication cost
models, and scaling drivers (paper Section 3.4, Fig. 11)."""

from .comm_model import (
    allreduce_time,
    alltoallv_time,
    alltoallv_time_from_log,
    hier_alltoallv_time,
    memxct_comm_elements,
    overlapped_exchange_time,
    trace_comm_elements,
)
from .duplicated import DuplicatedOperator
from .decomposition import Decomposition, decompose_both, decompose_domain
from .partitioned import DistributedOperator, RankData
from .preprocess import distributed_preprocess
from .scaling import (
    ScalingPoint,
    find_hier_crossover,
    model_preprocessing_time,
    model_solution_time,
    strong_scaling_series,
    weak_scaling_series,
)
from .simmpi import CommLog, SimComm

__all__ = [
    "allreduce_time",
    "alltoallv_time",
    "alltoallv_time_from_log",
    "hier_alltoallv_time",
    "overlapped_exchange_time",
    "memxct_comm_elements",
    "trace_comm_elements",
    "find_hier_crossover",
    "Decomposition",
    "DuplicatedOperator",
    "decompose_both",
    "decompose_domain",
    "DistributedOperator",
    "RankData",
    "distributed_preprocess",
    "ScalingPoint",
    "model_preprocessing_time",
    "model_solution_time",
    "strong_scaling_series",
    "weak_scaling_series",
    "CommLog",
    "SimComm",
]
