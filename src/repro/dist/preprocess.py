"""Distributed (MPI-parallel) preprocessing — paper Section 3.5.

The paper's preprocessing "is MPI+OpenMP parallel": ranks trace
disjoint subsets of the projection angles, then route each traced
nonzero to the rank that owns its tomogram column, so the *global*
matrix never materializes on any single node — the property that lets
per-node memory shrink as 1/P and makes terabyte-scale problems fit.

The pipeline here mirrors that exactly over the simulated
communicator:

1. every rank runs Siddon tracing for its angle range (angle-parallel,
   embarrassingly so);
2. the traced (row, column, length) triplets are exchanged with one
   ``Alltoallv`` keyed by the tomogram-column owner;
3. each rank assembles its partial matrix ``A_p``, its scan-based
   transpose, and the send segments of the communication plan —
   exactly the :class:`RankData` the runtime operator consumes.

The result is numerically identical to slicing a globally-built matrix
(verified in tests); the difference is the memory high-water mark.
"""

from __future__ import annotations

import numpy as np

from ..geometry import ParallelBeamGeometry
from ..ordering import make_ordering
from ..sparse import CSRMatrix, scan_transpose
from ..topology import HierComm, Topology
from ..trace import trace_angle
from .decomposition import decompose_both
from .partitioned import DistributedOperator, RankData
from .simmpi import SimComm

__all__ = ["distributed_preprocess"]


def _trace_rank_triplets(
    geometry: ParallelBeamGeometry,
    angle_range: tuple[int, int],
    sino_rank: np.ndarray,
    tomo_rank: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trace one rank's angles; return ordered-coordinate triplets."""
    rows, cols, vals = [], [], []
    for angle_index in range(*angle_range):
        segs = trace_angle(geometry, angle_index)
        rows.append(sino_rank[segs.ray_index])
        cols.append(tomo_rank[segs.pixel_index])
        vals.append(segs.length.astype(np.float32))
    if not rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float32)
    return np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)


def _assemble_rank(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    col_range: tuple[int, int],
    sino_bounds: np.ndarray,
    num_ranks: int,
) -> RankData:
    """Build one rank's RankData from its received triplets."""
    local_cols = cols - col_range[0]
    order = np.lexsort((local_cols, rows))
    rows = rows[order]
    local_cols = local_cols[order]
    vals = vals[order]

    touched, inverse = np.unique(rows, return_inverse=True)
    num_local_cols = col_range[1] - col_range[0]
    counts = np.bincount(inverse, minlength=touched.shape[0])
    displ = np.zeros(touched.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=displ[1:])
    partial = CSRMatrix(
        displ=displ,
        ind=local_cols.astype(np.int32),
        val=vals,
        num_cols=num_local_cols,
    )
    # Duplicate (row, col) entries from corner-grazing rays were summed
    # by the serial builder; replicate by collapsing via scipy.
    scipy_partial = partial.to_scipy()
    scipy_partial.sum_duplicates()
    partial = CSRMatrix.from_scipy(scipy_partial)

    cuts = np.searchsorted(touched, sino_bounds)
    segments = [(int(cuts[q]), int(cuts[q + 1])) for q in range(num_ranks)]
    return RankData(
        partial_matrix=partial,
        partial_transpose=scan_transpose(partial),
        touched_rows=touched,
        send_segments=segments,
    )


def distributed_preprocess(
    geometry: ParallelBeamGeometry,
    num_ranks: int,
    ordering: str = "pseudo-hilbert",
    min_tiles: int = 16,
    comm: SimComm | None = None,
    topology: Topology | None = None,
) -> DistributedOperator:
    """Preprocess in parallel across simulated ranks.

    Returns a ready :class:`DistributedOperator` whose per-rank data
    was built without ever holding the full matrix: rank ``r`` traces
    angles ``[r*M/P, (r+1)*M/P)`` and ships each nonzero to its
    tomogram-column owner.  With a non-flat ``topology`` (explicit or
    ambient ``REPRO_TOPOLOGY``), the triplet exchange and the returned
    operator run over a hierarchical :class:`HierComm`.
    """
    if num_ranks <= 0:
        raise ValueError(f"rank count must be positive, got {num_ranks}")
    if comm is None:
        topology = topology if topology is not None else Topology.ambient(num_ranks)
        if topology.num_ranks != num_ranks:
            raise ValueError(
                f"topology spans {topology.num_ranks} ranks, expected {num_ranks}"
            )
        comm = SimComm(num_ranks) if topology.is_flat else HierComm(topology)
    if comm.size != num_ranks:
        raise ValueError(f"communicator has {comm.size} ranks, expected {num_ranks}")

    n = geometry.grid.n
    tomo_ordering = make_ordering(ordering, n, n, min_tiles=min_tiles)
    sino_ordering = make_ordering(
        ordering, geometry.num_angles, geometry.num_channels, min_tiles=min_tiles
    )
    tomo_dec, sino_dec = decompose_both(tomo_ordering, sino_ordering, num_ranks)

    # Step 1+2: angle-parallel tracing, then triplet exchange by column
    # owner.  The three parallel Alltoallv calls model one exchange of
    # a (row, col, val) struct stream.
    angle_cuts = np.round(np.linspace(0, geometry.num_angles, num_ranks + 1)).astype(int)
    send_rows: list[list[np.ndarray]] = []
    send_cols: list[list[np.ndarray]] = []
    send_vals: list[list[np.ndarray]] = []
    for r in range(num_ranks):
        rows, cols, vals = _trace_rank_triplets(
            geometry,
            (int(angle_cuts[r]), int(angle_cuts[r + 1])),
            sino_ordering.rank,
            tomo_ordering.rank,
        )
        owners = tomo_dec.owner_of(cols)
        order = np.argsort(owners, kind="stable")
        rows, cols, vals, owners = rows[order], cols[order], vals[order], owners[order]
        cuts = np.searchsorted(owners, np.arange(num_ranks + 1))
        send_rows.append([rows[cuts[q] : cuts[q + 1]] for q in range(num_ranks)])
        send_cols.append([cols[cuts[q] : cuts[q + 1]] for q in range(num_ranks)])
        send_vals.append([vals[cuts[q] : cuts[q + 1]] for q in range(num_ranks)])
    recv_rows = comm.alltoallv(send_rows)
    recv_cols = comm.alltoallv(send_cols)
    recv_vals = comm.alltoallv(send_vals)

    # Step 3: per-rank assembly.
    rank_data = []
    for p in range(num_ranks):
        rows = np.concatenate(recv_rows[p]) if recv_rows[p] else np.empty(0, np.int64)
        cols = np.concatenate(recv_cols[p]) if recv_cols[p] else np.empty(0, np.int64)
        vals = np.concatenate(recv_vals[p]) if recv_vals[p] else np.empty(0, np.float32)
        rank_data.append(
            _assemble_rank(
                rows,
                cols,
                vals,
                (int(tomo_dec.bounds[p]), int(tomo_dec.bounds[p + 1])),
                sino_dec.bounds,
                num_ranks,
            )
        )

    return DistributedOperator(
        matrix=None,
        tomo_dec=tomo_dec,
        sino_dec=sino_dec,
        comm=comm,
        rank_data=rank_data,
    )
