"""Simulated MPI communicator.

mpi4py is not available in this environment (and benchmarking 4096
real ranks on one core would be meaningless anyway), so the
distributed layer runs all ranks **sequentially in-process** against a
:class:`SimComm` that implements the two collectives MemXCT needs —
``Alltoallv`` (sparse both-domain exchange, paper Section 3.4.1) and
``Allreduce`` (what the compute-centric domain-duplication approach
must do instead).  Data movement is numerically exact — identical to a
real MPI run — and every byte is logged so the communication matrices
(paper Fig. 7) and cost models are driven by real traffic.

Resilience
----------
A :class:`~repro.resilience.FaultInjector` can be attached (explicitly
or ambiently through ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``), in
which case both collectives run a **reliable transport**: every remote
message carries a CRC-32 checksum, dropped or corrupted messages are
detected and re-sent with exponential backoff, and a simulated rank
crash surfaces as :class:`~repro.resilience.RankCrashError` so the
partitioned operator can redistribute the dead rank's subdomains
(graceful degradation).  The :class:`CommLog` keeps recording
*logical* traffic — retry overhead is reported separately through the
``fault.*`` obs counters, so cost models and the Fig. 7 communication
matrices are unchanged by chaos testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import (
    COMM_BYTES,
    COMM_MESSAGES,
    FAULT_RECOVERIES,
    REGISTRY,
    add_count,
    span,
)
from ..resilience.faults import (
    CommDeliveryError,
    FaultConfig,
    FaultInjector,
    RankCrashError,
    payload_crc,
)

__all__ = ["CommLog", "SimComm"]


@dataclass
class CommLog:
    """Accumulated traffic of a simulated communicator.

    ``volume_bytes[p, q]`` is the total payload rank ``p`` sent to rank
    ``q``; ``message_counts[p, q]`` the number of nonempty messages.
    Self-sends (``p == q``) are local copies and logged separately so
    cost models can exclude them.  Both matrices record *logical*
    traffic: a message that needed three delivery attempts under fault
    injection is still one message.
    """

    size: int
    volume_bytes: np.ndarray | None = None
    message_counts: np.ndarray | None = None
    collective_calls: int = 0

    def __post_init__(self) -> None:
        if self.volume_bytes is None:
            self.volume_bytes = np.zeros((self.size, self.size), dtype=np.int64)
        if self.message_counts is None:
            self.message_counts = np.zeros((self.size, self.size), dtype=np.int64)

    def off_diagonal_volume(self) -> int:
        """Total bytes that actually crossed the (simulated) network."""
        return int(self.volume_bytes.sum() - np.trace(self.volume_bytes))

    def partners_per_rank(self) -> np.ndarray:
        """Distinct remote peers each rank exchanged data with."""
        remote = self.message_counts.copy()
        np.fill_diagonal(remote, 0)
        return ((remote + remote.T) > 0).sum(axis=1)

    def send_bytes_per_rank(self) -> np.ndarray:
        """Outgoing remote bytes per rank (paper Fig. 7(e))."""
        remote = self.volume_bytes.copy()
        np.fill_diagonal(remote, 0)
        return remote.sum(axis=1)

    def recv_bytes_per_rank(self) -> np.ndarray:
        """Incoming remote bytes per rank (paper Fig. 7(e))."""
        remote = self.volume_bytes.copy()
        np.fill_diagonal(remote, 0)
        return remote.sum(axis=0)


class SimComm:
    """A P-rank communicator executed sequentially in one process.

    ``fault_injector`` enables the reliable-transport path; when
    omitted, the ambient ``REPRO_FAULTS`` environment spec (if any)
    supplies one, so unmodified callers can run under chaos.
    """

    def __init__(self, size: int, fault_injector: FaultInjector | None = None):
        if size <= 0:
            raise ValueError(f"communicator size must be positive, got {size}")
        self.size = size
        self.log = CommLog(size)
        if fault_injector is None:
            env_config = FaultConfig.from_env()
            if env_config is not None:
                fault_injector = FaultInjector(env_config)
        self.fault_injector = fault_injector

    def reset_log(self) -> None:
        """Zero the traffic counters (e.g. between forward and back passes)."""
        self.log = CommLog(self.size)

    def alltoallv(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """Sparse all-to-all of numpy arrays.

        ``send[p][q]`` is the array rank ``p`` sends to rank ``q``
        (possibly empty).  Returns ``recv`` with ``recv[q][p] ==
        send[p][q]``.  Arrays are not copied — sequential simulated
        ranks may alias safely because each rank's compute phase
        finishes before the exchange.

        With a fault injector attached, delivery is checksum-verified
        and retried; raises :class:`RankCrashError` when a scheduled
        rank crash fires, :class:`CommDeliveryError` when a message
        exceeds the retry budget.
        """
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError(f"send matrix must be {self.size} x {self.size}")
        if not REGISTRY.active:
            return self._alltoallv_exchange(send)
        with span("comm.alltoallv", ranks=self.size):
            recv = self._alltoallv_exchange(send)
        return recv

    def _alltoallv_exchange(
        self, send: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        self.log.collective_calls += 1
        remote_bytes = 0
        remote_messages = 0
        for p in range(self.size):
            for q in range(self.size):
                buf = send[p][q]
                nbytes = int(np.asarray(buf).nbytes)
                if nbytes:
                    self.log.volume_bytes[p, q] += nbytes
                    self.log.message_counts[p, q] += 1
                    if p != q:
                        remote_bytes += nbytes
                        remote_messages += 1
        add_count(COMM_BYTES, remote_bytes)
        add_count(COMM_MESSAGES, remote_messages)
        # An injector with nothing configured (all probabilities zero,
        # no crash schedule) takes the plain path: the armed-but-idle
        # configuration must not pay the per-message delivery loop.
        if self.fault_injector is None or not self.fault_injector.config.any_faults:
            return [[send[p][q] for p in range(self.size)] for q in range(self.size)]
        return self._alltoallv_reliable(send)

    def _alltoallv_reliable(
        self, send: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Checksum-verified, retried delivery of the exchange."""
        inj = self.fault_injector
        inj.begin_collective()
        dead = inj.dead_ranks()
        if dead:
            raise RankCrashError(dead)
        recv: list[list[np.ndarray]] = [
            [send[p][q] for p in range(self.size)] for q in range(self.size)
        ]
        pending = [
            (p, q) for p in range(self.size) for q in range(self.size) if p != q
        ]
        attempt = 0
        healed = 0
        while pending:
            failed: list[tuple[int, int]] = []
            for p, q in pending:
                payload = send[p][q]
                outcome = inj.draw(p, q)
                if outcome == "drop":
                    failed.append((p, q))
                    continue
                if outcome == "corrupt":
                    # The wire frame carries the sender-side CRC; the
                    # receiver verifies it and rejects the mangled copy.
                    delivered = inj.corrupt_payload(payload)
                    if payload_crc(delivered) != payload_crc(payload):
                        failed.append((p, q))
                        continue
                elif outcome == "delay":
                    inj.stats.backoff_seconds += inj.config.backoff_base
                recv[q][p] = payload
                if attempt > 0:
                    healed += 1
            if not failed:
                break
            if attempt >= inj.config.max_retries:
                raise CommDeliveryError(
                    f"{len(failed)} message(s) undeliverable after "
                    f"{attempt + 1} attempts (e.g. rank {failed[0][0]} -> "
                    f"{failed[0][1]})"
                )
            inj.charge_backoff(attempt, len(failed))
            pending = failed
            attempt += 1
        if healed:
            inj.record_recovery(healed)
            add_count(FAULT_RECOVERIES, healed)
        return recv

    def allreduce_sum(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum-reduction of one equal-shaped array per rank.

        Models the compute-centric approach's ``MPI_Allreduce`` over
        duplicated tomogram domains; traffic is logged with the
        recursive-halving volume ``2 * (P-1)/P * bytes`` per rank.
        """
        if len(contributions) != self.size:
            raise ValueError(f"expected {self.size} contributions")
        shapes = {np.asarray(c).shape for c in contributions}
        if len(shapes) != 1:
            raise ValueError(f"contributions must share a shape, got {shapes}")
        if not REGISTRY.active:
            return self._allreduce_exchange(contributions)
        with span("comm.allreduce", ranks=self.size):
            total = self._allreduce_exchange(contributions)
        return total

    def _allreduce_exchange(self, contributions: list[np.ndarray]) -> np.ndarray:
        self.log.collective_calls += 1
        if self.fault_injector is not None and self.fault_injector.config.any_faults:
            self._allreduce_reliable_delivery(contributions)
        total = np.zeros_like(np.asarray(contributions[0], dtype=np.float64))
        for c in contributions:
            total += np.asarray(c, dtype=np.float64)
        per_rank_bytes = int(
            2 * (self.size - 1) / self.size * np.asarray(contributions[0]).nbytes
        )
        remote_bytes = 0
        remote_messages = 0
        for p in range(self.size):
            q = (p + 1) % self.size  # ring-neighbour attribution for logging
            if p != q:
                self.log.volume_bytes[p, q] += per_rank_bytes
                self.log.message_counts[p, q] += 1
                remote_bytes += per_rank_bytes
                remote_messages += 1
        add_count(COMM_BYTES, remote_bytes)
        add_count(COMM_MESSAGES, remote_messages)
        return total

    def _allreduce_reliable_delivery(self, contributions: list[np.ndarray]) -> None:
        """Fault/retry pass over each rank's reduction-tree contribution.

        The reduction itself stays bit-exact (retry re-sends the
        original payload), so this only models the *delivery* of each
        rank's contribution to its ring neighbour.
        """
        inj = self.fault_injector
        inj.begin_collective()
        dead = inj.dead_ranks()
        if dead:
            raise RankCrashError(dead)
        pending = [p for p in range(self.size) if self.size > 1]
        attempt = 0
        healed = 0
        while pending:
            failed: list[int] = []
            for p in pending:
                payload = contributions[p]
                outcome = inj.draw(p, (p + 1) % self.size)
                if outcome == "drop":
                    failed.append(p)
                    continue
                if outcome == "corrupt":
                    delivered = inj.corrupt_payload(payload)
                    if payload_crc(delivered) != payload_crc(payload):
                        failed.append(p)
                        continue
                elif outcome == "delay":
                    inj.stats.backoff_seconds += inj.config.backoff_base
                if attempt > 0:
                    healed += 1
            if not failed:
                break
            if attempt >= inj.config.max_retries:
                raise CommDeliveryError(
                    f"{len(failed)} allreduce contribution(s) undeliverable "
                    f"after {attempt + 1} attempts"
                )
            inj.charge_backoff(attempt, len(failed))
            pending = failed
            attempt += 1
        if healed:
            inj.record_recovery(healed)
            add_count(FAULT_RECOVERIES, healed)
