"""Simulated MPI communicator.

mpi4py is not available in this environment (and benchmarking 4096
real ranks on one core would be meaningless anyway), so the
distributed layer runs all ranks **sequentially in-process** against a
:class:`SimComm` that implements the two collectives MemXCT needs —
``Alltoallv`` (sparse both-domain exchange, paper Section 3.4.1) and
``Allreduce`` (what the compute-centric domain-duplication approach
must do instead).  Data movement is numerically exact — identical to a
real MPI run — and every byte is logged so the communication matrices
(paper Fig. 7) and cost models are driven by real traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import COMM_BYTES, COMM_MESSAGES, REGISTRY, add_count, span

__all__ = ["CommLog", "SimComm"]


@dataclass
class CommLog:
    """Accumulated traffic of a simulated communicator.

    ``volume_bytes[p, q]`` is the total payload rank ``p`` sent to rank
    ``q``; ``message_counts[p, q]`` the number of nonempty messages.
    Self-sends (``p == q``) are local copies and logged separately so
    cost models can exclude them.
    """

    size: int
    volume_bytes: np.ndarray = field(default=None)  # type: ignore[assignment]
    message_counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    collective_calls: int = 0

    def __post_init__(self) -> None:
        if self.volume_bytes is None:
            self.volume_bytes = np.zeros((self.size, self.size), dtype=np.int64)
        if self.message_counts is None:
            self.message_counts = np.zeros((self.size, self.size), dtype=np.int64)

    def off_diagonal_volume(self) -> int:
        """Total bytes that actually crossed the (simulated) network."""
        return int(self.volume_bytes.sum() - np.trace(self.volume_bytes))

    def partners_per_rank(self) -> np.ndarray:
        """Distinct remote peers each rank exchanged data with."""
        remote = self.message_counts.copy()
        np.fill_diagonal(remote, 0)
        return ((remote + remote.T) > 0).sum(axis=1)

    def send_bytes_per_rank(self) -> np.ndarray:
        """Outgoing remote bytes per rank (paper Fig. 7(e))."""
        remote = self.volume_bytes.copy()
        np.fill_diagonal(remote, 0)
        return remote.sum(axis=1)

    def recv_bytes_per_rank(self) -> np.ndarray:
        """Incoming remote bytes per rank (paper Fig. 7(e))."""
        remote = self.volume_bytes.copy()
        np.fill_diagonal(remote, 0)
        return remote.sum(axis=0)


class SimComm:
    """A P-rank communicator executed sequentially in one process."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"communicator size must be positive, got {size}")
        self.size = size
        self.log = CommLog(size)

    def reset_log(self) -> None:
        """Zero the traffic counters (e.g. between forward and back passes)."""
        self.log = CommLog(self.size)

    def alltoallv(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """Sparse all-to-all of numpy arrays.

        ``send[p][q]`` is the array rank ``p`` sends to rank ``q``
        (possibly empty).  Returns ``recv`` with ``recv[q][p] ==
        send[p][q]``.  Arrays are not copied — sequential simulated
        ranks may alias safely because each rank's compute phase
        finishes before the exchange.
        """
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError(f"send matrix must be {self.size} x {self.size}")
        if not REGISTRY.active:
            return self._alltoallv_exchange(send)
        with span("comm.alltoallv", ranks=self.size):
            recv = self._alltoallv_exchange(send)
        return recv

    def _alltoallv_exchange(
        self, send: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        self.log.collective_calls += 1
        remote_bytes = 0
        remote_messages = 0
        for p in range(self.size):
            for q in range(self.size):
                buf = send[p][q]
                nbytes = int(np.asarray(buf).nbytes)
                if nbytes:
                    self.log.volume_bytes[p, q] += nbytes
                    self.log.message_counts[p, q] += 1
                    if p != q:
                        remote_bytes += nbytes
                        remote_messages += 1
        add_count(COMM_BYTES, remote_bytes)
        add_count(COMM_MESSAGES, remote_messages)
        return [[send[p][q] for p in range(self.size)] for q in range(self.size)]

    def allreduce_sum(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum-reduction of one equal-shaped array per rank.

        Models the compute-centric approach's ``MPI_Allreduce`` over
        duplicated tomogram domains; traffic is logged with the
        recursive-halving volume ``2 * (P-1)/P * bytes`` per rank.
        """
        if len(contributions) != self.size:
            raise ValueError(f"expected {self.size} contributions")
        shapes = {np.asarray(c).shape for c in contributions}
        if len(shapes) != 1:
            raise ValueError(f"contributions must share a shape, got {shapes}")
        if not REGISTRY.active:
            return self._allreduce_exchange(contributions)
        with span("comm.allreduce", ranks=self.size):
            total = self._allreduce_exchange(contributions)
        return total

    def _allreduce_exchange(self, contributions: list[np.ndarray]) -> np.ndarray:
        self.log.collective_calls += 1
        total = np.zeros_like(np.asarray(contributions[0], dtype=np.float64))
        for c in contributions:
            total += np.asarray(c, dtype=np.float64)
        per_rank_bytes = int(
            2 * (self.size - 1) / self.size * np.asarray(contributions[0]).nbytes
        )
        remote_bytes = 0
        remote_messages = 0
        for p in range(self.size):
            q = (p + 1) % self.size  # ring-neighbour attribution for logging
            if p != q:
                self.log.volume_bytes[p, q] += per_rank_bytes
                self.log.message_counts[p, q] += 1
                remote_bytes += per_rank_bytes
                remote_messages += 1
        add_count(COMM_BYTES, remote_bytes)
        add_count(COMM_MESSAGES, remote_messages)
        return total
