"""Synthetic stand-ins for the paper's real datasets, plus the noise model.

RDS1 is a shale-rock sample from tomobank and RDS2 a proprietary mouse
brain scanned at the APS.  Neither can ship with this repository, so we
generate structurally similar phantoms (documented substitution, see
DESIGN.md): a granular ellipse field with cracks for shale, and a
skull/tissue/vessel composition for brain.  Both exercise the exact
same geometry, tracing, ordering, and solver code paths; only the image
content differs.

``beer_law_sinogram`` applies the paper's measurement model
(Section 2.1): photon counts follow ``I = I0 exp(-integral)`` with
Poisson statistics, and the sinogram is the log-transformed count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shale_phantom", "brain_phantom", "beer_law_sinogram"]


def _add_ellipses(
    img: np.ndarray,
    rng: np.random.Generator,
    count: int,
    radius_range: tuple[float, float],
    value_range: tuple[float, float],
    inside_radius: float = 0.95,
) -> None:
    """Stamp random rotated ellipses onto ``img`` (in [-1, 1] coords)."""
    n = img.shape[0]
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0
    x, y = np.meshgrid(c, c, indexing="xy")
    for _ in range(count):
        r = np.sqrt(rng.random()) * inside_radius
        ang = rng.random() * 2 * np.pi
        x0, y0 = r * np.cos(ang), r * np.sin(ang)
        a = rng.uniform(*radius_range)
        b = rng.uniform(*radius_range)
        phi = rng.random() * np.pi
        value = rng.uniform(*value_range)
        cos_p, sin_p = np.cos(phi), np.sin(phi)
        xr = (x - x0) * cos_p + (y - y0) * sin_p
        yr = -(x - x0) * sin_p + (y - y0) * cos_p
        img[(xr / a) ** 2 + (yr / b) ** 2 <= 1.0] += value


def shale_phantom(n: int, seed: int = 0) -> np.ndarray:
    """Granular shale-rock-like phantom (RDS1 stand-in).

    A dense mineral matrix with embedded grains of varying attenuation
    and a few thin low-density cracks.
    """
    if n <= 0:
        raise ValueError(f"phantom size must be positive, got {n}")
    rng = np.random.default_rng(seed)
    img = np.zeros((n, n), dtype=np.float64)
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0
    x, y = np.meshgrid(c, c, indexing="xy")
    disk = x * x + y * y <= 0.95**2
    img[disk] = 0.5  # rock matrix

    _add_ellipses(img, rng, count=max(10, n // 4), radius_range=(0.02, 0.12),
                  value_range=(0.1, 0.5))
    _add_ellipses(img, rng, count=max(6, n // 8), radius_range=(0.01, 0.05),
                  value_range=(-0.3, -0.1))
    # Thin cracks: narrow, highly eccentric low-density ellipses.
    _add_ellipses(img, rng, count=5, radius_range=(0.003, 0.01),
                  value_range=(-0.4, -0.2))
    img[~disk] = 0.0
    np.maximum(img, 0.0, out=img)
    return img


def brain_phantom(n: int, seed: int = 0) -> np.ndarray:
    """Mouse-brain-like phantom (RDS2 stand-in).

    Skull annulus, soft-tissue background, vessel-like meandering
    curves, and fine-scale texture — the multi-scale content that makes
    the paper's Fig. 1 zooms interesting.
    """
    if n <= 0:
        raise ValueError(f"phantom size must be positive, got {n}")
    rng = np.random.default_rng(seed)
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0
    x, y = np.meshgrid(c, c, indexing="xy")
    rr = np.sqrt(x * x + y * y)
    img = np.zeros((n, n), dtype=np.float64)
    img[rr <= 0.92] = 1.0  # skull
    img[rr <= 0.86] = 0.35  # tissue

    # Hemisphere boundary.
    img[(np.abs(x) < 0.01) & (rr < 0.8)] = 0.25

    # Vessels: biased random walks rasterized with a small stamp.
    num_vessels = max(6, n // 32)
    for _ in range(num_vessels):
        px = rng.uniform(-0.5, 0.5)
        py = rng.uniform(-0.5, 0.5)
        heading = rng.random() * 2 * np.pi
        value = rng.uniform(0.6, 0.9)
        steps = n
        step = 1.5 / n
        for _ in range(steps):
            heading += rng.normal(scale=0.25)
            px += step * np.cos(heading)
            py += step * np.sin(heading)
            if px * px + py * py > 0.8**2:
                break
            ix = int((px + 1.0) / 2.0 * n)
            iy = int((py + 1.0) / 2.0 * n)
            lo = max(0, ix - 1), max(0, iy - 1)
            img[lo[1] : iy + 1, lo[0] : ix + 1] = value

    # Fine texture inside the tissue.
    texture = rng.normal(scale=0.03, size=(n, n))
    tissue = (rr <= 0.86) & (img < 0.5)
    img[tissue] += texture[tissue]
    np.clip(img, 0.0, None, out=img)
    return img


def beer_law_sinogram(
    clean_sinogram: np.ndarray,
    incident_photons: float = 1e4,
    seed: int = 0,
    attenuation_scale: float | None = None,
) -> np.ndarray:
    """Apply the Beer-law Poisson measurement model to a clean sinogram.

    Parameters
    ----------
    clean_sinogram:
        Noise-free line integrals ``integral mu dl`` (any shape).
    incident_photons:
        ``I0`` per detector element; lower values mean lower dose and
        noisier data (the regime where iterative methods beat FBP).
    seed:
        RNG seed.
    attenuation_scale:
        Scale applied to the line integrals before exponentiation so
        that the maximum attenuation is a reasonable ``~2`` optical
        depths; computed automatically when omitted.

    Returns
    -------
    Noisy line integrals with the same shape and scaling as the input.
    """
    if incident_photons <= 0:
        raise ValueError(f"incident photon count must be positive, got {incident_photons}")
    clean = np.asarray(clean_sinogram, dtype=np.float64)
    max_val = float(clean.max()) if clean.size else 0.0
    if attenuation_scale is None:
        attenuation_scale = 2.0 / max_val if max_val > 0 else 1.0
    rng = np.random.default_rng(seed)
    expected = incident_photons * np.exp(-clean * attenuation_scale)
    counts = rng.poisson(expected).astype(np.float64)
    np.maximum(counts, 1.0, out=counts)  # a dead detector pixel reads >= 1 count
    return -np.log(counts / incident_photons) / attenuation_scale
