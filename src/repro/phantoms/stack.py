"""Stacked 3D phantom data for the streaming pipeline.

Real beamline reconstructions (the paper's RDS/ADS datasets) are 3D:
thousands of sinogram slices share one acquisition geometry.  This
module produces everything the pipeline's conditioning stages need to
be exercised end-to-end on synthetic data:

* a per-slice-varying Shepp–Logan stack (so neighbouring slices are
  similar but not identical, like a real specimen),
* synthetic dark/flat calibration frames,
* injectable acquisition artifacts — per-channel detector gain errors
  (the cause of ring artifacts) and a rotation-center shift —
* and a raw photon-count simulator tying it all together.

Nothing here imports :mod:`repro.core`; sinogram projection is supplied
by the caller (see :func:`repro.pipeline.demo_stack`), keeping the
phantom layer geometry-free.
"""

from __future__ import annotations

import numpy as np

from .shepp_logan import shepp_logan

__all__ = [
    "stacked_shepp_logan",
    "synthetic_darks_flats",
    "ring_gains",
    "inject_rings",
    "inject_center_shift",
    "simulate_counts",
    "write_stack_dataset",
]


def stacked_shepp_logan(
    n: int,
    num_slices: int,
    scale_amplitude: float = 0.15,
    rotation_degrees: float = 8.0,
) -> np.ndarray:
    """A ``(num_slices, n, n)`` stack of per-slice-varying phantoms.

    Slice ``k`` shrinks the phantom towards the stack ends (an
    axially-varying specimen cross-section) and rotates it linearly by
    up to ``rotation_degrees`` — enough variation that a bug collapsing
    all slices onto one reconstruction is caught by any per-slice
    comparison, while neighbouring slices remain visually similar.
    """
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    base = shepp_logan(n)
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0
    x, y = np.meshgrid(c, c, indexing="xy")
    stack = np.empty((num_slices, n, n), dtype=np.float64)
    for k in range(num_slices):
        t = k / (num_slices - 1) if num_slices > 1 else 0.5
        # Largest at the stack centre, scale_amplitude smaller at ends.
        scale = 1.0 - scale_amplitude * abs(2.0 * t - 1.0)
        angle = np.deg2rad(rotation_degrees * (2.0 * t - 1.0))
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        # Sample the base phantom at the inverse-transformed coordinates
        # (nearest neighbour keeps the piecewise-constant ellipse look).
        xs = (x * cos_a + y * sin_a) / scale
        ys = (-x * sin_a + y * cos_a) / scale
        ix = np.clip(((xs + 1.0) * 0.5 * n).astype(np.int64), 0, n - 1)
        iy = np.clip(((ys + 1.0) * 0.5 * n).astype(np.int64), 0, n - 1)
        img = base[iy, ix]
        img[xs * xs + ys * ys > 1.0] = 0.0
        stack[k] = img
    return stack


def synthetic_darks_flats(
    num_slices: int,
    num_channels: int,
    num_frames: int = 8,
    dark_level: float = 80.0,
    flat_level: float = 4000.0,
    gain_spread: float = 0.04,
    noise: float = 0.01,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Dark and flat calibration frames, ``(num_frames, num_slices, N)`` each.

    The flats carry a smooth beam-profile bow plus fixed per-channel
    gain structure (spread ``gain_spread``); both frame sets carry
    per-frame read noise so averaging over frames actually matters.
    """
    rng = np.random.default_rng(seed)
    channel = np.linspace(-1.0, 1.0, num_channels)
    profile = 1.0 - 0.25 * channel**2  # beam brighter in the middle
    gains = 1.0 + rng.normal(scale=gain_spread, size=num_channels)
    flat_mean = flat_level * profile * gains
    shape = (num_frames, num_slices, num_channels)
    darks = dark_level + rng.normal(scale=noise * dark_level, size=shape)
    flats = flat_mean + rng.normal(scale=noise * flat_level, size=shape)
    return darks, flats


def ring_gains(
    num_channels: int,
    num_bad: int = 5,
    amplitude: float = 0.08,
    seed: int = 0,
) -> np.ndarray:
    """Per-channel multiplicative gain errors that cause ring artifacts.

    ``num_bad`` channels get a gain offset up to ``amplitude``; the
    rest stay at exactly 1.  Uncorrected, a constant per-channel gain
    error becomes a vertical stripe in the sinogram and a ring in the
    reconstruction.
    """
    rng = np.random.default_rng(seed)
    gains = np.ones(num_channels, dtype=np.float64)
    bad = rng.choice(num_channels, size=min(num_bad, num_channels), replace=False)
    gains[bad] += rng.uniform(-amplitude, amplitude, size=bad.shape[0])
    return gains


def inject_rings(counts: np.ndarray, gains: np.ndarray) -> np.ndarray:
    """Apply per-channel gain errors to a ``(..., N)`` count array."""
    counts = np.asarray(counts, dtype=np.float64)
    gains = np.asarray(gains, dtype=np.float64)
    if counts.shape[-1] != gains.shape[0]:
        raise ValueError(
            f"counts have {counts.shape[-1]} channels, gains have {gains.shape[0]}"
        )
    return counts * gains


def inject_center_shift(sinograms: np.ndarray, shift: float) -> np.ndarray:
    """Shift every projection by ``shift`` channels (linear interpolation).

    Emulates a mis-calibrated rotation axis: the true center sits at
    ``(N - 1) / 2 + shift`` in the shifted data.  Out-of-range samples
    clamp to the edge value (air channels at a realistic detector edge).
    """
    sinograms = np.asarray(sinograms, dtype=np.float64)
    n = sinograms.shape[-1]
    pos = np.arange(n, dtype=np.float64) - shift
    lo = np.clip(np.floor(pos).astype(np.int64), 0, n - 1)
    hi = np.clip(lo + 1, 0, n - 1)
    frac = np.clip(pos - lo, 0.0, 1.0)
    return sinograms[..., lo] * (1.0 - frac) + sinograms[..., hi] * frac


def simulate_counts(
    sinograms: np.ndarray,
    darks: np.ndarray,
    flats: np.ndarray,
    attenuation_scale: float | None = None,
    gains: np.ndarray | None = None,
    poisson: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, float]:
    """Turn clean line integrals into raw detector counts.

    ``counts = dark + (flat - dark) * gains * exp(-scale * sinogram)``
    with optional Poisson statistics — the inverse of what the
    dark/flat-normalize and negative-log stages compute, so a pipeline
    run over the output should recover ``scale * sinogram``.

    Parameters
    ----------
    sinograms:
        Clean line integrals, ``(slices, angles, N)``.
    darks, flats:
        Calibration frames from :func:`synthetic_darks_flats`.
    attenuation_scale:
        Optical-depth scale; auto-chosen for ~2 max optical depths when
        omitted (mirroring :func:`repro.phantoms.beer_law_sinogram`).
    gains:
        Optional per-channel gain errors (ring injection) applied to
        the transmitted intensity but **not** to the calibration
        frames — exactly the mismatch that creates rings.

    Returns
    -------
    ``(raw_stack, attenuation_scale)`` where ``raw_stack`` has shape
    ``(slices, angles, N)``.
    """
    sinograms = np.asarray(sinograms, dtype=np.float64)
    max_val = float(sinograms.max()) if sinograms.size else 0.0
    if attenuation_scale is None:
        attenuation_scale = 2.0 / max_val if max_val > 0 else 1.0
    dark_bar = np.asarray(darks, dtype=np.float64).mean(axis=0)  # (slices, N)
    flat_bar = np.asarray(flats, dtype=np.float64).mean(axis=0)
    transmission = np.exp(-attenuation_scale * sinograms)
    if gains is not None:
        transmission = inject_rings(transmission, gains)
    # Broadcast (slices, N) calibration over the angle axis.
    expected = dark_bar[:, None, :] + (flat_bar - dark_bar)[:, None, :] * transmission
    if poisson:
        rng = np.random.default_rng(seed)
        counts = rng.poisson(np.maximum(expected, 0.0)).astype(np.float64)
    else:
        counts = expected
    return counts, float(attenuation_scale)


def write_stack_dataset(
    destination,
    raw_stack: np.ndarray,
    darks: np.ndarray | None = None,
    flats: np.ndarray | None = None,
    *,
    shard_slices: int | None = None,
    compress: bool = False,
):
    """Persist a raw stack (plus calibration) as a pipeline input.

    Thin delegation to :func:`repro.dataio.save_stack` (imported
    lazily so the phantom layer stays import-light): the destination's
    form picks the format — ``.npz`` archive, ``.h5``/``.hdf5``
    tomobank-layout file (needs ``h5py``), or an ``.npz``-shard
    directory.  Returns the written path; the result is directly
    consumable by ``reconstruct_stack(...)`` / ``pipeline run --input``.
    """
    from ..dataio import save_stack

    return save_stack(
        destination,
        raw_stack,
        darks,
        flats,
        shard_slices=shard_slices,
        compress=compress,
    )
