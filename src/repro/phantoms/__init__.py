"""Test phantoms and the Beer-law measurement model."""

from .shepp_logan import shepp_logan
from .synthetic import beer_law_sinogram, brain_phantom, shale_phantom

__all__ = ["shepp_logan", "beer_law_sinogram", "brain_phantom", "shale_phantom"]
