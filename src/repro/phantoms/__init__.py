"""Test phantoms and the Beer-law measurement model."""

from .shepp_logan import shepp_logan
from .stack import (
    inject_center_shift,
    inject_rings,
    ring_gains,
    simulate_counts,
    stacked_shepp_logan,
    synthetic_darks_flats,
    write_stack_dataset,
)
from .synthetic import beer_law_sinogram, brain_phantom, shale_phantom
from .volume import ellipsoid_volume, shepp_logan_3d

__all__ = [
    "shepp_logan",
    "ellipsoid_volume",
    "shepp_logan_3d",
    "beer_law_sinogram",
    "brain_phantom",
    "shale_phantom",
    "stacked_shepp_logan",
    "synthetic_darks_flats",
    "ring_gains",
    "inject_rings",
    "inject_center_shift",
    "simulate_counts",
    "write_stack_dataset",
]
