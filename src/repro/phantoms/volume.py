"""3D test phantoms for cone-beam reconstruction.

A volumetric analogue of the Shepp–Logan head: a handful of ellipsoids
rasterized on an ``(nz, n, n)`` voxel grid.  The parameter set is the
standard 3D extension (Kak & Slaney flavor) of the modified 2D
phantom — the mid-plane slice closely resembles :func:`shepp_logan`,
and structure varies along z so cone-beam row coverage actually
matters in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ellipsoid_volume", "shepp_logan_3d"]

# (value, a, b, c, x0, y0, z0, phi_degrees) — semi-axes and centre in
# the [-1, 1]^3 cube, rotation about z only (the standard set's gamma
# rotations are zero).
_ELLIPSOIDS = (
    (1.00, 0.6900, 0.9200, 0.810, 0.00, 0.0000, 0.00, 0.0),
    (-0.80, 0.6624, 0.8740, 0.780, 0.00, -0.0184, 0.00, 0.0),
    (-0.20, 0.1100, 0.3100, 0.220, 0.22, 0.0000, 0.00, -18.0),
    (-0.20, 0.1600, 0.4100, 0.280, -0.22, 0.0000, 0.00, 18.0),
    (0.10, 0.2100, 0.2500, 0.410, 0.00, 0.3500, 0.00, 0.0),
    (0.10, 0.0460, 0.0460, 0.050, 0.00, 0.1000, 0.00, 0.0),
    (0.10, 0.0460, 0.0460, 0.050, 0.00, -0.1000, 0.00, 0.0),
    (0.10, 0.0460, 0.0230, 0.050, -0.08, -0.6050, 0.00, 0.0),
    (0.10, 0.0230, 0.0230, 0.020, 0.00, -0.6060, 0.00, 0.0),
    (0.10, 0.0230, 0.0460, 0.020, 0.06, -0.6050, 0.00, 0.0),
)


def ellipsoid_volume(
    n: int,
    nz: int | None = None,
    ellipsoids=_ELLIPSOIDS,
) -> np.ndarray:
    """Rasterize ellipsoids on an ``(nz, n, n)`` voxel grid.

    Voxel centres span ``[-1, 1]`` in x and y; z spans a band of the
    same *voxel pitch* centred on the mid-plane (so anisotropic grids
    with ``nz != n`` keep cubic voxels, matching
    :class:`repro.geometry.Grid3D`).  Returns float64,
    ``volume[iz, iy, ix]``.
    """
    if n <= 0:
        raise ValueError(f"phantom size must be positive, got {n}")
    nz = n if nz is None else nz
    if nz <= 0:
        raise ValueError(f"phantom depth must be positive, got {nz}")
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0
    cz = ((np.arange(nz) + 0.5) - nz / 2.0) * (2.0 / n)
    z, y, x = np.meshgrid(cz, c, c, indexing="ij")
    vol = np.zeros((nz, n, n), dtype=np.float64)
    for value, a, b, cc, x0, y0, z0, phi_deg in ellipsoids:
        phi = np.deg2rad(phi_deg)
        cos_p, sin_p = np.cos(phi), np.sin(phi)
        xr = (x - x0) * cos_p + (y - y0) * sin_p
        yr = -(x - x0) * sin_p + (y - y0) * cos_p
        zr = z - z0
        vol[(xr / a) ** 2 + (yr / b) ** 2 + (zr / cc) ** 2 <= 1.0] += value
    return vol


def shepp_logan_3d(n: int, nz: int | None = None) -> np.ndarray:
    """The 3D Shepp–Logan phantom (alias over :func:`ellipsoid_volume`)."""
    return ellipsoid_volume(n, nz)
