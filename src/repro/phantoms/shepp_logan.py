"""The Shepp–Logan head phantom (standard CT test image).

Used by the artificial datasets ADS1–ADS4: the paper's artificial
sinograms follow the same parallel raster-scan geometry as the real
data; we generate them by forward-projecting this phantom (plus Beer-law
noise) so every code path sees realistic sinusoidal structure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shepp_logan"]

# (value, a, b, x0, y0, phi_degrees) — the modified (Toft) parameter set,
# whose contrast suits iterative reconstruction tests better than the
# original's 2 % contrast.
_ELLIPSES = (
    (1.00, 0.6900, 0.9200, 0.00, 0.0000, 0.0),
    (-0.80, 0.6624, 0.8740, 0.00, -0.0184, 0.0),
    (-0.20, 0.1100, 0.3100, 0.22, 0.0000, -18.0),
    (-0.20, 0.1600, 0.4100, -0.22, 0.0000, 18.0),
    (0.10, 0.2100, 0.2500, 0.00, 0.3500, 0.0),
    (0.10, 0.0460, 0.0460, 0.00, 0.1000, 0.0),
    (0.10, 0.0460, 0.0460, 0.00, -0.1000, 0.0),
    (0.10, 0.0460, 0.0230, -0.08, -0.6050, 0.0),
    (0.10, 0.0230, 0.0230, 0.00, -0.6060, 0.0),
    (0.10, 0.0230, 0.0460, 0.06, -0.6050, 0.0),
)


def shepp_logan(n: int) -> np.ndarray:
    """Rasterize the modified Shepp–Logan phantom on an ``n x n`` grid.

    Returns a float64 image in ``[0, 1]``-ish range, row index = y
    (bottom-up physical orientation, matching :class:`repro.geometry.Grid2D`).
    """
    if n <= 0:
        raise ValueError(f"phantom size must be positive, got {n}")
    c = (np.arange(n) + 0.5) / n * 2.0 - 1.0  # pixel centres in [-1, 1]
    x, y = np.meshgrid(c, c, indexing="xy")
    img = np.zeros((n, n), dtype=np.float64)
    for value, a, b, x0, y0, phi_deg in _ELLIPSES:
        phi = np.deg2rad(phi_deg)
        cos_p, sin_p = np.cos(phi), np.sin(phi)
        xr = (x - x0) * cos_p + (y - y0) * sin_p
        yr = -(x - x0) * sin_p + (y - y0) * cos_p
        img[(xr / a) ** 2 + (yr / b) ** 2 <= 1.0] += value
    return img
