"""Many-slice (3D volume) reconstruction driver.

Paper Table 5's punchline is amortization: preprocessing is paid once
per scan geometry and reused for every slice of the 3D dataset (the
mouse brain has 11293 slices).  This driver reconstructs a stack of
sinograms against one preprocessed operator and reports the amortized
timing the paper's "All Slices" column extrapolates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .operator import MemXCTOperator
from .preprocess import PreprocessReport
from .reconstructor import ReconstructionResult, reconstruct

__all__ = ["VolumeResult", "reconstruct_volume"]


@dataclass
class VolumeResult:
    """Outcome of a stacked reconstruction."""

    volume: np.ndarray  # (slices, n, n)
    slice_results: list[ReconstructionResult]
    preprocess_report: PreprocessReport
    total_seconds: float

    @property
    def num_slices(self) -> int:
        return self.volume.shape[0]

    @property
    def seconds_per_slice(self) -> float:
        return self.total_seconds / max(self.num_slices, 1)

    def amortized_preprocessing_fraction(self) -> float:
        """Preprocessing share of the end-to-end time — shrinks toward
        zero as the slice count grows (Table 5's argument)."""
        total = self.preprocess_report.total_seconds + self.total_seconds
        return self.preprocess_report.total_seconds / total if total else 0.0


def reconstruct_volume(
    sinograms: np.ndarray,
    operator: MemXCTOperator,
    preprocess_report: PreprocessReport | None = None,
    solver: str = "cg",
    iterations: int = 30,
    **solver_kwargs,
) -> VolumeResult:
    """Reconstruct a stack of sinogram slices with one shared operator.

    Parameters
    ----------
    sinograms:
        Array of shape ``(slices, M, N)`` — one sinogram per 2D slice
        of the 3D volume (parallel-beam slices are independent).
    operator:
        A preprocessed :class:`MemXCTOperator` for the ``(M, N)``
        geometry; tracing is **not** repeated per slice.
    """
    sinograms = np.asarray(sinograms)
    if sinograms.ndim != 3:
        raise ValueError(f"expected (slices, M, N) sinograms, got {sinograms.shape}")
    if sinograms.shape[1:] != operator.geometry.sinogram_shape:
        raise ValueError(
            f"slice shape {sinograms.shape[1:]} does not match geometry "
            f"{operator.geometry.sinogram_shape}"
        )
    n = operator.geometry.grid.n
    volume = np.zeros((sinograms.shape[0], n, n))
    results: list[ReconstructionResult] = []
    t0 = time.perf_counter()
    for k in range(sinograms.shape[0]):
        res = reconstruct(
            sinograms[k],
            operator.geometry,
            solver=solver,
            iterations=iterations,
            operator=operator,
            **solver_kwargs,
        )
        volume[k] = res.image
        results.append(res)
    total = time.perf_counter() - t0
    return VolumeResult(
        volume=volume,
        slice_results=results,
        preprocess_report=preprocess_report or PreprocessReport(),
        total_seconds=total,
    )
