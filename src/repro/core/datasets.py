"""Dataset descriptors (paper Table 3) and footprint calculators.

Six datasets: ADS1-ADS4 are artificial (we synthesize them by
forward-projecting the Shepp-Logan phantom with Beer-law noise) and
RDS1/RDS2 come from APS experiments (shale rock / mouse brain — we
substitute structurally similar phantoms, see DESIGN.md).

Full paper sizes (up to a 4501 x 11283 sinogram) exceed this machine,
so each descriptor can produce a *scaled* instance that preserves the
M/N aspect ratio; footprints at full size are computed analytically
from the measured nnz-per-ray chord constant, which the test suite
verifies is scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..geometry import ParallelBeamGeometry
from ..phantoms import beer_law_sinogram, brain_phantom, shale_phantom, shepp_logan

__all__ = ["DatasetSpec", "DATASETS", "get_dataset", "table3_row"]

#: Measured Siddon chord constant for this raster geometry:
#: ``nnz ~= CHORD * M * N^2`` (each ray of an N-channel projection
#: intersects ~1.18 N pixels on average).
CHORD_CONSTANT = 1.18


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset.

    Attributes
    ----------
    name:
        Paper name (ADS1..ADS4, RDS1, RDS2).
    num_projections, num_channels:
        Full-size sinogram dimensions ``M x N``.
    sample:
        ``"artificial"``, ``"shale"`` or ``"brain"`` — selects the
        phantom generator.
    """

    name: str
    num_projections: int
    num_channels: int
    sample: str

    # -- scaling --------------------------------------------------------

    def scaled(self, factor: float) -> "DatasetSpec":
        """A geometry-preserving scaled instance (``factor`` <= 1).

        Dimensions are rounded to the nearest multiple of 2 to keep
        tile coverage sane; the name records the scale.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        m = max(4, 2 * round(self.num_projections * factor / 2))
        n = max(4, 2 * round(self.num_channels * factor / 2))
        return replace(
            self,
            name=f"{self.name}@{factor:g}",
            num_projections=m,
            num_channels=n,
        )

    def geometry(self) -> ParallelBeamGeometry:
        """Parallel-beam geometry of this (possibly scaled) instance."""
        return ParallelBeamGeometry(self.num_projections, self.num_channels)

    # -- data synthesis ---------------------------------------------------

    def phantom(self, seed: int = 0) -> np.ndarray:
        """Ground-truth image for this dataset's sample type."""
        n = self.num_channels
        if self.sample == "artificial":
            return shepp_logan(n)
        if self.sample == "shale":
            return shale_phantom(n, seed=seed)
        if self.sample == "brain":
            return brain_phantom(n, seed=seed)
        raise ValueError(f"unknown sample type {self.sample!r}")

    def sinogram(
        self,
        operator,
        incident_photons: float = 1e5,
        seed: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Synthesize ``(noisy_sinogram, phantom)`` for this dataset.

        ``operator`` must expose ``project_image`` (a
        :class:`repro.core.operator.MemXCTOperator` built on this
        dataset's geometry).
        """
        truth = self.phantom(seed=seed)
        clean = operator.project_image(truth)
        noisy = beer_law_sinogram(clean, incident_photons=incident_photons, seed=seed)
        return noisy, truth

    # -- footprints (Table 3) -----------------------------------------------

    @property
    def estimated_nnz(self) -> float:
        """Analytic nonzero count ``CHORD * M * N^2``."""
        return CHORD_CONSTANT * self.num_projections * self.num_channels**2

    def irregular_bytes(self) -> tuple[int, int]:
        """(forward, backprojection) irregular data: the x/y vectors."""
        tomogram = self.num_channels * self.num_channels * 4
        sinogram = self.num_projections * self.num_channels * 4
        return tomogram, sinogram

    def regular_bytes(self, bytes_per_nnz: float = 8.0) -> tuple[float, float]:
        """(forward, backprojection) regular data: matrix storage.

        Default 8 B/nnz (4 B value + 4 B 32-bit index, paper Table 3's
        convention); the buffered layout stores 6 B/nnz.
        """
        each = self.estimated_nnz * bytes_per_nnz
        return each, each


DATASETS: dict[str, DatasetSpec] = {
    "ADS1": DatasetSpec("ADS1", 360, 256, "artificial"),
    "ADS2": DatasetSpec("ADS2", 750, 512, "artificial"),
    "ADS3": DatasetSpec("ADS3", 1500, 1024, "artificial"),
    "ADS4": DatasetSpec("ADS4", 2400, 2048, "artificial"),
    "RDS1": DatasetSpec("RDS1", 1501, 2048, "shale"),
    "RDS2": DatasetSpec("RDS2", 4501, 11283, "brain"),
}

#: Paper Table 3 reference footprints (bytes), for the benchmark's
#: paper-vs-computed comparison.
TABLE3_PAPER = {
    "ADS1": {"irregular": (256e3, 360e3), "regular": (215e6, 215e6)},
    "ADS2": {"irregular": (1.0e6, 1.5e6), "regular": (1.8e9, 1.8e9)},
    "ADS3": {"irregular": (4.0e6, 6.0e6), "regular": (14e9, 14e9)},
    "ADS4": {"irregular": (16e6, 19e6), "regular": (90e9, 90e9)},
    "RDS1": {"irregular": (16e6, 12e6), "regular": (56e9, 56e9)},
    "RDS2": {"irregular": (500e6, 198e6), "regular": (5.1e12, 5.1e12)},
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset descriptor by paper name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None


def table3_row(spec: DatasetSpec) -> dict[str, float]:
    """Computed Table 3 row for a dataset at full size."""
    irr = spec.irregular_bytes()
    reg = spec.regular_bytes()
    return {
        "sinogram": f"{spec.num_projections}x{spec.num_channels}",
        "irregular_fwd": irr[0],
        "irregular_adj": irr[1],
        "regular_fwd": reg[0],
        "regular_adj": reg[1],
    }
