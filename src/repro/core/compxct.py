"""CompXCT — the compute-centric baseline (paper Listing 1, Trace-style).

CompXCT never stores the projection matrix: every forward projection
and every backprojection re-runs Siddon ray tracing to recover the
intersecting pixel indices and lengths, then immediately consumes them.
Backprojection is a *scatter* — many rays update the same pixel —
which forces atomics or domain duplication on parallel hardware; here
it appears as ``np.add.at``, the (serialized) scatter-accumulate.

This operator is numerically identical to the memoized one (same
Siddon tracer underneath) so Table 4's per-iteration speedup isolates
exactly the cost of redundant on-the-fly computation.
"""

from __future__ import annotations

import numpy as np

from ..geometry import ParallelBeamGeometry
from ..trace import trace_angle

__all__ = ["CompXCTOperator"]


class CompXCTOperator:
    """On-the-fly forward/backprojection (no memoization).

    The per-angle traced segments are recomputed on **every** call;
    ``trace_invocations`` counts how much tracing work has been
    repeated, which the memory-centric approach performs exactly once.
    """

    def __init__(self, geometry: ParallelBeamGeometry):
        self.geometry = geometry
        self.trace_invocations = 0

    @property
    def num_rays(self) -> int:
        return self.geometry.num_rays

    @property
    def num_pixels(self) -> int:
        return self.geometry.grid.num_pixels

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` with on-the-fly tracing (gather per ray)."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape[0] != self.num_pixels:
            raise ValueError(f"x has {x.shape[0]} entries, expected {self.num_pixels}")
        y = np.zeros(self.num_rays, dtype=np.float64)
        for angle_index in range(self.geometry.num_angles):
            segs = trace_angle(self.geometry, angle_index)
            self.trace_invocations += 1
            np.add.at(y, segs.ray_index, segs.length * x[segs.pixel_index])
        return y

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        """``x = A^T y`` with on-the-fly tracing (scatter per ray)."""
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if y.shape[0] != self.num_rays:
            raise ValueError(f"y has {y.shape[0]} entries, expected {self.num_rays}")
        x = np.zeros(self.num_pixels, dtype=np.float64)
        for angle_index in range(self.geometry.num_angles):
            segs = trace_angle(self.geometry, angle_index)
            self.trace_invocations += 1
            # The race-prone scatter of compute-centric backprojection:
            # concurrent rays would collide on shared pixels here.
            np.add.at(x, segs.pixel_index, segs.length * y[segs.ray_index])
        return x

    def row_sums(self) -> np.ndarray:
        """Ray path lengths (for SIRT), recomputed on the fly."""
        return self.forward(np.ones(self.num_pixels))

    def col_sums(self) -> np.ndarray:
        """Pixel ray coverage (for SIRT), recomputed on the fly."""
        return self.adjoint(np.ones(self.num_rays))
