"""MemXCT core: the memory-centric operator, preprocessing pipeline,
compute-centric baseline, dataset descriptors, and the high-level
reconstruction API."""

from .compxct import CompXCTOperator
from .datasets import CHORD_CONSTANT, DATASETS, TABLE3_PAPER, DatasetSpec, get_dataset, table3_row
from .operator import KERNELS, MemXCTOperator, OperatorConfig
from .preprocess import PreprocessReport, preprocess
from .reconstructor import SOLVERS, ReconstructionResult, reconstruct
from .volume import VolumeResult, reconstruct_volume

__all__ = [
    "CompXCTOperator",
    "CHORD_CONSTANT",
    "DATASETS",
    "TABLE3_PAPER",
    "DatasetSpec",
    "get_dataset",
    "table3_row",
    "KERNELS",
    "MemXCTOperator",
    "OperatorConfig",
    "PreprocessReport",
    "preprocess",
    "SOLVERS",
    "ReconstructionResult",
    "reconstruct",
    "VolumeResult",
    "reconstruct_volume",
]
