"""High-level reconstruction API.

``reconstruct`` is the one-call entry point a downstream user needs:
sinogram in, tomogram out, with the solver, ordering, kernel and
(simulated) rank count as knobs.  It wires together preprocessing, the
domain-order transforms, the chosen iterative solver, and — when
``num_ranks > 1`` — the distributed operator, and reports timing plus
convergence history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..dist import DistributedOperator, SimComm, decompose_both
from ..topology import HierComm, Topology, parse_topology
from ..geometry import ParallelBeamGeometry
from ..resilience import CheckpointManager, FaultConfig, FaultInjector, HealthMonitor
from ..solvers import SolveResult, cgls, icd, sgd, sirt
from .operator import MemXCTOperator, OperatorConfig
from .preprocess import PreprocessReport, preprocess

__all__ = ["ReconstructionResult", "reconstruct", "SOLVERS"]

SOLVERS = ("cg", "sirt", "sgd", "icd", "fbp")

#: Solvers whose recurrence state the checkpoint/resume/health layer
#: understands (see docs/resilience.md).
RESILIENT_SOLVERS = ("cg", "sirt")


@dataclass
class ReconstructionResult:
    """Everything produced by one reconstruction."""

    image: np.ndarray
    solve: SolveResult
    preprocess_report: PreprocessReport
    operator: MemXCTOperator
    solve_seconds: float
    solver: str
    num_ranks: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def per_iteration_seconds(self) -> float:
        return self.solve_seconds / max(self.solve.iterations, 1)


def _run_solver(solver: str, op, y: np.ndarray, iterations: int, **solver_kwargs) -> SolveResult:
    if solver == "cg":
        return cgls(op, y, num_iterations=iterations, **solver_kwargs)
    if solver == "sirt":
        return sirt(op, y, num_iterations=iterations, **solver_kwargs)
    if solver == "sgd":
        return sgd(op, y, num_iterations=iterations, **solver_kwargs)
    raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVERS}")


def _run_direct_or_matrix_solver(
    solver: str,
    operator: MemXCTOperator,
    sinogram: np.ndarray,
    y: np.ndarray,
    iterations: int,
    **solver_kwargs,
) -> SolveResult:
    """Solvers needing operator internals: FBP (one-shot) and ICD."""
    if solver == "fbp":
        from ..solvers import fbp

        image = fbp(operator, sinogram, **solver_kwargs)
        x = operator.image_to_ordered(image)
        residual = float(
            np.linalg.norm(np.asarray(operator.forward(x), dtype=np.float64) - y)
        )
        result = SolveResult(x=x, iterations=1)
        result.residual_norms.append(residual)
        result.solution_norms.append(float(np.linalg.norm(x)))
        result.stop_reason = "direct solve"
        return result
    if solver == "icd":
        return icd(
            operator.matrix, operator.transpose, y, num_sweeps=iterations, **solver_kwargs
        )
    raise AssertionError(solver)


def _resolve_faults(faults, num_ranks: int) -> FaultInjector | None:
    """Normalize the ``faults`` argument into an injector (or None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        injector = faults
    elif isinstance(faults, FaultConfig):
        injector = FaultInjector(faults)
    elif isinstance(faults, str):
        injector = FaultInjector(FaultConfig.parse(faults))
    else:
        raise TypeError(f"cannot interpret faults spec {faults!r}")
    if num_ranks < 2:
        raise ValueError(
            "fault injection targets the simulated communicator; "
            "it requires num_ranks >= 2"
        )
    return injector


def _resolve_topology(topology, num_ranks: int) -> Topology:
    """Normalize the ``topology`` argument (spec string, Topology, or
    None = ambient ``REPRO_TOPOLOGY``)."""
    if topology is None:
        return Topology.ambient(num_ranks)
    if isinstance(topology, Topology):
        if topology.num_ranks != num_ranks:
            raise ValueError(
                f"topology spans {topology.num_ranks} ranks, "
                f"reconstruction uses {num_ranks}"
            )
        return topology
    if isinstance(topology, str):
        return parse_topology(topology, num_ranks)
    raise TypeError(f"cannot interpret topology spec {topology!r}")


def _resolve_resilience_kwargs(
    solver: str, checkpoint, checkpoint_every: int, resume, health
) -> dict:
    """Build the checkpoint/resume/health kwargs for a resilient solver."""
    extras: dict = {}
    if checkpoint is not None or checkpoint_every:
        if not isinstance(checkpoint, CheckpointManager):
            every = checkpoint_every if checkpoint_every else 10
            checkpoint = CheckpointManager(checkpoint, every=every)
        extras["checkpoint"] = checkpoint
    if resume is not None:
        extras["resume"] = resume
    if health is not None and health is not False:
        extras["health"] = health if isinstance(health, HealthMonitor) else HealthMonitor()
    if extras and solver not in RESILIENT_SOLVERS:
        raise ValueError(
            f"solver {solver!r} does not support checkpoint/resume/health; "
            f"resilient solvers are {RESILIENT_SOLVERS}"
        )
    return extras


def reconstruct(
    sinogram: np.ndarray,
    geometry: ParallelBeamGeometry | None = None,
    solver: str = "cg",
    iterations: int = 30,
    ordering: str = "pseudo-hilbert",
    config: OperatorConfig | None = None,
    num_ranks: int = 1,
    topology=None,
    operator: MemXCTOperator | None = None,
    preprocess_report: PreprocessReport | None = None,
    faults=None,
    checkpoint=None,
    checkpoint_every: int = 0,
    resume=None,
    health=None,
    workers: int | str | None = None,
    dtype: str | None = None,
    tune: str | None = None,
    cache=None,
    **solver_kwargs,
) -> ReconstructionResult:
    """Reconstruct a tomogram from a 2D sinogram.

    Parameters
    ----------
    sinogram:
        Row-major ``(M, N)`` measurement array.
    geometry:
        Scan geometry; inferred from the sinogram shape when omitted.
    solver:
        ``"cg"`` (MemXCT's choice), ``"sirt"`` (Trace's) or ``"sgd"``.
    iterations:
        Iteration budget (30 CG iterations is the paper's early stop).
    ordering:
        Domain ordering for both domains.
    config:
        Kernel configuration (buffered kernel by default).
    num_ranks:
        Simulated MPI ranks; > 1 reconstructs through the distributed
        ``A = R C A_p`` operator (numerically identical by design).
    topology:
        Rank-to-node placement for ``num_ranks > 1``: a spec string
        like ``"nodes:2,ranks:2"`` (or ``"flat"``), or a ready
        :class:`~repro.topology.Topology`.  A non-flat topology runs
        the exchange through the hierarchical
        :class:`~repro.topology.HierComm` — bit-exact with the flat
        path; the two-level traffic split lands in ``result.extra``.
        Defaults to the ambient ``REPRO_TOPOLOGY`` (flat when unset).
    operator, preprocess_report:
        Pass a previously preprocessed operator to skip preprocessing —
        the paper's many-slice amortization (Table 5).
    faults:
        Fault-injection spec for the simulated communicator (a spec
        string like ``"drop=0.05,corrupt=0.02,seed=7"``, a
        :class:`~repro.resilience.FaultConfig`, or a ready
        :class:`~repro.resilience.FaultInjector`).  Requires
        ``num_ranks >= 2``.  Injected transient faults are healed by
        the reliable transport; rank crashes trigger graceful
        degradation.  Fault statistics land in ``result.extra``.
    checkpoint, checkpoint_every:
        Periodic solver checkpointing: a file path (or
        :class:`~repro.resilience.CheckpointManager`) plus the
        snapshot period in iterations (default 10 when only a path is
        given).  ``checkpoint_every`` alone keeps in-memory snapshots
        for health rollback.
    resume:
        Checkpoint to continue from (path, manager, or snapshot);
        continuation is bit-exact for CG.
    health:
        ``True`` (default monitor) or a configured
        :class:`~repro.resilience.HealthMonitor` — detects NaN/Inf and
        sustained divergence, rolling back to the last checkpoint with
        a damped step.
    workers:
        Parallel-execution spec for the SpMV hot path (count, mode, or
        ``"mode:count"`` — see :func:`repro.parallel.parse_workers`).
        Overrides ``config.workers`` and applies to a passed-in
        ``operator`` too.  Execution-only: the reconstruction is
        bit-identical across worker counts.
    dtype:
        Compute precision: ``None`` (default mixed precision),
        ``"float32"`` (end-to-end single precision — half the memory
        traffic, see docs/autotuning.md for the error contract) or
        ``"float64"`` (full double-precision reference).  Overrides
        ``config.dtype``; applies when preprocessing runs here (a
        passed-in ``operator`` keeps its own precision).
    tune:
        Autotuning mode (``"auto"``, ``"predict"``, ``"force"``) — see
        :mod:`repro.autotune`.  Overrides ``config.tune``; like
        ``dtype`` it applies when preprocessing runs here.
    cache:
        Plan-cache selector forwarded to :func:`preprocess` (also
        where tuning records persist).
    solver_kwargs:
        Extra arguments for the chosen solver.
    """
    sinogram = np.asarray(sinogram)
    if sinogram.ndim != 2:
        raise ValueError(f"sinogram must be 2D, got shape {sinogram.shape}")
    if geometry is None:
        geometry = ParallelBeamGeometry(sinogram.shape[0], sinogram.shape[1])
    if sinogram.shape != geometry.sinogram_shape:
        raise ValueError(
            f"sinogram shape {sinogram.shape} does not match geometry "
            f"{geometry.sinogram_shape}"
        )
    if num_ranks < 1:
        raise ValueError(f"rank count must be >= 1, got {num_ranks}")

    injector = _resolve_faults(faults, num_ranks)
    resilience_kwargs = _resolve_resilience_kwargs(
        solver, checkpoint, checkpoint_every, resume, health
    )

    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if dtype is not None:
        overrides["dtype"] = dtype
    if tune is not None:
        overrides["tune"] = tune
    if overrides:
        config = replace(config or OperatorConfig(), **overrides)
    if operator is None:
        operator, preprocess_report = preprocess(
            geometry, config=config, ordering=ordering, cache=cache
        )
    else:
        if workers is not None:
            operator.set_workers(workers)
        if preprocess_report is None:
            preprocess_report = PreprocessReport()

    y = operator.sinogram_to_ordered(sinogram)

    if solver in ("fbp", "icd"):
        if num_ranks > 1:
            raise ValueError(f"solver {solver!r} does not support num_ranks > 1")
        t0 = time.perf_counter()
        solve = _run_direct_or_matrix_solver(
            solver, operator, sinogram, y, iterations, **solver_kwargs
        )
        solve_seconds = time.perf_counter() - t0
        return ReconstructionResult(
            image=operator.ordered_to_image(solve.x),
            solve=solve,
            preprocess_report=preprocess_report,
            operator=operator,
            solve_seconds=solve_seconds,
            solver=solver,
            num_ranks=1,
        )

    solve_op = operator
    if num_ranks > 1:
        tomo_dec, sino_dec = decompose_both(
            operator.tomo_ordering, operator.sino_ordering, num_ranks
        )
        topo = _resolve_topology(topology, num_ranks)
        if injector is not None:
            comm = (
                SimComm(num_ranks, fault_injector=injector)
                if topo.is_flat
                else HierComm(topo, fault_injector=injector)
            )
            solve_op = DistributedOperator(
                operator.matrix, tomo_dec, sino_dec, comm=comm
            )
        else:
            solve_op = DistributedOperator(
                operator.matrix, tomo_dec, sino_dec, topology=topo
            )

    t0 = time.perf_counter()
    solve = _run_solver(
        solver, solve_op, y, iterations, **resilience_kwargs, **solver_kwargs
    )
    solve_seconds = time.perf_counter() - t0

    extra: dict = {}
    if injector is not None:
        extra["fault_stats"] = injector.stats.as_dict()
    if isinstance(solve_op, DistributedOperator):
        extra["topology"] = solve_op.topology.describe()
        hier = solve_op.hier_log()
        if hier is not None:
            extra["hier_comm"] = {
                "num_nodes": hier.num_nodes,
                "intra_bytes": hier.intra_bytes,
                "intra_messages": hier.intra_messages,
                "inter_bytes": hier.inter_bytes(),
                "inter_messages": hier.inter_messages,
            }
    if isinstance(solve_op, DistributedOperator) and solve_op.degradations:
        extra["degradations"] = list(solve_op.degradations)
        extra["surviving_ranks"] = solve_op.num_ranks
    manager = resilience_kwargs.get("checkpoint")
    if manager is not None and manager.path is not None:
        extra["checkpoint_path"] = str(manager.path)

    image = operator.ordered_to_image(solve.x)
    return ReconstructionResult(
        image=image,
        solve=solve,
        preprocess_report=preprocess_report,
        operator=operator,
        solve_seconds=solve_seconds,
        solver=solver,
        num_ranks=num_ranks,
        extra=extra,
    )
