"""The memory-centric MemXCT operator.

Bundles everything the paper's Section 3 builds during preprocessing:
the memoized projection matrix in ordered coordinates, its scan-based
transpose, and (optionally) the multi-stage buffered and ELL layouts.
``forward``/``adjoint`` dispatch to the selected kernel; every kernel
is a pure gather — the scatter races of compute-centric backprojection
are gone because ``A^T`` is materialized.

Vectors handled by the operator live in *ordered* coordinates (tomogram
curve order / sinogram curve order); the image-space helpers translate
to and from row-major 2D arrays.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace

import numpy as np

from ..geometry import ParallelBeamGeometry
from ..obs import (
    BUFFER_STAGES,
    DTYPE_FP32_SPMV,
    DTYPE_FP64_SPMV,
    REGISTRY,
    SPMV_CALLS,
    SPMV_FLOPS,
    SPMV_IRREGULAR_BYTES,
    SPMV_REGULAR_BYTES,
    add_count,
    span,
)
from ..ordering import DomainOrdering
from ..parallel.backend import parse_workers
from ..precision import ambient_dtype
from ..precision import compute_dtype as _compute_dtype_for
from ..precision import parse_dtype
from ..sparse import (
    BufferedMatrix,
    CSRMatrix,
    ELLPartitioned,
    scan_transpose,
    validate_buffer_bytes,
)

__all__ = ["MemXCTOperator", "OperatorConfig", "KERNELS", "TUNE_MODES"]

KERNELS = ("csr", "buffered", "ell")

#: Autotuning modes accepted by ``OperatorConfig.tune`` (besides None):
#: ``auto`` = predict + short measured trials (persisted), ``predict`` =
#: perf-model ranking only (no trials), ``force`` = ignore any persisted
#: record and re-tune.
TUNE_MODES = ("auto", "predict", "force")


@dataclass(frozen=True)
class OperatorConfig:
    """Kernel/layout configuration of a :class:`MemXCTOperator`.

    Attributes
    ----------
    kernel:
        ``"csr"`` (Listing 2 baseline), ``"buffered"`` (Listing 3) or
        ``"ell"`` (GPU-style partition-padded layout).
    partition_size:
        Rows per partition; the paper's tuned KNL value is 128.
    buffer_bytes:
        Input-buffer capacity for the buffered kernel (<= 256 KB).
    workers:
        Parallel-execution spec: a count (``4``), a mode
        (``"thread"``/``"process"``/``"serial"``/``"auto"``) or
        ``"mode:count"``; ``None`` defers to the ``REPRO_WORKERS``
        environment variable.  Purely an execution knob — it never
        changes numerics, and it is excluded from plan-cache
        fingerprints and persisted operators.
    dtype:
        Compute precision. ``None`` (default) defers to the
        ``REPRO_DTYPE`` environment variable, else keeps the
        historical mixed precision: float32 matrix values and kernels,
        float64 solver state.  ``"float32"`` is the end-to-end single-precision
        path (solver state included); ``"float64"`` the full
        double-precision reference path (matrix values stored float64).
        Folded into plan-cache fingerprints when set, so fp32 and fp64
        plans never collide.
    tune:
        Autotuning mode (``None`` = off, or one of
        :data:`TUNE_MODES`).  Resolved during preprocessing — the
        tuner replaces kernel/partition_size/buffer_bytes (and workers,
        unless explicitly set) with the persisted per-geometry winner.
    """

    kernel: str = "buffered"
    partition_size: int = 128
    buffer_bytes: int = 32 * 1024
    workers: int | str | None = None
    dtype: str | None = None
    tune: str | None = None

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; expected one of {KERNELS}")
        if self.partition_size < 1:
            raise ValueError(
                f"partition_size must be >= 1, got {self.partition_size}"
            )
        if self.buffer_bytes <= 0:
            raise ValueError(f"buffer_bytes must be > 0, got {self.buffer_bytes}")
        # Fail the 256 KB uint16-addressing cap here rather than inside
        # build_buffered, which would only run after tracing completed.
        validate_buffer_bytes(self.buffer_bytes)
        # Reject malformed worker specs at config construction too
        # (env resolution is deferred to operator use).
        if self.workers is not None:
            parse_workers(self.workers)
        # Normalize dtype aliases once; everything downstream sees only
        # None / "float32" / "float64" (frozen dataclass -> object.__setattr__).
        # An unset dtype defers to REPRO_DTYPE, mirroring workers.
        object.__setattr__(
            self, "dtype", parse_dtype(self.dtype) or ambient_dtype()
        )
        if self.tune is not None:
            if not isinstance(self.tune, str) or self.tune.lower() not in TUNE_MODES:
                raise ValueError(
                    f"invalid tune mode {self.tune!r}: expected one of "
                    f"{TUNE_MODES} or None"
                )
            object.__setattr__(self, "tune", self.tune.lower())


class MemXCTOperator:
    """Memoized forward/backprojection with ordered domains.

    Build via :func:`repro.core.preprocess.preprocess` rather than
    directly — preprocessing performs (and times) the paper's four
    steps in order.
    """

    def __init__(
        self,
        geometry: ParallelBeamGeometry,
        tomo_ordering: DomainOrdering,
        sino_ordering: DomainOrdering,
        matrix: CSRMatrix,
        transpose: CSRMatrix,
        config: OperatorConfig,
        buffered_forward: BufferedMatrix | None = None,
        buffered_adjoint: BufferedMatrix | None = None,
        ell_forward: ELLPartitioned | None = None,
        ell_adjoint: ELLPartitioned | None = None,
    ):
        self.geometry = geometry
        self.tomo_ordering = tomo_ordering
        self.sino_ordering = sino_ordering
        self.matrix = matrix
        self.transpose = transpose
        self.config = config
        self.buffered_forward = buffered_forward
        self.buffered_adjoint = buffered_adjoint
        self.ell_forward = ell_forward
        self.ell_adjoint = ell_adjoint
        # Row-subset operators (SGD minibatches) keyed by the row-set
        # bytes; bounded so adversarial row sampling cannot grow it
        # without limit.
        self._subset_cache: dict[bytes, tuple[CSRMatrix, CSRMatrix]] = {}
        # Parallel SpMV engine, resolved lazily on first kernel call so
        # loading an operator stays cheap and env resolution happens at
        # use time.  _serial_depth > 0 (see serial_scope) forces the
        # plain kernels — used by callers that parallelize at a coarser
        # granularity and must not re-enter the shared pools.
        self._engine = None
        self._engine_resolved = False
        self._serial_depth = 0

    # -- parallel execution ---------------------------------------------

    def _kernel_layouts(self):
        """(forward, adjoint) layout pair the configured kernel runs on."""
        if (
            self.config.kernel == "buffered"
            and self.buffered_forward is not None
            and self.buffered_adjoint is not None
        ):
            return self.buffered_forward, self.buffered_adjoint
        if (
            self.config.kernel == "ell"
            and self.ell_forward is not None
            and self.ell_adjoint is not None
        ):
            return self.ell_forward, self.ell_adjoint
        return self.matrix, self.transpose

    def _active_engine(self):
        """The parallel engine, or None for serial execution."""
        if self._serial_depth:
            return None
        if not self._engine_resolved:
            self._engine_resolved = True
            workers, mode = parse_workers(self.config.workers)
            if workers >= 2:
                from ..parallel import ParallelSpmvEngine

                forward, adjoint = self._kernel_layouts()
                self._engine = ParallelSpmvEngine(
                    workers=workers,
                    mode=mode,
                    partition_size=self.config.partition_size,
                    forward_layout=forward,
                    adjoint_layout=adjoint,
                )
        return self._engine

    def set_workers(self, workers: int | str | None) -> None:
        """Re-point the operator at a different execution backend.

        Used after loading a cached/persisted operator (worker spec is
        deliberately not part of the persisted plan).  Tears down any
        existing engine first.
        """
        self.close()
        self.config = replace(self.config, workers=workers)

    @contextlib.contextmanager
    def serial_scope(self):
        """Force serial kernels inside the ``with`` body (reentrant).

        Coarser-grained parallel callers (e.g. the pipeline fanning
        slices out to threads) wrap operator calls in this scope so the
        engine's shared pools are never entered from their own workers.
        """
        self._serial_depth += 1
        try:
            yield self
        finally:
            self._serial_depth -= 1

    def close(self) -> None:
        """Release the parallel engine (pools, shared memory); idempotent.

        The operator remains fully usable afterwards — the next kernel
        call re-resolves the backend from ``config.workers``.
        """
        engine, self._engine = self._engine, None
        self._engine_resolved = False
        if engine is not None:
            engine.close()

    # -- protocol ------------------------------------------------------

    @property
    def num_rays(self) -> int:
        return self.matrix.num_rows

    @property
    def num_pixels(self) -> int:
        return self.matrix.num_cols

    @property
    def compute_dtype(self) -> np.dtype:
        """Kernel dtype: float64 only on the opt-in fp64 path."""
        return _compute_dtype_for(self.config.dtype)

    @property
    def solve_dtype(self) -> np.dtype:
        """Solver-state dtype advertised to the iterative solvers.

        ``None`` (mixed) and ``"float64"`` keep the historical float64
        state; ``"float32"`` drops the state to single precision for
        the end-to-end fp32 path.
        """
        return np.dtype(
            np.float32 if self.config.dtype == "float32" else np.float64
        )

    def _forward_kernel(self, x32: np.ndarray) -> np.ndarray:
        engine = self._active_engine()
        if engine is not None:
            return engine.apply("forward", x32)
        if self.config.kernel == "buffered" and self.buffered_forward is not None:
            return self.buffered_forward.spmv_vectorized(x32)
        if self.config.kernel == "ell" and self.ell_forward is not None:
            return self.ell_forward.spmv(x32)
        return self.matrix.spmv(x32)

    def _adjoint_kernel(self, y32: np.ndarray) -> np.ndarray:
        engine = self._active_engine()
        if engine is not None:
            return engine.apply("adjoint", y32)
        if self.config.kernel == "buffered" and self.buffered_adjoint is not None:
            return self.buffered_adjoint.spmv_vectorized(y32)
        if self.config.kernel == "ell" and self.ell_adjoint is not None:
            return self.ell_adjoint.spmv(y32)
        return self.transpose.spmv(y32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward projection ``y = A x`` in ordered coordinates."""
        x32 = np.asarray(x, dtype=self.compute_dtype)
        if not REGISTRY.active:  # hot path: one attribute check
            return self._forward_kernel(x32)
        with span("spmv.forward", kernel=self.config.kernel):
            y = self._forward_kernel(x32)
        self._count_spmv("forward")
        return y

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        """Backprojection ``x = A^T y`` in ordered coordinates."""
        y32 = np.asarray(y, dtype=self.compute_dtype)
        if not REGISTRY.active:  # hot path: one attribute check
            return self._adjoint_kernel(y32)
        with span("spmv.adjoint", kernel=self.config.kernel):
            x = self._adjoint_kernel(y32)
        self._count_spmv("adjoint")
        return x

    def _batch_kernel(self, direction: str, slab32: np.ndarray) -> np.ndarray:
        engine = self._active_engine()
        if engine is not None:
            return engine.apply(direction, slab32)
        matrix, buffered, ell = (
            (self.matrix, self.buffered_forward, self.ell_forward)
            if direction == "forward"
            else (self.transpose, self.buffered_adjoint, self.ell_adjoint)
        )
        if self.config.kernel == "buffered" and buffered is not None:
            return buffered.spmv_batch(slab32)
        if self.config.kernel == "ell" and ell is not None:
            return ell.spmv_batch(slab32)
        return matrix.spmv_batch(slab32)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched forward projection ``Y = A X`` for an ``(pixels, S)`` slab.

        One cached operator drives all ``S`` slices: the regular
        matrix streams are read once per call instead of once per
        slice.  Column ``j`` is bit-identical to ``forward(x[:, j])``.
        """
        x32 = np.asarray(x, dtype=self.compute_dtype)
        if not REGISTRY.active:  # hot path: one attribute check
            return self._batch_kernel("forward", x32)
        with span("spmv.forward", kernel=self.config.kernel, batch=x32.shape[1]):
            y = self._batch_kernel("forward", x32)
        self._count_spmv("forward", batch=x32.shape[1])
        return y

    def adjoint_batch(self, y: np.ndarray) -> np.ndarray:
        """Batched backprojection ``X = A^T Y`` for an ``(rays, S)`` slab."""
        y32 = np.asarray(y, dtype=self.compute_dtype)
        if not REGISTRY.active:  # hot path: one attribute check
            return self._batch_kernel("adjoint", y32)
        with span("spmv.adjoint", kernel=self.config.kernel, batch=y32.shape[1]):
            x = self._batch_kernel("adjoint", y32)
        self._count_spmv("adjoint", batch=y32.shape[1])
        return x

    def _count_spmv(self, direction: str, batch: int = 1) -> None:
        """Account one kernel application on the active captures.

        A batched application counts as ``batch`` logical SpMVs for
        FLOPs and irregular (vector) traffic, but the regular matrix
        streams are charged **once** — that amortization is exactly
        what the multi-RHS kernels buy.
        """
        nnz = self.matrix.nnz
        footprint = self.memory_footprint()
        add_count(SPMV_CALLS, batch)
        add_count(
            DTYPE_FP64_SPMV if self.compute_dtype == np.float64 else DTYPE_FP32_SPMV,
            batch,
        )
        add_count(SPMV_FLOPS, 2 * nnz * batch)
        add_count(SPMV_REGULAR_BYTES, footprint[f"regular_{direction}"])
        add_count(SPMV_IRREGULAR_BYTES, batch * footprint[f"irregular_{direction}"])
        buffered = (
            self.buffered_forward if direction == "forward" else self.buffered_adjoint
        )
        if self.config.kernel == "buffered" and buffered is not None:
            add_count(BUFFER_STAGES, buffered.num_stages)

    def row_sums(self) -> np.ndarray:
        return self.matrix.row_sums()

    def col_sums(self) -> np.ndarray:
        return self.matrix.col_sums()

    #: Maximum number of memoized row-subset operators (FIFO eviction).
    _SUBSET_CACHE_CAPACITY = 128

    def _subset_operators(self, rows: np.ndarray) -> tuple[CSRMatrix, CSRMatrix]:
        """Memoized (submatrix, transpose) pair for a row subset.

        SGD revisits the same minibatch row-sets every epoch; rebuilding
        the permuted submatrix and its scan transpose per step costs
        more than the SpMV itself, so both are cached per row-set.
        """
        rows = np.asarray(rows, dtype=np.int64)
        key = rows.tobytes()
        cached = self._subset_cache.get(key)
        if cached is None:
            sub = self.matrix.permute(rows, None)
            cached = (sub, scan_transpose(sub))
            if len(self._subset_cache) >= self._SUBSET_CACHE_CAPACITY:
                self._subset_cache.pop(next(iter(self._subset_cache)))
            self._subset_cache[key] = cached
        return cached

    def row_subset_forward(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Partial forward projection over a row subset (SGD support)."""
        sub, _ = self._subset_operators(rows)
        return sub.spmv(np.asarray(x, dtype=self.compute_dtype))

    def row_subset_adjoint(self, y_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Partial backprojection of values on a row subset (SGD support)."""
        _, sub_t = self._subset_operators(rows)
        return sub_t.spmv(np.asarray(y_rows, dtype=self.compute_dtype))

    # -- image-space helpers --------------------------------------------

    def sinogram_to_ordered(self, sinogram: np.ndarray) -> np.ndarray:
        """Row-major ``(M, N)`` sinogram -> ordered measurement vector."""
        return self.sino_ordering.to_ordered(sinogram)

    def ordered_to_sinogram(self, y: np.ndarray) -> np.ndarray:
        """Ordered measurement vector -> row-major ``(M, N)`` sinogram."""
        return self.sino_ordering.from_ordered(y)

    def image_to_ordered(self, image: np.ndarray) -> np.ndarray:
        """Row-major ``(N, N)`` tomogram -> ordered pixel vector."""
        return self.tomo_ordering.to_ordered(image)

    def ordered_to_image(self, x: np.ndarray) -> np.ndarray:
        """Ordered pixel vector -> row-major ``(N, N)`` tomogram."""
        return self.tomo_ordering.from_ordered(x)

    def project_image(self, image: np.ndarray) -> np.ndarray:
        """Forward-project a 2D image, returning a 2D sinogram."""
        y = self.forward(self.image_to_ordered(image))
        return self.ordered_to_sinogram(y)

    def backproject_sinogram(self, sinogram: np.ndarray) -> np.ndarray:
        """Backproject a 2D sinogram, returning a 2D image."""
        x = self.adjoint(self.sinogram_to_ordered(sinogram))
        return self.ordered_to_image(x)

    # 3D (cone-beam) variants of the image-space helpers.  The ordering
    # bijections are flat, so to_ordered accepts any shape; only the
    # inverse direction needs the geometry's true array shape back.

    def volume_to_ordered(self, volume: np.ndarray) -> np.ndarray:
        """Row-major ``(nz, n, n)`` volume -> ordered voxel vector."""
        return self.tomo_ordering.to_ordered(volume)

    def ordered_to_volume(self, x: np.ndarray) -> np.ndarray:
        """Ordered voxel vector -> row-major ``(nz, n, n)`` volume."""
        return self.tomo_ordering.from_ordered(x).reshape(self.geometry.grid.shape)

    def projections_to_ordered(self, projections: np.ndarray) -> np.ndarray:
        """``(M, det_rows, det_cols)`` stack -> ordered measurement vector."""
        return self.sino_ordering.to_ordered(projections)

    def ordered_to_projections(self, y: np.ndarray) -> np.ndarray:
        """Ordered measurement vector -> ``(M, det_rows, det_cols)`` stack."""
        return self.sino_ordering.from_ordered(y).reshape(
            self.geometry.sinogram_shape
        )

    def project_volume(self, volume: np.ndarray) -> np.ndarray:
        """Forward-project a 3D volume, returning a projection stack."""
        y = self.forward(self.volume_to_ordered(volume))
        return self.ordered_to_projections(y)

    def backproject_projections(self, projections: np.ndarray) -> np.ndarray:
        """Backproject a projection stack, returning a 3D volume."""
        x = self.adjoint(self.projections_to_ordered(projections))
        return self.ordered_to_volume(x)

    # -- accounting ------------------------------------------------------

    def memory_footprint(self) -> dict[str, int]:
        """Byte counts matching the paper's Table 3 categories.

        *Irregular data* is what the irregular gathers touch: the
        tomogram vector (forward) and the sinogram vector
        (backprojection).  *Regular data* is the streamed matrix
        storage of each direction.
        """
        nnz = self.matrix.nnz
        per_index = 2 if self.config.kernel == "buffered" else 4
        per_value = self.matrix.val.dtype.itemsize
        per_vector = self.compute_dtype.itemsize
        regular_each = nnz * (per_value + per_index)
        return {
            "irregular_forward": self.num_pixels * per_vector,
            "irregular_adjoint": self.num_rays * per_vector,
            "regular_forward": regular_each,
            "regular_adjoint": regular_each,
            "displ_bytes": 8 * (self.matrix.displ.shape[0] + self.transpose.displ.shape[0]),
        }
