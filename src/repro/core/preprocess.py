"""The MemXCT preprocessing pipeline (paper Section 3.5).

Four steps, each timed:

1. **Hilbert ordering and domain decomposition** — build the two-level
   pseudo-Hilbert orderings of both domains;
2. **ray tracing** — construct the forward-projection matrix;
3. **sparse transposition** — scan-based, order-preserving transpose
   for the backprojection matrix;
4. **row partitioning and buffer construction** — the multi-stage
   buffer data structures for both directions.

Preprocessing is paid once per scan geometry; its product (the
operator) is reused across all slices of a 3D dataset (paper Table 5's
"All Slices" argument).  With ``cache="auto"`` (or a cache directory /
:class:`repro.cache.PlanCache`), that reuse extends across processes:
the finished plan is stored content-addressed on disk, and a later
``preprocess`` call with identical inputs loads it back and skips all
four stages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..geometry import ParallelBeamGeometry
from ..obs import AUTOTUNE_HITS, AUTOTUNE_MISSES, add_count, span
from ..ordering import make_ordering
from ..parallel.backend import make_backend, parse_workers
from ..sparse import CSRMatrix, build_buffered, build_ell, scan_transpose
from ..trace import build_projection_matrix
from .operator import MemXCTOperator, OperatorConfig

__all__ = ["PreprocessReport", "preprocess"]


@dataclass
class PreprocessReport:
    """Wall-clock seconds of each preprocessing step.

    ``cache_hit`` is True when the operator came from the plan cache —
    all stage timings are then zero because no stage ran.  ``cache_key``
    is the plan fingerprint whenever a cache was consulted.
    """

    ordering_seconds: float = 0.0
    tracing_seconds: float = 0.0
    transpose_seconds: float = 0.0
    partitioning_seconds: float = 0.0
    cache_hit: bool = False
    cache_key: str | None = None
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.ordering_seconds
            + self.tracing_seconds
            + self.transpose_seconds
            + self.partitioning_seconds
        )


def preprocess(
    geometry: ParallelBeamGeometry,
    config: OperatorConfig | None = None,
    ordering: str = "pseudo-hilbert",
    min_tiles: int = 16,
    tile_size: int | None = None,
    cache=None,
) -> tuple[MemXCTOperator, PreprocessReport]:
    """Run the four-step preprocessing and return the operator.

    Parameters
    ----------
    geometry:
        Scan geometry to memoize.
    config:
        Kernel configuration (defaults to the buffered kernel with the
        paper's tuned KNL parameters).
    ordering:
        Domain-ordering scheme for both domains (``"row-major"``,
        ``"morton"``, ``"hilbert"``, ``"pseudo-hilbert"``).
    min_tiles, tile_size:
        Two-level ordering granularity (see
        :func:`repro.ordering.pseudo_hilbert_order`).
    cache:
        Plan-cache selector: ``None``/``"off"`` (default) disables
        caching, ``"auto"`` uses the default cache directory
        (``REPRO_CACHE_DIR`` or ``~/.cache/repro/plans``), a path
        string / ``Path`` selects an explicit directory, and a
        :class:`repro.cache.PlanCache` is used as-is.  On a hit the
        finished plan is loaded and **all four stages are skipped**
        (``report.cache_hit``); on a miss the stages run and the plan
        is stored for the next process.

    The worker spec in ``config.workers`` (or ``REPRO_WORKERS``) also
    parallelizes the tracing stage here: per-angle Siddon tracing fans
    out across the backend, with chunks reassembled in angle order so
    the traced matrix is bit-identical to a serial build.  The cache
    fingerprint excludes the worker spec — plans are shared across
    worker counts.
    """
    # Imported lazily: repro.cache depends on repro.io which imports
    # repro.core — a module-level import here would close that cycle.
    from ..cache import PlanCache, plan_fingerprint

    config = config or OperatorConfig()
    report = PreprocessReport()

    # Resolve a pending tune request from the persisted record first:
    # a warm tuning hit rewrites the layout knobs *before* the plan
    # fingerprint is computed, so the tuned plan itself is also a warm
    # cache hit and the whole warm path costs two file reads.
    tune_mode = config.tune
    tune_store = None
    tune_key = None
    if tune_mode is not None:
        from ..autotune import TuneStore, tune_fingerprint

        tune_store = TuneStore.resolve(cache)
        tune_key = tune_fingerprint(
            geometry,
            ordering=ordering,
            min_tiles=min_tiles,
            tile_size=tile_size,
            dtype=config.dtype,
        )
        record = None
        if tune_store is not None and tune_mode != "force":
            record = tune_store.load(tune_key)
        if record is not None:
            add_count(AUTOTUNE_HITS, 1)
            config = record.apply(config)
            tune_mode = None
            report.extra["autotune_warm"] = 1.0
        else:
            add_count(AUTOTUNE_MISSES, 1)

    plan_cache = PlanCache.resolve(cache)
    if plan_cache is not None and tune_mode is None:
        key = plan_fingerprint(geometry, config, ordering, min_tiles, tile_size)
        report.cache_key = key
        operator = plan_cache.load(key)
        if operator is not None:
            if config.workers is not None:
                # Plans persist no worker spec (it never changes the
                # numbers); re-apply the requested backend to the
                # loaded operator.
                operator.set_workers(config.workers)
            report.cache_hit = True
            return operator, report

    with span(
        "preprocess",
        angles=geometry.num_angles,
        channels=geometry.num_channels,
        kernel=config.kernel,
    ):
        with span("preprocess.ordering", scheme=ordering) as sp:
            # Geometries whose domains are not literally 2D (e.g. the
            # cone-beam voxel volume) advertise equivalent layout
            # rectangles; the orderings only need a bijection over flat
            # indices, so the 2D machinery applies unchanged.
            n = geometry.grid.n
            tomo_rows, tomo_cols = getattr(
                geometry, "tomo_layout_shape", None
            ) or (n, n)
            sino_rows, sino_cols = getattr(
                geometry, "sino_layout_shape", None
            ) or (geometry.num_angles, geometry.num_channels)
            tomo_ordering = make_ordering(
                ordering, tomo_rows, tomo_cols, tile_size=tile_size, min_tiles=min_tiles
            )
            sino_ordering = make_ordering(
                ordering,
                sino_rows,
                sino_cols,
                tile_size=tile_size,
                min_tiles=min_tiles,
            )
        report.ordering_seconds = sp.duration

        workers, mode = parse_workers(config.workers)
        with span("preprocess.tracing", workers=workers, mode=mode) as sp:
            backend = make_backend(workers, mode)
            try:
                raw = build_projection_matrix(geometry, backend=backend)
            finally:
                backend.close()
        report.tracing_seconds = sp.duration

        with span("preprocess.transpose") as sp:
            matrix = (
                CSRMatrix.from_scipy(raw, dtype=config.dtype or "float32")
                .permute(sino_ordering.perm, tomo_ordering.rank)
                .sort_rows_by_index()
            )
            transpose = scan_transpose(matrix)
        report.transpose_seconds = sp.duration

        if tune_mode is not None:
            # The search runs on the traced matrix the operator will
            # actually use — between transpose and partitioning, so
            # nothing is traced twice and only the winning layout is
            # built below.
            from ..autotune import Autotuner, TuningRecord

            with span("preprocess.autotune", mode=tune_mode) as sp:
                tuner = Autotuner()
                outcome = tuner.tune(
                    matrix,
                    transpose,
                    mode="predict" if tune_mode == "predict" else "auto",
                )
                best = outcome.best
                record = TuningRecord(
                    key=tune_key or "",
                    kernel=best.candidate.kernel,
                    partition_size=best.candidate.partition_size,
                    buffer_bytes=best.candidate.buffer_bytes,
                    workers=best.candidate.workers,
                    dtype=config.dtype,
                    mode=tune_mode,
                    predicted_seconds=best.predicted_seconds,
                    measured_seconds=best.measured_seconds,
                    candidates_considered=outcome.candidates_considered,
                    trials=len(outcome.trials),
                    cpu_count=os.cpu_count() or 0,
                )
                config = record.apply(config)
                if tune_store is not None and tune_key is not None:
                    tune_store.save(tune_key, record)
            report.extra["autotune_seconds"] = sp.duration
            report.extra["autotune_candidates"] = float(
                outcome.candidates_considered
            )
            report.extra["autotune_trials"] = float(len(outcome.trials))
            if plan_cache is not None:
                report.cache_key = plan_fingerprint(
                    geometry, config, ordering, min_tiles, tile_size
                )

        with span("preprocess.partitioning", kernel=config.kernel) as sp:
            buffered_forward = buffered_adjoint = None
            ell_forward = ell_adjoint = None
            if config.kernel == "buffered":
                buffered_forward = build_buffered(
                    matrix, config.partition_size, config.buffer_bytes
                )
                buffered_adjoint = build_buffered(
                    transpose, config.partition_size, config.buffer_bytes
                )
            elif config.kernel == "ell":
                ell_forward = build_ell(matrix, config.partition_size)
                ell_adjoint = build_ell(transpose, config.partition_size)
        report.partitioning_seconds = sp.duration

    operator = MemXCTOperator(
        geometry=geometry,
        tomo_ordering=tomo_ordering,
        sino_ordering=sino_ordering,
        matrix=matrix,
        transpose=transpose,
        config=config,
        buffered_forward=buffered_forward,
        buffered_adjoint=buffered_adjoint,
        ell_forward=ell_forward,
        ell_adjoint=ell_adjoint,
    )
    if plan_cache is not None:
        plan_cache.store(
            report.cache_key,
            operator,
            extra_meta={
                "ordering": ordering,
                "min_tiles": min_tiles,
                "tile_size": tile_size,
                "preprocess_seconds": report.total_seconds,
            },
        )
    return operator, report
