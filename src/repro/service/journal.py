"""Crash-safe job journal and spool layout.

The service's durability contract — *an acknowledged job is never
lost* — reduces to one write-ordering rule enforced here:

1. the job's input sinogram lands in the spool via
   :func:`repro.persist.atomic_savez_checked` (atomic rename + CRC);
2. an ``accepted`` record is appended to the journal through
   :class:`repro.persist.RecordLog` (fsync before return);
3. only then is the submission acknowledged to the client.

Every later state transition (``done`` / ``failed`` / ``expired``)
appends another record.  After a crash, :meth:`JobJournal.replay`
folds the log into per-job state: jobs with an ``accepted`` record but
no terminal record are exactly the acknowledged in-flight work the
restarted engine must finish.  A torn final record — the residue of
``kill -9`` mid-append — is dropped by :class:`~repro.persist.RecordLog`;
by the write ordering above it can only ever be an *unacknowledged*
acceptance or a terminal record whose work is safely redone.

Spool layout::

    <spool>/journal.log              CRC-framed record log (JSON records)
    <spool>/jobs/<id>/input.npz      checked archive: sinogram + spec
    <spool>/jobs/<id>/result.npz     checked archive: image + metadata
    <spool>/jobs/<id>/checkpoint.npz solver checkpoint (opt-in jobs)

Payloads of *terminal* jobs may later be **evicted** (result TTL or
spool size cap, see :class:`repro.service.ServiceConfig`): the job's
spool directory is removed and an ``evicted`` record is journaled, so
replay knows the result is durably gone rather than lost.  Eviction
never touches the journal history itself — ``status`` keeps answering
for evicted jobs; only ``result`` turns into an explicit HTTP 410.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..persist import (
    CorruptArchiveError,
    RecordLog,
    atomic_savez_checked,
    load_checked_npz,
)

__all__ = ["JobJournal", "JournalEntry", "TERMINAL_STATES"]

#: States after which a job's journal history is complete.
TERMINAL_STATES = frozenset({"done", "failed", "expired"})


@dataclass
class JournalEntry:
    """Folded journal state of one job."""

    job_id: str
    spec: dict = field(default_factory=dict)
    state: str = "accepted"
    seq: int = 0  # acceptance order (journal position)
    error: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobJournal:
    """Append-only journal plus per-job spool files.

    Appends are serialized by an internal lock — HTTP handler threads
    journal acceptances while the scheduler thread journals terminal
    states, and interleaved frame writes would tear the log.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._log = RecordLog(self.root / "journal.log")
        self._lock = threading.Lock()
        self.records_written = 0

    def close(self) -> None:
        self._log.close()

    # -- spool paths -----------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def input_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "input.npz"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.npz"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.npz"

    # -- durable payloads ------------------------------------------------

    def save_input(self, job_id: str, sinogram: np.ndarray, spec: dict) -> None:
        """Persist the job input (checked archive) before acknowledging."""
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        atomic_savez_checked(
            self.input_path(job_id),
            {
                "sinogram": np.ascontiguousarray(sinogram),
                "spec_json": np.frombuffer(
                    json.dumps(spec, sort_keys=True).encode("utf-8"), dtype=np.uint8
                ).copy(),
            },
        )

    def load_input(self, job_id: str) -> tuple[np.ndarray, dict]:
        """Load and verify a job input; raises CorruptArchiveError."""
        payload = load_checked_npz(self.input_path(job_id))
        spec = json.loads(bytes(payload["spec_json"]).decode("utf-8"))
        return payload["sinogram"], spec

    def save_result(self, job_id: str, image: np.ndarray, meta: dict) -> None:
        atomic_savez_checked(
            self.result_path(job_id),
            {
                "image": np.ascontiguousarray(image),
                "meta_json": np.frombuffer(
                    json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
                ).copy(),
            },
        )

    def load_result(self, job_id: str) -> tuple[np.ndarray, dict]:
        payload = load_checked_npz(self.result_path(job_id))
        meta = json.loads(bytes(payload["meta_json"]).decode("utf-8"))
        return payload["image"], meta

    def payload_bytes(self, job_id: str) -> int:
        """Total on-disk bytes of the job's spool files (0 if evicted)."""
        total = 0
        try:
            for path in self.job_dir(job_id).iterdir():
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        except OSError:
            return 0
        return total

    def evict_payloads(self, job_id: str) -> int:
        """Delete the job's spool directory; returns bytes freed.

        Idempotent: a job evicted twice (or never spooled) frees 0.
        The journal history is untouched — callers append an
        ``evicted`` record so replay learns the payload is gone.
        """
        job_dir = self.job_dir(job_id)
        freed = 0
        try:
            entries = list(job_dir.iterdir())
        except OSError:
            return 0
        for path in entries:
            try:
                freed += path.stat().st_size
                path.unlink()
            except OSError:
                continue
        try:
            job_dir.rmdir()
        except OSError:
            pass
        return freed

    # -- records ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        with self._lock:
            self._log.append(payload)
            self.records_written += 1

    def record_accepted(self, job_id: str, spec: dict, **meta) -> None:
        self._append({"event": "accepted", "job": job_id, "spec": spec, **meta})

    def record_done(self, job_id: str, **meta) -> None:
        self._append({"event": "done", "job": job_id, **meta})

    def record_failed(self, job_id: str, error: str, **meta) -> None:
        self._append({"event": "failed", "job": job_id, "error": error, **meta})

    def record_expired(self, job_id: str, **meta) -> None:
        self._append({"event": "expired", "job": job_id, **meta})

    def record_evicted(self, job_id: str, **meta) -> None:
        self._append({"event": "evicted", "job": job_id, **meta})

    # -- replay ----------------------------------------------------------

    def replay(self) -> dict[str, JournalEntry]:
        """Fold the journal into per-job state, in acceptance order.

        Unknown events and terminal records for unknown jobs are
        ignored (forward compatibility / truncated histories) — replay
        never invents work, it only finishes acknowledged work.
        """
        entries: dict[str, JournalEntry] = {}
        seq = 0
        for payload in self._log.replay():
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # CRC-intact but alien record: skip, don't guess
            event = record.get("event")
            job_id = record.get("job")
            if not job_id:
                continue
            if event == "accepted":
                entries[job_id] = JournalEntry(
                    job_id=job_id,
                    spec=record.get("spec", {}),
                    state="accepted",
                    seq=seq,
                    meta={k: v for k, v in record.items()
                          if k not in ("event", "job", "spec")},
                )
                seq += 1
            elif event in TERMINAL_STATES and job_id in entries:
                entry = entries[job_id]
                entry.state = event
                entry.error = record.get("error")
                entry.meta.update(
                    {k: v for k, v in record.items()
                     if k not in ("event", "job", "error")}
                )
            elif event == "evicted" and job_id in entries:
                entries[job_id].meta["evicted"] = True
        return entries

    def verify_input(self, job_id: str) -> bool:
        """Whether the job's input archive exists and passes its CRC."""
        try:
            self.load_input(job_id)
            return True
        except (CorruptArchiveError, FileNotFoundError):
            return False
