"""Seeded fault injection for the job-service layer.

:mod:`repro.resilience.faults` shakes the *communication* layer; this
module shakes the *service* layer, so the journal/retry/recovery
machinery can be chaos-tested deterministically:

* **drop** — a submission is refused *before* it is acknowledged (the
  client sees a 503 and retries); models a lossy front door.  Dropped
  jobs are by construction never journaled, so they cannot count as
  acknowledged loss.
* **delay** — the scheduler sleeps ``delay_s`` before a solve; models
  a slow handler / noisy neighbour.
* **crash** — a solve raises mid-iteration; the engine's bounded
  retry-with-backoff (:class:`repro.resilience.RetryPolicy`) re-runs
  the job.  ``crash_first=N`` deterministically fails the first ``N``
  solve attempts (exact retry-count assertions); ``crash=p`` fails
  each attempt with probability ``p`` (chaos sweeps).
* **die** — ``die_at=N`` hard-exits the process (``os._exit(137)``) at
  the start of the ``N``-th solve dispatch: a reproducible ``kill -9``
  for crash-recovery tests without racing a signal against the solver.

Draws come from a :class:`numpy.random.Generator` seeded by the
config, so a ``(spec, seed)`` pair replays the same fault sequence for
a given arrival order.  Specs are compact strings for CLI/env use::

    drop=0.1,delay=0.2,delay_s=0.002,crash=0.25,die_at=3,seed=42

``REPRO_SERVICE_FAULTS`` activates injection ambiently, which is how
the subprocess chaos tests arm a served engine.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ServiceFaultConfig",
    "ServiceFaultInjector",
    "parse_service_fault_spec",
]

_FLOAT_KEYS = ("drop", "delay", "delay_s", "crash")
_INT_KEYS = ("crash_first", "die_at", "seed")


@dataclass(frozen=True)
class ServiceFaultConfig:
    """Probabilities and schedule of the injected service faults."""

    drop: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.002
    crash: float = 0.0
    crash_first: int = 0
    die_at: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "crash"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"fault probability {name}={p} must be in [0, 1)")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.crash_first < 0 or self.die_at < 0:
            raise ValueError("crash_first/die_at must be >= 0")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.drop or self.delay or self.crash or self.crash_first or self.die_at
        )

    @classmethod
    def parse(cls, spec: str) -> "ServiceFaultConfig":
        return parse_service_fault_spec(spec)

    @classmethod
    def from_env(cls) -> "ServiceFaultConfig | None":
        """Ambient config from ``REPRO_SERVICE_FAULTS`` (None when unset)."""
        spec = os.environ.get("REPRO_SERVICE_FAULTS", "").strip()
        if not spec:
            return None
        return parse_service_fault_spec(spec)


def parse_service_fault_spec(spec: str) -> ServiceFaultConfig:
    """Parse ``drop=0.1,crash=0.25,die_at=3,seed=42`` into a config."""
    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad service fault spec item {item!r}: expected key=value"
            )
        key, _, value = item.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in _FLOAT_KEYS:
            kwargs[key] = float(value)
        elif key in _INT_KEYS:
            kwargs[key] = int(value)
        else:
            raise ValueError(
                f"unknown service fault key {key!r} "
                f"(expected one of {sorted(_FLOAT_KEYS + _INT_KEYS)})"
            )
    return ServiceFaultConfig(**kwargs)


class InjectedSolveCrash(RuntimeError):
    """A seeded transient solve failure (healed by the retry loop)."""


class ServiceFaultInjector:
    """Draws service faults from a seeded RNG.

    Thread-safe: admission drops are drawn from HTTP handler threads
    while solve faults are drawn from the scheduler thread.  The draw
    *sequence* therefore depends on arrival order; chaos tests assert
    invariants (zero acknowledged loss, bit-exact results), not exact
    fault placement.
    """

    def __init__(self, config: ServiceFaultConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._lock = threading.Lock()
        self._solves = 0
        self._attempts = 0
        self.drops = 0
        self.delays = 0
        self.crashes = 0

    def draw_drop(self) -> bool:
        """Whether to refuse this submission before acknowledging it."""
        if not self.config.drop:
            return False
        with self._lock:
            hit = bool(self._rng.random() < self.config.drop)
            if hit:
                self.drops += 1
            return hit

    def draw_delay(self) -> float:
        """Pre-solve delay in seconds (0.0 = none)."""
        if not self.config.delay:
            return 0.0
        with self._lock:
            if self._rng.random() < self.config.delay:
                self.delays += 1
                return self.config.delay_s
            return 0.0

    def draw_crash(self) -> bool:
        """Whether this solve attempt should fail transiently."""
        with self._lock:
            self._attempts += 1
            if self.config.crash_first and self._attempts <= self.config.crash_first:
                self.crashes += 1
                return True
            if self.config.crash and self._rng.random() < self.config.crash:
                self.crashes += 1
                return True
            return False

    def on_solve_dispatch(self) -> None:
        """Count a solve dispatch; hard-exit if it is the ``die_at``-th.

        ``os._exit`` skips every cleanup hook — flushes, atexit,
        finally blocks — which is exactly the failure mode ``kill -9``
        produces and exactly what the journal must survive.
        """
        with self._lock:
            self._solves += 1
            if self.config.die_at and self._solves == self.config.die_at:
                os._exit(137)
