"""repro.service — crash-safe reconstruction-as-a-service.

The paper amortizes preprocessing across the slices of one stack;
this package amortizes it across *clients*.  A journaled job engine
(:mod:`~repro.service.engine`) accepts sinogram solves behind bounded
admission control, coalesces compatible requests into single
multi-RHS dispatches, enforces per-job deadlines inside the solver
loop, retries transient failures with bounded backoff, and survives
``kill -9`` without losing an acknowledged job — every durability
primitive shared with the rest of the stack via :mod:`repro.persist`.

A stdlib HTTP front end (:mod:`~repro.service.server`, ``repro
serve``) and client (:mod:`~repro.service.client`, ``repro submit``)
wrap the engine; :mod:`~repro.service.faults` injects seeded service
faults for the chaos battery.  See ``docs/service.md``.
"""

from .engine import (
    SERVICE_SOLVERS,
    DroppedSubmissionError,
    Job,
    JobFailedError,
    JobSpec,
    QueueFullError,
    RateLimitedError,
    ReconService,
    ResultNotReadyError,
    ServiceConfig,
    ServiceError,
    UnknownJobError,
)
from .faults import ServiceFaultConfig, ServiceFaultInjector, parse_service_fault_spec
from .journal import JobJournal, JournalEntry
from .server import ServiceServer, serve
from .client import ServiceClient, ServiceUnavailableError

__all__ = [
    "SERVICE_SOLVERS",
    "ReconService",
    "ServiceConfig",
    "JobSpec",
    "Job",
    "ServiceError",
    "QueueFullError",
    "RateLimitedError",
    "DroppedSubmissionError",
    "UnknownJobError",
    "ResultNotReadyError",
    "JobFailedError",
    "JobJournal",
    "JournalEntry",
    "ServiceFaultConfig",
    "ServiceFaultInjector",
    "parse_service_fault_spec",
    "ServiceServer",
    "serve",
    "ServiceClient",
    "ServiceUnavailableError",
]
