"""Stdlib HTTP front end for :class:`~repro.service.ReconService`.

A deliberately small, dependency-free surface (documented in
``docs/service.md``)::

    POST /v1/jobs             submit (JSON body, base64 sinogram) -> 202
    GET  /v1/jobs/<id>        status JSON
    GET  /v1/jobs/<id>/result finished image as raw .npy bytes
    GET  /v1/stats            engine stats JSON
    GET  /v1/healthz          liveness probe

Backpressure maps to HTTP exactly: a full queue or a rate-limited
tenant answers **429 with a Retry-After header** (never a silent
drop), an injected chaos drop answers 503, and a draining server
answers 503 so load balancers fail over.  ``SIGTERM`` drains: in-flight
and queued jobs finish, then the process exits 0.  ``kill -9`` is the
journal's job, not the server's.

Handler threads only touch the engine's thread-safe admission/query
surface; every solve stays on the engine's single scheduler thread.
"""

from __future__ import annotations

import base64
import io
import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..persist import CorruptArchiveError
from .engine import (
    DroppedSubmissionError,
    JobFailedError,
    JobSpec,
    ReconService,
    ResultNotReadyError,
    ServiceError,
    UnknownJobError,
)

__all__ = ["ServiceServer", "serve"]

_MAX_BODY_BYTES = 256 * 1024 * 1024


def _decode_sinogram(doc: dict) -> np.ndarray:
    """Sinogram from a submission body: base64 float64 + shape."""
    try:
        raw = base64.b64decode(doc["sinogram_b64"], validate=True)
        shape = tuple(int(v) for v in doc["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"bad sinogram encoding: {exc}") from exc
    if len(shape) != 2:
        raise ValueError(f"sinogram must be 2-D, got shape {shape}")
    expected = shape[0] * shape[1] * 8
    if len(raw) != expected:
        raise ValueError(
            f"sinogram payload is {len(raw)} bytes, expected {expected}"
        )
    return np.frombuffer(raw, dtype="<f8").reshape(shape).copy()


def encode_sinogram(sinogram: np.ndarray) -> dict:
    """The wire form :func:`_decode_sinogram` accepts."""
    sinogram = np.ascontiguousarray(np.asarray(sinogram, dtype="<f8"))
    return {
        "sinogram_b64": base64.b64encode(sinogram.tobytes()).decode("ascii"),
        "shape": list(sinogram.shape),
    }


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 keep-alive: every response must carry Content-Length,
    # which _send_json/_send_bytes guarantee.
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    @property
    def engine(self) -> ReconService:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: A003 — quiet by default
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    # -- plumbing --------------------------------------------------------

    def _send_json(self, code: int, doc: dict, headers: dict | None = None):
        body = json.dumps(doc).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, code: int, body: bytes, content_type: str,
                    headers: dict | None = None):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _backpressure(self, code: int, exc: ServiceError):
        self._send_json(
            code,
            {"error": str(exc), "retry_after_s": exc.retry_after},
            headers={"Retry-After": str(max(1, int(np.ceil(exc.retry_after))))},
        )

    # -- routes ----------------------------------------------------------

    def do_POST(self):  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/v1/jobs":
            self._send_json(404, {"error": f"no such route {self.path}"})
            return
        if self.server.draining:  # type: ignore[attr-defined]
            self._send_json(
                503, {"error": "server is draining"},
                headers={"Retry-After": "5"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length <= 0 or length > _MAX_BODY_BYTES:
                raise ValueError(f"bad Content-Length {length}")
            doc = json.loads(self.rfile.read(length).decode("utf-8"))
            sinogram = _decode_sinogram(doc)
            spec = JobSpec.from_dict(doc.get("spec", {}))
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            ack = self.engine.submit(sinogram, spec)
        except DroppedSubmissionError as exc:
            self._backpressure(503, exc)
            return
        except ServiceError as exc:  # queue full / rate limited
            self._backpressure(429, exc)
            return
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(202, ack)

    def do_GET(self):  # noqa: N802
        parts = [p for p in self.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            self._send_json(200, {"ok": True})
            return
        if parts == ["v1", "stats"]:
            self._send_json(200, self.engine.stats())
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            try:
                self._send_json(200, self.engine.status(parts[2]))
            except UnknownJobError:
                self._send_json(404, {"error": f"unknown job {parts[2]}"})
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            job_id = parts[2]
            try:
                image = self.engine.result(job_id)
            except UnknownJobError:
                self._send_json(404, {"error": f"unknown job {job_id}"})
                return
            except ResultNotReadyError as exc:
                self._send_json(
                    409, {"error": str(exc), "state": exc.state},
                    headers={"Retry-After": "1"},
                )
                return
            except JobFailedError as exc:
                self._send_json(
                    410, {"error": str(exc), "state": exc.state},
                )
                return
            except CorruptArchiveError as exc:
                self._send_json(500, {"error": str(exc)})
                return
            buffer = io.BytesIO()
            np.save(buffer, image)
            self._send_bytes(
                200, buffer.getvalue(), "application/octet-stream",
                headers={"X-Job-Id": job_id},
            )
            return
        self._send_json(404, {"error": f"no such route {self.path}"})


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one engine."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, engine: ReconService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.engine = engine
        self.verbose = verbose
        self.draining = False

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(
    engine: ReconService,
    host: str = "127.0.0.1",
    port: int = 8780,
    *,
    verbose: bool = False,
    ready_callback=None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the HTTP front end until SIGTERM/SIGINT; returns exit code.

    ``port=0`` binds an ephemeral port; the actual port is reported via
    ``ready_callback(server)`` (and by the CLI as a JSON line), which
    is how subprocess tests discover where to connect.  SIGTERM drains:
    new submissions get 503, queued and in-flight jobs finish, then
    the loop exits cleanly.
    """
    engine.start(recover=True)
    server = ServiceServer((host, port), engine, verbose=verbose)
    exit_code = 0

    def shutdown(drain: bool):
        server.draining = True
        engine.stop(drain=drain, timeout=None)
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(
            signal.SIGTERM,
            lambda *_: threading.Thread(
                target=shutdown, args=(True,), daemon=True
            ).start(),
        )
        signal.signal(
            signal.SIGINT,
            lambda *_: threading.Thread(
                target=shutdown, args=(False,), daemon=True
            ).start(),
        )
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
        engine.close()
    return exit_code
