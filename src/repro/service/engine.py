"""The reconstruction-as-a-service engine.

MemXCT's memory-centric bargain — preprocess once per geometry,
amortize over every solve — is worth the most when *many clients*
share the expensive artifact.  This engine is that multi-tenant story:

* **Admission control** — a bounded queue with explicit backpressure.
  A full queue refuses the submission with a computed retry-after
  (recent solve throughput times backlog), never a silent drop; a
  per-tenant token bucket keeps one chatty client from starving the
  rest.
* **Durability** — accept = persist.  The input lands as a checked
  archive and an ``accepted`` record is fsynced to the journal
  *before* the submission is acknowledged (:mod:`repro.service.journal`),
  so ``kill -9`` at any instant loses nothing a client was told we
  have.  On restart, :meth:`ReconService.start` replays the journal
  and finishes every acknowledged in-flight job; because every solve
  here is deterministic — and a column of a batched solve is
  bit-identical to the same solve run alone — the recovered results
  are bit-exact regardless of how the scheduler re-groups the work.
* **Coalescing** — the scheduler drains compatible queued jobs (same
  geometry/solver/iterations/tolerance/precision) into a single
  multi-RHS :func:`~repro.solvers.cgls_batch` dispatch: the memoized
  matrix streams once per iteration for the whole cohort instead of
  once per client, the same amortization Table 5 of the paper buys
  across slices of one stack.
* **Deadlines** — per-job wall-clock deadlines are enforced at dequeue
  and *inside* the solve via the solvers' iteration callback: an
  expired job cancels the dispatch, expired members are journaled as
  ``expired``, and unexpired batch peers are requeued without losing
  their retry budget.
* **Bounded retries** — transiently failed solves are re-run per the
  shared :class:`repro.resilience.RetryPolicy` (exponential backoff);
  the budget exhausted, the job is journaled ``failed`` with its
  error, which is an answer, not a loss.
* **Opt-in checkpointing** — a job with ``checkpoint_every > 0`` runs
  solo with a :class:`~repro.resilience.CheckpointManager`, so a crash
  mid-solve resumes the recurrence bit-exactly instead of recomputing.

Threading discipline: HTTP handler threads only touch the admission
path (engine lock + journal lock); ONE scheduler thread runs every
solve, so the non-thread-safe obs registry is never entered
concurrently.  Counter increments accumulate under the engine lock and
are flushed to obs by whoever calls :meth:`ReconService.sync_obs`.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field, replace

import numpy as np

from ..cache import PlanCache
from ..core.operator import OperatorConfig
from ..core.preprocess import preprocess
from ..geometry import ParallelBeamGeometry
from ..obs import (
    SERVICE_BATCHES,
    SERVICE_COALESCED_JOBS,
    SERVICE_COMPLETED,
    SERVICE_EVICTIONS,
    SERVICE_EXPIRED,
    SERVICE_FAILED,
    SERVICE_JOURNAL_RECORDS,
    SERVICE_RECOVERED,
    SERVICE_REJECTED,
    SERVICE_RETRIES,
    SERVICE_SUBMITTED,
    add_count,
)
from ..precision import solver_dtype
from ..resilience import CheckpointManager, RetryPolicy
from ..solvers import cgls, cgls_batch, mlem, mlem_batch, sirt, sirt_batch
from .faults import InjectedSolveCrash, ServiceFaultConfig, ServiceFaultInjector
from .journal import JobJournal

__all__ = [
    "SERVICE_SOLVERS",
    "JobSpec",
    "Job",
    "ServiceConfig",
    "ReconService",
    "ServiceError",
    "QueueFullError",
    "RateLimitedError",
    "DroppedSubmissionError",
    "UnknownJobError",
    "ResultNotReadyError",
    "JobFailedError",
]

SERVICE_SOLVERS = ("cg", "sirt", "mlem")

#: Job lifecycle states.  ``done``/``failed``/``expired`` are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "expired")
TERMINAL = frozenset({"done", "failed", "expired"})


# -- errors --------------------------------------------------------------


class ServiceError(RuntimeError):
    """A submission was refused; ``retry_after`` says when to try again."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class QueueFullError(ServiceError):
    """The admission queue is at capacity (backpressure, HTTP 429)."""


class RateLimitedError(ServiceError):
    """The tenant exceeded its token bucket (backpressure, HTTP 429)."""


class DroppedSubmissionError(ServiceError):
    """An injected pre-acknowledgement drop (chaos only, HTTP 503)."""


class UnknownJobError(KeyError):
    """No job with that id exists (HTTP 404)."""


class ResultNotReadyError(RuntimeError):
    """The job exists but has not finished yet (HTTP 409)."""

    def __init__(self, job_id: str, state: str):
        super().__init__(f"job {job_id} is {state}, result not ready")
        self.state = state


class JobFailedError(RuntimeError):
    """The job reached a terminal state without a result (HTTP 410).

    Also raised for *evicted* jobs — finished work whose spool payload
    was reclaimed by the result TTL or the spool size cap; the journal
    still answers ``status`` for them, but the bytes are gone.
    """

    def __init__(self, job_id: str, state: str, error: str | None):
        super().__init__(f"job {job_id} {state}: {error or 'no result'}")
        self.state = state
        self.error = error


class _DeadlineCancel(Exception):
    """Internal: a batch member's deadline passed mid-solve."""

    def __init__(self, expired_ids):
        super().__init__("deadline exceeded")
        self.expired_ids = frozenset(expired_ids)


# -- job model -----------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """Everything a client asks for, minus the sinogram itself.

    The geometry is carried as ``(num_angles, num_channels)`` — the
    sinogram shape — because that, plus the solve parameters, is what
    decides whether two jobs can share one batched dispatch.
    """

    num_angles: int
    num_channels: int
    tenant: str = "default"
    solver: str = "cg"
    iterations: int = 30
    tolerance: float = 0.0
    dtype: str | None = None
    deadline_s: float | None = None
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.solver not in SERVICE_SOLVERS:
            raise ValueError(
                f"solver must be one of {SERVICE_SOLVERS}, got {self.solver!r}"
            )
        if self.num_angles <= 0 or self.num_channels <= 0:
            raise ValueError(
                f"geometry must be non-empty, got "
                f"{self.num_angles} x {self.num_channels}"
            )
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if not self.tenant:
            raise ValueError("tenant must be non-empty")

    @property
    def coalesce_key(self) -> tuple:
        """Jobs with equal keys are bit-safely batchable into one solve."""
        return (
            self.num_angles,
            self.num_channels,
            self.solver,
            self.iterations,
            float(self.tolerance),
            self.dtype,
        )

    def to_dict(self) -> dict:
        return {
            "num_angles": self.num_angles,
            "num_channels": self.num_channels,
            "tenant": self.tenant,
            "solver": self.solver,
            "iterations": self.iterations,
            "tolerance": self.tolerance,
            "dtype": self.dtype,
            "deadline_s": self.deadline_s,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "JobSpec":
        known = {
            "num_angles", "num_channels", "tenant", "solver", "iterations",
            "tolerance", "dtype", "deadline_s", "checkpoint_every",
        }
        return cls(**{k: v for k, v in doc.items() if k in known})


@dataclass
class Job:
    """Mutable runtime state of one accepted job."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    accepted_wall: float = 0.0
    deadline_wall: float | None = None
    attempts: int = 0
    not_before: float = 0.0  # monotonic eligibility time (retry backoff)
    error: str | None = None
    recovered: bool = False
    resumed_iteration: int = 0
    batch_size: int = 0
    iterations_run: int = 0
    solve_seconds: float = 0.0
    terminal_wall: float = 0.0  # wall time the job turned terminal
    payload_bytes: int = 0  # on-disk spool footprint once terminal
    evicted: bool = False

    def status(self) -> dict:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "evicted": self.evicted,
            "tenant": self.spec.tenant,
            "solver": self.spec.solver,
            "iterations": self.spec.iterations,
            "attempts": self.attempts,
            "error": self.error,
            "recovered": self.recovered,
            "resumed_iteration": self.resumed_iteration,
            "batch_size": self.batch_size,
            "iterations_run": self.iterations_run,
            "solve_seconds": self.solve_seconds,
            "accepted_wall": self.accepted_wall,
            "deadline_wall": self.deadline_wall,
        }


class _TokenBucket:
    """Per-tenant rate limiter: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, clock):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def take(self) -> tuple[bool, float]:
        """(granted, retry_after).  Not thread-safe; call under a lock."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        needed = (1.0 - self._tokens) / self.rate if self.rate > 0 else float("inf")
        return False, needed


# -- configuration -------------------------------------------------------


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one engine instance (see ``docs/service.md``)."""

    spool: str
    queue_limit: int = 16
    max_batch: int = 8
    coalesce_window_s: float = 0.005
    rate_limit: float | None = None  # jobs/s per tenant; None = unlimited
    rate_burst: float = 4.0
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_retries=2, backoff_base=0.05, backoff_cap=2.0
    ))
    cache: object = "auto"
    ordering: str = "pseudo-hilbert"
    kernel: str = "buffered"
    faults: ServiceFaultConfig | None = None
    #: Evict a terminal job's spool payload this many seconds after it
    #: turns terminal (None = keep forever).  ``result`` then answers
    #: HTTP 410 instead of re-serving the bytes.
    result_ttl_s: float | None = None
    #: Cap on total spool bytes held by terminal jobs; oldest-first
    #: eviction brings the spool back under it (None = unbounded).
    spool_cap_bytes: int | None = None

    def __post_init__(self) -> None:
        # Fail a bad kernel name at config time, not at first dispatch.
        OperatorConfig(kernel=self.kernel)
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0, got {self.rate_limit}")
        if self.rate_burst < 1:
            raise ValueError(f"rate_burst must be >= 1, got {self.rate_burst}")
        if self.result_ttl_s is not None and self.result_ttl_s <= 0:
            raise ValueError(
                f"result_ttl_s must be > 0, got {self.result_ttl_s}"
            )
        if self.spool_cap_bytes is not None and self.spool_cap_bytes < 0:
            raise ValueError(
                f"spool_cap_bytes must be >= 0, got {self.spool_cap_bytes}"
            )


# -- the engine ----------------------------------------------------------


class ReconService:
    """Journaled multi-tenant reconstruction engine.

    ``clock`` (wall time, deadlines + journal stamps) and ``monotonic``
    (backoff/eligibility) are injectable so tests drive deadline and
    rate-limit behaviour deterministically instead of sleeping.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        clock=time.time,
        monotonic=time.monotonic,
    ):
        self.config = config
        self.clock = clock
        self.monotonic = monotonic
        self.journal = JobJournal(config.spool)
        faults = config.faults
        if faults is None:
            faults = ServiceFaultConfig.from_env()
        self.injector = (
            ServiceFaultInjector(faults) if faults and faults.any_faults else None
        )
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []
        self._admitted = 0  # queued + running (bounds the queue_limit)
        self._buckets: dict[str, _TokenBucket] = {}
        self._tenants: dict[str, dict[str, int]] = {}
        self._operators: dict[tuple, object] = {}
        self._obs_pending: dict[str, float] = {}
        self._recent_solve_s: list[float] = []
        self._scheduler: threading.Thread | None = None
        self._stopping = False
        self._draining = False
        self.recovered_jobs = 0

    # -- lifecycle -------------------------------------------------------

    def start(self, recover: bool = True) -> "ReconService":
        """Replay the journal (optionally) and start the scheduler."""
        if recover:
            self.recover()
        with self._lock:
            self._stopping = False
            self._draining = False
        self._scheduler = threading.Thread(
            target=self._run, name="repro-service-scheduler", daemon=True
        )
        self._scheduler.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the scheduler; ``drain`` finishes the queue first.

        With ``drain=False`` queued jobs stay journaled as accepted —
        a restart recovers and finishes them, which is the SIGKILL
        story minus the kill.
        """
        with self._cond:
            self._stopping = True
            self._draining = drain
            self._cond.notify_all()
        if self._scheduler is not None:
            self._scheduler.join(timeout=timeout)
            self._scheduler = None

    def close(self) -> None:
        """Release file handles and cached operators (no scheduling)."""
        self.journal.close()
        for op in self._operators.values():
            op.close()
        self._operators.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop(drain=False, timeout=5.0)
        self.close()
        return False

    # -- recovery --------------------------------------------------------

    def recover(self) -> int:
        """Replay the journal; requeue acknowledged unfinished jobs.

        Returns the number of jobs requeued.  Terminal jobs are
        re-registered so ``status``/``result`` keep answering for them
        across restarts.  An acknowledged job whose input archive is
        missing or corrupt is journaled ``failed`` — an explicit
        answer, never a silent disappearance.
        """
        entries = sorted(self.journal.replay().values(), key=lambda e: e.seq)
        requeued = 0
        for entry in entries:
            try:
                spec = JobSpec.from_dict(entry.spec)
            except (TypeError, ValueError):
                continue  # journal from a newer/older schema: leave it be
            job = Job(
                job_id=entry.job_id,
                spec=spec,
                accepted_wall=float(entry.meta.get("accepted_wall", 0.0)),
                deadline_wall=entry.meta.get("deadline_wall"),
                recovered=True,
            )
            if entry.terminal:
                job.state = entry.state
                job.error = entry.error
                job.evicted = bool(entry.meta.get("evicted"))
                job.terminal_wall = float(
                    entry.meta.get("terminal_wall", job.accepted_wall)
                )
                if not job.evicted:
                    job.payload_bytes = self.journal.payload_bytes(
                        entry.job_id
                    )
                with self._lock:
                    self._jobs[entry.job_id] = job
                continue
            if not self.journal.verify_input(entry.job_id):
                job.state = "failed"
                job.error = "input archive missing or corrupt after restart"
                job.terminal_wall = self.clock()
                job.payload_bytes = self.journal.payload_bytes(entry.job_id)
                self.journal.record_failed(
                    entry.job_id, job.error, terminal_wall=job.terminal_wall
                )
                with self._lock:
                    self._jobs[entry.job_id] = job
                    self._bump(SERVICE_FAILED)
                    self._bump(SERVICE_JOURNAL_RECORDS)
                continue
            with self._cond:
                self._jobs[entry.job_id] = job
                self._queue.append(entry.job_id)
                self._admitted += 1
                self._bump(SERVICE_RECOVERED)
                requeued += 1
                self._cond.notify_all()
        self.recovered_jobs += requeued
        return requeued

    # -- admission -------------------------------------------------------

    def submit(self, sinogram, spec: JobSpec) -> dict:
        """Admit one job; returns its acknowledged status dict.

        Raises :class:`QueueFullError` / :class:`RateLimitedError`
        (explicit backpressure with ``retry_after``) or
        :class:`DroppedSubmissionError` (injected chaos).  On any of
        those, nothing was journaled: the client owns the retry.
        """
        sinogram = np.ascontiguousarray(np.asarray(sinogram, dtype=np.float64))
        if sinogram.shape != (spec.num_angles, spec.num_channels):
            raise ValueError(
                f"sinogram shape {sinogram.shape} does not match spec "
                f"{(spec.num_angles, spec.num_channels)}"
            )
        if not np.all(np.isfinite(sinogram)):
            raise ValueError("sinogram contains non-finite values")
        self._sweep_evictions()  # new work displaces the oldest results
        with self._lock:
            self._bump(SERVICE_SUBMITTED)
            tenant_stats = self._tenants.setdefault(
                spec.tenant, {"submitted": 0, "rejected": 0, "completed": 0}
            )
            tenant_stats["submitted"] += 1
            if self.injector is not None and self.injector.draw_drop():
                tenant_stats["rejected"] += 1
                self._bump(SERVICE_REJECTED)
                raise DroppedSubmissionError(
                    "submission dropped (injected fault)", retry_after=0.05
                )
            if self.config.rate_limit is not None:
                bucket = self._buckets.get(spec.tenant)
                if bucket is None:
                    bucket = self._buckets[spec.tenant] = _TokenBucket(
                        self.config.rate_limit, self.config.rate_burst,
                        self.monotonic,
                    )
                granted, retry_after = bucket.take()
                if not granted:
                    tenant_stats["rejected"] += 1
                    self._bump(SERVICE_REJECTED)
                    raise RateLimitedError(
                        f"tenant {spec.tenant!r} exceeded "
                        f"{self.config.rate_limit}/s",
                        retry_after=retry_after,
                    )
            if self._admitted >= self.config.queue_limit:
                tenant_stats["rejected"] += 1
                self._bump(SERVICE_REJECTED)
                raise QueueFullError(
                    f"queue full ({self._admitted}/{self.config.queue_limit})",
                    retry_after=self._estimate_retry_after(),
                )
            self._admitted += 1  # reserve the slot before the slow I/O
            accepted_wall = self.clock()
            job = Job(
                job_id=uuid.uuid4().hex[:16],
                spec=spec,
                accepted_wall=accepted_wall,
                deadline_wall=(
                    accepted_wall + spec.deadline_s
                    if spec.deadline_s is not None else None
                ),
            )
        try:
            self.journal.save_input(job.job_id, sinogram, spec.to_dict())
            self.journal.record_accepted(
                job.job_id,
                spec.to_dict(),
                accepted_wall=job.accepted_wall,
                deadline_wall=job.deadline_wall,
            )
        except BaseException:
            with self._lock:
                self._admitted -= 1
            raise
        with self._cond:
            self._bump(SERVICE_JOURNAL_RECORDS)
            self._jobs[job.job_id] = job
            self._queue.append(job.job_id)
            self._cond.notify_all()
            return job.status()

    def _estimate_retry_after(self) -> float:
        """Backlog drain estimate from recent solve throughput."""
        if not self._recent_solve_s:
            return 1.0
        mean = sum(self._recent_solve_s) / len(self._recent_solve_s)
        batches_pending = max(1, self._admitted) / self.config.max_batch
        return float(min(60.0, max(0.1, mean * batches_pending)))

    # -- queries ---------------------------------------------------------

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def status(self, job_id: str) -> dict:
        with self._lock:
            return self._get(job_id).status()

    def result(self, job_id: str):
        """The finished image; loads (and CRC-verifies) from the spool.

        An evicted job answers :class:`JobFailedError` (HTTP 410): the
        result existed, was durably served for its TTL / within the
        spool cap, and is now gone — an explicit answer, not a 404.
        """
        with self._lock:
            job = self._get(job_id)
            state, error, evicted = job.state, job.error, job.evicted
        if evicted:
            raise JobFailedError(
                job_id, "evicted",
                "result evicted from spool (ttl or capacity)",
            )
        if state == "done":
            image, _meta = self.journal.load_result(job_id)
            return image
        if state in TERMINAL:
            raise JobFailedError(job_id, state, error)
        raise ResultNotReadyError(job_id, state)

    def wait(self, job_ids=None, timeout: float = 30.0) -> bool:
        """Block until the given jobs (default: all) are terminal."""
        deadline = self.monotonic() + timeout
        with self._cond:
            while True:
                ids = job_ids if job_ids is not None else list(self._jobs)
                if all(self._jobs[j].state in TERMINAL
                       for j in ids if j in self._jobs):
                    return True
                remaining = deadline - self.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "queue_depth": len(self._queue),
                "admitted": self._admitted,
                "queue_limit": self.config.queue_limit,
                "states": states,
                "evicted_jobs": sum(
                    1 for job in self._jobs.values() if job.evicted
                ),
                "spool_payload_bytes": sum(
                    job.payload_bytes for job in self._jobs.values()
                ),
                "tenants": {t: dict(v) for t, v in self._tenants.items()},
                "recovered_jobs": self.recovered_jobs,
                "journal_records": self.journal.records_written,
                "faults": (
                    {
                        "drops": self.injector.drops,
                        "delays": self.injector.delays,
                        "crashes": self.injector.crashes,
                    }
                    if self.injector is not None else None
                ),
            }

    # -- obs bridge ------------------------------------------------------

    def _bump(self, name: str, value: float = 1.0) -> None:
        """Accumulate a counter delta; caller must hold the lock."""
        self._obs_pending[name] = self._obs_pending.get(name, 0.0) + value

    def sync_obs(self) -> None:
        """Flush accumulated counter deltas into the obs registry.

        Call from whatever thread owns observation (tests, the CLI's
        metrics epilogue) — the engine never touches the registry from
        its worker threads.
        """
        with self._lock:
            pending, self._obs_pending = self._obs_pending, {}
        for name, value in pending.items():
            add_count(name, value)

    # -- spool eviction --------------------------------------------------

    def _sweep_evictions(self) -> None:
        """Reclaim terminal-job payloads past TTL or over the size cap.

        Runs from the scheduler loop (each dispatch and each idle
        wake-up) and on every submission, so both policies hold without
        a dedicated janitor thread.  Oldest-terminal-first, matching
        the intuition that the longest-served result is the first to
        go.  Two-phase: victims are *marked* evicted under the lock
        (so concurrent sweepers never double-count), then the file
        deletes and journal appends happen outside it.
        """
        cfg = self.config
        if cfg.result_ttl_s is None and cfg.spool_cap_bytes is None:
            return
        now = self.clock()
        victims: list[Job] = []
        with self._lock:
            terminal = sorted(
                (
                    job for job in self._jobs.values()
                    if job.state in TERMINAL and not job.evicted
                ),
                key=lambda job: (job.terminal_wall, job.accepted_wall),
            )
            if cfg.result_ttl_s is not None:
                victims.extend(
                    job for job in terminal
                    if now - job.terminal_wall > cfg.result_ttl_s
                )
            if cfg.spool_cap_bytes is not None:
                chosen = {job.job_id for job in victims}
                survivors = [
                    job for job in terminal if job.job_id not in chosen
                ]
                total = sum(job.payload_bytes for job in survivors)
                for job in survivors:
                    if total <= cfg.spool_cap_bytes:
                        break
                    victims.append(job)
                    total -= job.payload_bytes
            for job in victims:
                job.evicted = True
                job.payload_bytes = 0
                self._bump(SERVICE_EVICTIONS)
        for job in victims:
            self.journal.evict_payloads(job.job_id)
            self.journal.record_evicted(job.job_id, evicted_wall=now)
            with self._lock:
                self._bump(SERVICE_JOURNAL_RECORDS)

    # -- scheduling ------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if batch:
                self._dispatch(batch)
            self._sweep_evictions()

    def _eligible_index(self) -> int | None:
        """Index of the first runnable queued job (FIFO, backoff-aware)."""
        now = self.monotonic()
        for i, job_id in enumerate(self._queue):
            if self._jobs[job_id].not_before <= now:
                return i
        return None

    def _next_batch(self) -> list[Job] | None:
        """Block for work; returns a coalesced batch, [] to retry the
        loop (deadline expiries), or None to exit."""
        with self._cond:
            while True:
                idx = self._eligible_index()
                if idx is not None:
                    break
                if self._stopping and not (self._draining and self._queue):
                    return None
                if self._queue:
                    # Everything queued is backing off; sleep until the
                    # earliest job becomes eligible again.
                    now = self.monotonic()
                    wake = min(
                        self._jobs[j].not_before for j in self._queue
                    )
                    self._cond.wait(timeout=max(0.0, wake - now) or 0.01)
                else:
                    self._cond.wait(timeout=0.25)
                    # Idle wake-ups double as TTL sweeps (the RLock
                    # makes the re-entry from under the condition safe).
                    self._sweep_evictions()
        # A short accrual window lets near-simultaneous submissions
        # coalesce even when the scheduler is idle when they arrive.
        if self.config.coalesce_window_s > 0:
            time.sleep(self.config.coalesce_window_s)
        batch: list[Job] = []
        expired: list[Job] = []
        with self._cond:
            idx = self._eligible_index()
            if idx is None:
                return []
            head = self._jobs[self._queue.pop(idx)]
            now_wall = self.clock()
            now_mono = self.monotonic()
            if head.deadline_wall is not None and now_wall > head.deadline_wall:
                expired.append(head)
            else:
                batch.append(head)
                solo = head.spec.checkpoint_every > 0
                if not solo:
                    keep: list[str] = []
                    for job_id in self._queue:
                        job = self._jobs[job_id]
                        if (
                            len(batch) < self.config.max_batch
                            and job.not_before <= now_mono
                            and job.spec.checkpoint_every == 0
                            and job.spec.coalesce_key == head.spec.coalesce_key
                        ):
                            if (job.deadline_wall is not None
                                    and now_wall > job.deadline_wall):
                                expired.append(job)
                            else:
                                batch.append(job)
                        else:
                            keep.append(job_id)
                    self._queue[:] = keep
            for job in batch:
                job.state = "running"
                job.batch_size = len(batch)
        for job in expired:
            self._finalize_expired(job)
        return batch

    def _finalize_expired(self, job: Job) -> None:
        terminal_wall = self.clock()
        self.journal.record_expired(job.job_id, terminal_wall=terminal_wall)
        payload = self.journal.payload_bytes(job.job_id)
        with self._cond:
            job.state = "expired"
            job.error = "deadline exceeded"
            job.terminal_wall = terminal_wall
            job.payload_bytes = payload
            self._admitted -= 1
            self._bump(SERVICE_EXPIRED)
            self._bump(SERVICE_JOURNAL_RECORDS)
            self._cond.notify_all()

    def _operator_for(self, spec: JobSpec):
        key = (spec.num_angles, spec.num_channels, spec.dtype)
        op = self._operators.get(key)
        if op is None:
            geometry = ParallelBeamGeometry(spec.num_angles, spec.num_channels)
            op, _report = preprocess(
                geometry,
                config=OperatorConfig(kernel=self.config.kernel,
                                      dtype=spec.dtype),
                ordering=self.config.ordering,
                cache=PlanCache.resolve(self.config.cache),
            )
            self._operators[key] = op
        return op

    def _deadline_callback(self, batch: list[Job], crash: bool):
        """Per-iteration hook: deadline enforcement + injected crashes.

        Works for both solver callback shapes — ``(iteration, x)`` from
        the single-slice solvers and ``(iteration, X, active)`` from
        the batched ones.
        """
        deadlines = [
            (job.job_id, job.deadline_wall)
            for job in batch if job.deadline_wall is not None
        ]

        def callback(iteration, *_args):
            if crash and iteration >= 1:
                raise InjectedSolveCrash(
                    f"injected solve crash at iteration {iteration}"
                )
            if deadlines:
                now = self.clock()
                over = [jid for jid, dw in deadlines if now > dw]
                if over:
                    raise _DeadlineCancel(over)

        return callback

    def _dispatch(self, batch: list[Job]) -> None:
        if self.injector is not None:
            self.injector.on_solve_dispatch()  # may os._exit (die_at)
            delay = self.injector.draw_delay()
            if delay > 0:
                time.sleep(delay)
        crash = self.injector.draw_crash() if self.injector is not None else False
        started = self.monotonic()
        try:
            images, iterations, resumed = self._solve(batch, crash)
        except _DeadlineCancel as cancel:
            for job in batch:
                if job.job_id in cancel.expired_ids:
                    self._finalize_expired(job)
                else:
                    # An unexpired peer lost its ride, not its budget:
                    # requeue at the front, immediately eligible.
                    with self._cond:
                        job.state = "queued"
                        job.not_before = 0.0
                        self._queue.insert(0, job.job_id)
                        self._cond.notify_all()
            return
        except Exception as exc:  # noqa: BLE001 — every solve failure is policy
            self._handle_failure(batch, exc)
            return
        elapsed = self.monotonic() - started
        terminal_wall = self.clock()
        payload_sizes = []
        for j, job in enumerate(batch):
            self.journal.save_result(
                job.job_id,
                images[j],
                {
                    "iterations": int(iterations[j]),
                    "solver": job.spec.solver,
                    "batch_size": len(batch),
                    "attempts": job.attempts + 1,
                },
            )
            self.journal.record_done(
                job.job_id, iterations=int(iterations[j]),
                batch_size=len(batch), terminal_wall=terminal_wall,
            )
            payload_sizes.append(self.journal.payload_bytes(job.job_id))
        with self._cond:
            self._recent_solve_s.append(elapsed)
            del self._recent_solve_s[:-8]
            for j, job in enumerate(batch):
                job.state = "done"
                job.attempts += 1
                job.iterations_run = int(iterations[j])
                job.solve_seconds = elapsed
                job.terminal_wall = terminal_wall
                job.payload_bytes = payload_sizes[j]
                if resumed:
                    job.resumed_iteration = resumed
                self._admitted -= 1
                self._bump(SERVICE_COMPLETED)
                self._bump(SERVICE_JOURNAL_RECORDS)
                tenant = self._tenants.setdefault(
                    job.spec.tenant,
                    {"submitted": 0, "rejected": 0, "completed": 0},
                )
                tenant["completed"] += 1
            self._bump(SERVICE_BATCHES)
            if len(batch) > 1:
                self._bump(SERVICE_COALESCED_JOBS, float(len(batch)))
            self._cond.notify_all()

    def _handle_failure(self, batch: list[Job], exc: Exception) -> None:
        """Charge a failed attempt; requeue within budget, else fail."""
        policy = self.config.retry
        error = f"{type(exc).__name__}: {exc}"
        exhausted: list[Job] = []
        with self._cond:
            for job in batch:
                job.attempts += 1
                retries_used = job.attempts - 1
                if policy.exhausted(retries_used):
                    exhausted.append(job)
                else:
                    job.state = "queued"
                    job.not_before = (
                        self.monotonic() + policy.delay(retries_used)
                    )
                    self._queue.append(job.job_id)
                    self._bump(SERVICE_RETRIES)
            self._cond.notify_all()
        # Journal the terminal record BEFORE the state flip that releases
        # wait(): a caller who observes `failed` must find it on disk.
        for job in exhausted:
            terminal_wall = self.clock()
            self.journal.record_failed(
                job.job_id, error, terminal_wall=terminal_wall
            )
            payload = self.journal.payload_bytes(job.job_id)
            with self._cond:
                job.state = "failed"
                job.error = error
                job.terminal_wall = terminal_wall
                job.payload_bytes = payload
                self._admitted -= 1
                self._bump(SERVICE_FAILED)
                self._bump(SERVICE_JOURNAL_RECORDS)
                self._cond.notify_all()

    def _solve(self, batch: list[Job], crash: bool):
        """Run one dispatch; returns (images, iterations, resumed_from)."""
        spec = batch[0].spec
        op = self._operator_for(spec)
        work = solver_dtype(op)
        callback = self._deadline_callback(batch, crash)
        inputs = []
        for job in batch:
            sinogram, _spec_doc = self.journal.load_input(job.job_id)
            inputs.append(op.sinogram_to_ordered(sinogram))
        if len(batch) == 1 and spec.checkpoint_every > 0:
            return self._solve_checkpointed(batch[0], op, inputs[0], callback)
        if len(batch) == 1:
            y = np.ascontiguousarray(inputs[0]).astype(work, copy=False)
            result = self._solve_single(spec, op, y, callback)
            image = op.ordered_to_image(result.x)
            return [image], [result.iterations], 0
        Y = np.stack(inputs, axis=1).astype(work, copy=False)
        if spec.solver == "cg":
            result = cgls_batch(
                op, Y, num_iterations=spec.iterations,
                tolerance=spec.tolerance, callback=callback,
            )
        elif spec.solver == "sirt":
            result = sirt_batch(
                op, Y, num_iterations=spec.iterations,
                tolerance=spec.tolerance, callback=callback,
            )
        else:
            result = mlem_batch(
                op, Y, num_iterations=spec.iterations,
                tolerance=spec.tolerance, callback=callback,
            )
        images = [
            op.ordered_to_image(np.ascontiguousarray(result.X[:, j]))
            for j in range(len(batch))
        ]
        return images, list(np.asarray(result.iterations).ravel()), 0

    def _solve_single(self, spec: JobSpec, op, y, callback, **extra):
        if spec.solver == "cg":
            return cgls(
                op, y, num_iterations=spec.iterations,
                tolerance=spec.tolerance, callback=callback, **extra,
            )
        if spec.solver == "sirt":
            return sirt(
                op, y, num_iterations=spec.iterations,
                callback=callback, **extra,
            )
        return mlem(
            op, y, num_iterations=spec.iterations, callback=callback, **extra,
        )

    def _solve_checkpointed(self, job: Job, op, y, callback):
        """Solo resilient solve: periodic snapshots, bit-exact resume."""
        work = solver_dtype(op)
        y = np.ascontiguousarray(y).astype(work, copy=False)
        path = self.journal.checkpoint_path(job.job_id)
        manager = CheckpointManager(path, every=job.spec.checkpoint_every)
        resumed_from = 0
        extra: dict = {"checkpoint": manager}
        if path.exists():
            snapshot = manager.load()
            if snapshot is not None:
                extra["resume"] = snapshot
                resumed_from = int(snapshot.iteration)
        result = self._solve_single(job.spec, op, y, callback, **extra)
        image = op.ordered_to_image(result.x)
        return [image], [result.iterations], resumed_from
