"""Stdlib client for the reconstruction service.

:class:`ServiceClient` speaks the ``/v1`` API over ``urllib`` and
owns the *client half* of the reliability contract:

* connection errors and 503s (a draining server, an injected drop)
  are retried per a shared :class:`repro.resilience.RetryPolicy`;
* 429 backpressure honours the server's advertised ``Retry-After``
  when ``obey_backpressure`` is on — the cooperative behaviour the
  admission controller's estimate is computed for;
* an acknowledged submission returns the server's status dict, whose
  ``job_id`` is the durable handle — the server guarantees that job
  survives any crash from this moment on.
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request

import numpy as np

from ..resilience import RetryPolicy
from .engine import JobSpec
from .server import encode_sinogram

__all__ = ["ServiceClient", "ServiceUnavailableError", "JobFailedError"]


class ServiceUnavailableError(RuntimeError):
    """The server stayed unreachable/backpressured past the budget."""


class JobFailedError(RuntimeError):
    """The server reports the job terminal without a result."""

    def __init__(self, job_id: str, state: str, error: str | None):
        super().__init__(f"job {job_id} {state}: {error or 'no result'}")
        self.state = state
        self.error = error


class _HTTPError(Exception):
    def __init__(self, code: int, doc: dict, headers):
        super().__init__(f"HTTP {code}: {doc.get('error', '')}")
        self.code = code
        self.doc = doc
        self.headers = headers


class ServiceClient:
    def __init__(
        self,
        base_url: str,
        *,
        retry: RetryPolicy | None = None,
        obey_backpressure: bool = True,
        timeout: float = 30.0,
        sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=5, backoff_base=0.05, backoff_cap=2.0
        )
        self.obey_backpressure = obey_backpressure
        self.timeout = timeout
        self._sleep = sleep

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None):
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                payload = resp.read()
                return resp.status, payload, resp.headers
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                doc = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                doc = {"error": payload.decode("utf-8", "replace")}
            raise _HTTPError(exc.code, doc, exc.headers) from exc

    def _retry_after(self, error: _HTTPError) -> float:
        header = error.headers.get("Retry-After") if error.headers else None
        if header:
            try:
                return max(0.0, float(header))
            except ValueError:
                pass
        return float(error.doc.get("retry_after_s", 1.0))

    def _with_retries(self, send):
        """Run ``send`` under the transient-failure retry budget."""
        attempt = 0
        while True:
            try:
                return send()
            except urllib.error.URLError as exc:
                # Connection refused/reset: server restarting.
                if self.retry.exhausted(attempt):
                    raise ServiceUnavailableError(
                        f"server unreachable after {attempt} retries: {exc}"
                    ) from exc
                self._sleep(self.retry.delay(attempt))
                attempt += 1
            except _HTTPError as exc:
                transient = exc.code == 503 or (
                    exc.code == 429 and self.obey_backpressure
                )
                if not transient:
                    raise
                if self.retry.exhausted(attempt):
                    raise ServiceUnavailableError(
                        f"backpressured after {attempt} retries: {exc}"
                    ) from exc
                self._sleep(max(self._retry_after(exc), self.retry.delay(attempt)))
                attempt += 1

    # -- API -------------------------------------------------------------

    def submit(self, sinogram, spec: JobSpec | dict) -> dict:
        """Submit a job; returns the acknowledged status dict."""
        if isinstance(spec, JobSpec):
            spec_doc = spec.to_dict()
        else:
            sinogram = np.asarray(sinogram)
            spec_doc = dict(spec)
            spec_doc.setdefault("num_angles", int(sinogram.shape[0]))
            spec_doc.setdefault("num_channels", int(sinogram.shape[1]))
        body = dict(encode_sinogram(sinogram), spec=spec_doc)
        payload = json.dumps(body).encode("utf-8")

        def send():
            status, data, _headers = self._request("POST", "/v1/jobs", payload)
            return json.loads(data.decode("utf-8"))

        return self._with_retries(send)

    def status(self, job_id: str) -> dict:
        def send():
            _status, data, _headers = self._request("GET", f"/v1/jobs/{job_id}")
            return json.loads(data.decode("utf-8"))

        return self._with_retries(send)

    def result(self, job_id: str) -> np.ndarray:
        """Fetch a finished image (raises JobFailedError on failed/expired)."""

        def send():
            _status, data, _headers = self._request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            return np.load(io.BytesIO(data), allow_pickle=False)

        try:
            return self._with_retries(send)
        except _HTTPError as exc:
            if exc.code == 410:
                raise JobFailedError(
                    job_id, exc.doc.get("state", "failed"), exc.doc.get("error")
                ) from exc
            raise

    def stats(self) -> dict:
        def send():
            _status, data, _headers = self._request("GET", "/v1/stats")
            return json.loads(data.decode("utf-8"))

        return self._with_retries(send)

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "expired"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')} after {timeout}s"
                )
            self._sleep(poll)
