"""Assembly of the forward-projection matrix ``A`` from ray traces.

``A`` has one row per sinogram entry (ray) and one column per tomogram
pixel; ``A[r, p]`` is the length of the intersection of ray ``r`` with
pixel ``p``.  Forward projection is ``y = A x`` and backprojection is
``x = A^T y`` (paper Section 2.2).

MemXCT builds this matrix once during preprocessing and reuses it every
iteration; the builder is the memoization step that the compute-centric
baseline refuses to pay for.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..geometry import ParallelBeamGeometry
from ..geometry.cone_beam import ConeBeamGeometry
from ..geometry.fan_beam import FanBeamGeometry
from ..parallel.backend import ExecutionBackend, SerialBackend
from .siddon import trace_angle, trace_rays
from .siddon3d import trace_rays_3d

__all__ = [
    "build_projection_matrix",
    "build_cone_projection_matrix",
    "build_fan_projection_matrix",
    "projection_matrix_stats",
]


def _trace_angle_chunk(
    task: tuple[ParallelBeamGeometry, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trace a contiguous angle range, returning (rows, cols, vals).

    Module-level so the process backend can pickle it; the geometry is
    a small frozen dataclass, so shipping it per task is cheap.
    """
    geometry, start, stop = task
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for angle_index in range(start, stop):
        segs = trace_angle(geometry, angle_index)
        rows.append(segs.ray_index)
        cols.append(segs.pixel_index)
        vals.append(segs.length)
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(rows) if rows else empty,
        np.concatenate(cols) if cols else empty,
        np.concatenate(vals) if vals else empty.astype(np.float64),
    )


def _trace_cone_chunk(
    task: tuple[ConeBeamGeometry, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trace a contiguous cone-beam view range, returning (rows, cols, vals).

    Module-level so the process backend can pickle it, mirroring
    :func:`_trace_angle_chunk`.
    """
    geometry, start, stop = task
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    channels = np.arange(geometry.num_channels, dtype=np.int64)
    for angle_index in range(start, stop):
        origins, directions = geometry.ray_bundle(angle_index)
        segs = trace_rays_3d(
            geometry.grid,
            origins,
            directions,
            geometry.ray_index(np.full_like(channels, angle_index), channels),
        )
        rows.append(segs.ray_index)
        cols.append(segs.pixel_index)
        vals.append(segs.length)
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(rows) if rows else empty,
        np.concatenate(cols) if cols else empty,
        np.concatenate(vals) if vals else empty.astype(np.float64),
    )


def _angle_chunks(num_angles: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous angle ranges, ~4 per worker for load balance."""
    chunks = min(num_angles, max(1, workers * 4))
    bounds = np.linspace(0, num_angles, chunks + 1, dtype=np.int64)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def build_projection_matrix(
    geometry: ParallelBeamGeometry,
    dtype: np.dtype = np.float32,
    backend: ExecutionBackend | None = None,
) -> sp.csr_matrix:
    """Trace every ray of ``geometry`` and assemble ``A`` in CSR form.

    Rows follow row-major sinogram order (angle-major), columns follow
    row-major tomogram order; domain orderings are applied later by
    permuting rows/columns (see :mod:`repro.core.operator`), which keeps
    the tracer independent of the layout policy.

    Parameters
    ----------
    geometry:
        The parallel-beam scan description.
    dtype:
        Value dtype of the matrix (the paper stores float32 lengths).
    backend:
        Optional execution backend that fans per-angle Siddon tracing
        out across workers.  Chunks are concatenated in angle order, so
        the assembled matrix is bit-identical to the serial build.

    Cone-beam and fan-beam geometries dispatch to their dedicated
    builders, so ``preprocess`` stays geometry-agnostic.
    """
    if isinstance(geometry, ConeBeamGeometry):
        return build_cone_projection_matrix(geometry, dtype=dtype, backend=backend)
    if isinstance(geometry, FanBeamGeometry):
        return build_fan_projection_matrix(geometry, dtype=dtype)
    if backend is None:
        backend = SerialBackend()
    tasks = [
        (geometry, start, stop)
        for start, stop in _angle_chunks(geometry.num_angles, backend.workers)
    ]
    chunks = backend.map(_trace_angle_chunk, tasks)
    rows = [chunk[0] for chunk in chunks]
    cols = [chunk[1] for chunk in chunks]
    vals = [chunk[2] for chunk in chunks]
    shape = (geometry.num_rays, geometry.grid.num_pixels)
    coo = sp.coo_matrix(
        (
            np.concatenate(vals).astype(dtype, copy=False),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=shape,
    )
    csr = coo.tocsr()  # sums duplicate entries, sorts column indices
    csr.sum_duplicates()
    return csr


def build_cone_projection_matrix(
    geometry: ConeBeamGeometry,
    dtype: np.dtype = np.float32,
    backend: ExecutionBackend | None = None,
) -> sp.csr_matrix:
    """Assemble the 3D cone-beam ``A`` (one row per detector pixel ray).

    Per-view tracing fans out across the backend exactly like the
    parallel-beam builder; chunks concatenate in view order, so the
    matrix is bit-identical to a serial build.
    """
    if backend is None:
        backend = SerialBackend()
    tasks = [
        (geometry, start, stop)
        for start, stop in _angle_chunks(geometry.num_angles, backend.workers)
    ]
    chunks = backend.map(_trace_cone_chunk, tasks)
    shape = (geometry.num_rays, geometry.grid.num_voxels)
    coo = sp.coo_matrix(
        (
            np.concatenate([c[2] for c in chunks]).astype(dtype, copy=False),
            (
                np.concatenate([c[0] for c in chunks]),
                np.concatenate([c[1] for c in chunks]),
            ),
        ),
        shape=shape,
    )
    csr = coo.tocsr()
    csr.sum_duplicates()
    return csr


def build_fan_projection_matrix(
    geometry: FanBeamGeometry,
    dtype: np.dtype = np.float32,
) -> sp.csr_matrix:
    """Assemble ``A`` for a fan-beam scan (extension, see
    :mod:`repro.geometry.fan_beam`).

    Uses the generic per-ray tracer since fan rays do not share a
    direction; the resulting matrix drops into the same orderings,
    buffering, and solvers as the parallel-beam one.
    """
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    channels = np.arange(geometry.num_channels, dtype=np.int64)
    for angle_index in range(geometry.num_angles):
        source = geometry.source_position(angle_index)
        directions = geometry.ray_directions(angle_index)
        origins = np.broadcast_to(source, directions.shape)
        segs = trace_rays(
            geometry.grid,
            origins,
            directions,
            geometry.ray_index(np.full_like(channels, angle_index), channels),
        )
        rows.append(segs.ray_index)
        cols.append(segs.pixel_index)
        vals.append(segs.length)
    shape = (geometry.num_rays, geometry.grid.num_pixels)
    coo = sp.coo_matrix(
        (
            np.concatenate(vals).astype(dtype, copy=False),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=shape,
    )
    csr = coo.tocsr()
    csr.sum_duplicates()
    return csr


def projection_matrix_stats(matrix: sp.csr_matrix) -> dict[str, float]:
    """Summary statistics used by footprint and performance models.

    Returns nnz, rows/cols, mean and max nonzeros per row, and the
    chord constant ``c = nnz / (M_rows * sqrt(cols))`` that lets the
    dataset descriptors extrapolate nnz to full paper sizes.
    """
    nnz = int(matrix.nnz)
    nrows, ncols = matrix.shape
    row_nnz = np.diff(matrix.indptr)
    side = int(round(np.sqrt(ncols)))
    return {
        "nnz": nnz,
        "rows": int(nrows),
        "cols": int(ncols),
        "row_nnz_mean": float(row_nnz.mean()) if nrows else 0.0,
        "row_nnz_max": int(row_nnz.max()) if nrows else 0,
        "chord_constant": nnz / (nrows * side) if nrows and side else 0.0,
    }
