"""Ray tracing substrate: Siddon tracing and projection-matrix assembly."""

from .matrix_builder import (
    build_cone_projection_matrix,
    build_fan_projection_matrix,
    build_projection_matrix,
    projection_matrix_stats,
)
from .siddon import RaySegments, trace_angle, trace_ray, trace_rays
from .siddon3d import trace_rays_3d

__all__ = [
    "build_cone_projection_matrix",
    "build_fan_projection_matrix",
    "build_projection_matrix",
    "projection_matrix_stats",
    "RaySegments",
    "trace_angle",
    "trace_ray",
    "trace_rays",
    "trace_rays_3d",
]
