"""Ray tracing substrate: Siddon tracing and projection-matrix assembly."""

from .matrix_builder import (
    build_fan_projection_matrix,
    build_projection_matrix,
    projection_matrix_stats,
)
from .siddon import RaySegments, trace_angle, trace_ray, trace_rays

__all__ = [
    "build_fan_projection_matrix",
    "build_projection_matrix",
    "projection_matrix_stats",
    "RaySegments",
    "trace_angle",
    "trace_ray",
    "trace_rays",
]
