"""Siddon ray tracing on a 2D pixel grid (paper ref [15]).

Computes, for each measurement ray, the indices of the pixels it
intersects and the exact intersection lengths.  Those (index, length)
pairs are the nonzeros of the forward-projection matrix ``A``:
CompXCT recomputes them on the fly each iteration, MemXCT memoizes
them once (paper Sections 2.3/2.4).

Two implementations are provided:

* :func:`trace_ray` — the textbook per-ray Siddon algorithm, used as a
  reference in tests;
* :func:`trace_angle` — a vectorized variant that traces all detector
  channels of one projection angle at once; all rays of an angle share
  a direction, so their grid-plane crossing parameters form dense 2D
  arrays that numpy sorts in one call.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Grid2D, ParallelBeamGeometry

__all__ = ["trace_ray", "trace_angle", "trace_rays", "RaySegments"]

# Segments shorter than this fraction of a pixel are discarded: they are
# artifacts of a ray grazing a grid corner, where x- and y-plane
# crossings coincide.
_MIN_SEGMENT = 1e-9


class RaySegments:
    """Pixel intersections of a batch of rays.

    Attributes
    ----------
    ray_index:
        Flat sinogram index of each segment's ray.
    pixel_index:
        Row-major flat tomogram index of each segment's pixel.
    length:
        Physical intersection length of each segment.
    """

    __slots__ = ("ray_index", "pixel_index", "length")

    def __init__(self, ray_index: np.ndarray, pixel_index: np.ndarray, length: np.ndarray):
        self.ray_index = np.asarray(ray_index, dtype=np.int64)
        self.pixel_index = np.asarray(pixel_index, dtype=np.int64)
        self.length = np.asarray(length, dtype=np.float64)
        if not (self.ray_index.shape == self.pixel_index.shape == self.length.shape):
            raise ValueError("segment arrays must have identical shapes")

    def __len__(self) -> int:
        return self.ray_index.shape[0]


def _entry_exit(
    ox: np.ndarray, oy: np.ndarray, dx: float, dy: float, half: float
) -> tuple[np.ndarray, np.ndarray]:
    """Slab-method parametric entry/exit of rays with the grid square.

    Returns ``(t_min, t_max)`` arrays; rays that miss the grid get
    ``t_min >= t_max``.
    """
    big = 4.0 * half / max(abs(dx), abs(dy), 1e-300) + 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        if abs(dx) > 0:
            tx0 = (-half - ox) / dx
            tx1 = (half - ox) / dx
            txmin = np.minimum(tx0, tx1)
            txmax = np.maximum(tx0, tx1)
        else:
            inside = np.abs(ox) <= half
            txmin = np.where(inside, -big, big)
            txmax = np.where(inside, big, -big)
        if abs(dy) > 0:
            ty0 = (-half - oy) / dy
            ty1 = (half - oy) / dy
            tymin = np.minimum(ty0, ty1)
            tymax = np.maximum(ty0, ty1)
        else:
            inside = np.abs(oy) <= half
            tymin = np.where(inside, -big, big)
            tymax = np.where(inside, big, -big)
    return np.maximum(txmin, tymin), np.minimum(txmax, tymax)


def trace_angle(geometry: ParallelBeamGeometry, angle_index: int) -> RaySegments:
    """Trace every detector channel of one projection angle.

    Returns the concatenated pixel segments of all ``N`` rays of the
    angle, ordered by channel then by position along the ray.
    """
    grid = geometry.grid
    n = grid.n
    half = grid.half_extent
    d = geometry.ray_directions()[angle_index]
    dx, dy = float(d[0]), float(d[1])
    origins = geometry.ray_origins(angle_index)
    ox = origins[:, 0]
    oy = origins[:, 1]
    nchan = geometry.num_channels

    t_min, t_max = _entry_exit(ox, oy, dx, dy, half)
    hits = t_min < t_max - _MIN_SEGMENT
    # Crossing parameters with all x-planes and y-planes, per ray.
    planes = grid.x_planes()
    with np.errstate(divide="ignore", invalid="ignore"):
        if abs(dx) > _MIN_SEGMENT:
            tx = (planes[None, :] - ox[:, None]) / dx
        else:
            tx = np.broadcast_to(t_min[:, None], (nchan, n + 1)).copy()
        if abs(dy) > _MIN_SEGMENT:
            ty = (planes[None, :] - oy[:, None]) / dy
        else:
            ty = np.broadcast_to(t_min[:, None], (nchan, n + 1)).copy()
    t_all = np.concatenate([tx, ty], axis=1)
    # Clamp out-of-grid crossings onto the entry parameter so they
    # collapse into zero-length segments after sorting.
    t_all = np.clip(t_all, t_min[:, None], t_max[:, None])
    t_all.sort(axis=1)

    seg_len = np.diff(t_all, axis=1)  # |direction| == 1, so dt == length
    t_mid = 0.5 * (t_all[:, :-1] + t_all[:, 1:])
    px = ox[:, None] + t_mid * dx
    py = oy[:, None] + t_mid * dy
    inv = 1.0 / grid.pixel_size
    ix = np.floor((px + half) * inv).astype(np.int64)
    iy = np.floor((py + half) * inv).astype(np.int64)

    valid = (seg_len > _MIN_SEGMENT) & hits[:, None]
    valid &= (ix >= 0) & (ix < n) & (iy >= 0) & (iy < n)

    chan = np.broadcast_to(np.arange(nchan, dtype=np.int64)[:, None], valid.shape)
    ray_index = geometry.ray_index(angle_index, chan[valid])
    pixel_index = grid.pixel_index(ix[valid], iy[valid])
    return RaySegments(ray_index, pixel_index, seg_len[valid])


def trace_rays(
    grid: Grid2D,
    origins: np.ndarray,
    directions: np.ndarray,
    ray_ids: np.ndarray,
) -> RaySegments:
    """Trace a batch of rays with *individual* directions.

    The generic variant behind fan-beam support: unlike
    :func:`trace_angle` the rays need not share a direction, so the
    crossing parameters are computed with per-ray divisions.
    Directions must be unit vectors (segment lengths equal parameter
    differences).

    Parameters
    ----------
    grid:
        Pixel grid.
    origins, directions:
        Arrays of shape ``(K, 2)``.
    ray_ids:
        Flat sinogram indices of the rays, shape ``(K,)``.
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    ray_ids = np.asarray(ray_ids, dtype=np.int64)
    if origins.shape != directions.shape or origins.ndim != 2 or origins.shape[1] != 2:
        raise ValueError("origins and directions must both have shape (K, 2)")
    if ray_ids.shape[0] != origins.shape[0]:
        raise ValueError("ray_ids must have one entry per ray")
    n = grid.n
    half = grid.half_extent
    ox, oy = origins[:, 0], origins[:, 1]
    dx, dy = directions[:, 0], directions[:, 1]
    k = origins.shape[0]

    # Per-ray slab entry/exit.
    big = 8.0 * half + np.abs(ox) + np.abs(oy) + 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        tx0 = np.where(np.abs(dx) > _MIN_SEGMENT, (-half - ox) / dx, -big)
        tx1 = np.where(np.abs(dx) > _MIN_SEGMENT, (half - ox) / dx, big)
        ty0 = np.where(np.abs(dy) > _MIN_SEGMENT, (-half - oy) / dy, -big)
        ty1 = np.where(np.abs(dy) > _MIN_SEGMENT, (half - oy) / dy, big)
    degenerate_x = (np.abs(dx) <= _MIN_SEGMENT) & (np.abs(ox) > half)
    degenerate_y = (np.abs(dy) <= _MIN_SEGMENT) & (np.abs(oy) > half)
    t_min = np.maximum(np.minimum(tx0, tx1), np.minimum(ty0, ty1))
    t_max = np.minimum(np.maximum(tx0, tx1), np.maximum(ty0, ty1))
    hits = (t_min < t_max - _MIN_SEGMENT) & ~degenerate_x & ~degenerate_y

    planes = grid.x_planes()
    with np.errstate(divide="ignore", invalid="ignore"):
        tx = np.where(
            (np.abs(dx) > _MIN_SEGMENT)[:, None],
            (planes[None, :] - ox[:, None]) / dx[:, None],
            t_min[:, None],
        )
        ty = np.where(
            (np.abs(dy) > _MIN_SEGMENT)[:, None],
            (planes[None, :] - oy[:, None]) / dy[:, None],
            t_min[:, None],
        )
    t_all = np.concatenate([tx, ty], axis=1)
    t_all = np.clip(t_all, t_min[:, None], t_max[:, None])
    t_all.sort(axis=1)

    seg_len = np.diff(t_all, axis=1)
    t_mid = 0.5 * (t_all[:, :-1] + t_all[:, 1:])
    px = ox[:, None] + t_mid * dx[:, None]
    py = oy[:, None] + t_mid * dy[:, None]
    inv = 1.0 / grid.pixel_size
    ix = np.floor((px + half) * inv).astype(np.int64)
    iy = np.floor((py + half) * inv).astype(np.int64)
    valid = (seg_len > _MIN_SEGMENT) & hits[:, None]
    valid &= (ix >= 0) & (ix < n) & (iy >= 0) & (iy < n)

    ids = np.broadcast_to(ray_ids[:, None], valid.shape)
    return RaySegments(ids[valid], grid.pixel_index(ix[valid], iy[valid]), seg_len[valid])


def trace_ray(geometry: ParallelBeamGeometry, angle_index: int, channel_index: int) -> RaySegments:
    """Reference per-ray Siddon trace (slow; used to validate
    :func:`trace_angle` in the test suite)."""
    grid = geometry.grid
    n = grid.n
    half = grid.half_extent
    ray = geometry.ray(angle_index, channel_index)
    ox, oy = ray.origin
    dx, dy = ray.direction

    t_min, t_max = _entry_exit(np.array([ox]), np.array([oy]), dx, dy, half)
    t_min, t_max = float(t_min[0]), float(t_max[0])
    if t_min >= t_max - _MIN_SEGMENT:
        empty = np.empty(0, dtype=np.int64)
        return RaySegments(empty, empty.copy(), np.empty(0))

    ts = [t_min, t_max]
    planes = grid.x_planes()
    if abs(dx) > _MIN_SEGMENT:
        ts.extend(((planes - ox) / dx).tolist())
    if abs(dy) > _MIN_SEGMENT:
        ts.extend(((planes - oy) / dy).tolist())
    t = np.unique(np.clip(np.asarray(ts), t_min, t_max))

    seg_len = np.diff(t)
    t_mid = 0.5 * (t[:-1] + t[1:])
    inv = 1.0 / grid.pixel_size
    ix = np.floor((ox + t_mid * dx + half) * inv).astype(np.int64)
    iy = np.floor((oy + t_mid * dy + half) * inv).astype(np.int64)
    valid = (seg_len > _MIN_SEGMENT) & (ix >= 0) & (ix < n) & (iy >= 0) & (iy < n)

    ray_flat = np.full(int(valid.sum()), geometry.ray_index(angle_index, channel_index))
    return RaySegments(ray_flat, grid.pixel_index(ix[valid], iy[valid]), seg_len[valid])
