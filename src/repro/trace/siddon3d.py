"""Siddon ray tracing through a 3D voxel grid.

The 2D tracer (:mod:`repro.trace.siddon`) generalizes directly: a ray
is clipped to the grid box with the slab method, its crossing
parameters with the three plane families (x, y, z) are sorted, and
each inter-crossing segment's midpoint identifies the voxel it lies
in.  Segment lengths are exact intersection lengths (directions are
unit vectors, so parameter differences are physical lengths), giving
the nonzeros of the 3D forward-projection matrix ``A``.
"""

from __future__ import annotations

import numpy as np

from ..geometry.cone_beam import Grid3D
from .siddon import _MIN_SEGMENT, RaySegments

__all__ = ["trace_rays_3d"]


def trace_rays_3d(
    grid: Grid3D,
    origins: np.ndarray,
    directions: np.ndarray,
    ray_ids: np.ndarray,
) -> RaySegments:
    """Trace a batch of 3D rays with individual unit directions.

    Parameters
    ----------
    grid:
        Voxel grid.
    origins, directions:
        Arrays of shape ``(K, 3)``; directions must be unit vectors.
    ray_ids:
        Flat projection-stack indices of the rays, shape ``(K,)``.

    Returns
    -------
    :class:`~repro.trace.siddon.RaySegments` whose ``pixel_index``
    holds flat :meth:`Grid3D.voxel_index` values.
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    ray_ids = np.asarray(ray_ids, dtype=np.int64)
    if origins.shape != directions.shape or origins.ndim != 2 or origins.shape[1] != 3:
        raise ValueError("origins and directions must both have shape (K, 3)")
    if ray_ids.shape[0] != origins.shape[0]:
        raise ValueError("ray_ids must have one entry per ray")
    n, nz = grid.n, grid.nz
    half = grid.half_extent
    half_z = grid.half_extent_z
    o = (origins[:, 0], origins[:, 1], origins[:, 2])
    d = (directions[:, 0], directions[:, 1], directions[:, 2])
    halves = (half, half, half_z)

    # Per-ray, per-axis slab entry/exit; axes with no motion contribute
    # the full line when the origin lies inside that slab and an empty
    # intersection otherwise.
    big = 8.0 * (half + half_z) + np.abs(o[0]) + np.abs(o[1]) + np.abs(o[2]) + 1.0
    t_lo = []
    t_hi = []
    degenerate = np.zeros(origins.shape[0], dtype=bool)
    with np.errstate(divide="ignore", invalid="ignore"):
        for axis in range(3):
            moving = np.abs(d[axis]) > _MIN_SEGMENT
            t0 = np.where(moving, (-halves[axis] - o[axis]) / d[axis], -big)
            t1 = np.where(moving, (halves[axis] - o[axis]) / d[axis], big)
            t_lo.append(np.minimum(t0, t1))
            t_hi.append(np.maximum(t0, t1))
            degenerate |= ~moving & (np.abs(o[axis]) > halves[axis])
    t_min = np.maximum(np.maximum(t_lo[0], t_lo[1]), t_lo[2])
    t_max = np.minimum(np.minimum(t_hi[0], t_hi[1]), t_hi[2])
    hits = (t_min < t_max - _MIN_SEGMENT) & ~degenerate

    # Crossing parameters with all three plane families, clipped onto
    # the entry/exit window so out-of-grid crossings collapse into
    # zero-length segments after sorting.
    xy_planes = grid.x_planes()
    z_planes = grid.z_planes()
    plane_sets = (xy_planes, xy_planes, z_planes)
    blocks = []
    with np.errstate(divide="ignore", invalid="ignore"):
        for axis in range(3):
            planes = plane_sets[axis]
            blocks.append(
                np.where(
                    (np.abs(d[axis]) > _MIN_SEGMENT)[:, None],
                    (planes[None, :] - o[axis][:, None]) / d[axis][:, None],
                    t_min[:, None],
                )
            )
    t_all = np.concatenate(blocks, axis=1)
    t_all = np.clip(t_all, t_min[:, None], t_max[:, None])
    t_all.sort(axis=1)

    seg_len = np.diff(t_all, axis=1)
    t_mid = 0.5 * (t_all[:, :-1] + t_all[:, 1:])
    inv = 1.0 / grid.voxel_size
    ix = np.floor((o[0][:, None] + t_mid * d[0][:, None] + half) * inv).astype(np.int64)
    iy = np.floor((o[1][:, None] + t_mid * d[1][:, None] + half) * inv).astype(np.int64)
    iz = np.floor((o[2][:, None] + t_mid * d[2][:, None] + half_z) * inv).astype(
        np.int64
    )
    valid = (seg_len > _MIN_SEGMENT) & hits[:, None]
    valid &= (ix >= 0) & (ix < n) & (iy >= 0) & (iy < n) & (iz >= 0) & (iz < nz)

    ids = np.broadcast_to(ray_ids[:, None], valid.shape)
    return RaySegments(
        ids[valid], grid.voxel_index(ix[valid], iy[valid], iz[valid]), seg_len[valid]
    )
