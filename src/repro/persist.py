"""Crash-safe archive primitives shared by every on-disk format.

Three robustness properties, factored out of :mod:`repro.io` so the
operator format, the plan cache, and solver checkpoints all go through
the *same* hardened path:

* **Atomic writes** — payloads are written to a temporary file in the
  destination directory, fsynced, and renamed into place.  A crashed
  or killed writer leaves at most a stray ``*.tmp-<pid>`` file, never
  a truncated archive under the final name.
* **Content checksums** — :func:`payload_checksum` computes a CRC-32
  over every payload array (name + raw bytes, name-sorted) so loaders
  can detect silent bit corruption instead of returning corrupt
  physics.
* **Zero copies where possible** — checksumming uses a raw memoryview
  of each array rather than serializing it twice.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

__all__ = ["raw_buffer", "payload_checksum", "atomic_savez"]


def raw_buffer(value) -> bytes | memoryview:
    """C-order raw bytes of an array, without copying when possible."""
    arr = np.ascontiguousarray(np.asarray(value))
    try:
        return memoryview(arr).cast("B")
    except (TypeError, NotImplementedError):  # e.g. unicode dtypes
        return arr.tobytes()


def payload_checksum(payload: dict) -> int:
    """CRC-32 over every payload array (name + raw bytes), name-sorted.

    The ``checksum`` key itself is excluded so the stored checksum can
    live inside the payload it protects.
    """
    crc = 0
    for name in sorted(payload):
        if name == "checksum":
            continue
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(raw_buffer(payload[name]), crc)
    return crc & 0xFFFFFFFF


def atomic_savez(path: Path, payload: dict, compress: bool) -> None:
    """Write ``payload`` as an npz archive via temp file + rename."""
    writer = np.savez_compressed if compress else np.savez
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            writer(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
