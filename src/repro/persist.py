"""Crash-safe archive primitives shared by every on-disk format.

Three robustness properties, factored out of :mod:`repro.io` so the
operator format, the plan cache, solver checkpoints, and the service
job journal all go through the *same* hardened path:

* **Atomic writes** — payloads are written to a temporary file in the
  destination directory, fsynced, and renamed into place.  A crashed
  or killed writer leaves at most a stray ``*.tmp-<pid>`` file, never
  a truncated archive under the final name.
* **Content checksums** — :func:`payload_checksum` computes a CRC-32
  over every payload array (name + raw bytes, name-sorted) so loaders
  can detect silent bit corruption instead of returning corrupt
  physics.  :func:`atomic_savez_checked` embeds the checksum;
  :func:`load_checked_npz` refuses an archive that fails it.
* **Durable append** — :class:`RecordLog` is a CRC-framed append-only
  log (length + CRC-32 header per record, fsync per append) whose
  replay tolerates exactly the failure ``kill -9`` produces: a torn
  final record is dropped, anything before it is intact or the replay
  raises.
* **Zero copies where possible** — checksumming uses a raw memoryview
  of each array rather than serializing it twice.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import numpy as np

__all__ = [
    "raw_buffer",
    "payload_checksum",
    "atomic_savez",
    "atomic_savez_checked",
    "load_checked_npz",
    "CorruptArchiveError",
    "RecordLog",
    "RecordLogError",
]


def raw_buffer(value) -> bytes | memoryview:
    """C-order raw bytes of an array, without copying when possible."""
    arr = np.ascontiguousarray(np.asarray(value))
    try:
        return memoryview(arr).cast("B")
    except (TypeError, NotImplementedError):  # e.g. unicode dtypes
        return arr.tobytes()


def payload_checksum(payload: dict) -> int:
    """CRC-32 over every payload array (name + raw bytes), name-sorted.

    The ``checksum`` key itself is excluded so the stored checksum can
    live inside the payload it protects.
    """
    crc = 0
    for name in sorted(payload):
        if name == "checksum":
            continue
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(raw_buffer(payload[name]), crc)
    return crc & 0xFFFFFFFF


def atomic_savez(path: Path, payload: dict, compress: bool) -> None:
    """Write ``payload`` as an npz archive via temp file + rename."""
    writer = np.savez_compressed if compress else np.savez
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            writer(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


class CorruptArchiveError(ValueError):
    """A checked npz archive is unreadable or fails its checksum."""


def atomic_savez_checked(path: Path, payload: dict, compress: bool = False) -> None:
    """:func:`atomic_savez` with the content checksum embedded.

    The written archive carries a ``checksum`` entry covering every
    other payload array; :func:`load_checked_npz` verifies it.
    """
    payload = dict(payload)
    payload["checksum"] = np.uint32(payload_checksum(payload))
    atomic_savez(Path(path), payload, compress=compress)


def load_checked_npz(path) -> dict:
    """Load a checked npz archive, verifying its embedded checksum.

    Returns the payload dict (``checksum`` entry removed).  Raises
    :class:`CorruptArchiveError` on an unreadable archive, a missing
    checksum, or a mismatch — silent bit rot never reaches the caller.
    """
    from zipfile import BadZipFile

    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
    except (OSError, ValueError, KeyError, BadZipFile) as exc:
        raise CorruptArchiveError(f"unreadable archive {path}: {exc}") from exc
    if "checksum" not in payload:
        raise CorruptArchiveError(f"archive {path} carries no checksum")
    stored = int(payload.pop("checksum"))
    if payload_checksum(payload) != stored:
        raise CorruptArchiveError(
            f"archive {path} fails its checksum (corrupt or truncated)"
        )
    return payload


class RecordLogError(ValueError):
    """A record log is corrupt beyond the tolerated torn tail."""


#: Per-record frame header: little-endian (payload length, CRC-32).
_FRAME_HEADER = struct.Struct("<II")


class RecordLog:
    """Append-only CRC-framed byte-record log with durable appends.

    Each record is framed as ``<length:u32><crc32:u32><payload>``.
    :meth:`append` writes the frame and fsyncs before returning, so a
    record handed back to the caller is on disk — the property the job
    server's "acknowledge only after journaling" discipline rests on.

    :meth:`replay` yields payloads in append order.  A torn *final*
    frame (short header, short payload, or CRC mismatch at the tail) is
    the expected residue of a ``kill -9`` mid-append and is silently
    dropped; a bad frame *followed by more data* means real corruption
    and raises :class:`RecordLogError` instead of guessing.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    # -- writing ---------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, payload: bytes) -> None:
        """Durably append one record (flush + fsync before returning)."""
        payload = bytes(payload)
        fh = self._handle()
        fh.write(_FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- replay ----------------------------------------------------------

    def replay(self) -> list[bytes]:
        """All intact records in append order (empty for a missing log)."""
        if not self.path.exists():
            return []
        blob = self.path.read_bytes()
        records: list[bytes] = []
        offset = 0
        total = len(blob)
        while offset < total:
            frame_start = offset
            if offset + _FRAME_HEADER.size > total:
                break  # torn tail: header itself never finished landing
            length, crc = _FRAME_HEADER.unpack_from(blob, offset)
            offset += _FRAME_HEADER.size
            if offset + length > total:
                break  # torn tail: payload cut short by the crash
            payload = blob[offset : offset + length]
            offset += length
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                if offset < total:
                    raise RecordLogError(
                        f"record log {self.path}: CRC mismatch at byte "
                        f"{frame_start} with further data beyond it"
                    )
                break  # torn tail: the crashed append never completed
            records.append(payload)
        return records
