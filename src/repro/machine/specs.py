"""Machine specifications (paper Table 2, plus microarchitectural
parameters needed by the performance model).

The paper evaluates on five systems: ALCF Theta (KNL nodes), NCSA Blue
Waters (K20X GPUs), ALCF Cooley (dual K80), an IBM Minsky (4x P100) and
an Nvidia DGX-1 (8x V100).  We cannot run on those devices, so each is
described by the bandwidth/latency/cache numbers the paper itself uses
to explain its results; :mod:`repro.machine.perf_model` turns these
into projection-time predictions.

ECC degradation of 15 % is applied to K20X and K80 theoretical
bandwidths, as the paper does (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "MachineSpec", "DEVICES", "MACHINES", "get_device", "get_machine"]

GB = 1e9
GiB = float(1 << 30)
KiB = float(1 << 10)
MiB = float(1 << 20)


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator or many-core processor.

    Attributes
    ----------
    name:
        Device name.
    kind:
        ``"knl"`` or ``"gpu"`` (selects kernel-behaviour assumptions).
    fast_mem_bytes:
        On-chip / on-package memory capacity (MCDRAM or GPU DRAM/HBM).
    fast_mem_bw:
        Its theoretical bandwidth (B/s), ECC-adjusted where applicable.
    slow_mem_bytes, slow_mem_bw:
        Host-side capacity/bandwidth (KNL DDR4); zero for GPUs, whose
        overflow goes over the host link instead.
    stream_efficiency:
        Achievable fraction of theoretical bandwidth (STREAM-like; the
        paper quotes 73-92 % depending on device).
    l1_bytes:
        Per-core L1 (KNL) or per-SM shared memory (GPU) capacity
        available for the input buffer.
    l2_bytes:
        Last-level cache in front of memory (KNL distributed L2 tiles,
        GPU L2).
    cache_line_bytes:
        Line size used for miss-traffic accounting.
    mem_latency_s:
        Average latency of a miss that reaches memory.
    concurrency:
        Sustainable outstanding misses (memory-level parallelism
        aggregated over the device) — what turns latency into an
        effective bandwidth ceiling for irregular streams.
    peak_gflops:
        FP32 peak (an upper roofline; SpMV never approaches it).
    link_bw:
        Host-device interface bandwidth (PCIe or NVLink); for KNL this
        is the network-injection path and unused by single-device
        modelling.
    max_smt:
        Hardware threads per core (KNL: 4); 1 for GPUs (occupancy is
        modelled separately).
    """

    name: str
    kind: str
    fast_mem_bytes: float
    fast_mem_bw: float
    slow_mem_bytes: float
    slow_mem_bw: float
    stream_efficiency: float
    l1_bytes: float
    l2_bytes: float
    cache_line_bytes: int
    mem_latency_s: float
    concurrency: float
    peak_gflops: float
    link_bw: float
    max_smt: int


DEVICES: dict[str, DeviceSpec] = {
    "KNL": DeviceSpec(
        name="Intel Xeon Phi 7230 (KNL)",
        kind="knl",
        fast_mem_bytes=16 * GiB,
        fast_mem_bw=400 * GB,
        slow_mem_bytes=192 * GiB,
        slow_mem_bw=90 * GB,
        stream_efficiency=0.78,
        l1_bytes=32 * KiB,
        # KNL's L2 is 1 MB per 2-core tile, private with coherence —
        # the cache one thread's gathers actually contend for.
        l2_bytes=1 * MiB,
        cache_line_bytes=64,
        mem_latency_s=150e-9,
        concurrency=256.0,  # ~1 outstanding gather per hardware thread (64 cores x 4 SMT)
        peak_gflops=5200.0,
        link_bw=16 * GB,
        max_smt=4,
    ),
    "K20X": DeviceSpec(
        name="Nvidia Tesla K20X",
        kind="gpu",
        fast_mem_bytes=6 * GiB,
        fast_mem_bw=0.85 * 250 * GB,  # 15 % ECC degradation; paper lists 212.5->121.5 class
        slow_mem_bytes=0.0,
        slow_mem_bw=0.0,
        stream_efficiency=0.78,
        l1_bytes=48 * KiB,
        l2_bytes=1.5 * MiB,
        cache_line_bytes=128,
        mem_latency_s=600e-9,
        concurrency=600.0,
        peak_gflops=3935.0,
        link_bw=8 * GB,  # PCIe gen2 effective
        max_smt=1,
    ),
    "K80": DeviceSpec(
        name="Nvidia Tesla K80 (per-GK210)",
        kind="gpu",
        fast_mem_bytes=12 * GiB,
        fast_mem_bw=0.85 * 240 * GB,  # paper: 204 GB/s post-ECC per GPU
        slow_mem_bytes=0.0,
        slow_mem_bw=0.0,
        stream_efficiency=0.78,
        l1_bytes=48 * KiB,
        l2_bytes=1.5 * MiB,
        cache_line_bytes=128,
        mem_latency_s=600e-9,
        concurrency=700.0,
        peak_gflops=4368.0,
        link_bw=12 * GB,  # PCIe gen3
        max_smt=1,
    ),
    "P100": DeviceSpec(
        name="Nvidia Tesla P100",
        kind="gpu",
        fast_mem_bytes=16 * GiB,
        fast_mem_bw=720 * GB,
        slow_mem_bytes=0.0,
        slow_mem_bw=0.0,
        stream_efficiency=0.69,
        l1_bytes=48 * KiB,  # addressable shared memory is capped at 48 KB
        l2_bytes=4 * MiB,
        cache_line_bytes=128,
        mem_latency_s=450e-9,
        concurrency=1600.0,
        peak_gflops=9300.0,
        link_bw=40 * GB,  # NVLink 1
        max_smt=1,
    ),
    "V100": DeviceSpec(
        name="Nvidia Tesla V100",
        kind="gpu",
        fast_mem_bytes=16 * GiB,
        fast_mem_bw=900 * GB,
        slow_mem_bytes=0.0,
        slow_mem_bw=0.0,
        stream_efficiency=0.92,
        l1_bytes=96 * KiB,
        l2_bytes=6 * MiB,
        cache_line_bytes=128,
        mem_latency_s=400e-9,
        concurrency=2500.0,
        peak_gflops=14130.0,
        link_bw=80 * GB,  # NVLink 2
        max_smt=1,
    ),
}


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: nodes of devices plus an interconnect (paper Table 2).

    ``net_latency_s`` / ``net_bw`` parameterize the alpha-beta model of
    :mod:`repro.dist.comm_model` for the **inter-node** network;
    ``intra_latency_s`` / ``intra_bw`` describe the intra-node fabric
    (NVLink, PCIe, or shared memory) that the hierarchical two-level
    exchange stages over before leaders hit the network.
    ``devices_per_node`` counts devices a rank set maps onto (Cooley
    nodes carry two K80 boards = 4 GK210) — it doubles as the default
    ranks-per-node of a hierarchical topology on that machine.
    """

    name: str
    num_nodes: int
    device: DeviceSpec
    devices_per_node: int
    net_latency_s: float
    net_bw: float
    intra_latency_s: float = 1e-6
    intra_bw: float = 10 * GB


MACHINES: dict[str, MachineSpec] = {
    "theta": MachineSpec(
        name="ALCF Theta",
        num_nodes=4392,
        device=DEVICES["KNL"],
        devices_per_node=1,
        net_latency_s=3e-6,  # Aries dragonfly
        net_bw=8 * GB,
        intra_latency_s=0.5e-6,  # on-node shared memory (single KNL rank)
        intra_bw=50 * GB,
    ),
    "bluewaters": MachineSpec(
        name="NCSA Blue Waters (XK7)",
        num_nodes=4228,
        device=DEVICES["K20X"],
        devices_per_node=1,
        net_latency_s=2.5e-6,  # Gemini 3D torus
        net_bw=5 * GB,
        intra_latency_s=1.3e-6,  # PCIe gen2 host link
        intra_bw=8 * GB,
    ),
    "cooley": MachineSpec(
        name="ALCF Cooley",
        num_nodes=126,
        device=DEVICES["K80"],
        devices_per_node=2,
        net_latency_s=2e-6,  # FDR InfiniBand
        net_bw=6 * GB,
        intra_latency_s=1e-6,  # PCIe gen3 between the two K80 boards
        intra_bw=12 * GB,
    ),
    "minsky": MachineSpec(
        name="IBM Minsky",
        num_nodes=1,
        device=DEVICES["P100"],
        devices_per_node=4,
        net_latency_s=1e-6,
        net_bw=40 * GB,
        intra_latency_s=0.5e-6,  # NVLink 1
        intra_bw=40 * GB,
    ),
    "dgx1": MachineSpec(
        name="Nvidia DGX-1",
        num_nodes=1,
        device=DEVICES["V100"],
        devices_per_node=8,
        net_latency_s=1e-6,
        net_bw=80 * GB,
        intra_latency_s=0.5e-6,  # NVLink 2
        intra_bw=80 * GB,
    ),
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by short name (KNL, K20X, K80, P100, V100)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}") from None


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by short name (theta, bluewaters, ...)."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}") from None
