"""Tuning-parameter sweeps for the buffered kernel (paper Fig. 10).

The buffered kernel has three knobs: partition (block) size, buffer
size, and — on KNL — SMT threads per core.  The paper tunes them by
exhaustive search on hardware; we sweep the same space by *building*
the buffered data structures for each configuration (real stage
counts, real map traffic from the actual matrix) and scoring them with
the performance model plus two effects the base model ignores:

* **L1 leak** — each SMT thread owns a private input buffer, so the
  per-core L1 footprint is ``smt * buffer + output``; beyond L1
  capacity the buffer re-reads spill to L2 and cost extra traffic
  (paper Section 3.3.2).  On GPUs the buffer is shared memory: sizes
  beyond the addressable limit (48 KB on K80/P100) are invalid, and
  large buffers reduce occupancy.
* **staging overhead** — every stage costs a synchronization; SMT (or
  GPU block scheduling) overlaps staging with FMAs of other threads,
  dividing the exposed overhead (paper Sections 3.3.3-3.3.4).

This reproduces the qualitative landscape of Fig. 10: the KNL optimum
at 4 SMT with ``4 x 8 KB = 32 KB = L1``, degradation for leaking or
over-staged configurations, and the GPU preference for large blocks
and large buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix, build_buffered
from .perf_model import KernelProfile, PerformanceModel
from .specs import DeviceSpec

__all__ = ["TuningPoint", "sweep_tuning", "best_configuration"]

#: Exposed cost of one buffer staging synchronization, per stage.
_STAGE_SYNC_SECONDS = 2e-7

#: Per-element cost of copying input data into the buffer when nothing
#: overlaps it (one gather + one store).  SMT threads (or GPU block
#: scheduling) hide this behind other threads' FMAs — the paper's
#: Section 3.3.4 overlap mechanism and the reason 4 SMT wins on KNL.
_STAGING_SECONDS_PER_ELEMENT = 1e-9

#: Bytes of partition output accumulator per row (float32).
_OUTPUT_BYTES_PER_ROW = 4

#: Partitions per execution unit needed for dynamic scheduling to
#: balance load (OpenMP dynamic / GPU block scheduling).
_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class TuningPoint:
    """One swept configuration and its predicted performance."""

    partition_size: int
    buffer_bytes: int
    smt: int
    gflops: float
    num_stages: int
    leak_fraction: float
    valid: bool


def _leak_fraction(device: DeviceSpec, partition_size: int, buffer_bytes: int, smt: int) -> float:
    """Fraction of buffered re-reads that spill past L1.

    Only the input buffers compete for L1: each KNL hardware thread
    owns one, so the core-level footprint is ``smt * buffer`` (hence
    the paper's 4 SMT x 8 KB = 32 KB = L1 sweet spot).  The output
    accumulator streams through and is not counted.
    """
    del partition_size
    footprint = smt * buffer_bytes if device.kind == "knl" else buffer_bytes
    if footprint <= device.l1_bytes:
        return 0.0
    return 1.0 - device.l1_bytes / footprint


def evaluate_configuration(
    matrix: CSRMatrix,
    device: DeviceSpec,
    partition_size: int,
    buffer_bytes: int,
    smt: int = 2,
    miss_rate: float = 0.05,
    modeled_num_rows: int | None = None,
) -> TuningPoint:
    """Build the buffered layout for one configuration and score it.

    ``miss_rate`` is the cache-simulated L2 miss rate of the staging
    stream (near-compulsory after Hilbert ordering); it barely moves
    across configurations, so callers usually measure it once.

    ``modeled_num_rows`` sets the row count used for the load-balance
    term: when tuning on a scaled-down matrix whose *structure* stands
    in for a full-size dataset, pass the full-size row count so the
    partition count seen by the scheduler model matches the target.
    """
    if device.kind == "gpu" and buffer_bytes > device.l1_bytes:
        return TuningPoint(partition_size, buffer_bytes, smt, 0.0, 0, 1.0, valid=False)
    try:
        buffered = build_buffered(matrix, partition_size, buffer_bytes)
    except ValueError:
        return TuningPoint(partition_size, buffer_bytes, smt, 0.0, 0, 1.0, valid=False)

    model = PerformanceModel(device)
    profile = KernelProfile.buffered(
        nnz=buffered.nnz,
        map_length=int(buffered.map.shape[0]),
        miss_rate=miss_rate,
    )
    base_time = model.projection_time(profile, smt=smt)

    leak = _leak_fraction(device, partition_size, buffer_bytes, smt)
    bw = model.effective_bandwidth(profile.regular_data_bytes)
    # Leaked buffer gathers re-read from L2/memory instead of L1.
    leak_time = leak * buffered.nnz * 4.0 / bw

    num_stages = buffered.num_stages
    overlap = max(smt, 1) if device.kind == "knl" else 4.0  # block scheduling on SMs
    sync_time = num_stages * _STAGE_SYNC_SECONDS / overlap
    # Exposed staging: buffer fills stall a lone thread; co-resident
    # threads overlap them with FMAs (Section 3.3.4).
    sync_time += buffered.map.shape[0] * _STAGING_SECONDS_PER_ELEMENT / overlap

    # Dynamic-scheduling load balance: with too few partitions the
    # cores/SMs cannot be kept busy (why the paper's KNL optimum is a
    # modest block size of 128 despite staging favouring large blocks).
    units = 64 * max(smt, 1) if device.kind == "knl" else 80
    needed = _OVERSUBSCRIPTION * units
    rows_for_balance = modeled_num_rows or matrix.num_rows
    parts = max(-(-rows_for_balance // partition_size), 1)
    balance = min(1.0, parts / needed) if parts < needed else 1.0
    # Residual imbalance: the slowest unit carries the leftover block.
    balance = min(balance, parts / (np.ceil(parts / units) * units) + 1e-9) or balance

    time = (base_time + leak_time + sync_time) / max(balance, 1e-3)
    return TuningPoint(
        partition_size=partition_size,
        buffer_bytes=buffer_bytes,
        smt=smt,
        gflops=2.0 * buffered.nnz / time / 1e9,
        num_stages=num_stages,
        leak_fraction=leak,
        valid=True,
    )


def sweep_tuning(
    matrix: CSRMatrix,
    device: DeviceSpec,
    partition_sizes: list[int],
    buffer_sizes: list[int],
    smts: list[int] | None = None,
    miss_rate: float = 0.05,
    modeled_num_rows: int | None = None,
) -> list[TuningPoint]:
    """Exhaustive sweep over the tuning space (paper Section 4.2.4)."""
    if smts is None:
        smts = list(range(1, device.max_smt + 1))
    points = []
    for smt in smts:
        for partition_size in partition_sizes:
            for buffer_bytes in buffer_sizes:
                points.append(
                    evaluate_configuration(
                        matrix, device, partition_size, buffer_bytes, smt,
                        miss_rate, modeled_num_rows,
                    )
                )
    return points


def best_configuration(points: list[TuningPoint]) -> TuningPoint:
    """The highest-GFLOPS valid point of a sweep."""
    valid = [p for p in points if p.valid]
    if not valid:
        raise ValueError("no valid tuning point in sweep")
    return max(valid, key=lambda p: p.gflops)


def heatmap(points: list[TuningPoint], smt: int) -> tuple[np.ndarray, list[int], list[int]]:
    """Arrange sweep results as a (partition x buffer) GFLOPS grid.

    Returns ``(grid, partition_sizes, buffer_sizes)`` with NaN for
    invalid configurations — the Fig. 10 heat-map layout.
    """
    sel = [p for p in points if p.smt == smt]
    partition_sizes = sorted({p.partition_size for p in sel})
    buffer_sizes = sorted({p.buffer_bytes for p in sel})
    grid = np.full((len(partition_sizes), len(buffer_sizes)), np.nan)
    for p in sel:
        i = partition_sizes.index(p.partition_size)
        j = buffer_sizes.index(p.buffer_bytes)
        grid[i, j] = p.gflops if p.valid else np.nan
    return grid, partition_sizes, buffer_sizes
