"""Machine models: device/cluster specs (paper Table 2), the SpMV
performance model, and tuning-space sweeps (paper Fig. 10)."""

from .perf_model import KernelProfile, PerformanceModel
from .specs import DEVICES, MACHINES, DeviceSpec, MachineSpec, get_device, get_machine
from .tuning import (
    TuningPoint,
    best_configuration,
    evaluate_configuration,
    heatmap,
    sweep_tuning,
)

__all__ = [
    "KernelProfile",
    "PerformanceModel",
    "DEVICES",
    "MACHINES",
    "DeviceSpec",
    "MachineSpec",
    "get_device",
    "get_machine",
    "TuningPoint",
    "best_configuration",
    "evaluate_configuration",
    "heatmap",
    "sweep_tuning",
]
