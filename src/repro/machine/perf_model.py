"""Analytic performance model for the SpMV projection kernels.

The paper explains every single-device result (Figs. 9/10, Tables 6/7)
with three quantities: the *regular* stream bandwidth (``ind``/``val``
arrays, 8 B per FMA for CSR or 6 B for the 16-bit buffered layout), the
*irregular* gather behaviour (L2 miss rate — measured here with the
cache simulator — times line size), and the exposed *latency* of those
misses when too few are in flight.  This module composes exactly those
terms into a projection-time prediction:

``time = max(bandwidth_time, latency_time)``

* ``bandwidth_time`` — all memory traffic (regular + missed lines +
  staging map reads) divided by the achievable stream bandwidth of
  whichever memory holds the data (KNL: MCDRAM when the regular data
  fits, DDR otherwise, with proportional blending in between — the
  Fig. 9 ADS3 partial-caching case);
* ``latency_time`` — misses divided by the device's sustainable
  memory-level parallelism.  Buffered kernels stage sequentially and
  stream, so their latency is hidden; the CSR baseline on KNL exposes
  it, which is why baseline GFLOPS *fall* with dataset size while GPU
  baselines do not (massive thread-level parallelism), exactly the
  paper's Section 4.2.1 observation.

This is a model, not a measurement: EXPERIMENTS.md reports predicted
versus paper values and how the shapes compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.metrics import REGULAR_BYTES_BUFFERED, REGULAR_BYTES_CSR
from .specs import DeviceSpec

__all__ = ["KernelProfile", "PerformanceModel"]


@dataclass(frozen=True)
class KernelProfile:
    """Measured structure of one SpMV kernel execution.

    All quantities are measurable from the built data structures plus a
    cache simulation; nothing here requires the target hardware.

    Attributes
    ----------
    nnz:
        Nonzeros (2 FLOPs each).
    irregular_accesses:
        Gather count that reaches the memory hierarchy: ``nnz`` for the
        CSR kernels, the ``map`` length for the buffered kernel.
    miss_rate:
        L2 miss rate of the irregular stream (cache-simulated).
    regular_bytes_per_fma:
        8.0 (32-bit CSR / ELL) or 6.0 (16-bit buffered).
    staging_bytes:
        Extra regular traffic of the buffered kernel: the ``map`` index
        reads plus buffer fills; zero otherwise.
    regular_data_bytes:
        Total regular data (matrix) size — decides which memory level
        holds it on KNL.
    latency_bound:
        Whether gather latency is exposed (CSR baseline) or hidden by
        explicit staging (buffered kernel).
    """

    nnz: int
    irregular_accesses: int
    miss_rate: float
    regular_bytes_per_fma: float = REGULAR_BYTES_CSR
    staging_bytes: float = 0.0
    regular_data_bytes: float = 0.0
    latency_bound: bool = True

    def __post_init__(self) -> None:
        if self.nnz < 0 or self.irregular_accesses < 0:
            raise ValueError("counts must be non-negative")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError(f"miss rate must be in [0, 1], got {self.miss_rate}")

    @classmethod
    def csr_baseline(
        cls, nnz: int, miss_rate: float, regular_data_bytes: float = 0.0
    ) -> "KernelProfile":
        """Profile of the Listing-2 CSR kernel (baseline or Hilbert)."""
        return cls(
            nnz=nnz,
            irregular_accesses=nnz,
            miss_rate=miss_rate,
            regular_bytes_per_fma=REGULAR_BYTES_CSR,
            regular_data_bytes=regular_data_bytes or nnz * REGULAR_BYTES_CSR,
            latency_bound=True,
        )

    @classmethod
    def buffered(
        cls,
        nnz: int,
        map_length: int,
        miss_rate: float,
        regular_data_bytes: float = 0.0,
    ) -> "KernelProfile":
        """Profile of the Listing-3 buffered kernel."""
        # Staging reads the 4-byte map entry and the 4-byte input
        # element (miss traffic for the element is accounted separately).
        return cls(
            nnz=nnz,
            irregular_accesses=map_length,
            miss_rate=miss_rate,
            regular_bytes_per_fma=REGULAR_BYTES_BUFFERED,
            staging_bytes=4.0 * map_length,
            regular_data_bytes=regular_data_bytes or nnz * REGULAR_BYTES_BUFFERED,
            latency_bound=False,
        )


class PerformanceModel:
    """Projection-time predictor for one device."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # -- memory-system helpers ----------------------------------------

    def effective_bandwidth(self, regular_data_bytes: float) -> float:
        """Achievable stream bandwidth for a working set of given size.

        On KNL, data beyond the 16 GB MCDRAM spills to DDR4; the
        blended bandwidth weights each memory by the fraction of the
        stream it serves (paper Section 4.2.2's ADS3 partial-caching
        argument).  GPUs have a single device memory.
        """
        d = self.device
        if d.slow_mem_bytes <= 0 or regular_data_bytes <= d.fast_mem_bytes:
            return d.stream_efficiency * d.fast_mem_bw
        fast_fraction = d.fast_mem_bytes / regular_data_bytes
        blended = fast_fraction * d.fast_mem_bw + (1.0 - fast_fraction) * d.slow_mem_bw
        return d.stream_efficiency * blended

    # -- the model -----------------------------------------------------

    def projection_time(self, profile: KernelProfile, smt: int = 2) -> float:
        """Predicted seconds for one forward or backprojection.

        ``smt`` (KNL only) scales how much gather latency the hardware
        scheduler can overlap: more hardware threads per core sustain
        more outstanding misses.
        """
        d = self.device
        bw = self.effective_bandwidth(profile.regular_data_bytes)
        regular_bytes = profile.nnz * profile.regular_bytes_per_fma
        miss_bytes = (
            profile.miss_rate * profile.irregular_accesses * d.cache_line_bytes
        )
        total_bytes = regular_bytes + miss_bytes + profile.staging_bytes
        bandwidth_time = total_bytes / bw

        if profile.latency_bound:
            smt_eff = min(max(smt, 1), d.max_smt)
            concurrency = d.concurrency * (smt_eff / d.max_smt if d.kind == "knl" else 1.0)
            misses = profile.miss_rate * profile.irregular_accesses
            latency_time = misses * d.mem_latency_s / concurrency
        else:
            latency_time = 0.0

        compute_time = 2.0 * profile.nnz / (d.peak_gflops * 1e9)
        return max(bandwidth_time, latency_time, compute_time)

    def gflops(self, profile: KernelProfile, smt: int = 2) -> float:
        """Predicted GFLOPS (``2 nnz / time``, paper Section 4.2)."""
        return 2.0 * profile.nnz / self.projection_time(profile, smt=smt) / 1e9

    def bandwidth_utilization(self, profile: KernelProfile, smt: int = 2) -> float:
        """Predicted regular-stream bandwidth in GB/s (paper Fig. 9(c))."""
        t = self.projection_time(profile, smt=smt)
        return profile.nnz * profile.regular_bytes_per_fma / t / 1e9
