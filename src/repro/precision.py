"""Compute-precision policy for the reconstruction pipeline.

The repo's historical numerics are *mixed*: sparse matrix values are
stored ``float32`` (the paper's choice — halves the regular stream),
operator kernels compute in ``float32``, and the iterative solvers keep
their state (``x``, residuals, search directions) in ``float64``.  That
default is untouched — ``OperatorConfig(dtype=None)`` reproduces it
bit-for-bit.

``dtype="float32"`` opts into an end-to-end single-precision path:
solver state drops to ``float32`` too, halving vector traffic on a
bandwidth-bound SpMV (paper Section 5's roofline).  ``dtype="float64"``
is the full double-precision reference path — matrix values are stored
``float64`` as well — used by the tolerance-contract tests and the
``bench_autotune`` fp32-speedup comparison.

Only :func:`parse_dtype` raises; everything downstream trusts the
normalized ``None | "float32" | "float64"`` spelling.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "DTYPE_CHOICES",
    "ENV_DTYPE",
    "ambient_dtype",
    "parse_dtype",
    "compute_dtype",
    "solver_dtype",
]

#: Environment variable consulted when a config leaves ``dtype=None``,
#: mirroring ``REPRO_WORKERS``: it lets CI re-run unmodified suites on
#: the fp32 path without touching any call site.
ENV_DTYPE = "REPRO_DTYPE"

#: Normalized spellings accepted everywhere downstream of parse_dtype.
DTYPE_CHOICES = ("float32", "float64")

_ALIASES = {
    "float32": "float32",
    "fp32": "float32",
    "single": "float32",
    "f32": "float32",
    "float64": "float64",
    "fp64": "float64",
    "double": "float64",
    "f64": "float64",
}


def parse_dtype(spec: object) -> str | None:
    """Normalize a compute-dtype spec to ``None``/``"float32"``/``"float64"``.

    Accepts ``None`` (legacy mixed precision), the canonical strings,
    common aliases (``fp32``, ``single``, ``f64``, ...) case-insensitively,
    and numpy dtypes/scalar types.  Anything else raises ``ValueError``
    with the accepted spellings — malformed specs must never silently
    fall back to a default precision.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in _ALIASES:
            return _ALIASES[key]
        raise ValueError(
            f"invalid dtype spec {spec!r}: expected one of "
            f"{sorted(set(_ALIASES))} (or None for the default mixed "
            "precision)"
        )
    try:
        resolved = np.dtype(spec)
    except TypeError:
        resolved = None
    if resolved == np.float32:
        return "float32"
    if resolved == np.float64:
        return "float64"
    raise ValueError(
        f"invalid dtype spec {spec!r}: expected 'float32', 'float64', an "
        "alias (fp32/fp64/single/double), a matching numpy dtype, or None"
    )


def ambient_dtype() -> str | None:
    """Compute dtype from ``REPRO_DTYPE``, or ``None`` when unset/empty."""
    spec = os.environ.get(ENV_DTYPE, "").strip()
    return parse_dtype(spec) if spec else None


def compute_dtype(dtype: str | None) -> np.dtype:
    """Kernel (SpMV) dtype for a normalized spec: fp64 only when asked."""
    return np.dtype(np.float64 if dtype == "float64" else np.float32)


def solver_dtype(op: object) -> np.dtype:
    """Working dtype for solver state given a projection operator.

    Operators advertise an optional ``solve_dtype`` attribute;
    operators that predate the dtype path (or ad-hoc test doubles) get
    the historical ``float64`` state.
    """
    return np.dtype(getattr(op, "solve_dtype", None) or np.float64)
