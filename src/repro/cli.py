"""Command-line interface: ``python -m repro <command>``.

Twelve subcommands cover the beamline workflow:

* ``info``        — list datasets (Table 3) and machine models (Table 2);
* ``preprocess``  — memoize a scan geometry into an operator file
  (``--geometry cone`` selects the 3D cone-beam geometry);
* ``scenario``    — beamline workload scenarios on a synthetic phantom:
  sparse-view / limited-angle degraded scans with regularized solvers,
  the batched try-center rotation-axis sweep, and a 3D cone-beam smoke
  reconstruction (see ``docs/scenarios.md``);
* ``reconstruct`` — reconstruct a sinogram (from a .npz file or a
  synthetic demo dataset) with a chosen solver;
* ``pipeline``    — streaming multi-slice stack reconstruction:
  conditioning stages + batched multi-RHS solves + per-chunk
  checkpointing (see ``docs/pipeline.md``);
* ``bench``       — quick kernel timing of the three optimization
  levels on a scaled dataset;
* ``scale``       — print a modeled weak/strong scaling curve
  (paper Fig. 11) for a dataset-machine pair;
* ``cache``       — list / inspect / clear / prune the persistent
  operator-plan cache (see ``docs/persistence.md``);
* ``tune``        — run / show / clear autotuned kernel configurations
  (see ``docs/autotuning.md``);
* ``serve``       — run the crash-safe journaled reconstruction job
  server (admission control, coalesced batching, deadlines; see
  ``docs/service.md``);
* ``submit`` / ``status`` / ``result`` — client commands against a
  running server: send a sinogram, poll a job, fetch its image.

``preprocess``, ``reconstruct`` and ``pipeline`` additionally accept
``--dtype float32|float64`` (compute precision) and ``--tune
auto|predict|force`` (autotuned kernel configuration).

Commands that build an operator plan (``preprocess``, ``reconstruct``,
``bench``) consult the plan cache transparently — ``--cache auto`` is
the default, ``--cache off`` disables it, ``--cache DIR`` selects an
explicit directory.  A warm cache skips all four preprocessing stages.

Every subcommand additionally accepts the observability flags
``--trace FILE`` (write a Chrome-trace / Perfetto JSON of everything
the command executed) and ``--metrics`` (print the obs counter totals
after the command); see ``docs/observability.md``.

``reconstruct`` also exposes the resilience layer: ``--ranks N``
solves through the simulated distributed operator, ``--faults SPEC``
injects seeded communication faults into it, ``--checkpoint FILE`` /
``--checkpoint-every N`` snapshot the solver recurrence, ``--resume
FILE`` continues a killed run bit-exactly, and ``--health`` arms the
NaN/divergence monitor; see ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from .core import DATASETS, OperatorConfig, get_dataset, preprocess, reconstruct
from .machine import MACHINES
from .utils import format_bytes, format_seconds, psnr, render_table

__all__ = ["main"]


def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        irr = spec.irregular_bytes()
        reg = spec.regular_bytes()
        rows.append(
            [name, f"{spec.num_projections}x{spec.num_channels}", spec.sample,
             f"{format_bytes(irr[0])}/{format_bytes(irr[1])}",
             f"{format_bytes(reg[0])}"]
        )
    print(render_table(
        ["Dataset", "Sinogram", "Sample", "Irregular fwd/adj", "Regular (each)"],
        rows, title="Datasets (paper Table 3)"))
    print()
    rows = [
        [key, m.name, m.num_nodes, m.device.name,
         f"{m.device.fast_mem_bw / 1e9:.0f} GB/s"]
        for key, m in MACHINES.items()
    ]
    print(render_table(
        ["Key", "Machine", "Nodes", "Device", "Device B/W"],
        rows, title="Machine models (paper Table 2)"))
    return 0


def _print_cache_status(report) -> None:
    """One line telling the user what the plan cache did, if consulted."""
    if report.cache_key is None:
        return
    if report.cache_hit:
        print(
            f"plan cache hit ({report.cache_key[:12]}): skipped "
            "ordering/tracing/transpose/partitioning"
        )
    else:
        print(
            f"plan cache miss ({report.cache_key[:12]}): ran all stages "
            f"in {format_seconds(report.total_seconds)}, stored plan for reuse"
        )


def _build_cli_geometry(args: argparse.Namespace):
    """Build the scan geometry selected by ``--geometry``."""
    from .geometry import ConeBeamGeometry, Grid3D, ParallelBeamGeometry

    if getattr(args, "geometry", "parallel") == "cone":
        n = args.channels
        nz = args.grid_nz or args.det_rows
        source = args.source_distance or 2.0 * n
        return ConeBeamGeometry(
            num_angles=args.angles,
            det_rows=args.det_rows,
            det_cols=n,
            source_distance=source,
            grid=Grid3D(n, nz),
        )
    return ParallelBeamGeometry(args.angles, args.channels)


def _cmd_preprocess(args: argparse.Namespace) -> int:
    from .io import save_operator

    geometry = _build_cli_geometry(args)
    config = OperatorConfig(
        kernel=args.kernel,
        partition_size=args.partition_size,
        buffer_bytes=args.buffer_kb * 1024,
        workers=args.workers,
        dtype=args.dtype,
        tune=args.tune,
    )
    t0 = time.perf_counter()
    operator, report = preprocess(
        geometry, config=config, ordering=args.ordering, cache=args.cache
    )
    save_operator(args.output, operator)
    _print_cache_status(report)
    shape = (
        f"{args.angles}x{args.det_rows}x{args.channels} (cone)"
        if getattr(args, "geometry", "parallel") == "cone"
        else f"{args.angles}x{args.channels}"
    )
    print(
        f"preprocessed {shape} in "
        f"{format_seconds(time.perf_counter() - t0)} "
        f"(tracing {format_seconds(report.tracing_seconds)}); "
        f"nnz {operator.matrix.nnz:,}; saved to {args.output}"
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .phantoms import ellipsoid_volume, shepp_logan
    from .scenarios import (
        nominal_center,
        reconstruct_scenario,
        shift_sinogram,
        try_center,
    )

    config = OperatorConfig(
        kernel=args.kernel,
        workers=args.workers,
        dtype=args.dtype,
        tune=args.tune,
    )
    t0 = time.perf_counter()

    if args.kind == "cone":
        # 3D cone-beam smoke reconstruction of the ellipsoid phantom.
        from .solvers import cgls

        args.geometry = "cone"
        geometry = _build_cli_geometry(args)
        operator, report = preprocess(geometry, config=config, cache=args.cache)
        _print_cache_status(report)
        volume = ellipsoid_volume(geometry.grid.n, geometry.grid.nz)
        y = operator.forward(operator.volume_to_ordered(volume))
        result = cgls(operator, y, num_iterations=args.iterations)
        recon = operator.ordered_to_volume(result.x)
        quality = psnr(recon, volume)
        np.savez_compressed(args.output, volume=recon, reference=volume)
        print(
            f"cone reconstruction {geometry.num_angles} views x "
            f"{geometry.det_rows}x{geometry.det_cols} detector -> "
            f"{geometry.grid.shape} volume: psnr {quality:.1f} dB, "
            f"residual {result.residual_norms[-1]:.3e}, "
            f"{format_seconds(time.perf_counter() - t0)}; saved to {args.output}"
        )
        return 0

    geometry = _build_cli_geometry(args)
    phantom = shepp_logan(args.channels)
    full_op, report = preprocess(geometry, config=config, cache=args.cache)
    _print_cache_status(report)
    sinogram = full_op.project_image(phantom)

    if args.kind == "try-center":
        shifted = shift_sinogram(sinogram, -args.shift)
        nominal = nominal_center(geometry)
        centers = nominal + np.arange(
            -args.sweep, args.sweep + args.step / 2, args.step
        )
        result = try_center(
            geometry,
            shifted,
            centers,
            num_iterations=args.iterations,
            operator=full_op,
        )
        np.savez_compressed(
            args.output,
            centers=result.centers,
            scores=result.scores,
            image=result.images[result.best_index],
        )
        print(
            f"try-center swept {result.centers.size} candidates in "
            f"{format_seconds(time.perf_counter() - t0)}: best center "
            f"{result.best_center:.2f} (true {nominal + args.shift:.2f}, "
            f"nominal {nominal:.2f}); saved to {args.output}"
        )
        return 0

    result = reconstruct_scenario(
        geometry,
        sinogram,
        args.kind,
        keep_every=args.keep_every,
        fraction=args.fraction,
        solver=args.solver,
        strength=args.strength,
        num_iterations=args.iterations,
        config=config,
        cache=args.cache,
    )
    quality = psnr(result.image, phantom)
    np.savez_compressed(args.output, image=result.image, reference=phantom)
    print(
        f"{args.kind} kept {result.views_kept}/{geometry.num_angles} views, "
        f"solver {args.solver}: psnr {quality:.1f} dB, "
        f"residual {result.solve.residual_norms[-1]:.3e}, "
        f"{format_seconds(time.perf_counter() - t0)}; saved to {args.output}"
    )
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    from .io import load_operator

    operator = None
    if args.operator:
        operator = load_operator(args.operator)

    if args.demo:
        spec = get_dataset(args.demo).scaled(args.scale)
        geometry = spec.geometry()
        if operator is None:
            operator, prep = preprocess(
                geometry,
                config=OperatorConfig(dtype=args.dtype, tune=args.tune),
                cache=args.cache,
            )
            _print_cache_status(prep)
        sinogram, truth = spec.sinogram(operator, incident_photons=args.photons)
    else:
        if not args.sinogram:
            print("error: provide --sinogram FILE or --demo DATASET", file=sys.stderr)
            return 2
        with np.load(args.sinogram) as data:
            sinogram = data["sinogram"]
        truth = None
        geometry = None

    result = reconstruct(
        sinogram,
        geometry,
        solver=args.solver,
        iterations=args.iterations,
        operator=operator,
        num_ranks=args.ranks,
        topology=args.topology,
        faults=args.faults,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        health=args.health or None,
        workers=args.workers,
        dtype=args.dtype,
        tune=args.tune,
        cache=args.cache,
    )
    line = (
        f"{args.solver} x{result.solve.iterations} iterations in "
        f"{format_seconds(result.solve_seconds)}; final residual "
        f"{result.solve.residual_norms[-1]:.4g}"
    )
    if truth is not None:
        line += f"; PSNR {psnr(result.image, truth):.2f} dB"
    print(line)
    _print_resilience_summary(result)
    np.savez(args.output, reconstruction=result.image)
    print(f"saved reconstruction to {args.output}")
    return 0


def _print_resilience_summary(result) -> None:
    """Report what the resilience layer injected, healed, and saved."""
    hier = result.extra.get("hier_comm")
    if hier:
        print(
            f"topology {result.extra['topology']}: "
            f"{format_bytes(hier['intra_bytes'])} intra-node "
            f"({hier['intra_messages']} msgs), "
            f"{format_bytes(hier['inter_bytes'])} inter-node "
            f"({hier['inter_messages']} aggregated msgs)"
        )
    stats = result.extra.get("fault_stats")
    if stats:
        print(
            "faults: "
            f"{stats['drops']} dropped, {stats['corruptions']} corrupted, "
            f"{stats['delays']} delayed, {stats['crashes']} crashed; "
            f"{stats['retries']} retries healed {stats['recoveries']} "
            f"(+{stats['backoff_seconds']:.3g}s simulated backoff)"
        )
    for d in result.extra.get("degradations", ()):
        print(
            f"rank crash absorbed: ranks {d['dead']} died, work "
            f"redistributed {d['from_ranks']} -> {d['to_ranks']} ranks"
        )
    path = result.extra.get("checkpoint_path")
    if path:
        print(f"checkpoint written to {path}")


def _cmd_pipeline_make_demo(args: argparse.Namespace) -> int:
    """Synthesize a raw demo stack and write it to disk as pipeline input."""
    from .phantoms import write_stack_dataset
    from .pipeline import demo_stack

    demo = demo_stack(
        size=args.size,
        num_slices=args.slices,
        num_angles=args.angles,
        center_shift=args.shift,
        rings=args.rings,
        poisson=not args.no_noise,
        seed=args.seed,
        cache=args.cache,
    )
    path = write_stack_dataset(
        args.output, demo.raw, demo.darks, demo.flats,
        shard_slices=args.shard_slices, compress=args.compress,
    )
    s, a, c = demo.raw.shape
    print(f"wrote demo stack ({s} slices x {a} angles x {c} channels) to {path}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .pipeline import reconstruct_stack

    if args.action == "make-demo":
        return _cmd_pipeline_make_demo(args)

    darks = flats = None
    geometry = operator = None
    demo = None
    if args.demo:
        from .pipeline import demo_stack

        demo = demo_stack(
            size=args.size,
            num_slices=args.slices,
            num_angles=args.angles,
            center_shift=args.shift,
            rings=args.rings,
            poisson=not args.no_noise,
            seed=args.seed,
            cache=args.cache,
        )
        raw = demo.raw
        darks, flats = demo.darks, demo.flats
        geometry, operator = demo.geometry, demo.operator
        _print_cache_status(demo.preprocess_report)
        if args.dtype or args.tune:
            # The demo helper builds a default-precision operator;
            # drop it so the stack preprocess honours --dtype/--tune.
            operator = None
    else:
        if not args.input:
            print("error: provide --input FILE or --demo", file=sys.stderr)
            return 2
        # open_source() resolves the format (.npz archive, shard
        # directory, HDF5/tomobank) and carries any calibration frames
        # the source stores alongside the data.
        raw = args.input

    # A non-.npz output streams slabs straight to disk (shard dir or
    # .raw) instead of accumulating the volume in memory.
    sink = None
    if Path(args.output).suffix != ".npz":
        sink = args.output

    result = reconstruct_stack(
        raw,
        geometry,
        darks=darks,
        flats=flats,
        solver=args.solver,
        iterations=args.iterations,
        tolerance=args.tolerance,
        batch=not args.no_batch,
        chunk_slices=args.chunk_slices,
        memory_budget_bytes=(
            int(args.memory_budget_mb * 1e6)
            if args.memory_budget_mb is not None
            else None
        ),
        operator=operator,
        cache=args.cache,
        checkpoint=args.checkpoint,
        resume=args.resume,
        max_chunks=args.max_chunks,
        workers=args.workers,
        dtype=args.dtype,
        tune=args.tune,
        sink=sink,
        compress=args.compress,
        prefetch=args.prefetch,
        progress=args.progress,
    )
    if operator is None:
        _print_cache_status(result.preprocess_report)

    done = result.num_slices - result.extra.get("remaining_slices", 0)
    mode = "looped single-slice" if args.no_batch else "batched multi-RHS"
    print(
        f"{args.solver} over {done}/{result.num_slices} slices in "
        f"{len(result.chunks)} chunks ({mode}); solve "
        f"{format_seconds(result.solve_seconds)}, total "
        f"{format_seconds(result.total_seconds)}"
    )
    if result.extra.get("resumed_slices"):
        print(f"resumed: {result.extra['resumed_slices']} slices from checkpoint")
    if "center_shift" in result.extra:
        line = f"rotation-center shift found: {result.extra['center_shift']:+.3f} channels"
        if demo is not None:
            line += f" (injected {demo.center_shift:+.3f})"
        print(line)
    if (
        demo is not None
        and result.volume is not None
        and not result.extra.get("stopped_early")
    ):
        truth = demo.attenuation_scale * demo.truth
        print(f"PSNR vs truth: {psnr(result.volume, truth):.2f} dB")
    if result.extra.get("stopped_early"):
        print(
            f"stopped after --max-chunks {args.max_chunks}; "
            f"{result.extra['remaining_slices']} slices remain "
            "(re-run with --resume to finish)"
        )
    path = result.extra.get("checkpoint_path")
    if path:
        print(f"checkpoint written to {path}")
    if args.metrics:
        rows = [
            [name, format_seconds(seconds)]
            for name, seconds in result.extra["stage_times"].items()
        ]
        print(render_table(["Stage", "Wall time"], rows, title="Per-stage wall time"))
    if result.volume is not None:
        np.savez(args.output, volume=result.volume)
        print(f"saved volume to {args.output}")
    elif "output_path" in result.extra:
        print(f"streamed volume finalized at {result.extra['output_path']}")
    else:
        print(
            f"streamed volume at {args.output} is incomplete "
            "(re-run with --resume to finish)"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset).scaled(args.scale)
    g = spec.geometry()
    print(f"building {spec.name} ({g.sinogram_shape[0]}x{g.sinogram_shape[1]})...")
    # Both plans go through preprocess() so a warm cache skips the
    # (dominant) tracing/ordering/layout construction on repeat runs.
    raw_op, raw_report = preprocess(
        g, config=OperatorConfig(kernel="csr"), ordering="row-major",
        cache=args.cache,
    )
    _print_cache_status(raw_report)
    buf_op, buf_report = preprocess(
        g,
        config=OperatorConfig(kernel="buffered", partition_size=128, buffer_bytes=8192),
        ordering="pseudo-hilbert",
        cache=args.cache,
    )
    _print_cache_status(buf_report)
    raw = raw_op.matrix
    ordered = buf_op.matrix
    buffered = buf_op.buffered_forward
    x = np.random.default_rng(0).random(raw.num_cols).astype(np.float32)

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(x)
            times.append(time.perf_counter() - t0)
        return min(times)

    rows = [
        ["CSR baseline", format_seconds(best_of(raw.spmv))],
        ["pseudo-Hilbert CSR", format_seconds(best_of(ordered.spmv))],
        ["multi-stage buffered", format_seconds(best_of(buffered.spmv_vectorized))],
    ]
    if args.workers:
        buf_op.set_workers(args.workers)
        rows.append(
            [
                f"buffered, workers={args.workers}",
                format_seconds(best_of(buf_op.forward)),
            ]
        )
        buf_op.close()
    print(render_table(["kernel", "best of 5"], rows,
                       title=f"forward projection, nnz = {raw.nnz:,}"))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .dist import find_hier_crossover, strong_scaling_series, weak_scaling_series
    from .machine import get_machine

    machine = get_machine(args.machine)
    spec = get_dataset(args.dataset)
    if args.crossover:
        result = find_hier_crossover(
            spec.num_projections, spec.num_channels, machine,
            node_counts=[args.nodes_start * (2**k) for k in range(args.steps)],
            overlap=args.overlap,
        )
        rows = [
            [
                p["nodes"],
                round(p["flat_comm_seconds"], 4),
                round(p["hier_comm_seconds"], 4),
                round(p["flat_total_seconds"], 4),
                round(p["hier_total_seconds"], 4),
                round(p["overlap_saved_seconds"], 4),
            ]
            for p in result["points"]
        ]
        overlap_note = "with" if args.overlap else "without"
        print(render_table(
            ["Nodes", "C flat (s)", "C hier (s)", "Total flat (s)",
             "Total hier (s)", "Overlap saved (s)"],
            rows,
            title=f"flat vs hierarchical on {machine.name} "
                  f"({result['ranks_per_node']} ranks/node, {overlap_note} overlap)",
        ))
        crossover = result["crossover_nodes"]
        if crossover is None:
            print("no crossover in this sweep: flat stays competitive")
        else:
            print(f"hierarchical wins from {crossover} nodes onward")
        return 0
    model_kwargs = {}
    if args.hierarchical:
        model_kwargs = {"hierarchical": True, "overlap": args.overlap}
    if args.mode == "strong":
        nodes = [args.nodes_start * (2**k) for k in range(args.steps)]
        points = strong_scaling_series(
            spec.num_projections, spec.num_channels, machine, nodes, **model_kwargs
        )
    else:
        points = weak_scaling_series(
            spec.num_projections, spec.num_channels, machine, args.steps,
            nodes_start=args.nodes_start, **model_kwargs,
        )
    rows = [p.row() for p in points]
    exchange = "hierarchical" if args.hierarchical else "flat"
    print(render_table(
        ["Nodes", "Sinogram", "Total (s)", "A_p (s)", "C (s)", "R (s)"],
        rows,
        title=f"{args.mode} scaling of {args.dataset} on {machine.name} "
              f"({exchange} exchange, 30 CG iterations, modeled)",
    ))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .cache import PlanCache

    spec = args.cache
    plan_cache = PlanCache.resolve(spec if spec != "off" else "auto")
    if plan_cache is None:
        plan_cache = PlanCache()

    if args.action == "list":
        entries = plan_cache.entries()
        if not entries:
            print(f"plan cache at {plan_cache.root} is empty")
            return 0
        rows = []
        for e in entries:
            geo = e.meta.get("geometry", {})
            cfg = e.meta.get("config", {})
            sino = (
                f"{geo.get('num_angles', '?')}x{geo.get('num_channels', '?')}"
                if geo else "?"
            )
            rows.append([
                e.key[:12],
                sino,
                cfg.get("kernel", "?"),
                f"{e.meta.get('nnz', 0):,}" if e.meta else "?",
                format_bytes(e.nbytes),
                format_seconds(e.age_seconds),
            ])
        print(render_table(
            ["Key", "Sinogram", "Kernel", "nnz", "Size", "Last used"],
            rows, title=f"Plan cache at {plan_cache.root}"))
        total = plan_cache.total_bytes()
        print(
            f"{len(entries)} entries, {format_bytes(total)} "
            f"(cap {format_bytes(plan_cache.max_bytes)})"
        )
        return 0

    if args.action == "info":
        if not args.key:
            print("error: 'cache info' needs an entry KEY", file=sys.stderr)
            return 2
        entry = plan_cache.entry(args.key)
        if entry is None:
            print(f"error: no cache entry matching {args.key!r}", file=sys.stderr)
            return 1
        import json as _json

        print(f"key:  {entry.key}")
        print(f"path: {entry.path}")
        print(f"size: {format_bytes(entry.nbytes)}")
        print(_json.dumps(entry.meta, indent=2, sort_keys=True))
        return 0

    if args.action == "clear":
        removed = plan_cache.clear()
        print(f"removed {removed} entries from {plan_cache.root}")
        return 0

    # prune: run eviction, optionally against an explicit cap.
    cap = int(args.max_mb * 1e6) if args.max_mb else None
    evicted = plan_cache.evict(max_bytes=cap)
    print(
        f"evicted {len(evicted)} entries "
        f"({format_bytes(sum(e.nbytes for e in evicted))}); "
        f"{format_bytes(plan_cache.total_bytes())} in use"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .autotune import TuneStore

    if args.action == "run":
        if args.angles is None or args.channels is None:
            print(
                "error: 'tune run' needs --angles and --channels", file=sys.stderr
            )
            return 2
        from .geometry import ParallelBeamGeometry

        geometry = ParallelBeamGeometry(args.angles, args.channels)
        config = OperatorConfig(dtype=args.dtype, tune=args.mode)
        t0 = time.perf_counter()
        operator, report = preprocess(
            geometry, config=config, ordering=args.ordering, cache=args.cache
        )
        cfg = operator.config
        if report.extra.get("autotune_warm"):
            print("tuning record hit: reused the persisted winner")
        else:
            print(
                f"tuned {args.angles}x{args.channels} in "
                f"{format_seconds(time.perf_counter() - t0)}: "
                f"{report.extra.get('autotune_candidates', 0):.0f} candidates "
                f"predicted, {report.extra.get('autotune_trials', 0):.0f} trials "
                f"measured"
            )
        print(
            f"winner: kernel={cfg.kernel} partition_size={cfg.partition_size} "
            f"buffer_bytes={cfg.buffer_bytes}"
            + (f" workers={cfg.workers}" if cfg.workers else "")
            + (f" dtype={cfg.dtype}" if cfg.dtype else "")
        )
        return 0

    store = TuneStore.resolve(args.cache if args.cache != "off" else "auto")
    if store is None:
        print("error: tuning store unavailable (cache off)", file=sys.stderr)
        return 1

    if args.action == "show":
        entries = store.entries()
        if not entries:
            print(f"no tuning records at {store.root}")
            return 0
        rows = []
        for key, rec in entries:
            measured = (
                f"{rec.measured_seconds * 1e3:.3g} ms"
                if rec.measured_seconds is not None
                else "-"
            )
            rows.append([
                key[:12],
                rec.kernel,
                rec.partition_size,
                format_bytes(rec.buffer_bytes),
                rec.workers,
                rec.dtype or "default",
                f"{rec.predicted_seconds * 1e3:.3g} ms",
                measured,
                rec.trials,
            ])
        print(render_table(
            ["Key", "Kernel", "Part", "Buffer", "Workers", "Dtype",
             "Predicted", "Measured", "Trials"],
            rows, title=f"Tuning records at {store.root}"))
        return 0

    removed = store.clear()
    print(f"removed {removed} tuning records from {store.root}")
    return 0


def _load_sinogram_file(path: str) -> "np.ndarray":
    """A 2-D sinogram from a .npy file or a .npz archive."""
    p = Path(path)
    if p.suffix == ".npy":
        sinogram = np.load(p, allow_pickle=False)
    else:
        with np.load(p, allow_pickle=False) as data:
            if "sinogram" in data.files:
                sinogram = data["sinogram"]
            elif len(data.files) == 1:
                sinogram = data[data.files[0]]
            else:
                raise ValueError(
                    f"{path} has no 'sinogram' array (found {data.files})"
                )
    sinogram = np.asarray(sinogram, dtype=np.float64)
    if sinogram.ndim != 2:
        raise ValueError(f"sinogram must be 2-D, got shape {sinogram.shape}")
    return sinogram


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ReconService, ServiceConfig, ServiceFaultConfig, serve
    from .resilience import RetryPolicy

    faults = None
    if args.faults:
        faults = ServiceFaultConfig.parse(args.faults)
    config = ServiceConfig(
        spool=args.spool,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        coalesce_window_s=args.coalesce_window,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        retry=RetryPolicy(
            max_retries=args.retries, backoff_base=args.backoff
        ),
        cache=args.cache,
        kernel=args.kernel,
        faults=faults,
        result_ttl_s=args.result_ttl,
        spool_cap_bytes=args.spool_cap,
    )
    engine = ReconService(config)

    def ready(server):
        # One machine-readable line so scripts (and the CI kill -9
        # battery) can discover an ephemeral --port 0 binding; also
        # dropped in the spool for out-of-band discovery.
        doc = {"event": "listening", "host": args.host, "port": server.port}
        print(_json.dumps(doc), flush=True)
        (Path(args.spool) / "server.json").write_text(_json.dumps(doc) + "\n")

    return serve(
        engine, args.host, args.port,
        verbose=args.verbose, ready_callback=ready,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    sinogram = _load_sinogram_file(args.sinogram)
    client = ServiceClient(args.url)
    spec = {
        "tenant": args.tenant,
        "solver": args.solver,
        "iterations": args.iterations,
        "tolerance": args.tolerance,
    }
    if args.dtype:
        spec["dtype"] = args.dtype
    if args.deadline is not None:
        spec["deadline_s"] = args.deadline
    if args.checkpoint_every:
        spec["checkpoint_every"] = args.checkpoint_every
    ack = client.submit(sinogram, spec)
    print(f"accepted job {ack['job_id']} ({ack['state']})")
    if not args.wait:
        return 0
    final = client.wait(ack["job_id"], timeout=args.timeout)
    print(f"job {ack['job_id']} {final['state']} "
          f"(attempts {final['attempts']}, batch {final['batch_size']})")
    if final["state"] != "done":
        return 1
    if args.output:
        image = client.result(ack["job_id"])
        np.savez(args.output, image=image)
        print(f"wrote {image.shape[0]}x{image.shape[1]} image to {args.output}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceClient

    doc = ServiceClient(args.url).status(args.job_id)
    print(_json.dumps(doc, indent=2))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    from .service import JobFailedError, ServiceClient

    try:
        image = ServiceClient(args.url).result(args.job_id)
    except JobFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    np.savez(args.output, image=image)
    print(f"wrote {image.shape[0]}x{image.shape[1]} image to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MemXCT reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome-trace/Perfetto JSON of this command to FILE",
    )
    obs_flags.add_argument(
        "--metrics",
        action="store_true",
        help="print observability counter totals after the command",
    )

    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument(
        "--cache",
        default="auto",
        metavar="DIR|auto|off",
        help="operator-plan cache: 'auto' (default; REPRO_CACHE_DIR or "
        "~/.cache/repro/plans), 'off', or an explicit directory",
    )

    workers_flags = argparse.ArgumentParser(add_help=False)
    workers_flags.add_argument(
        "--workers",
        default=None,
        metavar="N|MODE|MODE:N",
        help="parallel execution backend: a worker count (threads), "
        "'thread'/'process'/'auto' (one worker per CPU), or 'mode:count' "
        "like 'process:4'; default serial (or REPRO_WORKERS). "
        "Results are bit-identical across worker counts (docs/parallel.md)",
    )

    tune_flags = argparse.ArgumentParser(add_help=False)
    tune_flags.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="compute precision: omit for the default mixed precision, "
        "'float32' for end-to-end single precision (half the vector "
        "traffic; see docs/autotuning.md for the error contract), "
        "'float64' for the full double-precision reference path",
    )
    tune_flags.add_argument(
        "--tune",
        default=None,
        choices=("auto", "predict", "force"),
        help="autotune the kernel configuration: 'auto' reuses a persisted "
        "record or runs predict+trial search, 'predict' is model-only, "
        "'force' re-runs the search ignoring any record",
    )

    sub.add_parser(
        "info", help="list datasets and machine models", parents=[obs_flags]
    )

    p = sub.add_parser(
        "preprocess",
        help="memoize a scan geometry",
        parents=[obs_flags, cache_flags, workers_flags, tune_flags],
    )
    p.add_argument("--angles", type=int, required=True)
    p.add_argument("--channels", type=int, required=True)
    p.add_argument(
        "--geometry",
        default="parallel",
        choices=("parallel", "cone"),
        help="scan geometry: 2D parallel-beam (default) or 3D cone-beam",
    )
    p.add_argument(
        "--det-rows",
        type=int,
        default=8,
        help="cone-beam detector rows (--geometry cone)",
    )
    p.add_argument(
        "--source-distance",
        type=float,
        default=None,
        help="cone-beam source-to-axis distance (default 2x channels)",
    )
    p.add_argument(
        "--grid-nz",
        type=int,
        default=None,
        help="cone-beam volume slices (default: det-rows)",
    )
    p.add_argument("--ordering", default="pseudo-hilbert")
    p.add_argument("--kernel", default="buffered", choices=("csr", "buffered", "ell"))
    p.add_argument("--partition-size", type=int, default=128)
    p.add_argument("--buffer-kb", type=int, default=8)
    p.add_argument("--output", "-o", default="operator.npz")

    p = sub.add_parser(
        "scenario",
        help="degraded-scan and alignment workload scenarios",
        parents=[obs_flags, cache_flags, workers_flags, tune_flags],
    )
    p.add_argument(
        "kind",
        choices=("sparse-view", "limited-angle", "try-center", "cone"),
        help="scenario to run on a synthetic phantom scan",
    )
    p.add_argument("--angles", type=int, default=96, help="full-scan view count")
    p.add_argument("--channels", type=int, default=64, help="detector channels N")
    p.add_argument(
        "--det-rows", type=int, default=8, help="cone-beam detector rows"
    )
    p.add_argument(
        "--source-distance",
        type=float,
        default=None,
        help="cone-beam source-to-axis distance (default 2x channels)",
    )
    p.add_argument(
        "--grid-nz", type=int, default=None, help="cone-beam volume slices"
    )
    p.add_argument(
        "--keep-every", type=int, default=4, help="sparse-view: keep every k-th view"
    )
    p.add_argument(
        "--fraction",
        type=float,
        default=0.5,
        help="limited-angle: fraction of views kept",
    )
    p.add_argument(
        "--solver",
        default="tv",
        choices=("cgls", "tikhonov", "gradient", "tv"),
        help="degraded-scan solver",
    )
    p.add_argument(
        "--strength", type=float, default=0.05, help="regularization strength"
    )
    p.add_argument(
        "--shift",
        type=float,
        default=1.5,
        help="try-center: simulated rotation-axis offset in channels",
    )
    p.add_argument(
        "--sweep",
        type=float,
        default=3.0,
        help="try-center: half-width of the candidate sweep in channels",
    )
    p.add_argument(
        "--step", type=float, default=0.5, help="try-center: candidate spacing"
    )
    p.add_argument("--kernel", default="buffered", choices=("csr", "buffered", "ell"))
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--output", "-o", default="scenario.npz")

    p = sub.add_parser(
        "reconstruct",
        help="reconstruct a sinogram",
        parents=[obs_flags, cache_flags, workers_flags, tune_flags],
    )
    p.add_argument("--sinogram", help=".npz file with a 'sinogram' array")
    p.add_argument("--demo", choices=sorted(DATASETS), help="synthesize a demo dataset")
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--photons", type=float, default=1e5)
    p.add_argument("--operator", help="operator file from 'preprocess'")
    p.add_argument("--solver", default="cg", choices=("cg", "sirt", "sgd", "icd", "fbp"))
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--output", "-o", default="reconstruction.npz")
    p.add_argument(
        "--ranks", type=int, default=1,
        help="simulated MPI ranks (>1 uses the distributed operator)",
    )
    p.add_argument(
        "--topology", metavar="SPEC", default=None,
        help="rank-to-node placement for --ranks > 1: 'nodes:N,ranks:M' "
             "runs the hierarchical two-level exchange (bit-exact with "
             "flat), 'flat' forces the flat path; default honours "
             "REPRO_TOPOLOGY",
    )
    p.add_argument(
        "--faults", metavar="SPEC",
        help="fault-injection spec for the simulated communicator, e.g. "
        "'drop=0.05,corrupt=0.02,crash=1@3,seed=42' (needs --ranks >= 2); "
        "see docs/resilience.md",
    )
    p.add_argument(
        "--checkpoint", metavar="FILE",
        help="write periodic solver checkpoints to FILE (cg/sirt)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="snapshot the solver recurrence every N iterations (default 10 "
        "when --checkpoint is given)",
    )
    p.add_argument(
        "--resume", metavar="FILE",
        help="resume the solve from a checkpoint file (bit-exact for cg)",
    )
    p.add_argument(
        "--health", action="store_true",
        help="enable the numerical-health monitor (NaN/Inf and divergence "
        "detection with checkpoint rollback)",
    )

    p = sub.add_parser(
        "pipeline",
        help="streaming multi-slice stack reconstruction (docs/pipeline.md)",
        parents=[obs_flags, cache_flags, workers_flags, tune_flags],
    )
    p.add_argument(
        "action", choices=("run", "make-demo"),
        help="run: reconstruct a stack; make-demo: write a synthetic raw "
        "stack to --output as pipeline input",
    )
    p.add_argument(
        "--input",
        help="raw stack to reconstruct: an .npz with 'stack' (slices, "
        "angles, channels) plus optional 'darks'/'flats', an .npz-shard "
        "directory, or an HDF5/tomobank .h5 file (needs h5py)",
    )
    p.add_argument(
        "--demo", action="store_true",
        help="synthesize a raw demo stack (Shepp-Logan volume + darks/flats)",
    )
    p.add_argument("--slices", type=int, default=8, help="demo stack height")
    p.add_argument("--size", type=int, default=64, help="demo image size N (N x N)")
    p.add_argument("--angles", type=int, default=None, help="demo projection count")
    p.add_argument(
        "--shift", type=float, default=0.0,
        help="inject a rotation-center shift of this many channels (demo)",
    )
    p.add_argument(
        "--rings", action="store_true",
        help="inject per-channel detector gain errors (demo)",
    )
    p.add_argument("--no-noise", action="store_true", help="disable Poisson noise (demo)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--solver", default="cg", choices=("cg", "sirt", "mlem"))
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument(
        "--tolerance", type=float, default=0.0,
        help="per-slice early-stop tolerance (0 runs the full budget)",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="loop single-slice solves instead of the multi-RHS kernels",
    )
    p.add_argument(
        "--chunk-slices", type=int, default=None,
        help="slices per streamed chunk (default: whole stack)",
    )
    p.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="derive the chunk size from a working-set budget instead",
    )
    p.add_argument(
        "--checkpoint", metavar="FILE",
        help="checkpoint the accumulated volume after every chunk",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint, skipping completed chunks (bit-exact)",
    )
    p.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop cleanly after N chunks this run (kill/resume testing)",
    )
    p.add_argument(
        "--prefetch", type=int, default=0, metavar="N",
        help="overlap I/O with the solve: read up to N chunks ahead and "
        "write slabs behind on conveyor threads (0 = synchronous)",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="live progress/ETA line (with conveyor queue depths) on stderr",
    )
    p.add_argument(
        "--shard-slices", type=int, default=None, metavar="K",
        help="slices per shard when make-demo writes a directory",
    )
    p.add_argument(
        "--compress", action="store_true",
        help="deflate npz shards (make-demo input shards and run's "
        "shard-directory output); trades write CPU for disk bytes",
    )
    p.add_argument(
        "--output", "-o", default="volume.npz",
        help="volume destination: .npz accumulates in memory; a directory, "
        ".raw, or .tif path streams slabs to disk chunk-by-chunk "
        "(.tif needs the optional tifffile dependency; make-demo: "
        "where the raw stack is written)",
    )

    p = sub.add_parser(
        "bench",
        help="time the three kernel levels",
        parents=[obs_flags, cache_flags, workers_flags],
    )
    p.add_argument("--dataset", default="ADS2", choices=sorted(DATASETS))
    p.add_argument("--scale", type=float, default=0.25)

    p = sub.add_parser(
        "scale", help="print a modeled scaling curve (Fig. 11)", parents=[obs_flags]
    )
    p.add_argument("--dataset", default="RDS1", choices=sorted(DATASETS))
    p.add_argument("--machine", default="theta", choices=sorted(MACHINES))
    p.add_argument("--mode", default="strong", choices=("strong", "weak"))
    p.add_argument("--nodes-start", type=int, default=32)
    p.add_argument("--steps", type=int, default=6)
    p.add_argument(
        "--hierarchical", action="store_true",
        help="model the two-level intra/inter-node exchange instead of flat",
    )
    p.add_argument(
        "--overlap", action="store_true",
        help="hide the inter-node exchange behind A_p compute "
             "(with --hierarchical or --crossover)",
    )
    p.add_argument(
        "--crossover", action="store_true",
        help="sweep flat vs hierarchical and report the crossover node count",
    )

    p = sub.add_parser(
        "cache",
        help="list / inspect / clear / prune the operator-plan cache",
        parents=[obs_flags, cache_flags],
    )
    p.add_argument("action", choices=("list", "info", "clear", "prune"))
    p.add_argument("key", nargs="?", help="entry fingerprint for 'info' (prefix OK)")
    p.add_argument(
        "--max-mb", type=float, default=None,
        help="size cap in MB for 'prune' (default: the cache's own cap)",
    )

    p = sub.add_parser(
        "tune",
        help="run / show / clear autotuned operator configurations "
        "(docs/autotuning.md)",
        parents=[obs_flags, cache_flags],
    )
    p.add_argument("action", choices=("run", "show", "clear"))
    p.add_argument("--angles", type=int, default=None, help="geometry to tune (run)")
    p.add_argument("--channels", type=int, default=None, help="geometry to tune (run)")
    p.add_argument("--ordering", default="pseudo-hilbert")
    p.add_argument(
        "--mode", default="auto", choices=("auto", "predict", "force"),
        help="search mode for 'run' (see --tune on reconstruct)",
    )
    p.add_argument(
        "--dtype", default=None, choices=("float32", "float64"),
        help="tune for this compute precision (records are per-dtype)",
    )

    p = sub.add_parser(
        "serve",
        help="run the journaled reconstruction job server (docs/service.md)",
        parents=[cache_flags],
    )
    p.add_argument("--spool", required=True, metavar="DIR",
                   help="durable spool directory (journal + job archives)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8780,
                   help="TCP port (0 binds an ephemeral port, reported as a "
                   "JSON line and in <spool>/server.json)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="max admitted (queued + running) jobs before 429")
    p.add_argument("--max-batch", type=int, default=8,
                   help="max compatible jobs coalesced into one batched solve")
    p.add_argument("--coalesce-window", type=float, default=0.005,
                   metavar="SECONDS",
                   help="how long the scheduler waits for batchable peers")
    p.add_argument("--rate-limit", type=float, default=None, metavar="PER_S",
                   help="per-tenant sustained submissions/second (default: off)")
    p.add_argument("--rate-burst", type=float, default=4.0,
                   help="per-tenant burst allowance")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget for transiently failed jobs")
    p.add_argument("--backoff", type=float, default=0.05, metavar="SECONDS",
                   help="first-retry backoff (doubles per attempt)")
    p.add_argument("--kernel", default="buffered",
                   choices=("csr", "buffered", "ell"),
                   help="SpMV kernel for service operators (ell amortizes "
                   "best across coalesced multi-RHS batches)")
    p.add_argument("--result-ttl", type=float, default=None, metavar="SECONDS",
                   help="evict a finished job's spool payload this long after "
                   "it turns terminal; result then answers HTTP 410")
    p.add_argument("--spool-cap", type=int, default=None, metavar="BYTES",
                   help="cap on spool bytes held by finished jobs "
                   "(oldest results evicted first)")
    p.add_argument("--faults", metavar="SPEC",
                   help="inject seeded service faults, e.g. "
                   "'drop=0.1,crash=0.2,seed=7' (or REPRO_SERVICE_FAULTS)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")

    p = sub.add_parser(
        "submit", help="submit a sinogram to a running job server"
    )
    p.add_argument("sinogram", help=".npy file or .npz with a 'sinogram' array")
    p.add_argument("--url", default="http://127.0.0.1:8780")
    p.add_argument("--tenant", default="default")
    p.add_argument("--solver", default="cg", choices=("cg", "sirt", "mlem"))
    p.add_argument("--iterations", type=int, default=30)
    p.add_argument("--tolerance", type=float, default=0.0)
    p.add_argument("--dtype", default=None, choices=("float32", "float64"))
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="cancel the job if not finished this many seconds "
                   "after acceptance")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="checkpoint the solve every N iterations (solo job, "
                   "bit-exact resume after a server crash)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job is terminal")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait budget in seconds")
    p.add_argument("--output", "-o", default=None, metavar="FILE",
                   help="with --wait: write the finished image to FILE (.npz)")

    p = sub.add_parser("status", help="query a job's state")
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8780")

    p = sub.add_parser("result", help="fetch a finished job's image")
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8780")
    p.add_argument("--output", "-o", default="result.npz", metavar="FILE")

    return parser


def _print_metrics(cap) -> None:
    from . import obs

    if not cap.counters:
        print("no observability counters were incremented")
        return
    rows = [
        [c.name, c.unit, f"{c.total:,.0f}", c.events]
        for c in sorted(cap.counters.values(), key=lambda c: c.name)
    ]
    print(render_table(["Counter", "Unit", "Total", "Events"], rows,
                       title="Observability counters"))
    spans = cap.find_spans("solver.iteration")
    if spans:
        total = sum(s.duration for s in spans)
        print(f"{len(spans)} solver iterations, {format_seconds(total)} total "
              f"({format_seconds(total / len(spans))}/iteration)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "preprocess": _cmd_preprocess,
        "scenario": _cmd_scenario,
        "reconstruct": _cmd_reconstruct,
        "pipeline": _cmd_pipeline,
        "bench": _cmd_bench,
        "scale": _cmd_scale,
        "cache": _cmd_cache,
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
    }
    handler = handlers[args.command]
    trace_file = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_file and not want_metrics:
        return handler(args)

    from . import obs

    with obs.capture() as cap:
        code = handler(args)
    if trace_file:
        try:
            cap.write_chrome_trace(trace_file)
        except OSError as exc:
            print(f"error: cannot write trace to {trace_file}: {exc}", file=sys.stderr)
            code = code or 1
        else:
            print(
                f"wrote Chrome trace ({len(cap.spans)} spans) to {trace_file}; "
                "open it at https://ui.perfetto.dev or chrome://tracing"
            )
    if want_metrics:
        _print_metrics(cap)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
