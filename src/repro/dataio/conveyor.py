"""The overlapped I/O conveyor: read-ahead and write-behind threads.

The streaming executor's chunk loop is ``source → condition → solve →
sink``.  Run serially, the disk time on both ends adds to the solve
time; the paper's memory-centric premise says it should hide under it.
The :class:`Conveyor` arranges exactly that with two daemon threads and
two bounded :class:`queue.Queue`\\ s:

* a **reader** pulls the planned ``[start, stop)`` ranges from the
  :class:`~repro.dataio.reader.ChunkSource` ahead of the solve and
  parks them in a queue of depth ``prefetch`` (double-buffering at
  ``prefetch=2``) — the bound is the backpressure that keeps an
  out-of-core stack from migrating back into memory;
* a **writer** drains finished slabs into the
  :class:`~repro.dataio.writer.ChunkSink` behind the solve, again
  through a bounded queue.

``prefetch=0`` degrades to fully synchronous calls on the caller's
thread — same API, no threads — which is both the legacy behaviour and
the bit-exactness reference.  Exceptions raised in either thread are
re-raised on the caller's thread at the next ``chunks()``/``put()``/
``finish()`` call.

Thread-discipline: the worker threads never touch :mod:`repro.obs`
(its registry is not thread-safe); they accumulate wall seconds and
bytes under a lock and the caller's thread emits the ``dataio.*``
counters as it consumes.
"""

from __future__ import annotations

import queue
import threading
import time

from zipfile import BadZipFile

from ..obs import (
    DATAIO_BYTES_READ,
    DATAIO_BYTES_WRITTEN,
    DATAIO_QUEUE_DEPTH,
    DATAIO_READ_RETRIES,
    DATAIO_READ_SECONDS,
    DATAIO_WRITE_SECONDS,
    add_count,
)
from ..resilience import RetryPolicy

#: Read failures worth retrying: I/O hiccups (network filesystems,
#: contended disks) and the partial/truncated archives a concurrently
#: rewritten shard can briefly expose.  Anything else re-raises at once.
_TRANSIENT_READ_ERRORS = (OSError, BadZipFile, ValueError)

__all__ = ["Conveyor", "ConveyorProgress"]

#: Queue sentinel: the producer is done.
_DONE = object()
#: Queue sentinel: the producer failed; the error attribute holds why.
_FAILED = object()


class Conveyor:
    """Overlapped chunk transport between a source, a solve, and a sink.

    Parameters
    ----------
    source:
        A :class:`~repro.dataio.reader.ChunkSource`.
    ranges:
        The ``(start, stop)`` chunk ranges to read, in order — the
        executor has already dropped completed (resumed) chunks, so
        the reader never touches data the run will skip.
    sink:
        Optional :class:`~repro.dataio.writer.ChunkSink` for finished
        slabs; ``None`` when the caller accumulates in memory.
    prefetch:
        Read-ahead depth.  ``0`` runs reads and writes synchronously on
        the caller's thread; ``N >= 1`` bounds the reader at ``N``
        parked chunks (plus the one being read) and the writer at ``N``
        parked slabs.

    Use as a context manager; ``finish()`` joins the threads, re-raises
    any deferred worker error, and returns the written ranges.
    """

    def __init__(self, source, ranges, sink=None, prefetch: int = 0,
                 read_retry: RetryPolicy | None = None):
        if prefetch < 0:
            raise ValueError(f"prefetch must be >= 0, got {prefetch}")
        self.source = source
        self.sink = sink
        self.ranges = [(int(a), int(b)) for a, b in ranges]
        self.prefetch = int(prefetch)
        self.read_retry = (
            read_retry if read_retry is not None
            else RetryPolicy(max_retries=2, backoff_base=0.05, backoff_cap=1.0)
        )
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._read_seconds = 0.0
        self._write_seconds = 0.0
        self._read_bytes = 0
        self._write_bytes = 0
        self._read_retries = 0
        self._emitted = {"read": 0.0, "write": 0.0, "rbytes": 0, "wbytes": 0,
                         "retries": 0}
        self._read_error: BaseException | None = None
        self._write_error: BaseException | None = None
        self._written: list[tuple[int, int]] = []
        self._pending_writes = 0
        self._threads: list[threading.Thread] = []
        if self.prefetch >= 1:
            self._read_q: queue.Queue = queue.Queue(maxsize=self.prefetch)
            self._reader = threading.Thread(
                target=self._read_loop, name="dataio-reader", daemon=True
            )
            self._threads.append(self._reader)
            self._reader.start()
            if sink is not None:
                self._write_q: queue.Queue = queue.Queue(maxsize=self.prefetch)
                self._writer = threading.Thread(
                    target=self._write_loop, name="dataio-writer", daemon=True
                )
                self._threads.append(self._writer)
                self._writer.start()

    # -- worker loops ----------------------------------------------------

    def _read_chunk(self, start: int, stop: int):
        """``source.read`` under the bounded transient-failure retry.

        Exhausting the budget re-raises the last error — the conveyor's
        normal deferred-error path then surfaces it to the caller.
        Safe on both the reader thread and the synchronous path; retry
        counts accumulate under the lock and are emitted (as
        ``dataio.read_retries``) only from the caller's thread.
        """
        attempt = 0
        while True:
            try:
                return self.source.read(start, stop)
            except _TRANSIENT_READ_ERRORS:
                if self.read_retry.exhausted(attempt):
                    raise
                with self._lock:
                    self._read_retries += 1
                # Interruptible backoff: an abort mid-retry stops the
                # wait and the next loop either succeeds fast or raises.
                self._stop.wait(self.read_retry.delay(attempt))
                attempt += 1

    def _read_loop(self) -> None:
        try:
            for start, stop in self.ranges:
                if self._stop.is_set():
                    break
                t0 = time.perf_counter()
                chunk = self._read_chunk(start, stop)
                elapsed = time.perf_counter() - t0
                with self._lock:
                    self._read_seconds += elapsed
                    self._read_bytes += int(chunk.nbytes)
                self._q_put(self._read_q, (start, stop, chunk))
            self._q_put(self._read_q, _DONE)
        except BaseException as exc:  # noqa: BLE001 - re-raised on caller
            self._read_error = exc
            self._q_put(self._read_q, _FAILED, force=True)

    def _write_loop(self) -> None:
        while True:
            item = self._write_q.get()
            if item is _DONE:
                break
            start, stop, slab = item
            if self._write_error is not None or self._stop.is_set():
                continue  # drain without writing after a failure
            try:
                self._write_one(start, stop, slab)
            except BaseException as exc:  # noqa: BLE001 - re-raised on caller
                self._write_error = exc

    def _write_one(self, start: int, stop: int, slab) -> None:
        t0 = time.perf_counter()
        self.sink.write(start, stop, slab)
        elapsed = time.perf_counter() - t0
        with self._lock:
            self._write_seconds += elapsed
            self._write_bytes += int(slab.nbytes)
            self._written.append((start, stop))
            self._pending_writes -= 1

    def _q_put(self, q: queue.Queue, item, force: bool = False) -> None:
        """Bounded put that stays responsive to an abort."""
        while True:
            try:
                q.put(item, timeout=0.1)
                return
            except queue.Full:
                if force or self._stop.is_set():
                    # Abort path: make room so the sentinel always lands.
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        pass

    # -- caller-side API -------------------------------------------------

    def chunks(self):
        """Yield ``(start, stop, chunk)`` for every planned range."""
        if self.prefetch == 0:
            for start, stop in self.ranges:
                t0 = time.perf_counter()
                chunk = self._read_chunk(start, stop)
                add_count(DATAIO_READ_SECONDS, time.perf_counter() - t0)
                add_count(DATAIO_BYTES_READ, int(chunk.nbytes))
                add_count(DATAIO_QUEUE_DEPTH, 0)
                self._emit_stats()  # publishes any read-retry counts
                yield start, stop, chunk
            return
        while True:
            self._raise_pending()
            item = self._read_q.get()
            if item is _FAILED:
                self._raise_pending()
                return
            if item is _DONE:
                return
            # Depth *after* the take = chunks still parked ahead of the
            # solve; sampling here (caller thread) keeps obs single-threaded.
            add_count(DATAIO_QUEUE_DEPTH, self._read_q.qsize())
            self._emit_stats()
            yield item

    def put(self, start: int, stop: int, slab) -> None:
        """Hand a finished slab to the sink (no-op without a sink)."""
        if self.sink is None:
            return
        self._raise_pending()
        with self._lock:
            self._pending_writes += 1
        if self.prefetch == 0 or not hasattr(self, "_write_q"):
            t0 = time.perf_counter()
            try:
                self.sink.write(start, stop, slab)
            finally:
                elapsed = time.perf_counter() - t0
                add_count(DATAIO_WRITE_SECONDS, elapsed)
            with self._lock:
                self._written.append((start, stop))
                self._pending_writes -= 1
            add_count(DATAIO_BYTES_WRITTEN, int(slab.nbytes))
            return
        self._write_q.put((start, stop, slab))

    def take_written(self) -> list[tuple[int, int]]:
        """Ranges confirmed durable by the sink since the last call.

        Checkpoints must record only these — a slab still parked in the
        write queue is lost on a crash, and marking it done would make
        resume skip a chunk that never reached disk.
        """
        with self._lock:
            done, self._written = self._written, []
        return done

    @property
    def backlog(self) -> tuple[int, int]:
        """(read-queue depth, unwritten slab count) for progress lines."""
        depth = self._read_q.qsize() if hasattr(self, "_read_q") else 0
        with self._lock:
            pending = self._pending_writes
        return depth, pending

    def finish(self) -> None:
        """Drain the writer, join both threads, re-raise deferred errors."""
        if hasattr(self, "_write_q"):
            self._write_q.put(_DONE)
            self._writer.join()
        if hasattr(self, "_read_q"):
            self._reader.join()
        self._emit_stats()
        self._raise_pending()

    def abort(self) -> None:
        """Stop the threads without caring about unfinished work."""
        self._stop.set()
        if hasattr(self, "_read_q"):
            # Unblock a reader waiting on a full queue.
            try:
                while True:
                    self._read_q.get_nowait()
            except queue.Empty:
                pass
        if hasattr(self, "_write_q"):
            self._write_q.put(_DONE)
            self._writer.join()
        if hasattr(self, "_read_q"):
            self._reader.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.finish()
        else:
            self.abort()
        return False

    # -- internals -------------------------------------------------------

    def _emit_stats(self) -> None:
        """Publish thread-accumulated I/O stats as obs counters."""
        with self._lock:
            deltas = (
                self._read_seconds - self._emitted["read"],
                self._write_seconds - self._emitted["write"],
                self._read_bytes - self._emitted["rbytes"],
                self._write_bytes - self._emitted["wbytes"],
                self._read_retries - self._emitted["retries"],
            )
            self._emitted = {
                "read": self._read_seconds,
                "write": self._write_seconds,
                "rbytes": self._read_bytes,
                "wbytes": self._write_bytes,
                "retries": self._read_retries,
            }
        read_s, write_s, read_b, write_b, retries = deltas
        if read_s > 0:
            add_count(DATAIO_READ_SECONDS, read_s)
        if write_s > 0:
            add_count(DATAIO_WRITE_SECONDS, write_s)
        if read_b > 0:
            add_count(DATAIO_BYTES_READ, read_b)
        if write_b > 0:
            add_count(DATAIO_BYTES_WRITTEN, write_b)
        if retries > 0:
            add_count(DATAIO_READ_RETRIES, retries)

    def _raise_pending(self) -> None:
        if self._write_error is not None:
            exc, self._write_error = self._write_error, None
            self._stop.set()
            raise exc
        if self._read_error is not None:
            exc, self._read_error = self._read_error, None
            self._stop.set()
            raise exc


class ConveyorProgress:
    """Queue-depth-driven progress/ETA line for streaming runs.

    Call :meth:`update` after each solved chunk; it rewrites a single
    ``\\r`` line on the stream with slice progress, an ETA extrapolated
    from the mean chunk wall time, and the conveyor backlog (chunks
    read ahead / slabs awaiting write).  :meth:`done` terminates the
    line.  Writes nothing until the first update, so quiet runs stay
    quiet.
    """

    def __init__(self, total_slices: int, stream=None, *, initial_done: int = 0,
                 clock=time.perf_counter):
        import sys

        self.total = int(total_slices)
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()
        self._chunks = 0
        self._dirty = False
        # Slices completed before this run started (a resumed
        # checkpoint): they cost this run no wall time, so they must
        # not inflate the observed rate — a resume that "finished" 90%
        # instantly would otherwise advertise a wildly optimistic ETA.
        self._initial_done = max(0, int(initial_done))

    def update(self, done_slices: int, backlog: tuple[int, int]) -> None:
        self._chunks += 1
        elapsed = self._clock() - self._t0
        done_this_run = max(0, done_slices - self._initial_done)
        # Guard the first chunk landing within clock resolution of t0:
        # a ~0 denominator yields a nonsense rate (and a negative one
        # is impossible, but clamp anyway rather than print it).
        rate = done_this_run / elapsed if elapsed > 1e-6 else 0.0
        remaining = max(0, self.total - done_slices)
        eta = max(0.0, remaining / rate) if rate > 0 else float("inf")
        eta_text = f"{eta:5.1f}s" if eta != float("inf") else "   ?  "
        depth, pending = backlog
        self.stream.write(
            f"\r[pipeline] {done_slices}/{self.total} slices "
            f"({self._chunks} chunks, {rate:.1f} slices/s, eta {eta_text}) "
            f"queue: {depth} read-ahead, {pending} unwritten "
        )
        self.stream.flush()
        self._dirty = True

    def done(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
