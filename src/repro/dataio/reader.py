"""Chunk sources: where raw ``(slices, angles, channels)`` stacks come from.

``reconstruct_stack`` historically required the whole raw stack as one
in-memory array, which caps stack depth at RAM.  A :class:`ChunkSource`
inverts that: the executor asks for ``[start, stop)`` slice ranges and
the source materializes only those, so arbitrarily tall stacks stream
through a bounded working set.  Three implementations:

* :class:`ArraySource` — wraps an in-memory array (the legacy path;
  zero-copy views per chunk).
* :class:`NpzShardSource` — a directory of ``shard-*.npz`` files, each
  holding a contiguous run of slices (the layout
  :func:`save_stack` writes).  Only the shards overlapping a request
  are loaded.
* :class:`Hdf5Source` — an HDF5 file in the tomobank exchange layout
  (``/exchange/data`` shaped ``(angles, slices, channels)`` with
  optional ``data_dark``/``data_white`` calibration) or a plain
  ``(slices, angles, channels)`` dataset.  Needs the optional ``h5py``
  dependency; constructing one without it raises a clear error instead
  of an ImportError deep inside a run.

Every source carries an optional ``darks``/``flats`` pair (calibration
is small — frames, not slices-times-angles — so it stays in memory) and
a :meth:`ChunkSource.fingerprint` that the executor folds into the
checkpoint hash so resuming against a different dataset is refused.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

import numpy as np

from ..persist import atomic_savez, raw_buffer

try:  # pragma: no cover - exercised via the monkeypatched tests
    import h5py  # type: ignore
except ImportError:  # pragma: no cover
    h5py = None

__all__ = [
    "MissingDependencyError",
    "ChunkSource",
    "ArraySource",
    "NpzShardSource",
    "Hdf5Source",
    "open_source",
    "save_stack",
    "SHARD_PATTERN",
]

#: Shard file naming scheme: ``shard-<start>-<stop>.npz`` (slice range).
SHARD_PATTERN = re.compile(r"^shard-(\d+)-(\d+)\.npz$")

#: Tomobank exchange-group dataset names.
_TOMOBANK_DATA = "exchange/data"
_TOMOBANK_DARK = "exchange/data_dark"
_TOMOBANK_FLAT = "exchange/data_white"


class MissingDependencyError(RuntimeError):
    """An optional dependency required by a data format is not installed."""


def _require_h5py():
    if h5py is None:
        raise MissingDependencyError(
            "reading/writing HDF5 stacks requires the optional 'h5py' "
            "dependency (pip install h5py); use an .npz stack or a "
            "shard directory instead"
        )
    return h5py


def _hash_array(h, arr: np.ndarray) -> None:
    arr = np.asarray(arr)
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(raw_buffer(arr))


class ChunkSource:
    """Pull-based supplier of ``(slices, angles, channels)`` chunks.

    Subclasses set ``shape`` (the full logical stack shape) and
    implement :meth:`read`.  ``darks``/``flats`` are optional
    calibration arrays in any layout :class:`~repro.pipeline.stages.
    DarkFlatNormalize` accepts.  Sources are context managers; closing
    is idempotent.
    """

    shape: tuple[int, int, int]
    darks: np.ndarray | None = None
    flats: np.ndarray | None = None

    @property
    def num_slices(self) -> int:
        return self.shape[0]

    @property
    def nbytes_per_slice(self) -> int:
        """Bytes one float64 slice occupies once materialized."""
        return 8 * self.shape[1] * self.shape[2]

    def read(self, start: int, stop: int) -> np.ndarray:
        """Materialize slices ``[start, stop)`` as a float64 array."""
        raise NotImplementedError

    def fingerprint(self) -> bytes:
        """Digest identifying this dataset's content for checkpoints.

        In-memory sources hash the full content; on-disk sources hash
        the cheap stable identity of the files (names, shapes, dtypes,
        sizes) so the fingerprint never forces a full read of an
        out-of-core stack.
        """
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start < stop <= self.num_slices):
            raise ValueError(
                f"chunk range [{start}, {stop}) outside stack of "
                f"{self.num_slices} slices"
            )


class ArraySource(ChunkSource):
    """The legacy in-memory path: chunks are views into one array."""

    def __init__(self, stack, darks=None, flats=None):
        stack = np.asarray(stack)
        if stack.ndim != 3:
            raise ValueError(
                f"raw stack must be (slices, angles, channels), got shape "
                f"{stack.shape}"
            )
        self._stack = stack
        self.shape = tuple(stack.shape)
        self.darks = None if darks is None else np.asarray(darks)
        self.flats = None if flats is None else np.asarray(flats)

    def read(self, start: int, stop: int) -> np.ndarray:
        self._check_range(start, stop)
        return self._stack[start:stop]

    def fingerprint(self) -> bytes:
        h = hashlib.sha256()
        _hash_array(h, self._stack)
        return h.digest()


class NpzShardSource(ChunkSource):
    """A directory of ``shard-<start>-<stop>.npz`` files.

    Each shard holds a contiguous run of slices under the ``stack``
    key; together the shards must tile ``[0, num_slices)`` exactly.
    Optional ``darks.npz`` / ``flats.npz`` siblings carry calibration.
    The layout is what :func:`save_stack` writes.
    """

    def __init__(self, directory):
        self.root = Path(directory)
        if not self.root.is_dir():
            raise FileNotFoundError(f"no shard directory at {self.root}")
        self._shards: list[tuple[int, int, Path]] = []
        for path in sorted(self.root.iterdir()):
            m = SHARD_PATTERN.match(path.name)
            if m:
                self._shards.append((int(m.group(1)), int(m.group(2)), path))
        if not self._shards:
            raise FileNotFoundError(f"no shard-*.npz files in {self.root}")
        self._shards.sort()
        expected = 0
        for start, stop, path in self._shards:
            if start != expected or stop <= start:
                raise ValueError(
                    f"shard {path.name} breaks the contiguous tiling at "
                    f"slice {expected}"
                )
            expected = stop
        with np.load(self._shards[0][2]) as data:
            first = data["stack"]
            self.shape = (expected, first.shape[1], first.shape[2])
        self.darks = self._load_optional("darks")
        self.flats = self._load_optional("flats")

    def _load_optional(self, name: str) -> np.ndarray | None:
        path = self.root / f"{name}.npz"
        if not path.exists():
            return None
        with np.load(path) as data:
            return np.asarray(data[name], dtype=np.float64)

    def read(self, start: int, stop: int) -> np.ndarray:
        self._check_range(start, stop)
        out = np.empty((stop - start, self.shape[1], self.shape[2]), dtype=np.float64)
        for s0, s1, path in self._shards:
            lo, hi = max(start, s0), min(stop, s1)
            if lo >= hi:
                continue
            with np.load(path) as data:
                shard = data["stack"]
                if shard.shape[1:] != self.shape[1:]:
                    raise ValueError(
                        f"shard {path.name} has slice shape {shard.shape[1:]}, "
                        f"expected {self.shape[1:]}"
                    )
                out[lo - start : hi - start] = shard[lo - s0 : hi - s0]
        return out

    def fingerprint(self) -> bytes:
        h = hashlib.sha256()
        h.update(str(self.shape).encode())
        for s0, s1, path in self._shards:
            h.update(f"{path.name}:{s0}:{s1}:{path.stat().st_size}".encode())
        for cal in (self.darks, self.flats):
            if cal is not None:
                _hash_array(h, cal)
        return h.digest()


class Hdf5Source(ChunkSource):
    """An HDF5 stack, tomobank exchange layout or plain slice-major.

    ``layout="tomobank"`` (default for files containing
    ``/exchange/data``) reads the dataset as ``(angles, slices,
    channels)`` — projection-major, the order beamlines write — and
    transposes each chunk to slice-major; ``exchange/data_dark`` and
    ``exchange/data_white`` become ``darks``/``flats`` in the
    ``(frames, slices, channels)`` layout the dark/flat stage accepts.
    ``layout="stack"`` reads ``dataset`` directly as ``(slices, angles,
    channels)``.
    """

    def __init__(self, path, dataset: str | None = None, layout: str | None = None):
        _require_h5py()
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(f"no HDF5 stack at {self.path}")
        self._file = h5py.File(self.path, "r")
        try:
            if dataset is None:
                dataset = _TOMOBANK_DATA if _TOMOBANK_DATA in self._file else "stack"
            if dataset not in self._file:
                raise KeyError(
                    f"{self.path} has no dataset {dataset!r}; expected a "
                    f"tomobank-layout file ({_TOMOBANK_DATA}) or a 'stack' array"
                )
            self._data = self._file[dataset]
            if self._data.ndim != 3:
                raise ValueError(
                    f"dataset {dataset!r} must be 3-D, got shape {self._data.shape}"
                )
            if layout is None:
                layout = "tomobank" if dataset == _TOMOBANK_DATA else "stack"
            if layout not in ("tomobank", "stack"):
                raise ValueError(
                    f"unknown HDF5 layout {layout!r}; expected 'tomobank' or 'stack'"
                )
            self.layout = layout
            self.dataset = dataset
            if layout == "tomobank":
                angles, slices, channels = self._data.shape
            else:
                slices, angles, channels = self._data.shape
            self.shape = (slices, angles, channels)
            self.darks = self._calibration(_TOMOBANK_DARK)
            self.flats = self._calibration(_TOMOBANK_FLAT)
        except Exception:
            self._file.close()
            raise

    def _calibration(self, key: str) -> np.ndarray | None:
        if key not in self._file:
            return None
        # (frames, slices, channels) in the file; keep frames first.
        return np.asarray(self._file[key], dtype=np.float64)

    def read(self, start: int, stop: int) -> np.ndarray:
        self._check_range(start, stop)
        if self.layout == "tomobank":
            chunk = np.asarray(self._data[:, start:stop, :], dtype=np.float64)
            return np.ascontiguousarray(chunk.transpose(1, 0, 2))
        return np.asarray(self._data[start:stop], dtype=np.float64)

    def fingerprint(self) -> bytes:
        h = hashlib.sha256()
        h.update(f"{self.dataset}:{self.layout}:{self.shape}".encode())
        h.update(str(self._data.dtype).encode())
        h.update(str(self.path.stat().st_size).encode())
        for cal in (self.darks, self.flats):
            if cal is not None:
                _hash_array(h, cal)
        return h.digest()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def open_source(obj, darks=None, flats=None) -> ChunkSource:
    """Resolve anything ``reconstruct_stack`` accepts into a source.

    Arrays wrap in an :class:`ArraySource`; directories open as
    :class:`NpzShardSource`; ``.h5``/``.hdf5`` paths as
    :class:`Hdf5Source`; a ``.npz`` path loads its ``stack`` (plus
    optional ``darks``/``flats``) eagerly — the legacy CLI format.
    Explicit ``darks``/``flats`` override whatever the source carries.
    """
    if isinstance(obj, ChunkSource):
        source = obj
    elif isinstance(obj, (str, Path)):
        path = Path(obj)
        if path.is_dir():
            source = NpzShardSource(path)
        elif path.suffix in (".h5", ".hdf5"):
            source = Hdf5Source(path)
        elif path.suffix == ".npz":
            with np.load(path) as data:
                source = ArraySource(
                    data["stack"],
                    darks=data["darks"] if "darks" in data else None,
                    flats=data["flats"] if "flats" in data else None,
                )
        else:
            raise ValueError(
                f"cannot infer a stack format from {path}: expected a shard "
                "directory, an .npz file, or an .h5/.hdf5 file"
            )
    else:
        source = ArraySource(obj)
    if darks is not None:
        source.darks = np.asarray(darks)
    if flats is not None:
        source.flats = np.asarray(flats)
    return source


def save_stack(
    destination,
    stack,
    darks=None,
    flats=None,
    *,
    shard_slices: int | None = None,
    compress: bool = False,
) -> Path:
    """Write a stack in a format :func:`open_source` can ingest.

    ``.npz`` destinations get the legacy single archive; ``.h5`` /
    ``.hdf5`` the tomobank exchange layout (needs ``h5py``); anything
    else is treated as a shard directory, split into
    ``shard-<start>-<stop>.npz`` runs of ``shard_slices`` slices
    (default: 4).  All formats go through the crash-safe atomic
    writers in :mod:`repro.persist`.
    """
    destination = Path(destination)
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError(
            f"stack must be (slices, angles, channels), got shape {stack.shape}"
        )
    if destination.suffix == ".npz":
        payload = {"stack": stack}
        if darks is not None:
            payload["darks"] = np.asarray(darks, dtype=np.float64)
        if flats is not None:
            payload["flats"] = np.asarray(flats, dtype=np.float64)
        destination.parent.mkdir(parents=True, exist_ok=True)
        atomic_savez(destination, payload, compress=compress)
        return destination
    if destination.suffix in (".h5", ".hdf5"):
        _require_h5py()
        destination.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename for the same crash-safety as atomic_savez.
        tmp = destination.with_name(destination.name + ".tmp")
        with h5py.File(tmp, "w") as fh:
            fh.create_dataset(
                _TOMOBANK_DATA, data=np.ascontiguousarray(stack.transpose(1, 0, 2))
            )
            if darks is not None:
                fh.create_dataset(_TOMOBANK_DARK, data=np.asarray(darks, np.float64))
            if flats is not None:
                fh.create_dataset(_TOMOBANK_FLAT, data=np.asarray(flats, np.float64))
        tmp.replace(destination)
        return destination

    shard_slices = 4 if shard_slices is None else int(shard_slices)
    if shard_slices < 1:
        raise ValueError(f"shard_slices must be >= 1, got {shard_slices}")
    destination.mkdir(parents=True, exist_ok=True)
    num_slices = stack.shape[0]
    for start in range(0, num_slices, shard_slices):
        stop = min(start + shard_slices, num_slices)
        atomic_savez(
            destination / f"shard-{start:06d}-{stop:06d}.npz",
            {"stack": stack[start:stop]},
            compress=compress,
        )
    if darks is not None:
        atomic_savez(
            destination / "darks.npz",
            {"darks": np.asarray(darks, dtype=np.float64)},
            compress=compress,
        )
    if flats is not None:
        atomic_savez(
            destination / "flats.npz",
            {"flats": np.asarray(flats, dtype=np.float64)},
            compress=compress,
        )
    meta = {
        "format": "repro-stack-shards",
        "shape": list(stack.shape),
        "shard_slices": shard_slices,
    }
    (destination / "stack.json").write_text(json.dumps(meta, indent=2) + "\n")
    return destination
