"""repro.dataio — out-of-core stack I/O for the streaming pipeline.

Decouples ``reconstruct_stack`` from "the whole raw stack is one
in-memory array":

* **Sources** (:mod:`repro.dataio.reader`) — :class:`ChunkSource`
  pulls ``(slices, angles, channels)`` chunks from an in-memory array,
  an ``.npz``-shard directory, or an HDF5/tomobank file (``h5py``
  optional), so stack depth is bounded by disk, not RAM.
* **Sinks** (:mod:`repro.dataio.writer`) — :class:`ChunkSink` streams
  reconstructed slabs out as atomic npz shards, one flat ``.raw``
  file, or a multi-page ``.tif`` volume (``tifffile`` optional),
  finalized crash-safely through :mod:`repro.persist` semantics.
* **Conveyor** (:mod:`repro.dataio.conveyor`) — a prefetching reader
  thread and a write-behind thread on bounded queues, hiding both disk
  ends under the solve; ``prefetch=0`` is the synchronous reference.

All of it is observable through the ``dataio.read_seconds`` /
``dataio.write_seconds`` / ``dataio.queue_depth`` counters.  See
``docs/pipeline.md`` (conveyor section) for the guide.
"""

from .conveyor import Conveyor, ConveyorProgress
from .reader import (
    SHARD_PATTERN,
    ArraySource,
    ChunkSource,
    Hdf5Source,
    MissingDependencyError,
    NpzShardSource,
    open_source,
    save_stack,
)
from .writer import (
    SLAB_PATTERN,
    ChunkSink,
    NpzShardSink,
    RawVolumeSink,
    TiffStackSink,
    VolumeSink,
    load_volume,
    make_sink,
)

__all__ = [
    "Conveyor",
    "ConveyorProgress",
    "ChunkSource",
    "ArraySource",
    "NpzShardSource",
    "Hdf5Source",
    "MissingDependencyError",
    "open_source",
    "save_stack",
    "SHARD_PATTERN",
    "ChunkSink",
    "VolumeSink",
    "NpzShardSink",
    "RawVolumeSink",
    "TiffStackSink",
    "make_sink",
    "load_volume",
    "SLAB_PATTERN",
]
