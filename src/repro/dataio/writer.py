"""Chunk sinks: where reconstructed slabs go.

The counterpart of :mod:`repro.dataio.reader`: the executor hands a
sink ``(start, stop, slab)`` triples as chunks finish solving, and the
sink persists them so the full ``(slices, n, n)`` volume never has to
sit in memory.  Two on-disk formats plus the in-memory fallback:

* :class:`VolumeSink` — accumulate into one array (the legacy
  ``StackResult.volume`` path).
* :class:`NpzShardSink` — one ``slab-<start>-<stop>.npz`` per chunk,
  written atomically, finalized by an atomically-renamed
  ``volume.json`` manifest.  A crash mid-run leaves only complete
  shards, which is exactly what checkpoint resume needs.
* :class:`RawVolumeSink` — slabs written at their byte offsets into a
  single ``<name>.partial`` file, finalized by fsync + rename to the
  final name plus a JSON sidecar with shape/dtype.  Supports
  out-of-order and resumed writes.
* :class:`TiffStackSink` — same crash-safe staged-write discipline,
  finalized into a multi-page ``.tif`` volume (needs the optional
  ``tifffile`` dependency; constructing one without it raises the
  same clear :class:`~repro.dataio.reader.MissingDependencyError`
  the HDF5 source uses, at construction, not mid-run).

:func:`make_sink` maps a destination path to a sink; :func:`load_volume`
reads any finalized output (npz / shard dir / raw / tiff) back into an
array for verification.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import numpy as np

from ..persist import atomic_savez
from .reader import MissingDependencyError

try:  # pragma: no cover - exercised via the monkeypatched tests
    import tifffile  # type: ignore
except ImportError:  # pragma: no cover
    tifffile = None

__all__ = [
    "ChunkSink",
    "VolumeSink",
    "NpzShardSink",
    "RawVolumeSink",
    "TiffStackSink",
    "make_sink",
    "load_volume",
    "SLAB_PATTERN",
]


def _require_tifffile():
    if tifffile is None:
        raise MissingDependencyError(
            "writing/reading .tif volumes requires the optional 'tifffile' "
            "dependency (pip install tifffile); use a .raw file or a "
            "shard directory instead"
        )
    return tifffile

#: Output shard naming scheme: ``slab-<start>-<stop>.npz`` (slice range).
SLAB_PATTERN = re.compile(r"^slab-(\d+)-(\d+)\.npz$")

_MANIFEST = "volume.json"


class ChunkSink:
    """Receiver of reconstructed ``(stop - start, n, n)`` slabs.

    ``write`` may be called out of slice order (the conveyor's writer
    thread preserves order, but resumed runs revisit only the missing
    ranges).  ``finalize`` publishes the completed volume and returns
    where it landed (a path, or ``None`` for in-memory sinks).
    """

    def __init__(self, num_slices: int, n: int):
        if num_slices < 1 or n < 1:
            raise ValueError(
                f"sink needs positive dimensions, got ({num_slices}, {n})"
            )
        self.num_slices = int(num_slices)
        self.n = int(n)

    def _check(self, start: int, stop: int, slab: np.ndarray) -> np.ndarray:
        slab = np.asarray(slab, dtype=np.float64)
        if not (0 <= start < stop <= self.num_slices):
            raise ValueError(
                f"slab range [{start}, {stop}) outside volume of "
                f"{self.num_slices} slices"
            )
        if slab.shape != (stop - start, self.n, self.n):
            raise ValueError(
                f"slab for [{start}, {stop}) must be "
                f"({stop - start}, {self.n}, {self.n}), got {slab.shape}"
            )
        return slab

    def write(self, start: int, stop: int, slab: np.ndarray) -> None:
        raise NotImplementedError

    def finalize(self) -> Path | None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class VolumeSink(ChunkSink):
    """Accumulate slabs into one in-memory float64 volume."""

    def __init__(self, num_slices: int, n: int):
        super().__init__(num_slices, n)
        self.volume = np.zeros((num_slices, n, n), dtype=np.float64)

    def write(self, start: int, stop: int, slab: np.ndarray) -> None:
        self.volume[start:stop] = self._check(start, stop, slab)

    def finalize(self) -> None:
        return None


class NpzShardSink(ChunkSink):
    """One atomic ``slab-*.npz`` per chunk plus a finalize manifest.

    ``resume=True`` (the default) keeps shards already present —
    they are the completed chunks a checkpointed run will skip;
    ``resume=False`` clears stale shards first so a fresh run never
    mixes outputs from two configurations.
    """

    def __init__(self, directory, num_slices: int, n: int, *, resume: bool = True,
                 compress: bool = False):
        super().__init__(num_slices, n)
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = bool(compress)
        if not resume:
            for path in self.root.iterdir():
                if SLAB_PATTERN.match(path.name) or path.name == _MANIFEST:
                    path.unlink()
        # Finalizing again after a resume must see the earlier shards.
        (self.root / _MANIFEST).unlink(missing_ok=True)

    def write(self, start: int, stop: int, slab: np.ndarray) -> None:
        slab = self._check(start, stop, slab)
        atomic_savez(
            self.root / f"slab-{start:06d}-{stop:06d}.npz",
            {"volume": slab},
            compress=self.compress,
        )

    def _shards(self) -> list[tuple[int, int, Path]]:
        shards = []
        for path in self.root.iterdir():
            m = SLAB_PATTERN.match(path.name)
            if m:
                shards.append((int(m.group(1)), int(m.group(2)), path))
        shards.sort()
        return shards

    def finalize(self) -> Path:
        shards = self._shards()
        covered = np.zeros(self.num_slices, dtype=bool)
        for s0, s1, _ in shards:
            covered[s0:s1] = True
        if not covered.all():
            missing = int((~covered).sum())
            raise ValueError(
                f"cannot finalize {self.root}: {missing} slices have no slab"
            )
        manifest = {
            "format": "repro-volume-shards",
            "shape": [self.num_slices, self.n, self.n],
            "dtype": "float64",
            "shards": [p.name for _, _, p in shards],
        }
        # Manifest last, atomically: its presence marks a complete volume.
        tmp = self.root / f"{_MANIFEST}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        tmp.replace(self.root / _MANIFEST)
        return self.root


class RawVolumeSink(ChunkSink):
    """Slabs written at byte offsets into one flat float64 file.

    Writes land in ``<name>.partial`` (stable across resumed runs);
    ``finalize`` fsyncs and renames to the final path and drops a JSON
    sidecar with the shape, so a crash never leaves a truncated file
    under the published name.
    """

    def __init__(self, path, num_slices: int, n: int, *, resume: bool = True):
        super().__init__(num_slices, n)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._partial = self.path.with_name(self.path.name + ".partial")
        self._nbytes = 8 * num_slices * n * n
        mode = "r+b" if resume and self._partial.exists() else "w+b"
        self._fh = open(self._partial, mode)
        self._fh.truncate(self._nbytes)

    def write(self, start: int, stop: int, slab: np.ndarray) -> None:
        slab = self._check(start, stop, slab)
        self._fh.seek(8 * start * self.n * self.n)
        self._fh.write(np.ascontiguousarray(slab).tobytes())

    def finalize(self) -> Path:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        self._partial.replace(self.path)
        meta = {
            "format": "repro-volume-raw",
            "shape": [self.num_slices, self.n, self.n],
            "dtype": "float64",
            "order": "C",
        }
        sidecar = self.path.with_suffix(self.path.suffix + ".json")
        tmp = sidecar.with_name(f"{sidecar.name}.tmp-{os.getpid()}")
        tmp.write_text(json.dumps(meta, indent=2) + "\n")
        tmp.replace(sidecar)
        return self.path

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TiffStackSink(RawVolumeSink):
    """Stage slabs in a flat ``.partial`` file; finalize as multi-page TIFF.

    The staged file has :class:`RawVolumeSink` semantics (offset
    writes, resume-friendly, fsync before publication), so chunk
    writes stay O(slab) regardless of TIFF page structure;
    ``finalize`` reads the completed volume back once, writes the TIFF
    next to the destination, and atomically renames it into place.
    The ``.partial`` stage is only removed after the rename, so a
    crash inside ``finalize`` still resumes cleanly.
    """

    def __init__(self, path, num_slices: int, n: int, *, resume: bool = True,
                 compress: bool = False):
        _require_tifffile()
        super().__init__(path, num_slices, n, resume=resume)
        self.compress = bool(compress)

    def finalize(self) -> Path:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        volume = np.fromfile(self._partial, dtype=np.float64).reshape(
            (self.num_slices, self.n, self.n)
        )
        tmp = self.path.with_name(f"{self.path.name}.tmp-{os.getpid()}")
        tifffile.imwrite(
            tmp,
            volume,
            photometric="minisblack",
            compression="zlib" if self.compress else None,
            bigtiff=volume.nbytes > 2**31,
        )
        tmp.replace(self.path)
        self._partial.unlink(missing_ok=True)
        return self.path


def make_sink(destination, num_slices: int, n: int, *, resume: bool = True,
              compress: bool = False) -> ChunkSink:
    """Map an output destination to a sink.

    ``.raw`` → :class:`RawVolumeSink`; ``.tif``/``.tiff`` →
    :class:`TiffStackSink` (optional ``tifffile``); anything without
    an ``.npz`` suffix → :class:`NpzShardSink` directory.  (``.npz``
    outputs stay on the in-memory path — one archive cannot be written
    incrementally — so callers handle them with ``sink=None``.)
    ``compress=True`` writes deflated shard archives (or a
    zlib-compressed TIFF) — a trade of write CPU for disk/network
    bytes the flat ``.raw`` format cannot make, so asking for it on a
    ``.raw`` destination raises.
    """
    destination = Path(destination)
    if destination.suffix in (".tif", ".tiff"):
        return TiffStackSink(destination, num_slices, n, resume=resume,
                             compress=compress)
    if destination.suffix == ".raw":
        if compress:
            raise ValueError(
                "a .raw volume is flat offset-addressed bytes and cannot "
                "be compressed; use a shard-directory destination"
            )
        return RawVolumeSink(destination, num_slices, n, resume=resume)
    if destination.suffix == ".npz":
        raise ValueError(
            "an .npz volume cannot be streamed chunk-by-chunk; pass "
            "sink=None (in-memory) for .npz outputs, or use a directory "
            "or .raw destination"
        )
    return NpzShardSink(destination, num_slices, n, resume=resume,
                        compress=compress)


def load_volume(source) -> np.ndarray:
    """Read any finalized volume output back into a float64 array.

    Accepts the ``.npz`` the CLI writes on the in-memory path, a
    finalized shard directory, a finalized ``.raw`` file with its JSON
    sidecar, or a multi-page ``.tif`` volume (optional ``tifffile``).
    """
    path = Path(source)
    if path.is_dir():
        manifest_path = path / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{path} has no {_MANIFEST}; the volume was never finalized"
            )
        manifest = json.loads(manifest_path.read_text())
        volume = np.zeros(tuple(manifest["shape"]), dtype=np.float64)
        for name in manifest["shards"]:
            m = SLAB_PATTERN.match(name)
            if m is None:
                raise ValueError(f"manifest lists non-slab entry {name!r}")
            with np.load(path / name) as data:
                volume[int(m.group(1)) : int(m.group(2))] = data["volume"]
        return volume
    if path.suffix == ".npz":
        with np.load(path) as data:
            return np.asarray(data["volume"], dtype=np.float64)
    if path.suffix == ".raw":
        sidecar = path.with_suffix(path.suffix + ".json")
        meta = json.loads(sidecar.read_text())
        volume = np.fromfile(path, dtype=np.float64)
        return volume.reshape(tuple(meta["shape"]))
    if path.suffix in (".tif", ".tiff"):
        volume = np.asarray(_require_tifffile().imread(path), dtype=np.float64)
        if volume.ndim == 2:  # a single-slice volume folds to one page
            volume = volume[np.newaxis]
        return volume
    raise ValueError(f"cannot infer a volume format from {path}")
