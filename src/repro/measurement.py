"""Measurement-side data preparation.

Paper Section 2.1 describes the acquisition chain: raw detector counts
under Beer's law, flat fields (beam without sample) and dark fields
(detector offset), from which the sinogram of line integrals is
extracted.  These utilities implement that chain plus the
center-of-rotation estimate a real pipeline needs before the geometry
of :mod:`repro.geometry` applies:

* :func:`simulate_counts` — forward model a phantom into raw counts
  (with flats/darks), the inverse of the normalization;
* :func:`normalize_counts` — flats/darks -> attenuation sinogram;
* :func:`estimate_center_of_rotation` — sub-pixel COR from the
  0/180-degree projection pair (parallel beam makes them mirror
  images), by parabolic refinement of the cross-correlation peak.
"""

from __future__ import annotations

import numpy as np

__all__ = ["simulate_counts", "normalize_counts", "estimate_center_of_rotation"]


def simulate_counts(
    clean_sinogram: np.ndarray,
    incident_photons: float = 1e4,
    dark_level: float = 10.0,
    seed: int = 0,
    attenuation_scale: float | None = None,
) -> dict[str, np.ndarray]:
    """Simulate raw detector data for a clean line-integral sinogram.

    Returns a dict with ``counts`` (sample in beam), ``flat`` (no
    sample) and ``dark`` (no beam) frames, all Poisson, plus the
    ``attenuation_scale`` used — everything
    :func:`normalize_counts` needs to undo the chain.
    """
    if incident_photons <= 0:
        raise ValueError(f"incident photon count must be positive, got {incident_photons}")
    clean = np.asarray(clean_sinogram, dtype=np.float64)
    max_val = float(clean.max()) if clean.size else 0.0
    if attenuation_scale is None:
        attenuation_scale = 2.0 / max_val if max_val > 0 else 1.0
    rng = np.random.default_rng(seed)
    expected = incident_photons * np.exp(-clean * attenuation_scale) + dark_level
    counts = rng.poisson(expected).astype(np.float64)
    flat = rng.poisson(
        np.full(clean.shape[-1:], incident_photons + dark_level), size=clean.shape
    ).astype(np.float64)
    dark = rng.poisson(np.full(clean.shape, dark_level)).astype(np.float64)
    return {
        "counts": counts,
        "flat": flat,
        "dark": dark,
        "attenuation_scale": np.float64(attenuation_scale),
    }


def normalize_counts(
    counts: np.ndarray,
    flat: np.ndarray,
    dark: np.ndarray,
    attenuation_scale: float = 1.0,
    dtype=None,
) -> np.ndarray:
    """Flat/dark-field normalization: counts -> line integrals.

    ``sinogram = -log((counts - dark) / (flat - dark)) / scale`` with
    transmissions clipped into ``(0, 1]`` so dead pixels and noise
    overshoots stay finite.

    The arithmetic runs in float64 for stability, but the result comes
    back in ``dtype`` when given, else in the promoted dtype of the
    inputs — float32 frames stay float32 instead of silently doubling
    the sinogram's memory on the way to an fp32 reconstruction.
    (Integer count frames still promote to float64.)
    """
    counts_in = np.asarray(counts)
    flat_in = np.asarray(flat)
    dark_in = np.asarray(dark)
    if dtype is not None:
        out_dtype = np.dtype(dtype)
    else:
        out_dtype = np.result_type(counts_in, flat_in, dark_in, np.float32)
    counts = counts_in.astype(np.float64, copy=False)
    flat = flat_in.astype(np.float64, copy=False)
    dark = dark_in.astype(np.float64, copy=False)
    if counts.shape != flat.shape or counts.shape != dark.shape:
        raise ValueError("counts, flat, dark must share a shape")
    if attenuation_scale <= 0:
        raise ValueError(f"attenuation scale must be positive, got {attenuation_scale}")
    beam = np.maximum(flat - dark, 1.0)
    transmission = np.clip((counts - dark) / beam, 1.0 / beam.max() / 10.0, 1.0)
    return (-np.log(transmission) / attenuation_scale).astype(out_dtype, copy=False)


def estimate_center_of_rotation(sinogram: np.ndarray) -> float:
    """Estimate the center of rotation in channels, sub-pixel.

    For a parallel-beam scan over ``[0, pi)``, the first projection and
    the (virtual) 180-degree projection are mirror images about the
    rotation axis.  We cross-correlate projection 0 with the flipped
    last projection (nearly 180 degrees away), refine the peak with a
    parabolic fit, and return the axis position; a centred scan returns
    ``(N - 1) / 2``.
    """
    sino = np.asarray(sinogram, dtype=np.float64)
    if sino.ndim != 2 or sino.shape[0] < 2:
        raise ValueError("need a 2D sinogram with at least two projections")
    if sino.shape[1] < 3:
        raise ValueError(
            f"need at least 3 detector channels to localize the axis, "
            f"got {sino.shape[1]}"
        )
    if not np.isfinite(sino[0]).all() or not np.isfinite(sino[-1]).all():
        raise ValueError(
            "sinogram contains non-finite values in the reference "
            "projections; clean the data before estimating the center"
        )
    p0 = sino[0] - sino[0].mean()
    p180 = sino[-1][::-1] - sino[-1].mean()
    # A flat (zero-variance) projection correlates identically at every
    # lag — argmax would return the arbitrary first maximum and the
    # "estimate" would be garbage.  Fail loudly instead.
    if float(p0 @ p0) == 0.0 or float(p180 @ p180) == 0.0:
        raise ValueError(
            "reference projections have zero variance (blank detector "
            "rows); the correlation peak is undefined"
        )
    n = sino.shape[1]
    correlation = np.correlate(p0, p180, mode="full")  # lags -(n-1)..(n-1)
    peak = int(np.argmax(correlation))
    # Parabolic sub-sample refinement around the peak.
    if 0 < peak < correlation.shape[0] - 1:
        y0, y1, y2 = correlation[peak - 1 : peak + 2]
        denom = y0 - 2.0 * y1 + y2
        offset = 0.5 * (y0 - y2) / denom if denom != 0 else 0.0
        offset = float(np.clip(offset, -0.5, 0.5))
    else:
        offset = 0.0
    lag = peak + offset - (n - 1)
    # A shift of the axis by d moves the correlation lag by 2d.
    return (n - 1) / 2.0 + lag / 2.0
