"""Content-addressed fingerprints of operator plans.

A plan is fully determined by the scan geometry, the domain-ordering
scheme (and its two-level granularity parameters), the kernel
configuration, and the on-disk format version.  Hashing a canonical
JSON rendering of exactly those inputs gives a stable key: the same
preprocessing request always maps to the same cache entry, across
processes and machines, and *any* change to an input (including a
format bump) maps to a fresh key instead of a stale hit.

Floats are rendered with ``float.hex`` so the fingerprint is exact —
two geometries differing in the last ulp of ``angle_range`` are
different plans.
"""

from __future__ import annotations

import hashlib
import json

from ..core import OperatorConfig
from ..geometry import ParallelBeamGeometry
from ..io import FORMAT_VERSION

__all__ = ["plan_fingerprint", "fingerprint_inputs"]


def fingerprint_inputs(
    geometry: ParallelBeamGeometry,
    config: OperatorConfig | None = None,
    ordering: str = "pseudo-hilbert",
    min_tiles: int = 16,
    tile_size: int | None = None,
) -> dict:
    """The canonical (JSON-ready) document a fingerprint hashes.

    The config section carries the compute ``dtype`` only when one is
    explicitly set: fp32 and fp64 plans therefore hash to different
    keys and never collide, while the default mixed-precision
    fingerprints (and every cache written before the dtype path
    existed) remain unchanged.  The ``tune``/``workers`` execution
    knobs are deliberately excluded — tuning is resolved *before*
    fingerprinting and workers never change the numbers.
    """
    config = config or OperatorConfig()
    # Non-parallel geometries (cone-beam) self-describe their document;
    # the historical parallel-beam section below stays byte-identical so
    # every pre-existing cache key remains valid.
    fields = getattr(geometry, "fingerprint_fields", None)
    if callable(fields):
        geometry_doc = fields()
    else:
        geometry_doc = {
            "num_angles": int(geometry.num_angles),
            "num_channels": int(geometry.num_channels),
            "angle_range": float(geometry.angle_range).hex(),
            "grid_n": int(geometry.grid.n),
            "pixel_size": float(geometry.grid.pixel_size).hex(),
        }
    doc = {
        "format_version": FORMAT_VERSION,
        "geometry": geometry_doc,
        "ordering": {
            "name": str(ordering),
            "min_tiles": int(min_tiles),
            "tile_size": None if tile_size is None else int(tile_size),
        },
        "config": {
            "kernel": config.kernel,
            "partition_size": int(config.partition_size),
            "buffer_bytes": int(config.buffer_bytes),
        },
    }
    if config.dtype is not None:
        doc["config"]["dtype"] = config.dtype
    return doc


def plan_fingerprint(
    geometry: ParallelBeamGeometry,
    config: OperatorConfig | None = None,
    ordering: str = "pseudo-hilbert",
    min_tiles: int = 16,
    tile_size: int | None = None,
) -> str:
    """SHA-256 hex fingerprint of a preprocessing request."""
    doc = fingerprint_inputs(geometry, config, ordering, min_tiles, tile_size)
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()
