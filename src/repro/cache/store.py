"""The on-disk operator-plan cache.

One directory of content-addressed entries: ``<fingerprint>.npz`` (the
full v2 operator archive written by :func:`repro.io.save_operator`)
plus a ``<fingerprint>.json`` sidecar with human-readable metadata for
``repro cache list`` / ``info``.

Robustness properties:

* **Crash-safe writes** — entries are written through the atomic
  temp-file + rename path of ``save_operator``; a killed writer leaves
  at most a stray ``*.tmp-<pid>`` file, never a truncated entry.
* **Graceful degradation** — a corrupt, truncated, or version-stale
  entry is *discarded with a warning* and reported as a miss, so the
  caller re-traces instead of crashing (the checksum embedded in every
  v2 archive is what catches silent bit corruption).
* **Size-capped eviction** — after each store the cache evicts
  least-recently-used entries (hits bump an entry's mtime) until it is
  back under ``max_bytes``.

Hits, misses, and byte traffic are reported through ``repro.obs``
(``cache.hits`` / ``cache.misses`` / ``cache.bytes_read`` /
``cache.bytes_written`` / ``cache.evictions`` counters and a
``cache.load`` span), so ``--trace`` / ``--metrics`` show exactly what
was reused.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..io import (
    OperatorFormatError,
    OperatorIntegrityError,
    load_operator,
    save_operator,
)
from ..obs import (
    CACHE_BYTES_READ,
    CACHE_BYTES_WRITTEN,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    add_count,
    span,
)

__all__ = [
    "PlanCache",
    "CacheEntry",
    "CacheIntegrityWarning",
    "default_cache_dir",
    "DEFAULT_MAX_BYTES",
]

#: Default size cap of the plan cache (overridable per instance or via
#: the ``REPRO_CACHE_MAX_BYTES`` environment variable).
DEFAULT_MAX_BYTES = 2 << 30  # 2 GiB


class CacheIntegrityWarning(UserWarning):
    """A cache entry was unusable and has been discarded."""


def default_cache_dir() -> Path:
    """Resolve the default cache directory.

    ``REPRO_CACHE_DIR`` wins when set; otherwise the XDG cache home
    (``~/.cache``) is used, under ``repro/plans``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plans"


@dataclass(frozen=True)
class CacheEntry:
    """One cached plan: its key, size, recency, and sidecar metadata."""

    key: str
    path: Path
    nbytes: int
    mtime: float
    meta: dict

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.mtime)


class PlanCache:
    """Content-addressed store of preprocessed operator plans."""

    def __init__(
        self, root: str | Path | None = None, max_bytes: int | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            env = os.environ.get("REPRO_CACHE_MAX_BYTES")
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)

    @classmethod
    def resolve(cls, spec) -> "PlanCache | None":
        """Interpret a user-facing cache spec.

        ``None`` / ``False`` / ``"off"`` / ``"none"`` disable caching;
        ``True`` / ``"auto"`` use the default directory; a path string,
        :class:`~pathlib.Path`, or :class:`PlanCache` select an
        explicit cache.
        """
        if spec is None or spec is False:
            return None
        if isinstance(spec, PlanCache):
            return spec
        if spec is True:
            return cls()
        if isinstance(spec, Path):
            return cls(spec)
        if isinstance(spec, str):
            lowered = spec.strip().lower()
            if lowered in ("", "off", "none", "disabled", "0"):
                return None
            if lowered == "auto":
                return cls()
            return cls(Path(spec))
        raise TypeError(f"cannot interpret cache spec {spec!r}")

    # -- paths ---------------------------------------------------------

    def plan_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def meta_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- load / store --------------------------------------------------

    def load(self, key: str):
        """Operator for ``key``, or ``None`` on miss.

        A present-but-unusable entry (corrupt archive, checksum
        failure, stale format version) is discarded with a
        :class:`CacheIntegrityWarning` and counted as a miss — the
        caller falls back to re-tracing, never crashes.
        """
        path = self.plan_path(key)
        if not path.exists():
            add_count(CACHE_MISSES, 1)
            return None
        with span("cache.load", key=key):
            try:
                operator = load_operator(path)
            except FileNotFoundError:
                add_count(CACHE_MISSES, 1)
                return None
            except (OperatorFormatError, OperatorIntegrityError, ValueError, OSError) as exc:
                warnings.warn(
                    f"plan cache entry {key[:12]} is unusable ({exc}); "
                    "discarding it and re-tracing",
                    CacheIntegrityWarning,
                    stacklevel=2,
                )
                self.discard(key)
                add_count(CACHE_MISSES, 1)
                return None
            nbytes = path.stat().st_size
        now = time.time()
        os.utime(path, (now, now))  # recency bump for LRU eviction
        add_count(CACHE_HITS, 1)
        add_count(CACHE_BYTES_READ, nbytes)
        return operator

    def store(self, key: str, operator, extra_meta: dict | None = None) -> Path:
        """Persist ``operator`` under ``key`` (atomic), then evict."""
        self.root.mkdir(parents=True, exist_ok=True)
        with span("cache.store", key=key):
            # Uncompressed: cache entries exist to be loaded fast, and
            # zlib would dominate both the store and the hit path.
            path = save_operator(self.plan_path(key), operator, compress=False)
            nbytes = path.stat().st_size
            g = operator.geometry
            meta = {
                "key": key,
                "created": time.time(),
                "nbytes": nbytes,
                "geometry": {
                    "num_angles": g.num_angles,
                    "num_channels": g.num_channels,
                    "grid_n": g.grid.n,
                    "angle_range": g.angle_range,
                    "pixel_size": g.grid.pixel_size,
                },
                "config": {
                    "kernel": operator.config.kernel,
                    "partition_size": operator.config.partition_size,
                    "buffer_bytes": operator.config.buffer_bytes,
                },
                "nnz": operator.matrix.nnz,
            }
            if extra_meta:
                meta.update(extra_meta)
            self._write_meta(key, meta)
        add_count(CACHE_BYTES_WRITTEN, nbytes)
        self.evict()
        return path

    def _write_meta(self, key: str, meta: dict) -> None:
        target = self.meta_path(key)
        tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    # -- inspection / maintenance --------------------------------------

    def entries(self) -> list[CacheEntry]:
        """All entries, most recently used first."""
        if not self.root.is_dir():
            return []
        found = []
        for path in self.root.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent discard
            meta: dict = {}
            meta_path = self.meta_path(path.stem)
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    meta = {}
            found.append(
                CacheEntry(
                    key=path.stem,
                    path=path,
                    nbytes=stat.st_size,
                    mtime=stat.st_mtime,
                    meta=meta,
                )
            )
        found.sort(key=lambda e: e.mtime, reverse=True)
        return found

    def entry(self, key: str) -> CacheEntry | None:
        """The entry for ``key`` (prefix match allowed), or ``None``."""
        for candidate in self.entries():
            if candidate.key == key or candidate.key.startswith(key):
                return candidate
        return None

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries())

    def discard(self, key: str) -> bool:
        """Remove one entry; returns whether the plan file existed."""
        existed = self.plan_path(key).exists()
        self.plan_path(key).unlink(missing_ok=True)
        self.meta_path(key).unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Remove every entry, returning how many plans were deleted."""
        removed = 0
        for e in self.entries():
            removed += bool(self.discard(e.key))
        return removed

    def evict(self, max_bytes: int | None = None) -> list[CacheEntry]:
        """Drop least-recently-used entries until under the size cap.

        The most recent entry is always kept, even when it alone
        exceeds the cap — evicting the plan that was just stored would
        make an oversized geometry uncacheable *and* pay the write cost
        every run.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = self.entries()  # most recent first
        total = sum(e.nbytes for e in entries)
        evicted: list[CacheEntry] = []
        while total > cap and len(entries) > 1:
            victim = entries.pop()  # least recently used
            self.discard(victim.key)
            total -= victim.nbytes
            evicted.append(victim)
            add_count(CACHE_EVICTIONS, 1)
        return evicted
