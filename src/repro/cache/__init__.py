"""repro.cache — the persistent, content-addressed operator-plan cache.

MemXCT's thesis is memoization: trace once, reuse the matrix every
iteration.  This package extends that economy across *processes*: a
plan (the full product of the four preprocessing stages — orderings,
traced matrix, scan transpose, buffered/ELL layouts) is stored on disk
under a stable fingerprint of its inputs, so a beamline workflow
preprocesses once per scan geometry and every later run — more slices,
another solver, a different process — skips preprocessing entirely.

    from repro.core import preprocess
    operator, report = preprocess(geometry, cache="auto")
    report.cache_hit   # True on every run after the first

Entries are crash-safe (temp-file + atomic rename, checksum verified
on load), degrade gracefully (a corrupt or version-stale entry warns
and re-traces instead of crashing), and are evicted least-recently-used
once the cache exceeds its size cap.  See ``docs/persistence.md``.
"""

from .fingerprint import fingerprint_inputs, plan_fingerprint
from .store import (
    DEFAULT_MAX_BYTES,
    CacheEntry,
    CacheIntegrityWarning,
    PlanCache,
    default_cache_dir,
)

__all__ = [
    "fingerprint_inputs",
    "plan_fingerprint",
    "DEFAULT_MAX_BYTES",
    "CacheEntry",
    "CacheIntegrityWarning",
    "PlanCache",
    "default_cache_dir",
]
