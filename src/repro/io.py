"""Saving and loading preprocessed operators.

Preprocessing is the expensive step (paper Table 4/5); persisting its
product lets a beamline workflow preprocess once per scan geometry and
reconstruct thousands of slices across separate processes.

Format **v2** stores *all four* preprocessing products in one ``.npz``:
the geometry, both orderings, the ordered matrix, the scan-based
transpose, and the buffered / ELL kernel layouts — so a load skips
every preprocessing stage, not just tracing.  Format v1 files (matrix
only; transpose and layouts rebuilt on load) are still readable.

Writes are crash-safe: the archive is written to a temporary file in
the destination directory, fsynced, and atomically renamed into place,
so a crashed or killed writer can never leave a half-written operator
under the final name.  Every v2 file embeds a CRC-32 checksum over all
payload arrays which is verified on load; a flipped bit surfaces as
:class:`OperatorIntegrityError` instead of silently corrupt physics.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .core import MemXCTOperator, OperatorConfig
from .geometry import ConeBeamGeometry, Grid2D, Grid3D, ParallelBeamGeometry
from .ordering import DomainOrdering
from .persist import atomic_savez as _atomic_savez
from .persist import payload_checksum as _payload_checksum
from .sparse import (
    BufferedMatrix,
    CSRMatrix,
    ELLPartitioned,
    RowPartitions,
    build_buffered,
    build_ell,
    scan_transpose,
)

__all__ = [
    "save_operator",
    "load_operator",
    "FORMAT_VERSION",
    "OperatorFormatError",
    "OperatorIntegrityError",
]

FORMAT_VERSION = 2

#: Versions this loader understands.
_READABLE_VERSIONS = (1, 2)


class OperatorFormatError(ValueError):
    """The file is a valid archive but not a format we can interpret."""


class OperatorIntegrityError(ValueError):
    """The file is unreadable, truncated, or fails its checksum."""


# The checksum / atomic-write primitives live in repro.persist so the
# operator format, the plan cache, and solver checkpoints share one
# hardened path (imported above as _payload_checksum / _atomic_savez).


# -- layout <-> array helpers ----------------------------------------------


def _buffered_payload(prefix: str, layout: BufferedMatrix) -> dict:
    return {
        f"{prefix}buffer_elements": layout.buffer_elements,
        f"{prefix}partdispl": layout.partdispl,
        f"{prefix}stagedispl": layout.stagedispl,
        f"{prefix}map": layout.map,
        f"{prefix}displ": layout.displ,
        f"{prefix}ind": layout.ind,
        f"{prefix}val": layout.val,
    }


def _buffered_from_payload(
    data, prefix: str, num_rows: int, partition_size: int, num_cols: int
) -> BufferedMatrix:
    return BufferedMatrix(
        partitions=RowPartitions(num_rows, partition_size),
        buffer_elements=int(data[f"{prefix}buffer_elements"]),
        partdispl=data[f"{prefix}partdispl"],
        stagedispl=data[f"{prefix}stagedispl"],
        map=data[f"{prefix}map"],
        displ=data[f"{prefix}displ"],
        ind=data[f"{prefix}ind"],
        val=data[f"{prefix}val"],
        num_cols=num_cols,
    )


def _ell_payload(prefix: str, layout: ELLPartitioned) -> dict:
    """Flatten the per-partition slabs into one pair of arrays."""
    flat_ind = (
        np.concatenate([slab.ravel() for slab in layout.ind_slabs])
        if layout.ind_slabs
        else np.empty(0, dtype=np.int32)
    )
    flat_val = (
        np.concatenate([slab.ravel() for slab in layout.val_slabs])
        if layout.val_slabs
        else np.empty(0, dtype=np.float32)
    )
    # flat_val keeps the slabs' own dtype: an fp64 operator's ELL
    # layout must not be silently rounded to float32 on save.
    return {
        f"{prefix}widths": layout.widths,
        f"{prefix}ind": flat_ind.astype(np.int32),
        f"{prefix}val": flat_val,
    }


def _ell_from_payload(
    data, prefix: str, num_rows: int, partition_size: int, num_cols: int
) -> ELLPartitioned:
    parts = RowPartitions(num_rows, partition_size)
    widths = np.asarray(data[f"{prefix}widths"], dtype=np.int64)
    flat_ind = data[f"{prefix}ind"]
    flat_val = data[f"{prefix}val"]
    ind_slabs: list[np.ndarray] = []
    val_slabs: list[np.ndarray] = []
    offset = 0
    for part in range(parts.num_partitions):
        start, stop = parts.bounds(part)
        nrows = stop - start
        width = int(widths[part])
        size = width * nrows
        ind_slabs.append(flat_ind[offset : offset + size].reshape(width, nrows))
        val_slabs.append(flat_val[offset : offset + size].reshape(width, nrows))
        offset += size
    return ELLPartitioned(
        partitions=parts,
        widths=widths,
        ind_slabs=ind_slabs,
        val_slabs=val_slabs,
        num_cols=num_cols,
    )


# -- save -------------------------------------------------------------------


def save_operator(
    path: str | Path, operator: MemXCTOperator, compress: bool = True
) -> Path:
    """Serialize a preprocessed operator to ``path`` (.npz), atomically.

    ``compress=False`` trades ~2x file size for much faster writes and
    loads (no zlib on the multi-hundred-MB streams) — what the plan
    cache uses, since its entries exist purely to be loaded fast.

    Returns the path actually written (``.npz`` appended when missing,
    matching ``np.savez`` conventions).
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    g = operator.geometry
    payload: dict = {
        "format_version": FORMAT_VERSION,
        "num_angles": g.num_angles,
        "num_channels": g.num_channels,
        "angle_range": g.angle_range,
        "pixel_size": g.grid.pixel_size,
        "grid_n": g.grid.n,
        "tomo_name": operator.tomo_ordering.name,
        "tomo_perm": operator.tomo_ordering.perm,
        "sino_name": operator.sino_ordering.name,
        "sino_perm": operator.sino_ordering.perm,
        "displ": operator.matrix.displ,
        "ind": operator.matrix.ind,
        "val": operator.matrix.val,
        "t_displ": operator.transpose.displ,
        "t_ind": operator.transpose.ind,
        "t_val": operator.transpose.val,
        "kernel": operator.config.kernel,
        "partition_size": operator.config.partition_size,
        "buffer_bytes": operator.config.buffer_bytes,
        # Empty string encodes "no explicit dtype" (npz has no None);
        # files written before the dtype path simply lack the key.
        "dtype": operator.config.dtype or "",
    }
    if isinstance(g, ConeBeamGeometry):
        # Optional keys only — parallel-beam files are byte-compatible
        # with every pre-cone reader, so no format bump is needed.
        payload.update(
            {
                "geometry_kind": "cone",
                "det_rows": g.det_rows,
                "det_cols": g.det_cols,
                "source_distance": g.source_distance,
                "detector_distance": g.detector_distance,
                "det_spacing": g.det_spacing,
                "grid_nz": g.grid.nz,
            }
        )
    if operator.buffered_forward is not None:
        payload.update(_buffered_payload("bf_", operator.buffered_forward))
    if operator.buffered_adjoint is not None:
        payload.update(_buffered_payload("ba_", operator.buffered_adjoint))
    if operator.ell_forward is not None:
        payload.update(_ell_payload("ef_", operator.ell_forward))
    if operator.ell_adjoint is not None:
        payload.update(_ell_payload("ea_", operator.ell_adjoint))
    payload["checksum"] = np.uint32(_payload_checksum(payload))
    _atomic_savez(path, payload, compress)
    return path


# -- load -------------------------------------------------------------------


def _ordering_from_arrays(name: str, rows: int, cols: int, perm: np.ndarray) -> DomainOrdering:
    rank = np.empty_like(perm)
    rank[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return DomainOrdering(str(name), rows, cols, perm.astype(np.int64), rank)


def _operator_from_npz(data) -> MemXCTOperator:
    version = int(data["format_version"])
    if version not in _READABLE_VERSIONS:
        raise OperatorFormatError(
            f"unsupported operator file version {version} "
            f"(expected one of {_READABLE_VERSIONS})"
        )
    if version >= 2:
        stored = int(data["checksum"])
        actual = _payload_checksum(data)
        if actual != stored:
            raise OperatorIntegrityError(
                f"operator file checksum mismatch "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )

    kind = str(data["geometry_kind"][()]) if "geometry_kind" in data else "parallel"
    if kind == "cone":
        grid = Grid3D(
            int(data["grid_n"]), int(data["grid_nz"]), float(data["pixel_size"])
        )
        geometry = ConeBeamGeometry(
            int(data["num_angles"]),
            int(data["det_rows"]),
            int(data["det_cols"]),
            source_distance=float(data["source_distance"]),
            detector_distance=float(data["detector_distance"]),
            det_spacing=float(data["det_spacing"]),
            grid=grid,
            angle_range=float(data["angle_range"]),
        )
        num_pixels = grid.num_voxels
        tomo_shape = geometry.tomo_layout_shape
        sino_shape = geometry.sino_layout_shape
    elif kind == "parallel":
        grid = Grid2D(int(data["grid_n"]), float(data["pixel_size"]))
        geometry = ParallelBeamGeometry(
            int(data["num_angles"]),
            int(data["num_channels"]),
            grid=grid,
            angle_range=float(data["angle_range"]),
        )
        num_pixels = grid.num_pixels
        tomo_shape = (grid.n, grid.n)
        sino_shape = (geometry.num_angles, geometry.num_channels)
    else:
        raise OperatorFormatError(f"unsupported geometry kind {kind!r}")
    tomo = _ordering_from_arrays(
        data["tomo_name"][()], tomo_shape[0], tomo_shape[1], data["tomo_perm"]
    )
    sino = _ordering_from_arrays(
        data["sino_name"][()], sino_shape[0], sino_shape[1], data["sino_perm"]
    )
    matrix = CSRMatrix(
        displ=data["displ"], ind=data["ind"], val=data["val"],
        num_cols=num_pixels,
        value_dtype=data["val"].dtype.name,
    )
    saved_dtype = str(data["dtype"][()]) if "dtype" in data else ""
    config = OperatorConfig(
        kernel=str(data["kernel"][()]),
        partition_size=int(data["partition_size"]),
        buffer_bytes=int(data["buffer_bytes"]),
        dtype=saved_dtype or None,
    )

    buffered_forward = buffered_adjoint = None
    ell_forward = ell_adjoint = None
    if version >= 2:
        transpose = CSRMatrix(
            displ=data["t_displ"], ind=data["t_ind"], val=data["t_val"],
            num_cols=matrix.num_rows,
            value_dtype=data["t_val"].dtype.name,
        )
        psize = config.partition_size
        if "bf_partdispl" in data:
            buffered_forward = _buffered_from_payload(
                data, "bf_", matrix.num_rows, psize, matrix.num_cols
            )
        if "ba_partdispl" in data:
            buffered_adjoint = _buffered_from_payload(
                data, "ba_", transpose.num_rows, psize, transpose.num_cols
            )
        if "ef_widths" in data:
            ell_forward = _ell_from_payload(
                data, "ef_", matrix.num_rows, psize, matrix.num_cols
            )
        if "ea_widths" in data:
            ell_adjoint = _ell_from_payload(
                data, "ea_", transpose.num_rows, psize, transpose.num_cols
            )
    else:
        # v1 stored the matrix only: rebuild the remaining stages.
        transpose = scan_transpose(matrix)
        if config.kernel == "buffered":
            buffered_forward = build_buffered(
                matrix, config.partition_size, config.buffer_bytes
            )
            buffered_adjoint = build_buffered(
                transpose, config.partition_size, config.buffer_bytes
            )
        elif config.kernel == "ell":
            ell_forward = build_ell(matrix, config.partition_size)
            ell_adjoint = build_ell(transpose, config.partition_size)

    return MemXCTOperator(
        geometry=geometry,
        tomo_ordering=tomo,
        sino_ordering=sino,
        matrix=matrix,
        transpose=transpose,
        config=config,
        buffered_forward=buffered_forward,
        buffered_adjoint=buffered_adjoint,
        ell_forward=ell_forward,
        ell_adjoint=ell_adjoint,
    )


def load_operator(path: str | Path) -> MemXCTOperator:
    """Load an operator saved by :func:`save_operator`.

    v2 files restore the transpose and kernel layouts directly (no
    preprocessing stage re-runs); v1 files rebuild them
    deterministically from the stored matrix.

    Raises
    ------
    FileNotFoundError
        ``path`` does not exist.
    OperatorFormatError
        The file has an unsupported format version.
    OperatorIntegrityError
        The file is not a readable operator archive (corrupt,
        truncated, wrong file type) or fails its embedded checksum.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as npz:
            data = {name: npz[name] for name in npz.files}
        return _operator_from_npz(data)
    except FileNotFoundError:
        raise
    except (OperatorFormatError, OperatorIntegrityError):
        raise
    except Exception as exc:
        raise OperatorIntegrityError(
            f"{path} is not a readable operator file: {exc}"
        ) from exc
