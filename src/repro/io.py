"""Saving and loading preprocessed operators.

Preprocessing is the expensive step (paper Table 4/5); persisting its
product lets a beamline workflow preprocess once per scan geometry and
reconstruct thousands of slices across separate processes.  Operators
are stored as a single ``.npz`` holding the geometry, both orderings,
the ordered matrix, and the kernel configuration; the transpose and
buffered layouts are rebuilt on load (cheap relative to tracing, and
keeping the file format minimal).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .core import MemXCTOperator, OperatorConfig
from .geometry import Grid2D, ParallelBeamGeometry
from .ordering import DomainOrdering
from .sparse import CSRMatrix, build_buffered, build_ell, scan_transpose

__all__ = ["save_operator", "load_operator"]

_FORMAT_VERSION = 1


def save_operator(path: str | Path, operator: MemXCTOperator) -> None:
    """Serialize a preprocessed operator to ``path`` (.npz)."""
    g = operator.geometry
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        num_angles=g.num_angles,
        num_channels=g.num_channels,
        angle_range=g.angle_range,
        pixel_size=g.grid.pixel_size,
        grid_n=g.grid.n,
        tomo_name=operator.tomo_ordering.name,
        tomo_perm=operator.tomo_ordering.perm,
        sino_name=operator.sino_ordering.name,
        sino_perm=operator.sino_ordering.perm,
        displ=operator.matrix.displ,
        ind=operator.matrix.ind,
        val=operator.matrix.val,
        kernel=operator.config.kernel,
        partition_size=operator.config.partition_size,
        buffer_bytes=operator.config.buffer_bytes,
    )


def _ordering_from_arrays(name: str, rows: int, cols: int, perm: np.ndarray) -> DomainOrdering:
    rank = np.empty_like(perm)
    rank[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return DomainOrdering(str(name), rows, cols, perm.astype(np.int64), rank)


def load_operator(path: str | Path) -> MemXCTOperator:
    """Load an operator saved by :func:`save_operator`.

    The scan-based transpose and the configured kernel layout are
    rebuilt deterministically from the stored matrix.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported operator file version {version} (expected {_FORMAT_VERSION})"
            )
        grid = Grid2D(int(data["grid_n"]), float(data["pixel_size"]))
        geometry = ParallelBeamGeometry(
            int(data["num_angles"]),
            int(data["num_channels"]),
            grid=grid,
            angle_range=float(data["angle_range"]),
        )
        n = grid.n
        tomo = _ordering_from_arrays(data["tomo_name"][()], n, n, data["tomo_perm"])
        sino = _ordering_from_arrays(
            data["sino_name"][()], geometry.num_angles, geometry.num_channels,
            data["sino_perm"],
        )
        matrix = CSRMatrix(
            displ=data["displ"], ind=data["ind"], val=data["val"],
            num_cols=grid.n * grid.n,
        )
        config = OperatorConfig(
            kernel=str(data["kernel"][()]),
            partition_size=int(data["partition_size"]),
            buffer_bytes=int(data["buffer_bytes"]),
        )

    transpose = scan_transpose(matrix)
    buffered_forward = buffered_adjoint = None
    ell_forward = ell_adjoint = None
    if config.kernel == "buffered":
        buffered_forward = build_buffered(matrix, config.partition_size, config.buffer_bytes)
        buffered_adjoint = build_buffered(transpose, config.partition_size, config.buffer_bytes)
    elif config.kernel == "ell":
        ell_forward = build_ell(matrix, config.partition_size)
        ell_adjoint = build_ell(transpose, config.partition_size)
    return MemXCTOperator(
        geometry=geometry,
        tomo_ordering=tomo,
        sino_ordering=sino,
        matrix=matrix,
        transpose=transpose,
        config=config,
        buffered_forward=buffered_forward,
        buffered_adjoint=buffered_adjoint,
        ell_forward=ell_forward,
        ell_adjoint=ell_adjoint,
    )
