"""Address-trace generation for the SpMV kernels.

The performance story of the paper is entirely about the *irregular*
stream: the gathers ``x[ind[j]]`` in Listing 2 and the staging gathers
``x[map[i]]`` in Listing 3.  The regular streams (``ind``, ``val``,
``displ``) are sequential and prefetch perfectly, so only the irregular
streams are traced.

Element addresses assume 4-byte (float32) vector elements, matching the
paper's data types.
"""

from __future__ import annotations

import numpy as np

from ..sparse import BufferedMatrix, CSRMatrix

__all__ = [
    "irregular_trace_csr",
    "irregular_trace_buffered",
    "combined_trace_csr",
    "footprint_coordinates",
    "ELEMENT_BYTES",
]

ELEMENT_BYTES = 4

#: Regular streams (ind, val) live far above the input vector in the
#: address space; one shared base keeps the trace compact.
_STREAM_BASE = np.int64(1) << 40


def irregular_trace_csr(matrix: CSRMatrix) -> np.ndarray:
    """Byte addresses of the ``x`` gathers of the baseline CSR kernel.

    Rows are processed in storage order and each row's nonzeros in
    their stored order, exactly as Listing 2 executes.
    """
    return matrix.ind.astype(np.int64) * ELEMENT_BYTES


def combined_trace_csr(matrix: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Gather trace interleaved with the regular-stream traffic.

    The baseline CSR kernel streams ``ind`` (4 B) and ``val`` (4 B)
    while gathering ``x``; on a shared cache (KNL's per-tile L2, GPU
    L2) the streams continually evict gathered lines, which is where
    the measured miss rates of paper Fig. 9(b) come from even when the
    input vector alone would fit.  Returns ``(addresses, is_gather)``;
    miss rates are reported for the gather accesses only.
    """
    nnz = matrix.nnz
    gather = matrix.ind.astype(np.int64) * ELEMENT_BYTES
    stream = _STREAM_BASE + np.arange(nnz, dtype=np.int64) * 8  # ind+val pair
    addresses = np.empty(2 * nnz, dtype=np.int64)
    addresses[0::2] = stream
    addresses[1::2] = gather
    is_gather = np.zeros(2 * nnz, dtype=bool)
    is_gather[1::2] = True
    return addresses, is_gather


def irregular_trace_buffered(buffered: BufferedMatrix) -> np.ndarray:
    """Byte addresses of the memory-side gathers of the buffered kernel.

    After multi-stage buffering, the only irregular accesses that reach
    the memory hierarchy are the staging reads ``x[map[i]]``; the
    per-nonzero gathers hit the explicitly managed L1 buffer and never
    leave the core.  The trace is therefore the concatenated ``map``
    stream in stage order.
    """
    return buffered.map.astype(np.int64) * ELEMENT_BYTES


def footprint_coordinates(
    matrix: CSRMatrix, row_range: tuple[int, int], domain_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """2D coordinates (in the *row-major* input domain) gathered by a
    row range, with multiplicity.

    Used to draw the access-footprint pictures of paper Figs. 5/6 and
    to compute data-reuse statistics.  ``domain_cols`` is the width of
    the 2D input domain the columns index into.
    """
    lo, hi = matrix.displ[row_range[0]], matrix.displ[row_range[1]]
    cols = matrix.ind[lo:hi].astype(np.int64)
    return cols % domain_cols, cols // domain_cols
