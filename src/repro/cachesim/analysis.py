"""Cache-behaviour analysis of SpMV access patterns.

Combines the trace generators with the cache model to produce the
paper's L2 miss-rate numbers (Fig. 5's worked example, Fig. 9(b)) and
the single-footprint miss counts used to motivate Hilbert ordering.
"""

from __future__ import annotations

import numpy as np

from ..ordering import DomainOrdering
from ..sparse import BufferedMatrix, CSRMatrix
from .cache import Cache, CacheStats
from .trace import (
    ELEMENT_BYTES,
    combined_trace_csr,
    irregular_trace_buffered,
    irregular_trace_csr,
)

__all__ = [
    "miss_rate_csr",
    "miss_rate_buffered",
    "cold_misses_for_footprint",
    "sample_rows",
]


def miss_rate_csr(
    matrix: CSRMatrix,
    capacity_bytes: int,
    line_bytes: int = 64,
    ways: int = 8,
    max_accesses: int | None = None,
    include_regular: bool = False,
) -> CacheStats:
    """L2 miss rate of the baseline CSR kernel's irregular stream.

    ``max_accesses`` truncates the trace (prefix of the row order) to
    bound simulation time on large matrices; miss rates converge well
    before a full pass on the datasets used here.

    With ``include_regular`` the regular ``ind``/``val`` streams share
    the cache and evict gathered lines (the realistic shared-L2
    setting); the returned rate still counts gather accesses only.
    """
    cache = Cache(capacity_bytes, line_bytes, ways)
    if include_regular:
        trace, is_gather = combined_trace_csr(matrix)
        if max_accesses is not None:
            trace = trace[: 2 * max_accesses]
            is_gather = is_gather[: 2 * max_accesses]
        return cache.run_counting(trace, is_gather)
    trace = irregular_trace_csr(matrix)
    if max_accesses is not None:
        trace = trace[:max_accesses]
    return cache.run(trace)


def miss_rate_buffered(
    buffered: BufferedMatrix,
    capacity_bytes: int,
    line_bytes: int = 64,
    ways: int = 8,
    max_accesses: int | None = None,
) -> CacheStats:
    """L2 miss rate of the staged gathers of the buffered kernel.

    The returned rate is per *memory-side* access; because the map
    stream visits each distinct input of a partition once, in domain
    order, it is close to the compulsory minimum.
    """
    trace = irregular_trace_buffered(buffered)
    if max_accesses is not None:
        trace = trace[:max_accesses]
    cache = Cache(capacity_bytes, line_bytes, ways)
    return cache.run(trace)


def cold_misses_for_footprint(
    flat_indices: np.ndarray,
    ordering: DomainOrdering,
    line_bytes: int = 64,
) -> tuple[int, int]:
    """Cold-cache misses of a single access footprint under an ordering.

    Reproduces the Fig. 5 argument exactly: the data is laid out along
    ``ordering``; accessing ``flat_indices`` (row-major domain indices,
    with multiplicity, e.g. the 30 tomogram cells of one ray or the 25
    sinogram cells of one pixel) costs one miss per *distinct cache
    line* touched, assuming no capacity pressure.

    Returns ``(misses, accesses)``.
    """
    flat = np.asarray(flat_indices).reshape(-1)
    positions = ordering.rank[flat]
    elems_per_line = line_bytes // ELEMENT_BYTES
    lines = positions // elems_per_line
    return int(np.unique(lines).shape[0]), int(flat.shape[0])


def sample_rows(matrix: CSRMatrix, num_rows: int, seed: int = 0) -> CSRMatrix:
    """Random row subset of a matrix (for bounded-cost miss estimation).

    Sampling rows, not nonzeros, keeps whole gather sequences intact so
    intra-row locality is preserved.
    """
    if num_rows >= matrix.num_rows:
        return matrix
    rng = np.random.default_rng(seed)
    rows = np.sort(rng.choice(matrix.num_rows, size=num_rows, replace=False))
    return matrix.permute(rows, None)
