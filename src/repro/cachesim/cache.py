"""Set-associative LRU cache simulator.

Stands in for the Intel VTune measurements the paper uses to obtain L2
miss rates (Section 4.2): we replay the *exact* address stream of the
SpMV irregular gathers through a configurable cache model and count
misses.  The default parameters model one KNL tile's L2 slice; the
machine specs in :mod:`repro.machine.specs` provide per-device values.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Cache", "CacheStats"]


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`Cache` over simulated accesses."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.accesses + other.accesses, self.misses + other.misses)


@dataclass
class Cache:
    """A set-associative LRU cache.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity.
    line_bytes:
        Cache-line size (the paper's worked example assumes 64 B).
    ways:
        Associativity; ``ways`` covering all lines gives a
        fully-associative cache.
    """

    capacity_bytes: int
    line_bytes: int = 64
    ways: int = 8
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or (self.line_bytes & (self.line_bytes - 1)):
            raise ValueError(f"line size must be a positive power of two, got {self.line_bytes}")
        if self.capacity_bytes < self.line_bytes:
            raise ValueError("capacity must hold at least one line")
        num_lines = self.capacity_bytes // self.line_bytes
        if self.ways <= 0 or self.ways > num_lines:
            raise ValueError(f"invalid associativity {self.ways} for {num_lines} lines")
        self.num_sets = max(1, num_lines // self.ways)
        self._line_shift = self.line_bytes.bit_length() - 1
        # Power-of-two set counts use a mask; others (e.g. K80's 1.5 MB
        # L2) fall back to modulo indexing.
        self._pow2_sets = (self.num_sets & (self.num_sets - 1)) == 0
        self._set_mask = self.num_sets - 1
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.num_sets)]

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Simulate one byte-address access; returns True on a miss."""
        line = address >> self._line_shift
        set_index = line & self._set_mask if self._pow2_sets else line % self.num_sets
        set_ = self._sets[set_index]
        self.stats.accesses += 1
        if line in set_:
            set_.move_to_end(line)
            return False
        self.stats.misses += 1
        if len(set_) >= self.ways:
            set_.popitem(last=False)
        set_[line] = None
        return True

    def run(self, addresses: np.ndarray) -> CacheStats:
        """Simulate a whole address trace; returns the stats delta.

        The hot loop is kept local-variable-bound for speed — traces of
        a few million accesses simulate in seconds.
        """
        before = CacheStats(self.stats.accesses, self.stats.misses)
        shift = self._line_shift
        mask = self._set_mask
        pow2 = self._pow2_sets
        nsets = self.num_sets
        sets = self._sets
        ways = self.ways
        misses = 0
        lines = (np.asarray(addresses, dtype=np.int64) >> shift).tolist()
        for line in lines:
            set_ = sets[line & mask if pow2 else line % nsets]
            if line in set_:
                set_.move_to_end(line)
            else:
                misses += 1
                if len(set_) >= ways:
                    set_.popitem(last=False)
                set_[line] = None
        self.stats.accesses += len(lines)
        self.stats.misses += misses
        return CacheStats(
            self.stats.accesses - before.accesses, self.stats.misses - before.misses
        )

    def run_counting(self, addresses: np.ndarray, count_mask: np.ndarray) -> CacheStats:
        """Simulate a trace but count only the masked accesses.

        Used for interference studies: streaming accesses occupy the
        cache (and evict) but only the gather accesses' hit/miss
        behaviour is reported.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        count_mask = np.asarray(count_mask, dtype=bool)
        if addresses.shape != count_mask.shape:
            raise ValueError("trace and mask must have identical shapes")
        shift = self._line_shift
        mask = self._set_mask
        pow2 = self._pow2_sets
        nsets = self.num_sets
        sets = self._sets
        ways = self.ways
        counted = 0
        misses = 0
        lines = (addresses >> shift).tolist()
        flags = count_mask.tolist()
        for line, counts in zip(lines, flags):
            set_ = sets[line & mask if pow2 else line % nsets]
            if line in set_:
                set_.move_to_end(line)
            else:
                if counts:
                    misses += 1
                if len(set_) >= ways:
                    set_.popitem(last=False)
                set_[line] = None
            if counts:
                counted += 1
        self.stats.accesses += counted
        self.stats.misses += misses
        return CacheStats(counted, misses)

    def touched_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)
