"""Cache simulation substrate: LRU model, SpMV address traces, analyses."""

from .analysis import (
    cold_misses_for_footprint,
    miss_rate_buffered,
    miss_rate_csr,
    sample_rows,
)
from .cache import Cache, CacheStats
from .trace import (
    ELEMENT_BYTES,
    combined_trace_csr,
    footprint_coordinates,
    irregular_trace_buffered,
    irregular_trace_csr,
)

__all__ = [
    "cold_misses_for_footprint",
    "miss_rate_buffered",
    "miss_rate_csr",
    "sample_rows",
    "Cache",
    "CacheStats",
    "ELEMENT_BYTES",
    "combined_trace_csr",
    "footprint_coordinates",
    "irregular_trace_buffered",
    "irregular_trace_csr",
]
