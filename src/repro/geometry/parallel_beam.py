"""Parallel-beam scan geometry.

A parallel-beam XCT scan measures line integrals of the attenuation
field along parallel rays.  A sinogram has ``M`` rows (projection
angles theta) and ``N`` columns (detector channels).  Channel ``k`` of
projection ``j`` corresponds to the ray

    p(t) = o_k + t * d_j

where ``d_j = (-sin(theta_j), cos(theta_j))`` is the ray direction and
``o_k`` lies on the detector axis ``(cos(theta_j), sin(theta_j))`` at a
signed offset ``s_k`` from the rotation axis.  Detector channels span
the full tomogram width, matching the raster-scan geometry of the
paper's datasets (Table 3: sinogram ``M x N`` pairs with an ``N x N``
tomogram).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid2D

__all__ = ["ParallelBeamGeometry", "Ray"]


@dataclass(frozen=True)
class Ray:
    """A single measurement ray: origin point and unit direction."""

    origin: tuple[float, float]
    direction: tuple[float, float]
    angle_index: int
    channel_index: int


@dataclass(frozen=True)
class ParallelBeamGeometry:
    """Parallel-beam geometry for an ``M x N`` sinogram on an ``N x N`` grid.

    Parameters
    ----------
    num_angles:
        Number of projection angles ``M``, spread uniformly over
        ``[0, angle_range)``.
    num_channels:
        Number of detector channels ``N`` per projection.
    grid:
        Tomogram pixel grid.  Defaults to an ``N x N`` unit-pixel grid.
    angle_range:
        Angular coverage in radians; pi (half turn) is the standard
        parallel-beam scan since opposite rays are redundant.
    """

    num_angles: int
    num_channels: int
    grid: Grid2D = field(default=None)  # type: ignore[assignment]
    angle_range: float = np.pi

    def __post_init__(self) -> None:
        if self.num_angles <= 0 or self.num_channels <= 0:
            raise ValueError(
                f"geometry must be non-empty, got {self.num_angles} x {self.num_channels}"
            )
        if self.grid is None:
            object.__setattr__(self, "grid", Grid2D(self.num_channels))

    @property
    def sinogram_shape(self) -> tuple[int, int]:
        """Sinogram array shape ``(M, N)``."""
        return (self.num_angles, self.num_channels)

    @property
    def num_rays(self) -> int:
        """Total ray count ``M * N``."""
        return self.num_angles * self.num_channels

    def angles(self) -> np.ndarray:
        """Projection angles in radians, shape ``(M,)``."""
        return np.arange(self.num_angles) * (self.angle_range / self.num_angles)

    def channel_offsets(self) -> np.ndarray:
        """Signed physical detector offsets ``s_k``, shape ``(N,)``.

        Channels are centred on the rotation axis and spaced one pixel
        apart, covering the tomogram width exactly.
        """
        n = self.num_channels
        return (np.arange(n) - n / 2.0 + 0.5) * self.grid.pixel_size

    def ray_directions(self) -> np.ndarray:
        """Unit ray directions per angle, shape ``(M, 2)``."""
        theta = self.angles()
        return np.stack([-np.sin(theta), np.cos(theta)], axis=1)

    def detector_axes(self) -> np.ndarray:
        """Unit detector-axis directions per angle, shape ``(M, 2)``."""
        theta = self.angles()
        return np.stack([np.cos(theta), np.sin(theta)], axis=1)

    def ray_origins(self, angle_index: int) -> np.ndarray:
        """Physical origins of all channels of one projection, shape ``(N, 2)``.

        Origins sit on the detector axis through the rotation centre;
        since rays are infinite lines, any point on the ray serves.
        """
        axis = self.detector_axes()[angle_index]
        s = self.channel_offsets()
        return s[:, None] * axis[None, :]

    def ray(self, angle_index: int, channel_index: int) -> Ray:
        """Construct the :class:`Ray` for one sinogram entry."""
        if not 0 <= angle_index < self.num_angles:
            raise IndexError(f"angle index {angle_index} out of range")
        if not 0 <= channel_index < self.num_channels:
            raise IndexError(f"channel index {channel_index} out of range")
        o = self.ray_origins(angle_index)[channel_index]
        d = self.ray_directions()[angle_index]
        return Ray(
            origin=(float(o[0]), float(o[1])),
            direction=(float(d[0]), float(d[1])),
            angle_index=angle_index,
            channel_index=channel_index,
        )

    def ray_index(self, angle_index: np.ndarray, channel_index: np.ndarray) -> np.ndarray:
        """Row-major flat sinogram index of ``(angle, channel)`` pairs."""
        return np.asarray(angle_index) * self.num_channels + np.asarray(channel_index)
