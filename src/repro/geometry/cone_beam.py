"""Cone-beam scan geometry on a 3D voxel grid (extension beyond the paper).

MemXCT evaluates parallel-beam synchrotron slices, but Section 3's
memoization argument is geometry-agnostic: anything that yields rays
can be traced once into the same CSR/buffered/ELL structures.  The
cone-beam circular orbit — a point source and a flat 2D detector
rotating around the z axis — is the standard lab-/clinical-CT 3D
geometry (cf. TIGRE, arXiv 1905.03748; Petascale XCT, arXiv
2009.07226) and exercises the whole pipeline in 3D: every detector
pixel of every view is one ray through a :class:`Grid3D` voxel volume,
and the resulting matrix drops into the unchanged orderings,
transpose, kernel layouts, solvers, and distributed substrate.

The 2D machinery only ever needs a *layout rectangle* per domain (the
space-filling orderings are bijections over flat indices), so the 3D
domains expose themselves as rectangles via ``tomo_layout_shape`` /
``sino_layout_shape``: the volume as ``(nz * n, n)`` (slices stacked
vertically) and the projection stack as ``(num_angles * det_rows,
det_cols)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid2D  # noqa: F401  (re-exported neighbours)

__all__ = ["Grid3D", "ConeBeamGeometry"]


@dataclass(frozen=True)
class Grid3D:
    """An ``n x n x nz`` voxel grid centred on the rotation axis.

    Parameters
    ----------
    n:
        Voxels along each transaxial side (x and y).  The grid covers
        ``[-n/2, n/2]^2`` in the rotation plane.
    nz:
        Voxels along the rotation axis z, covering ``[-nz/2, nz/2]``.
    voxel_size:
        Physical side length of one (cubic) voxel.
    """

    n: int
    nz: int
    voxel_size: float = 1.0

    def __post_init__(self) -> None:
        if self.n <= 0 or self.nz <= 0:
            raise ValueError(f"grid size must be positive, got {self.n} x {self.nz}")
        if self.voxel_size <= 0:
            raise ValueError(f"voxel size must be positive, got {self.voxel_size}")

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape ``(nz, n, n)`` of the volume (z, y, x)."""
        return (self.nz, self.n, self.n)

    @property
    def num_voxels(self) -> int:
        return self.n * self.n * self.nz

    @property
    def num_pixels(self) -> int:
        """Alias of :attr:`num_voxels` (duck-types as a 2D grid)."""
        return self.num_voxels

    @property
    def pixel_size(self) -> float:
        """Alias of :attr:`voxel_size` (duck-types as a 2D grid)."""
        return self.voxel_size

    @property
    def extent(self) -> float:
        """Physical transaxial side length."""
        return self.n * self.voxel_size

    @property
    def half_extent(self) -> float:
        return 0.5 * self.extent

    @property
    def extent_z(self) -> float:
        """Physical axial height."""
        return self.nz * self.voxel_size

    @property
    def half_extent_z(self) -> float:
        return 0.5 * self.extent_z

    def x_planes(self) -> np.ndarray:
        """Physical x coordinates of the ``n + 1`` yz grid planes."""
        return (np.arange(self.n + 1) - self.n / 2.0) * self.voxel_size

    def y_planes(self) -> np.ndarray:
        return self.x_planes()

    def z_planes(self) -> np.ndarray:
        """Physical z coordinates of the ``nz + 1`` xy grid planes."""
        return (np.arange(self.nz + 1) - self.nz / 2.0) * self.voxel_size

    def voxel_index(
        self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray
    ) -> np.ndarray:
        """Row-major flat index of voxel ``(ix, iy, iz)``.

        Matches ``volume.reshape(nz, n, n)[iz, iy, ix]`` with the same
        bottom-up axis conventions as :meth:`Grid2D.pixel_index` within
        each slice.
        """
        return (np.asarray(iz) * self.n + np.asarray(iy)) * self.n + np.asarray(ix)

    def contains(self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
        ix, iy, iz = np.asarray(ix), np.asarray(iy), np.asarray(iz)
        return (
            (ix >= 0) & (ix < self.n)
            & (iy >= 0) & (iy < self.n)
            & (iz >= 0) & (iz < self.nz)
        )


@dataclass(frozen=True)
class ConeBeamGeometry:
    """Circular-orbit cone-beam geometry with a flat 2D detector.

    The source orbits at radius ``source_distance`` in the ``z = 0``
    plane; the detector (``det_rows x det_cols`` pixels) sits opposite
    at radius ``detector_distance``, perpendicular to the central ray,
    with its row axis parallel to z.  Projection data is a
    ``(num_angles, det_rows, det_cols)`` stack; each detector pixel of
    each view is one ray from the source point through the pixel
    centre.

    Parameters
    ----------
    num_angles:
        Source positions ``M`` over ``[0, angle_range)`` (cone data
        needs the full turn by default; opposite rays are not
        redundant).
    det_rows, det_cols:
        Detector pixels along z (rows) and transaxially (columns).
    source_distance:
        Rotation axis to source, in voxel units; must clear the grid's
        transaxial diagonal.
    detector_distance:
        Rotation axis to detector plane (defaults to
        ``source_distance``).
    det_spacing:
        Detector pixel pitch; defaults to ``magnification *
        voxel_size`` so the panel covers the magnified volume exactly
        when ``det_cols = n`` / ``det_rows = nz`` (mirroring the
        parallel-beam "channels span the tomogram" convention).
    grid:
        Voxel grid (defaults to ``Grid3D(det_cols, det_rows)``).
    angle_range:
        Angular coverage in radians (default full turn).
    """

    num_angles: int
    det_rows: int
    det_cols: int
    source_distance: float
    detector_distance: float | None = None
    det_spacing: float | None = None
    grid: Grid3D = field(default=None)  # type: ignore[assignment]
    angle_range: float = 2.0 * np.pi

    def __post_init__(self) -> None:
        if self.num_angles <= 0 or self.det_rows <= 0 or self.det_cols <= 0:
            raise ValueError(
                f"geometry must be non-empty, got {self.num_angles} x "
                f"{self.det_rows} x {self.det_cols}"
            )
        if self.grid is None:
            object.__setattr__(self, "grid", Grid3D(self.det_cols, self.det_rows))
        min_distance = self.grid.half_extent * np.sqrt(2.0)
        if self.source_distance <= min_distance:
            raise ValueError(
                f"source distance {self.source_distance} must clear the grid "
                f"(> {min_distance:.2f})"
            )
        if self.detector_distance is None:
            object.__setattr__(self, "detector_distance", float(self.source_distance))
        if self.detector_distance < 0:
            raise ValueError(
                f"detector distance must be >= 0, got {self.detector_distance}"
            )
        if self.det_spacing is None:
            object.__setattr__(
                self, "det_spacing", self.magnification * self.grid.voxel_size
            )
        if self.det_spacing <= 0:
            raise ValueError(f"detector spacing must be > 0, got {self.det_spacing}")
        if not 0 < self.angle_range <= 2.0 * np.pi + 1e-12:
            raise ValueError(
                f"angle range must be in (0, 2*pi], got {self.angle_range}"
            )

    # -- sizes and layouts ------------------------------------------------

    @property
    def magnification(self) -> float:
        """Geometric magnification ``(R_src + R_det) / R_src``."""
        det = (
            self.source_distance
            if self.detector_distance is None
            else self.detector_distance
        )
        return (self.source_distance + det) / self.source_distance

    @property
    def num_channels(self) -> int:
        """Rays per projection (one per detector pixel)."""
        return self.det_rows * self.det_cols

    @property
    def num_rays(self) -> int:
        return self.num_angles * self.num_channels

    @property
    def sinogram_shape(self) -> tuple[int, int, int]:
        """Projection-stack shape ``(M, det_rows, det_cols)``."""
        return (self.num_angles, self.det_rows, self.det_cols)

    @property
    def projection_shape(self) -> tuple[int, int, int]:
        return self.sinogram_shape

    @property
    def volume_shape(self) -> tuple[int, int, int]:
        return self.grid.shape

    @property
    def tomo_layout_shape(self) -> tuple[int, int]:
        """Layout rectangle the domain orderings see for the volume."""
        return (self.grid.nz * self.grid.n, self.grid.n)

    @property
    def sino_layout_shape(self) -> tuple[int, int]:
        """Layout rectangle for the projection stack."""
        return (self.num_angles * self.det_rows, self.det_cols)

    # -- rays -------------------------------------------------------------

    def angles(self) -> np.ndarray:
        return np.arange(self.num_angles) * (self.angle_range / self.num_angles)

    def row_offsets(self) -> np.ndarray:
        """Signed physical z offsets of detector rows, shape ``(det_rows,)``."""
        r = self.det_rows
        return (np.arange(r) - r / 2.0 + 0.5) * self.det_spacing

    def col_offsets(self) -> np.ndarray:
        """Signed transaxial offsets of detector columns, shape ``(det_cols,)``."""
        c = self.det_cols
        return (np.arange(c) - c / 2.0 + 0.5) * self.det_spacing

    def source_position(self, angle_index: int) -> np.ndarray:
        theta = self.angles()[angle_index]
        return self.source_distance * np.array([np.cos(theta), np.sin(theta), 0.0])

    def detector_pixels(self, angle_index: int) -> np.ndarray:
        """Physical centres of all detector pixels of one view.

        Shape ``(det_rows * det_cols, 3)``, row-major over (row, col).
        """
        theta = self.angles()[angle_index]
        s_hat = np.array([np.cos(theta), np.sin(theta), 0.0])
        u_hat = np.array([-np.sin(theta), np.cos(theta), 0.0])
        center = -self.detector_distance * s_hat
        u = self.col_offsets()
        v = self.row_offsets()
        # (rows, cols, 3), flattened row-major to match ray_index.
        pix = (
            center[None, None, :]
            + u[None, :, None] * u_hat[None, None, :]
            + v[:, None, None] * np.array([0.0, 0.0, 1.0])[None, None, :]
        )
        return pix.reshape(-1, 3)

    def ray_bundle(self, angle_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(origins, unit directions) of all rays of one view, ``(K, 3)`` each."""
        source = self.source_position(angle_index)
        pixels = self.detector_pixels(angle_index)
        directions = pixels - source[None, :]
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.broadcast_to(source, directions.shape)
        return origins, directions

    def ray_index(
        self, angle_index: np.ndarray, channel_index: np.ndarray
    ) -> np.ndarray:
        """Flat projection-stack index of ``(angle, row * det_cols + col)``."""
        return np.asarray(angle_index) * self.num_channels + np.asarray(channel_index)

    # -- plan-cache identity ----------------------------------------------

    def fingerprint_fields(self) -> dict:
        """Geometry section of the plan fingerprint (see repro.cache).

        Parallel-beam fingerprints keep their historical document —
        this method exists only on geometries added later, so old cache
        keys are untouched.
        """
        return {
            "kind": "cone",
            "num_angles": int(self.num_angles),
            "det_rows": int(self.det_rows),
            "det_cols": int(self.det_cols),
            "source_distance": float(self.source_distance).hex(),
            "detector_distance": float(self.detector_distance).hex(),
            "det_spacing": float(self.det_spacing).hex(),
            "angle_range": float(self.angle_range).hex(),
            "grid_n": int(self.grid.n),
            "grid_nz": int(self.grid.nz),
            "voxel_size": float(self.grid.voxel_size).hex(),
        }
