"""Pixel grid describing the tomogram (reconstruction) domain.

MemXCT reconstructs a square ``N x N`` tomogram from a sinogram with
``M`` projection angles and ``N`` detector channels.  The grid maps
integer pixel coordinates to physical coordinates used by the ray
tracer.  Physical units are chosen so that one pixel has unit side
length; the grid is centred on the origin, which coincides with the
rotation axis of the scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid2D"]


@dataclass(frozen=True)
class Grid2D:
    """A square 2D pixel grid centred on the rotation axis.

    Parameters
    ----------
    n:
        Number of pixels along each side.  The grid covers the physical
        square ``[-n/2, n/2] x [-n/2, n/2]``.
    pixel_size:
        Physical side length of one pixel (default 1.0).  Intersection
        lengths returned by the ray tracer scale linearly with it.
    """

    n: int
    pixel_size: float = 1.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"grid size must be positive, got {self.n}")
        if self.pixel_size <= 0:
            raise ValueError(f"pixel size must be positive, got {self.pixel_size}")

    @property
    def shape(self) -> tuple[int, int]:
        """Array shape ``(rows, cols)`` of the tomogram."""
        return (self.n, self.n)

    @property
    def num_pixels(self) -> int:
        """Total pixel count ``n * n``."""
        return self.n * self.n

    @property
    def extent(self) -> float:
        """Physical side length of the grid."""
        return self.n * self.pixel_size

    @property
    def half_extent(self) -> float:
        """Physical distance from centre to an edge."""
        return 0.5 * self.extent

    def x_planes(self) -> np.ndarray:
        """Physical x coordinates of the ``n + 1`` vertical grid lines."""
        return (np.arange(self.n + 1) - self.n / 2.0) * self.pixel_size

    def y_planes(self) -> np.ndarray:
        """Physical y coordinates of the ``n + 1`` horizontal grid lines."""
        return self.x_planes()

    def pixel_index(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Row-major flat index of pixel column ``ix``, row ``iy``.

        ``iy`` indexes rows from the bottom of the physical domain so
        that ``tomogram.reshape(n, n)[iy, ix]`` addresses the pixel whose
        lower-left corner is at ``(x_planes()[ix], y_planes()[iy])``.
        """
        return np.asarray(iy) * self.n + np.asarray(ix)

    def contains(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Boolean mask of pixel coordinates inside the grid."""
        ix = np.asarray(ix)
        iy = np.asarray(iy)
        return (ix >= 0) & (ix < self.n) & (iy >= 0) & (iy < self.n)

    def pixel_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Physical ``(x, y)`` centre coordinates of all pixels.

        Returns two arrays of shape ``(n, n)`` in row-major pixel order
        (row index = y, column index = x).
        """
        c = (np.arange(self.n) - self.n / 2.0 + 0.5) * self.pixel_size
        x, y = np.meshgrid(c, c, indexing="xy")
        return x, y
