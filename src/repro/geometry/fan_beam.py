"""Fan-beam scan geometry (extension beyond the paper).

The paper evaluates parallel-beam synchrotron data, but the
memory-centric machinery is geometry-agnostic: anything that yields
rays can be memoized into the same CSR/buffered structures.  Fan-beam
(a point source opposite a detector arc, both rotating) is the common
lab-CT geometry and provides a stress test for that claim — its rays
are not parallel, so per-angle tracing cannot share a direction and
falls back to the generic slab/crossing computation.

As the source distance grows, fan-beam rays become parallel; the test
suite checks convergence to the parallel-beam matrix in that limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid2D

__all__ = ["FanBeamGeometry"]


@dataclass(frozen=True)
class FanBeamGeometry:
    """Equiangular fan-beam geometry over a full rotation.

    Parameters
    ----------
    num_angles:
        Source positions ``M``, uniform over ``[0, 2*pi)`` (fan data
        needs the full turn; opposite rays are not redundant).
    num_channels:
        Detector channels ``N``.
    source_distance:
        Distance from the rotation axis to the x-ray source, in pixel
        units; must clear the grid (> half diagonal).
    fan_angle:
        Full opening angle of the fan in radians; by default sized so
        the fan covers the reconstruction circle exactly.
    grid:
        Tomogram grid (defaults to ``N x N``).
    """

    num_angles: int
    num_channels: int
    source_distance: float
    fan_angle: float | None = None
    grid: Grid2D = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_angles <= 0 or self.num_channels <= 0:
            raise ValueError(
                f"geometry must be non-empty, got {self.num_angles} x {self.num_channels}"
            )
        if self.grid is None:
            object.__setattr__(self, "grid", Grid2D(self.num_channels))
        min_distance = self.grid.half_extent * np.sqrt(2.0)
        if self.source_distance <= min_distance:
            raise ValueError(
                f"source distance {self.source_distance} must clear the grid "
                f"(> {min_distance:.2f})"
            )
        if self.fan_angle is None:
            # Cover the inscribed reconstruction circle.
            object.__setattr__(
                self,
                "fan_angle",
                2.0 * np.arcsin(min(self.grid.half_extent / self.source_distance, 0.999)),
            )
        if not 0 < self.fan_angle < np.pi:
            raise ValueError(f"fan angle must be in (0, pi), got {self.fan_angle}")

    @property
    def sinogram_shape(self) -> tuple[int, int]:
        return (self.num_angles, self.num_channels)

    @property
    def num_rays(self) -> int:
        return self.num_angles * self.num_channels

    def angles(self) -> np.ndarray:
        """Source rotation angles over the full turn."""
        return np.arange(self.num_angles) * (2.0 * np.pi / self.num_angles)

    def channel_angles(self) -> np.ndarray:
        """Within-fan ray angles (equiangular channels), shape ``(N,)``."""
        n = self.num_channels
        return (np.arange(n) - n / 2.0 + 0.5) * (self.fan_angle / n)

    def source_position(self, angle_index: int) -> np.ndarray:
        """Physical source location for one rotation angle."""
        theta = self.angles()[angle_index]
        return self.source_distance * np.array([np.cos(theta), np.sin(theta)])

    def ray_directions(self, angle_index: int) -> np.ndarray:
        """Unit directions of all channels of one fan, shape ``(N, 2)``.

        The central ray points from the source through the rotation
        axis; channels spread by their within-fan angle.
        """
        theta = self.angles()[angle_index]
        gamma = self.channel_angles()
        # Central direction is -source direction; rotate by gamma.
        ray_angle = theta + np.pi + gamma
        return np.stack([np.cos(ray_angle), np.sin(ray_angle)], axis=1)

    def ray_index(self, angle_index: np.ndarray, channel_index: np.ndarray) -> np.ndarray:
        """Row-major flat sinogram index of ``(angle, channel)`` pairs."""
        return np.asarray(angle_index) * self.num_channels + np.asarray(channel_index)
