"""Scan geometry: pixel/voxel grids, parallel-, fan- and cone-beam layouts."""

from .cone_beam import ConeBeamGeometry, Grid3D
from .fan_beam import FanBeamGeometry
from .grid import Grid2D
from .parallel_beam import ParallelBeamGeometry, Ray

__all__ = [
    "ConeBeamGeometry",
    "FanBeamGeometry",
    "Grid2D",
    "Grid3D",
    "ParallelBeamGeometry",
    "Ray",
]
