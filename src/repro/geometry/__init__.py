"""Scan geometry: pixel grids, parallel-beam and fan-beam layouts."""

from .fan_beam import FanBeamGeometry
from .grid import Grid2D
from .parallel_beam import ParallelBeamGeometry, Ray

__all__ = ["FanBeamGeometry", "Grid2D", "ParallelBeamGeometry", "Ray"]
