"""Two-level rank topology for the simulated distributed substrate.

MemXCT's original runs are flat: every MPI rank talks to every other
rank over the same network link.  Petascale XCT (arXiv 2009.07226)
extends the design to multi-GPU nodes where the communicator is
*hierarchical*: the M ranks sharing a node first reduce/gather over
the fast intra-node fabric (NVLink / shared memory), then one leader
per node exchanges the aggregated payload over the slower inter-node
network.  :class:`Topology` is the static description of that
grouping — which ranks live on which node — consumed by
:class:`~repro.topology.HierComm`, the partitioned operator's
degradation policy, and the α–β cost model.

A topology partitions ranks ``0..P-1`` into contiguous node groups.
Contiguity matters: the both-domain decomposition assigns each rank a
contiguous pseudo-Hilbert range, so contiguous rank groups map to
spatially compact super-domains per node — exactly the property the
paper's hierarchical exchange exploits (neighbouring subdomains share
most of their communication partners).

Ambient configuration follows the house pattern (``REPRO_FAULTS``,
``REPRO_WORKERS``, ``REPRO_DTYPE``): setting ``REPRO_TOPOLOGY`` to
e.g. ``nodes:2,ranks:2`` makes every default-constructed communicator
hierarchical, so unmodified test suites can run on the two-level path
in CI.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

__all__ = ["Topology", "parse_topology", "TOPOLOGY_ENV"]

#: Environment variable supplying an ambient topology spec.
TOPOLOGY_ENV = "REPRO_TOPOLOGY"


@dataclass(frozen=True)
class Topology:
    """Partition of ranks ``0..P-1`` into contiguous node groups.

    ``groups[g]`` is the tuple of global ranks placed on node ``g``.
    A *flat* topology has one single group holding every rank (one
    "node", no inter-node links — equivalently the classic flat
    communicator where every pair shares one link class).
    """

    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("topology needs at least one node group")
        flat: list[int] = []
        for group in self.groups:
            if not group:
                raise ValueError("topology node groups must be non-empty")
            flat.extend(group)
        expected = list(range(len(flat)))
        if sorted(flat) != expected:
            raise ValueError(
                f"topology groups must partition ranks 0..{len(flat) - 1} "
                f"exactly, got {self.groups}"
            )
        if flat != sorted(flat):
            raise ValueError(
                "topology node groups must be contiguous ascending rank "
                f"runs, got {self.groups}"
            )

    # -- constructors ---------------------------------------------------

    @staticmethod
    def flat(num_ranks: int) -> "Topology":
        """All ranks on one node: the classic flat communicator."""
        if num_ranks <= 0:
            raise ValueError(f"num_ranks must be positive, got {num_ranks}")
        return Topology((tuple(range(num_ranks)),))

    @staticmethod
    def hierarchical(num_nodes: int, ranks_per_node: int) -> "Topology":
        """``num_nodes`` nodes of ``ranks_per_node`` ranks each."""
        if num_nodes <= 0 or ranks_per_node <= 0:
            raise ValueError(
                "num_nodes and ranks_per_node must be positive, got "
                f"{num_nodes} x {ranks_per_node}"
            )
        return Topology(
            tuple(
                tuple(range(g * ranks_per_node, (g + 1) * ranks_per_node))
                for g in range(num_nodes)
            )
        )

    @staticmethod
    def grouped(num_ranks: int, ranks_per_node: int) -> "Topology":
        """Group ``num_ranks`` into nodes of ``ranks_per_node`` (last may
        be partial) — how an ambient spec applies to an arbitrary P."""
        if num_ranks <= 0 or ranks_per_node <= 0:
            raise ValueError(
                "num_ranks and ranks_per_node must be positive, got "
                f"{num_ranks} / {ranks_per_node}"
            )
        num_nodes = math.ceil(num_ranks / ranks_per_node)
        return Topology(
            tuple(
                tuple(range(g * ranks_per_node, min((g + 1) * ranks_per_node, num_ranks)))
                for g in range(num_nodes)
            )
        )

    @staticmethod
    def ambient(num_ranks: int) -> "Topology":
        """Topology for ``num_ranks`` honouring ``REPRO_TOPOLOGY``.

        Without the env var (or for a single rank) this is flat.  With
        ``nodes:N,ranks:M`` set, ranks are grouped M per node — exactly
        N nodes when ``N*M == num_ranks``, otherwise as many nodes of M
        as the rank count fills (the node *count* in the spec describes
        the reference machine, not a constraint on every communicator).
        """
        spec = os.environ.get(TOPOLOGY_ENV, "").strip()
        if not spec or num_ranks <= 1:
            return Topology.flat(num_ranks)
        _, ranks_per_node = _parse_spec(spec)
        if ranks_per_node >= num_ranks:
            return Topology.flat(num_ranks)
        return Topology.grouped(num_ranks, ranks_per_node)

    # -- queries --------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def num_nodes(self) -> int:
        return len(self.groups)

    @property
    def is_flat(self) -> bool:
        """True when there is no inter-node link to model."""
        return len(self.groups) == 1

    @property
    def ranks_per_node(self) -> int:
        """Largest node group (uniform size for regular topologies)."""
        return max(len(g) for g in self.groups)

    def node_of(self, rank: int) -> int:
        """Node group index owning ``rank``."""
        for g, group in enumerate(self.groups):
            if group[0] <= rank <= group[-1]:
                return g
        raise ValueError(f"rank {rank} not in topology of {self.num_ranks} ranks")

    def group(self, node: int) -> tuple[int, ...]:
        return self.groups[node]

    def leader(self, node: int) -> int:
        """The rank that stages this node's inter-node traffic."""
        return self.groups[node][0]

    def node_map(self) -> list[int]:
        """``node_map()[rank]`` = node index of each rank."""
        owners = [0] * self.num_ranks
        for g, group in enumerate(self.groups):
            for r in group:
                owners[r] = g
        return owners

    def without_ranks(self, dead: set[int] | frozenset[int]) -> "Topology":
        """Topology over the survivors, renumbered ``0..P'-1``.

        Node groups keep their surviving members; groups whose every
        rank died disappear.  Used when rank crashes degrade the
        communicator: the shrunken topology preserves node locality for
        the survivors.
        """
        survivors = [r for r in range(self.num_ranks) if r not in dead]
        if not survivors:
            raise ValueError("cannot build a topology with zero surviving ranks")
        renumber = {r: i for i, r in enumerate(survivors)}
        groups = []
        for group in self.groups:
            alive = tuple(renumber[r] for r in group if r not in dead)
            if alive:
                groups.append(alive)
        return Topology(tuple(groups))

    def describe(self) -> str:
        if self.is_flat:
            return f"flat({self.num_ranks})"
        sizes = [len(g) for g in self.groups]
        if len(set(sizes)) == 1:
            return f"nodes:{self.num_nodes},ranks:{sizes[0]}"
        return f"nodes:{self.num_nodes},ranks:{'/'.join(str(s) for s in sizes)}"


def _parse_spec(spec: str) -> tuple[int, int]:
    """``"nodes:N,ranks:M"`` -> ``(N, M)`` (either key optional)."""
    nodes = ranks = None
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise ValueError(
                f"bad topology spec {spec!r}: expected nodes:N,ranks:M"
            )
        key, _, value = part.partition(":")
        key = key.strip().lower()
        try:
            parsed = int(value)
        except ValueError:
            raise ValueError(
                f"bad topology spec {spec!r}: {value!r} is not an integer"
            ) from None
        if parsed <= 0:
            raise ValueError(f"bad topology spec {spec!r}: counts must be positive")
        if key in ("nodes", "n"):
            nodes = parsed
        elif key in ("ranks", "m", "ranks_per_node"):
            ranks = parsed
        else:
            raise ValueError(f"bad topology spec {spec!r}: unknown key {key!r}")
    if nodes is None and ranks is None:
        raise ValueError(f"bad topology spec {spec!r}: expected nodes:N,ranks:M")
    return nodes or 1, ranks or 1


def parse_topology(spec: str, num_ranks: int | None = None) -> Topology:
    """Parse ``nodes:N,ranks:M`` (or ``flat``) into a :class:`Topology`.

    With ``num_ranks`` given, the spec is validated against it: an
    exact ``N*M == num_ranks`` grouping uses N nodes of M; otherwise
    ranks are grouped M per node (the CLI accepts a machine-shaped
    spec for any ``--ranks``).
    """
    spec = spec.strip()
    if spec.lower() in ("flat", ""):
        if num_ranks is None:
            raise ValueError("flat topology needs a rank count")
        return Topology.flat(num_ranks)
    nodes, ranks_per_node = _parse_spec(spec)
    if num_ranks is None:
        return Topology.hierarchical(nodes, ranks_per_node)
    if ranks_per_node >= num_ranks:
        return Topology.flat(num_ranks)
    return Topology.grouped(num_ranks, ranks_per_node)
