"""Two-level rank topology and hierarchical communication substrate.

See :mod:`repro.topology.topology` for the :class:`Topology`
abstraction (node groups of ranks, ambient ``REPRO_TOPOLOGY``
configuration) and :mod:`repro.topology.hiercomm` for
:class:`HierComm`, the hierarchical intra-node-stage /
inter-node-exchange communicator that is bit-exact with the flat
:class:`~repro.dist.SimComm`.
"""

from .hiercomm import HierComm, HierLog
from .topology import TOPOLOGY_ENV, Topology, parse_topology

__all__ = [
    "HierComm",
    "HierLog",
    "Topology",
    "parse_topology",
    "TOPOLOGY_ENV",
]
