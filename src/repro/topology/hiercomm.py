"""Hierarchical two-level communicator over :class:`SimComm`.

Petascale XCT (arXiv 2009.07226, Fig. 9) replaces MemXCT's flat
Alltoallv with a two-level exchange on multi-GPU nodes: each node's M
ranks first combine their outbound remote payloads over the intra-node
fabric at a designated *leader*, the leaders exchange one aggregated
message per node pair over the inter-node network, and received
payloads fan back out to their destination ranks intra-node.  The
arithmetic is unchanged — the same partial values reach the same
owners — but the message structure is radically different: O(G²)
inter-node messages instead of O(P²), with the latency-bound startup
cost paid per *node* rather than per *rank*.

:class:`HierComm` models exactly that split while remaining **bit-exact
with the flat path by construction**: payload delivery and owner-side
reduction order are delegated to the parent :class:`SimComm` (the same
arrays arrive in the same order, and under fault injection the same
RNG draws happen in the same sequence), and the hierarchy is applied
as a second accounting layer.  ``comm.log`` therefore still records
the flat logical rank-to-rank traffic (Fig. 7 matrices, cost models
and existing tests are unchanged), while ``comm.hier`` records the
two-level traffic split — intra-node staging bytes/messages and the
aggregated node-to-node exchange matrix — feeding the
``comm.intra_*`` / ``comm.inter_*`` counters and the hierarchical α–β
cost model in :mod:`repro.dist.comm_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import (
    COMM_INTER_BYTES,
    COMM_INTER_MESSAGES,
    COMM_INTRA_BYTES,
    COMM_INTRA_MESSAGES,
    REGISTRY,
    add_count,
    span,
)
from ..dist.simmpi import SimComm
from ..resilience.faults import FaultInjector
from .topology import Topology

__all__ = ["HierComm", "HierLog"]


@dataclass
class HierLog:
    """Two-level traffic split accumulated by a :class:`HierComm`.

    ``inter_volume[g, h]`` is the aggregate payload node ``g``'s leader
    sent to node ``h``'s leader; intra fields count the rank<->leader
    staging hops plus same-node rank-to-rank messages.  Like
    :class:`~repro.dist.simmpi.CommLog` this records *logical* traffic
    — fault-injection retries are charged to ``fault.*`` counters, not
    here.
    """

    size: int
    num_nodes: int
    intra_bytes: int = 0
    intra_messages: int = 0
    inter_messages: int = 0
    collective_calls: int = 0
    inter_volume: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.inter_volume is None:
            self.inter_volume = np.zeros(
                (self.num_nodes, self.num_nodes), dtype=np.int64
            )

    def inter_bytes(self) -> int:
        """Total bytes that crossed the inter-node network."""
        return int(self.inter_volume.sum())

    def total_bytes(self) -> int:
        """Intra staging traffic plus inter-node traffic."""
        return self.intra_bytes + self.inter_bytes()

    def max_inter_send(self) -> int:
        """Largest per-node outbound aggregate (inter link bottleneck)."""
        return int(self.inter_volume.sum(axis=1).max()) if self.num_nodes else 0


class HierComm(SimComm):
    """Two-level communicator: intra-node staging + inter-node exchange.

    Delivery (and therefore every numerical result, reduction order,
    and fault-injection RNG draw) is delegated verbatim to the flat
    :class:`SimComm` — a :class:`HierComm` is bit-exact with a flat
    communicator of the same size on any workload.  What the subclass
    adds is the hierarchical *accounting*: each collective's traffic is
    re-expressed as the two-level message pattern of Petascale XCT and
    recorded in :attr:`hier` plus the ``comm.intra_*`` /
    ``comm.inter_*`` counters.
    """

    def __init__(self, topology: Topology, fault_injector: FaultInjector | None = None):
        super().__init__(topology.num_ranks, fault_injector)
        self.topology = topology
        self._node_of = topology.node_map()
        self.hier = HierLog(topology.num_ranks, topology.num_nodes)

    def reset_log(self) -> None:
        super().reset_log()
        self.hier = HierLog(self.topology.num_ranks, self.topology.num_nodes)

    # -- collectives ----------------------------------------------------

    def _alltoallv_exchange(
        self, send: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        # Flat delivery first: on a crash or undeliverable message the
        # exception propagates and no hierarchical traffic is charged
        # (the collective never completed).
        recv = super()._alltoallv_exchange(send)
        self._account_alltoallv(send)
        return recv

    def _allreduce_exchange(self, contributions: list[np.ndarray]) -> np.ndarray:
        total = super()._allreduce_exchange(contributions)
        self._account_allreduce(contributions)
        return total

    # -- two-level accounting -------------------------------------------

    def _account_alltoallv(self, send: list[list[np.ndarray]]) -> None:
        hier = self.hier
        node_of = self._node_of
        topo = self.topology
        hier.collective_calls += 1
        intra_bytes = 0
        intra_messages = 0
        # Aggregate payload each rank ships to / receives from remote
        # nodes (the rank<->leader staging hops), and the node-pair
        # aggregates that actually cross the network.
        remote_out = [0] * self.size
        remote_in = [0] * self.size
        inter = np.zeros((topo.num_nodes, topo.num_nodes), dtype=np.int64)
        for p in range(self.size):
            g = node_of[p]
            for q in range(self.size):
                if p == q:
                    continue
                nbytes = int(np.asarray(send[p][q]).nbytes)
                if not nbytes:
                    continue
                h = node_of[q]
                if g == h:
                    # Same node: one hop over the intra fabric, no
                    # leader staging.
                    intra_bytes += nbytes
                    intra_messages += 1
                else:
                    remote_out[p] += nbytes
                    remote_in[q] += nbytes
                    inter[g, h] += nbytes
        # Stage-up: each rank with outbound remote payload ships its
        # combined buffer to the node leader (leaders already hold
        # their own data — no hop).
        for p in range(self.size):
            if remote_out[p] and p != topo.leader(node_of[p]):
                intra_bytes += remote_out[p]
                intra_messages += 1
        # Stage-down: the receiving leader fans each rank's inbound
        # remote payload back out.
        for q in range(self.size):
            if remote_in[q] and q != topo.leader(node_of[q]):
                intra_bytes += remote_in[q]
                intra_messages += 1
        inter_messages = int(np.count_nonzero(inter))
        hier.intra_bytes += intra_bytes
        hier.intra_messages += intra_messages
        hier.inter_volume += inter
        hier.inter_messages += inter_messages
        self._emit(intra_bytes, intra_messages, int(inter.sum()), inter_messages)

    def _account_allreduce(self, contributions: list[np.ndarray]) -> None:
        hier = self.hier
        topo = self.topology
        hier.collective_calls += 1
        nbytes = int(np.asarray(contributions[0]).nbytes)
        intra_bytes = 0
        intra_messages = 0
        # Reduce-to-leader then broadcast-from-leader inside each node:
        # (M_g - 1) messages each way.
        for group in topo.groups:
            hops = 2 * (len(group) - 1)
            intra_messages += hops
            intra_bytes += hops * nbytes
        # Leaders run recursive halving over the inter-node network:
        # 2 * (G-1)/G * payload per leader, attributed ring-style like
        # the flat log.
        num_nodes = topo.num_nodes
        inter = np.zeros((num_nodes, num_nodes), dtype=np.int64)
        inter_messages = 0
        if num_nodes > 1:
            per_leader = int(2 * (num_nodes - 1) / num_nodes * nbytes)
            for g in range(num_nodes):
                inter[g, (g + 1) % num_nodes] += per_leader
                inter_messages += 1
        hier.intra_bytes += intra_bytes
        hier.intra_messages += intra_messages
        hier.inter_volume += inter
        hier.inter_messages += inter_messages
        self._emit(intra_bytes, intra_messages, int(inter.sum()), inter_messages)

    def _emit(
        self,
        intra_bytes: int,
        intra_messages: int,
        inter_bytes: int,
        inter_messages: int,
    ) -> None:
        add_count(COMM_INTRA_BYTES, intra_bytes)
        add_count(COMM_INTRA_MESSAGES, intra_messages)
        add_count(COMM_INTER_BYTES, inter_bytes)
        add_count(COMM_INTER_MESSAGES, inter_messages)
        if REGISTRY.active:
            with span(
                "comm.intra_exchange",
                nodes=self.topology.num_nodes,
                bytes=intra_bytes,
                messages=intra_messages,
            ):
                pass
            with span(
                "comm.inter_exchange",
                nodes=self.topology.num_nodes,
                bytes=inter_bytes,
                messages=inter_messages,
            ):
                pass
