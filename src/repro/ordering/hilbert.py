"""Hilbert space-filling curve on a ``2^k x 2^k`` square.

Provides vectorized conversions between 2D coordinates and positions
along the curve (the classic bit-twiddling construction), plus the
eight dihedral symmetries of the curve.  The symmetries are what the
paper's two-level pseudo-Hilbert ordering uses to rotate the
within-tile curves so that consecutive tiles remain connected
("necessary rotations are performed to provide data connectivity among
tiles", paper Section 3.2).

The canonical curve produced by :func:`d2xy` starts at ``(0, 0)`` and
ends at ``(2^k - 1, 0)``: entry and exit are the two corners of the
bottom edge.  Applying a symmetry (and optionally reversing the curve)
yields a curve whose entry/exit lie on any chosen pair of
edge-adjacent corners.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hilbert_xy2d",
    "hilbert_d2xy",
    "hilbert_curve",
    "SYMMETRIES",
    "apply_symmetry",
    "symmetry_endpoints",
]


def _as_int_arrays(*arrays: np.ndarray) -> list[np.ndarray]:
    return [np.asarray(a, dtype=np.int64).copy() for a in arrays]


def hilbert_xy2d(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Map coordinates to positions along the order-``order`` Hilbert curve.

    Parameters
    ----------
    order:
        Curve order ``k``; the curve fills the ``2^k x 2^k`` square.
    x, y:
        Integer coordinate arrays in ``[0, 2^k)``.

    Returns
    -------
    Distances ``d`` along the curve, same shape as ``x``.
    """
    if order < 0:
        raise ValueError(f"curve order must be >= 0, got {order}")
    x, y = _as_int_arrays(x, y)
    side = np.int64(1) << order
    if np.any((x < 0) | (x >= side) | (y < 0) | (y >= side)):
        raise ValueError("coordinates outside the curve square")
    d = np.zeros_like(x)
    s = side >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the recursion sees the canonical frame.
        flip = ry == 0
        swap_flip = flip & (rx == 1)
        x_f = np.where(swap_flip, s - 1 - x, x)
        y_f = np.where(swap_flip, s - 1 - y, y)
        x_new = np.where(flip, y_f, x_f)
        y_new = np.where(flip, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_xy2d`: curve position to coordinates."""
    if order < 0:
        raise ValueError(f"curve order must be >= 0, got {order}")
    d = np.asarray(d, dtype=np.int64)
    side = np.int64(1) << order
    if np.any((d < 0) | (d >= side * side)):
        raise ValueError("curve positions out of range")
    t = d.copy()
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    s = np.int64(1)
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Undo the rotation applied at this level.
        flip = ry == 0
        swap_flip = flip & (rx == 1)
        x_f = np.where(swap_flip, s - 1 - x, x)
        y_f = np.where(swap_flip, s - 1 - y, y)
        x_new = np.where(flip, y_f, x_f)
        y_new = np.where(flip, x_f, y_f)
        x = x_new + s * rx
        y = y_new + s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_curve(order: int) -> np.ndarray:
    """All coordinates of the order-``order`` curve in visiting order.

    Returns an array of shape ``(4^order, 2)`` with columns ``(x, y)``.
    """
    n = np.int64(1) << (2 * order)
    x, y = hilbert_d2xy(order, np.arange(n))
    return np.stack([x, y], axis=1)


#: The eight dihedral symmetries of the square, as (name, transform) pairs.
#: Each transform maps canonical-curve coordinates to rotated coordinates.
SYMMETRIES: tuple[str, ...] = (
    "identity",
    "rot90",
    "rot180",
    "rot270",
    "flip_x",
    "flip_y",
    "transpose",
    "antitranspose",
)


def apply_symmetry(
    name: str, x: np.ndarray, y: np.ndarray, side: int
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one of the eight square symmetries to coordinate arrays.

    Rotations are counter-clockwise.  ``side`` is the square side length.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    m = side - 1
    if name == "identity":
        return x, y
    if name == "rot90":
        return m - y, x
    if name == "rot180":
        return m - x, m - y
    if name == "rot270":
        return y, m - x
    if name == "flip_x":
        return m - x, y
    if name == "flip_y":
        return x, m - y
    if name == "transpose":
        return y, x
    if name == "antitranspose":
        return m - y, m - x
    raise ValueError(f"unknown symmetry {name!r}")


def symmetry_endpoints(order: int) -> dict[tuple[bool, str], tuple[tuple[int, int], tuple[int, int]]]:
    """Entry/exit corners for every (reversed, symmetry) curve variant.

    The canonical curve runs from ``(0, 0)`` to ``(side - 1, 0)``.
    Reversal swaps entry and exit.  The returned mapping lets the
    two-level ordering pick a variant whose entry corner sits next to
    the previous tile's exit.
    """
    side = 1 << order
    m = side - 1
    start = np.array([0]), np.array([0])
    end = np.array([m]), np.array([0])
    table: dict[tuple[bool, str], tuple[tuple[int, int], tuple[int, int]]] = {}
    for name in SYMMETRIES:
        sx, sy = apply_symmetry(name, start[0], start[1], side)
        ex, ey = apply_symmetry(name, end[0], end[1], side)
        a = (int(sx[0]), int(sy[0]))
        b = (int(ex[0]), int(ey[0]))
        table[(False, name)] = (a, b)
        table[(True, name)] = (b, a)
    return table
