"""Domain orderings: uniform API over row-major / Morton / Hilbert layouts.

A :class:`DomainOrdering` is a bijection between the row-major flat
indices of a 2D domain and positions along a 1D layout.  MemXCT applies
such orderings to *both* the tomogram and the sinogram domain; every
matrix, vector, partition, and communication structure downstream is
expressed in ordered coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hilbert import hilbert_xy2d
from .morton import morton_encode
from .pseudo_hilbert import TwoLevelOrdering, pseudo_hilbert_order

__all__ = ["DomainOrdering", "make_ordering", "ORDERING_NAMES"]

ORDERING_NAMES = ("row-major", "morton", "hilbert", "pseudo-hilbert")


@dataclass(frozen=True)
class DomainOrdering:
    """A bijective layout of a ``rows x cols`` domain.

    Attributes
    ----------
    name:
        Ordering scheme name (one of :data:`ORDERING_NAMES`).
    rows, cols:
        Domain shape.
    perm:
        ``perm[k]`` = row-major flat index of position ``k``.
    rank:
        Inverse: ``rank[flat]`` = layout position of a row-major index.
    two_level:
        The underlying :class:`TwoLevelOrdering` when ``name`` is
        ``"pseudo-hilbert"`` (used by the tile-based decomposition);
        ``None`` otherwise.
    """

    name: str
    rows: int
    cols: int
    perm: np.ndarray
    rank: np.ndarray
    two_level: TwoLevelOrdering | None = None

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def to_ordered(self, data: np.ndarray) -> np.ndarray:
        """Reorder a row-major (2D or flat) array into layout order."""
        flat = np.asarray(data).reshape(-1)
        if flat.shape[0] != self.num_cells:
            raise ValueError(f"expected {self.num_cells} elements, got {flat.shape[0]}")
        return flat[self.perm]

    def from_ordered(self, data: np.ndarray) -> np.ndarray:
        """Reorder a layout-ordered array back to a row-major 2D array."""
        flat = np.asarray(data).reshape(-1)
        if flat.shape[0] != self.num_cells:
            raise ValueError(f"expected {self.num_cells} elements, got {flat.shape[0]}")
        return flat[self.rank].reshape(self.rows, self.cols)

    def coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """2D coordinates ``(x, y)`` of every layout position."""
        flat = self.perm
        return flat % self.cols, flat // self.cols


def _identity_ordering(rows: int, cols: int) -> DomainOrdering:
    n = rows * cols
    perm = np.arange(n, dtype=np.int64)
    return DomainOrdering("row-major", rows, cols, perm, perm.copy())


def _code_ordering(rows: int, cols: int, name: str) -> DomainOrdering:
    """Ordering by sorting cells on a space-filling-curve code.

    Works for arbitrary rectangles by computing the code on the
    bounding power-of-two square and keeping only in-domain cells.
    ``np.argsort(kind="stable")`` keeps the construction deterministic.
    """
    side = 1
    while side < max(rows, cols):
        side *= 2
    y, x = np.divmod(np.arange(rows * cols, dtype=np.int64), cols)
    if name == "morton":
        codes = morton_encode(x, y)
    elif name == "hilbert":
        order = int(np.log2(side)) if side > 1 else 0
        codes = hilbert_xy2d(order, x, y)
    else:  # pragma: no cover - guarded by make_ordering
        raise ValueError(name)
    perm = np.argsort(codes, kind="stable").astype(np.int64)
    rank = np.empty_like(perm)
    rank[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return DomainOrdering(name, rows, cols, perm, rank)


def make_ordering(
    name: str,
    rows: int,
    cols: int,
    tile_size: int | None = None,
    min_tiles: int = 4,
) -> DomainOrdering:
    """Construct a :class:`DomainOrdering` by scheme name.

    Parameters
    ----------
    name:
        One of ``"row-major"``, ``"morton"``, ``"hilbert"``,
        ``"pseudo-hilbert"``.
    rows, cols:
        Domain shape.
    tile_size, min_tiles:
        Forwarded to :func:`repro.ordering.pseudo_hilbert_order` for the
        two-level scheme.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"domain must be non-empty, got {rows} x {cols}")
    if name == "row-major":
        return _identity_ordering(rows, cols)
    if name in ("morton", "hilbert"):
        return _code_ordering(rows, cols, name)
    if name == "pseudo-hilbert":
        two = pseudo_hilbert_order(rows, cols, tile_size=tile_size, min_tiles=min_tiles)
        return DomainOrdering(name, rows, cols, two.perm, two.rank, two_level=two)
    raise ValueError(f"unknown ordering {name!r}; expected one of {ORDERING_NAMES}")
