"""Space-filling-curve orderings (paper Section 3.2).

Exports the classic Hilbert curve, the generalized ("gilbert")
rectangular Hilbert curve, Morton ordering, the paper's two-level
pseudo-Hilbert ordering, and the :class:`DomainOrdering` abstraction
used by the SpMV kernels and the distributed decomposition.
"""

from .domain import ORDERING_NAMES, DomainOrdering, make_ordering
from .gilbert import gilbert2d, gilbert_order
from .hilbert import (
    SYMMETRIES,
    apply_symmetry,
    hilbert_curve,
    hilbert_d2xy,
    hilbert_xy2d,
    symmetry_endpoints,
)
from .morton import morton_decode, morton_encode
from .pseudo_hilbert import TwoLevelOrdering, choose_tile_size, pseudo_hilbert_order

__all__ = [
    "ORDERING_NAMES",
    "DomainOrdering",
    "make_ordering",
    "gilbert2d",
    "gilbert_order",
    "SYMMETRIES",
    "apply_symmetry",
    "hilbert_curve",
    "hilbert_d2xy",
    "hilbert_xy2d",
    "symmetry_endpoints",
    "morton_decode",
    "morton_encode",
    "TwoLevelOrdering",
    "choose_tile_size",
    "pseudo_hilbert_order",
]
