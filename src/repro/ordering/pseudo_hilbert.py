"""Two-level pseudo-Hilbert ordering (paper Section 3.2, Fig. 4).

The domain (an arbitrary ``rows x cols`` rectangle) is covered by
equi-sized square tiles whose side is a power of two.  The tiles are
indexed by a generalized-Hilbert curve over the tile grid (level one);
the cells inside each tile are indexed by a classic Hilbert curve
(level two) whose orientation is chosen per tile so that the curve
stays connected across tile boundaries — each tile's entry corner is
placed adjacent to the previous tile's exit.

The resulting ordering gives:

* **cache locality** — any aligned run of ``2^(2j)`` consecutive
  indices occupies a compact 2D block, so a cache line maps to a small
  square instead of a 1D strip (Fig. 5);
* **partition locality / connectivity** — contiguous index ranges
  (thread partitions, MPI subdomains) are connected 2D regions
  (Fig. 4b-c), which Morton ordering does not guarantee.

Boundary tiles may overhang the domain; out-of-domain cells are simply
skipped, preserving the relative order of in-domain cells (this is the
"pseudo" part for arbitrary sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gilbert import gilbert2d
from .hilbert import SYMMETRIES, apply_symmetry, hilbert_curve, symmetry_endpoints

__all__ = ["TwoLevelOrdering", "pseudo_hilbert_order", "choose_tile_size"]


def choose_tile_size(rows: int, cols: int, min_tiles: int = 4) -> int:
    """Pick a power-of-two tile side for a ``rows x cols`` domain.

    The paper covers the domain "with a minimum number of equi-sized
    square tiles" subject to the tile granularity needed by the
    process-level decomposition; ``min_tiles`` expresses that need
    (e.g. at least one tile per MPI rank).  The largest power-of-two
    side not exceeding either domain dimension that still yields at
    least ``min_tiles`` tiles is returned.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"domain must be non-empty, got {rows} x {cols}")
    size = 1
    while size * 2 <= min(rows, cols):
        size *= 2
    while size > 1:
        tiles = -(-rows // size) * (-(-cols // size))
        if tiles >= min_tiles:
            break
        size //= 2
    return size


@dataclass(frozen=True)
class TwoLevelOrdering:
    """A computed two-level pseudo-Hilbert ordering of a 2D domain.

    Attributes
    ----------
    rows, cols:
        Domain shape.
    tile_size:
        Power-of-two tile side length.
    perm:
        ``perm[k]`` is the row-major flat index of the ``k``-th cell
        along the curve (length ``rows * cols``).
    rank:
        Inverse permutation: ``rank[flat] = k``.
    tile_of:
        ``tile_of[k]`` is the level-one tile index (position of the
        tile along the tile curve) of the ``k``-th cell.
    tile_displ:
        CSR-style offsets: cells of curve-tile ``t`` occupy curve
        positions ``tile_displ[t]:tile_displ[t + 1]``.
    """

    rows: int
    cols: int
    tile_size: int
    perm: np.ndarray
    rank: np.ndarray
    tile_of: np.ndarray
    tile_displ: np.ndarray

    @property
    def num_tiles(self) -> int:
        """Number of tiles along the level-one curve."""
        return len(self.tile_displ) - 1

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def to_ordered(self, data: np.ndarray) -> np.ndarray:
        """Reorder a row-major flattened (or 2D) array into curve order."""
        flat = np.asarray(data).reshape(-1)
        if flat.shape[0] != self.num_cells:
            raise ValueError(
                f"expected {self.num_cells} elements, got {flat.shape[0]}"
            )
        return flat[self.perm]

    def from_ordered(self, data: np.ndarray) -> np.ndarray:
        """Reorder a curve-ordered array back to row-major 2D layout."""
        flat = np.asarray(data).reshape(-1)
        if flat.shape[0] != self.num_cells:
            raise ValueError(
                f"expected {self.num_cells} elements, got {flat.shape[0]}"
            )
        return flat[self.rank].reshape(self.rows, self.cols)


def _tile_entry_exit_choice(
    prev_exit: tuple[int, int] | None,
    step: tuple[int, int],
    endpoints: dict[tuple[bool, str], tuple[tuple[int, int], tuple[int, int]]],
    tile_size: int,
) -> tuple[bool, str]:
    """Greedy orientation pick for one tile.

    ``prev_exit`` is the previous tile's exit cell in *local* coordinates
    of the current tile (may be outside ``[0, tile_size)``); ``step`` is
    the direction from this tile to the next tile on the level-one
    curve.  We minimise the entry gap, breaking ties by how close the
    exit corner lands to the next tile.
    """
    m = tile_size - 1
    best: tuple[int, int, bool, str] | None = None
    for (reversed_, name), (entry, exit_) in endpoints.items():
        if prev_exit is None:
            entry_cost = entry[0] + entry[1]  # prefer starting at origin corner
        else:
            entry_cost = abs(entry[0] - prev_exit[0]) + abs(entry[1] - prev_exit[1])
        # Exit cost: Manhattan distance from the exit corner to the
        # closest cell of the next tile along the level-one curve.
        tx0, ty0 = step[0] * tile_size, step[1] * tile_size
        dx = max(tx0 - exit_[0], exit_[0] - (tx0 + m), 0)
        dy = max(ty0 - exit_[1], exit_[1] - (ty0 + m), 0)
        exit_cost = dx + dy
        key = (entry_cost, exit_cost, reversed_, name)
        if best is None or key < (best[0], best[1], best[2], best[3]):
            best = key
    assert best is not None
    return best[2], best[3]


def pseudo_hilbert_order(
    rows: int, cols: int, tile_size: int | None = None, min_tiles: int = 4
) -> TwoLevelOrdering:
    """Build the two-level pseudo-Hilbert ordering of a 2D domain.

    Parameters
    ----------
    rows, cols:
        Domain shape (row-major layout assumed for flat indices).
    tile_size:
        Power-of-two tile side.  Chosen by :func:`choose_tile_size`
        when omitted.
    min_tiles:
        Minimum tile count passed to the tile-size heuristic.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"domain must be non-empty, got {rows} x {cols}")
    if tile_size is None:
        tile_size = choose_tile_size(rows, cols, min_tiles=min_tiles)
    if tile_size < 1 or (tile_size & (tile_size - 1)) != 0:
        raise ValueError(f"tile size must be a power of two, got {tile_size}")

    order = int(np.log2(tile_size))
    tiles_x = -(-cols // tile_size)
    tiles_y = -(-rows // tile_size)
    tile_coords = gilbert2d(tiles_x, tiles_y)  # (x, y) of tiles in curve order

    base_curve = hilbert_curve(order)  # canonical within-tile curve
    endpoints = symmetry_endpoints(order)

    # Precompute the eight oriented variants of the within-tile curve.
    variants: dict[tuple[bool, str], np.ndarray] = {}
    for name in SYMMETRIES:
        vx, vy = apply_symmetry(name, base_curve[:, 0], base_curve[:, 1], tile_size)
        fwd = np.stack([vx, vy], axis=1)
        variants[(False, name)] = fwd
        variants[(True, name)] = fwd[::-1]

    perm_parts: list[np.ndarray] = []
    tile_counts = np.zeros(len(tile_coords), dtype=np.int64)
    prev_exit_global: tuple[int, int] | None = None

    for t, (tx, ty) in enumerate(tile_coords):
        x0 = int(tx) * tile_size
        y0 = int(ty) * tile_size
        if t + 1 < len(tile_coords):
            nxt = tile_coords[t + 1]
            step = (int(nxt[0]) - int(tx), int(nxt[1]) - int(ty))
        else:
            step = (0, 0)
        prev_local = None
        if prev_exit_global is not None:
            prev_local = (prev_exit_global[0] - x0, prev_exit_global[1] - y0)
        reversed_, name = _tile_entry_exit_choice(prev_local, step, endpoints, tile_size)
        curve = variants[(reversed_, name)]
        cx = curve[:, 0] + x0
        cy = curve[:, 1] + y0
        inside = (cx < cols) & (cy < rows)
        cx_in = cx[inside]
        cy_in = cy[inside]
        perm_parts.append(cy_in * cols + cx_in)
        tile_counts[t] = cx_in.shape[0]
        if cx_in.shape[0] > 0:
            prev_exit_global = (int(cx_in[-1]), int(cy_in[-1]))

    perm = np.concatenate(perm_parts) if perm_parts else np.empty(0, dtype=np.int64)
    if perm.shape[0] != rows * cols:
        raise AssertionError("two-level ordering did not cover the domain exactly")
    rank = np.empty_like(perm)
    rank[perm] = np.arange(perm.shape[0], dtype=np.int64)

    tile_displ = np.zeros(len(tile_coords) + 1, dtype=np.int64)
    np.cumsum(tile_counts, out=tile_displ[1:])
    tile_of = np.repeat(np.arange(len(tile_coords), dtype=np.int64), tile_counts)

    return TwoLevelOrdering(
        rows=rows,
        cols=cols,
        tile_size=tile_size,
        perm=perm,
        rank=rank,
        tile_of=tile_of,
        tile_displ=tile_displ,
    )
