"""Morton (Z-order) curve, the comparison baseline of paper Section 3.2.3.

Morton ordering interleaves coordinate bits.  It clusters data almost
as well as Hilbert ordering for cache purposes but does *not* keep
consecutive indices adjacent in 2D, so contiguous index ranges form
disconnected partitions — the property the paper singles out as the
reason MemXCT uses Hilbert rather than Morton ordering.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_encode", "morton_decode"]

_MASKS_SPREAD = (
    (np.int64(0x0000_0000_FFFF_FFFF), 0),
    (np.int64(0x0000_FFFF_0000_FFFF), 16),
    (np.int64(0x00FF_00FF_00FF_00FF), 8),
    (np.int64(0x0F0F_0F0F_0F0F_0F0F), 4),
    (np.int64(0x3333_3333_3333_3333), 2),
    (np.int64(0x5555_5555_5555_5555), 1),
)


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Insert a zero bit between each bit of ``v`` (32-bit inputs)."""
    v = np.asarray(v, dtype=np.int64)
    for mask, shift in _MASKS_SPREAD[1:]:
        v = (v | (v << shift)) & mask
    return v


def _compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    v = np.asarray(v, dtype=np.int64) & _MASKS_SPREAD[-1][0]
    for (mask, _), (_, shift) in zip(reversed(_MASKS_SPREAD[:-1]), reversed(_MASKS_SPREAD[1:])):
        v = (v | (v >> shift)) & mask
    return v


def morton_encode(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Morton code of coordinates: bits of ``y`` interleaved above ``x``."""
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if np.any((x < 0) | (y < 0)):
        raise ValueError("Morton coordinates must be non-negative")
    if np.any((x >= (1 << 31)) | (y >= (1 << 31))):
        raise ValueError("Morton coordinates must fit in 31 bits")
    return _spread_bits(x) | (_spread_bits(y) << 1)


def morton_decode(code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode`."""
    code = np.asarray(code, dtype=np.int64)
    if np.any(code < 0):
        raise ValueError("Morton codes must be non-negative")
    return _compact_bits(code), _compact_bits(code >> 1)
