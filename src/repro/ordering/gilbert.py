"""Generalized Hilbert ("gilbert") curve for arbitrary rectangles.

The paper's first ordering level indexes the grid of square tiles with
"a Hilbert ordering for rectangular domains" (Zhang et al.'s
pseudo-Hilbert scan, paper ref [20]).  We implement the equivalent
generalized Hilbert construction: a recursive curve that visits every
cell of a ``w x h`` rectangle exactly once with consecutive cells
edge-adjacent, degenerating gracefully to serpentine scans for thin
rectangles.  For rectangles with an odd side a handful of single
*diagonal* steps (L1 distance 2) are unavoidable — the same compromise
Zhang et al.'s pseudo-Hilbert scan makes, and the reason the paper
calls the composite ordering "pseudo"-Hilbert.

The construction recursively splits the rectangle along its major axis
and stitches sub-curves so that the curve enters at one corner and
exits at an adjacent corner, exactly the connectivity the tile-level
decomposition needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gilbert2d", "gilbert_order"]


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


def _generate(
    out: list[tuple[int, int]],
    x: int,
    y: int,
    ax: int,
    ay: int,
    bx: int,
    by: int,
) -> None:
    """Emit cells of the rectangle spanned by vectors (ax, ay), (bx, by).

    ``(x, y)`` is the current corner; the curve fills the rectangle and
    exits on the far end of the (ax, ay) axis.  Iterative-friendly
    recursion depth is O(log(max(w, h))).
    """
    w = abs(ax + ay)
    h = abs(bx + by)
    dax, day = _sign(ax), _sign(ay)  # unit major direction
    dbx, dby = _sign(bx), _sign(by)  # unit orthogonal direction

    if h == 1:
        for _ in range(w):
            out.append((x, y))
            x, y = x + dax, y + day
        return
    if w == 1:
        for _ in range(h):
            out.append((x, y))
            x, y = x + dbx, y + dby
        return

    ax2, ay2 = ax // 2, ay // 2
    bx2, by2 = bx // 2, by // 2
    w2 = abs(ax2 + ay2)
    h2 = abs(bx2 + by2)

    if 2 * w > 3 * h:
        if (w2 % 2) and (w > 2):
            # Prefer even steps so sub-rectangles stay well-proportioned.
            ax2, ay2 = ax2 + dax, ay2 + day
        _generate(out, x, y, ax2, ay2, bx, by)
        _generate(out, x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by)
    else:
        if (h2 % 2) and (h > 2):
            bx2, by2 = bx2 + dbx, by2 + dby
        _generate(out, x, y, bx2, by2, ax2, ay2)
        _generate(out, x + bx2, y + by2, ax, ay, bx - bx2, by - by2)
        _generate(
            out,
            x + (ax - dax) + (bx2 - dbx),
            y + (ay - day) + (by2 - dby),
            -bx2,
            -by2,
            -(ax - ax2),
            -(ay - ay2),
        )


def gilbert2d(width: int, height: int) -> np.ndarray:
    """Coordinates of a generalized Hilbert curve over ``width x height``.

    Returns an integer array of shape ``(width * height, 2)`` with
    columns ``(x, y)`` in visiting order.  Consecutive coordinates are
    4-neighbours except for rare diagonal steps on odd-sided
    rectangles (see module docstring).
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"rectangle must be non-empty, got {width} x {height}")
    out: list[tuple[int, int]] = []
    if width >= height:
        _generate(out, 0, 0, width, 0, 0, height)
    else:
        _generate(out, 0, 0, 0, height, width, 0)
    coords = np.asarray(out, dtype=np.int64)
    return coords


def gilbert_order(width: int, height: int) -> np.ndarray:
    """Permutation mapping curve position to row-major flat index.

    ``order[k] = y * width + x`` of the ``k``-th visited cell.
    """
    coords = gilbert2d(width, height)
    return coords[:, 1] * width + coords[:, 0]
