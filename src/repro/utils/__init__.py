"""Shared utilities: performance/image metrics and table formatting."""

from .imaging import ascii_preview, save_pgm
from .formatting import format_bytes, format_seconds, render_table
from .metrics import (
    REGULAR_BYTES_BUFFERED,
    REGULAR_BYTES_CSR,
    bandwidth_utilization_gb,
    gflops,
    psnr,
    rmse,
)

__all__ = [
    "format_bytes",
    "ascii_preview",
    "save_pgm",
    "format_seconds",
    "render_table",
    "REGULAR_BYTES_BUFFERED",
    "REGULAR_BYTES_CSR",
    "bandwidth_utilization_gb",
    "gflops",
    "psnr",
    "rmse",
]
