"""Performance and image-quality metrics.

The paper's metrics (Section 4.2): GFLOPS is ``2 * nnz / t`` (one FMA =
one multiply + one add per nonzero), and average memory-bandwidth
utilization counts the *regular* stream only, ``nnz * B_reg / t`` where
``B_reg`` is regular bytes per FMA (8 for 32-bit CSR, 6 for the 16-bit
buffered layout).  Image metrics (RMSE/PSNR) assess reconstruction
quality against phantoms.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gflops",
    "bandwidth_utilization_gb",
    "rmse",
    "psnr",
    "REGULAR_BYTES_CSR",
    "REGULAR_BYTES_BUFFERED",
]

#: Regular bytes per FMA for the 32-bit-index CSR kernel (4 B value +
#: 4 B index).
REGULAR_BYTES_CSR = 8.0

#: Regular bytes per FMA for the 16-bit buffered kernel (4 B value +
#: 2 B index) — the 25 % saving of paper Section 3.3.5.
REGULAR_BYTES_BUFFERED = 6.0


def gflops(nnz: int, seconds: float) -> float:
    """GFLOPS of one projection: two FLOPs per nonzero (paper 4.2)."""
    if seconds <= 0:
        raise ValueError(f"time must be positive, got {seconds}")
    return 2.0 * nnz / seconds / 1e9


def bandwidth_utilization_gb(nnz: int, bytes_per_fma: float, seconds: float) -> float:
    """Average regular-stream bandwidth in GB/s (paper 4.2)."""
    if seconds <= 0:
        raise ValueError(f"time must be positive, got {seconds}")
    return nnz * bytes_per_fma / seconds / 1e9


def rmse(image: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error between two images."""
    a = np.asarray(image, dtype=np.float64)
    b = np.asarray(reference, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def psnr(image: np.ndarray, reference: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = reference dynamic range)."""
    b = np.asarray(reference, dtype=np.float64)
    peak = float(b.max() - b.min())
    if peak == 0:
        raise ValueError("reference image has zero dynamic range")
    err = rmse(image, reference)
    if err == 0:
        return float("inf")
    return 20.0 * np.log10(peak / err)
