"""Dependency-free image output: PGM files and terminal previews.

matplotlib is not a dependency of this library; reconstructions are
written as binary PGM (viewable everywhere) and examples print coarse
ASCII previews so results are inspectable straight from a terminal.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_pgm", "ascii_preview"]

_ASCII_RAMP = " .:-=+*#%@"


def _normalize(image: np.ndarray, vmin: float | None, vmax: float | None) -> np.ndarray:
    img = np.asarray(image, dtype=np.float64)
    lo = float(img.min()) if vmin is None else vmin
    hi = float(img.max()) if vmax is None else vmax
    if hi <= lo:
        return np.zeros_like(img)
    return np.clip((img - lo) / (hi - lo), 0.0, 1.0)


def save_pgm(
    path: str | Path,
    image: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
) -> None:
    """Write a 2D array as an 8-bit binary PGM (P5) image.

    Row 0 of the array is written at the top of the image; values are
    linearly mapped from ``[vmin, vmax]`` (data range by default) to
    0-255.
    """
    img = np.asarray(image)
    if img.ndim != 2:
        raise ValueError(f"image must be 2D, got shape {img.shape}")
    pixels = (_normalize(img, vmin, vmax) * 255.0).astype(np.uint8)
    header = f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii")
    Path(path).write_bytes(header + pixels.tobytes())


def ascii_preview(
    image: np.ndarray,
    width: int = 64,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a coarse ASCII preview of a 2D array.

    Downsamples by block averaging to ``width`` columns (rows halved to
    compensate for character aspect ratio) and maps intensity to a
    10-step ramp.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"image must be 2D, got shape {img.shape}")
    width = min(width, img.shape[1])
    step = max(1, img.shape[1] // width)
    rows_step = step * 2
    h = img.shape[0] // rows_step
    w = img.shape[1] // step
    if h == 0 or w == 0:
        h, w, rows_step, step = 1, 1, img.shape[0], img.shape[1]
    block = img[: h * rows_step, : w * step].reshape(h, rows_step, w, step).mean(axis=(1, 3))
    levels = (_normalize(block, vmin, vmax) * (len(_ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(_ASCII_RAMP[v] for v in row) for row in levels)
