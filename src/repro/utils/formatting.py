"""Plain-text table rendering for the benchmark harness.

The benchmarks print paper-style tables ("paper value vs measured") to
stdout; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_bytes", "format_seconds"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (binary units, like the paper's tables)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.3g} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration: ms / s / m / h / d."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 120.0:
        return f"{seconds:.3g} s"
    if seconds < 5400.0:
        return f"{seconds / 60.0:.3g} m"
    if seconds < 86400.0:
        return f"{seconds / 3600.0:.3g} h"
    return f"{seconds / 86400.0:.3g} d"
