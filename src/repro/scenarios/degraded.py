"""Degraded-scan scenarios: sparse-view and limited-angle CT.

Real beamline practice often measures fewer projections than the
paper's full scans — either uniformly subsampled in angle (sparse
view: faster scans, lower dose) or cut off in angular range (limited
angle: physical occlusion).  Both are *exact row subsets* of the full
system: the degraded geometry's rays coincide bitwise with a subset of
the full geometry's rays, so the same memoized pipeline applies — only
the geometry (and the matching sinogram rows) shrink.

The subset constructions work for any geometry whose dataclass carries
``num_angles`` and ``angle_range`` with uniformly spaced views
(parallel-beam and cone-beam alike):

* **sparse view** — keep every ``k``-th projection.  The subsampled
  geometry keeps the full ``angle_range``; its view ``j`` lands on the
  original view ``j * k`` exactly when ``k`` divides ``num_angles``
  (required, so the subset claim is exact rather than approximate).
* **limited angle** — keep the first ``M' = floor(M * fraction)``
  projections.  The truncated geometry's range shrinks to
  ``M' * angle_range / M`` so its uniform spacing reproduces the
  original prefix angles exactly.

These scenarios are where explicit regularization (Section 3.5.2's
plug-and-play claim) earns its keep: with missing data the normal
equations are badly conditioned and :func:`repro.solvers.tv_cgls` /
:func:`repro.solvers.regularized_cgls` noticeably beat plain CGLS.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..core import OperatorConfig, preprocess
from ..obs import SCENARIO_RUNS, SCENARIO_VIEWS_DROPPED, add_count, span
from ..solvers import SolveResult, cgls, regularized_cgls, tv_cgls

__all__ = [
    "ScenarioResult",
    "sparse_view_geometry",
    "sparse_view_sinogram",
    "limited_angle_geometry",
    "limited_angle_sinogram",
    "reconstruct_scenario",
]


def _subset_geometry(geometry, num_angles: int, angle_range: float):
    """Rebuild ``geometry`` with a different view count/range.

    ``dataclasses.replace`` keeps every other field (grid, detector
    layout, distances) untouched, so this works for any frozen geometry
    dataclass exposing ``num_angles`` and ``angle_range``.
    """
    return dataclasses.replace(
        geometry, num_angles=num_angles, angle_range=angle_range
    )


def sparse_view_geometry(geometry, keep_every: int):
    """Geometry with every ``keep_every``-th projection of ``geometry``.

    Requires ``keep_every`` to divide ``num_angles`` so the subsampled
    views coincide *exactly* with original views (angle ``j`` of the
    subset equals angle ``j * keep_every`` of the full scan).
    """
    if keep_every < 1:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    if geometry.num_angles % keep_every != 0:
        raise ValueError(
            f"keep_every={keep_every} does not divide num_angles="
            f"{geometry.num_angles}; the subset would not be an exact "
            "row subset of the full scan"
        )
    return _subset_geometry(
        geometry, geometry.num_angles // keep_every, float(geometry.angle_range)
    )


def sparse_view_sinogram(sinogram: np.ndarray, keep_every: int) -> np.ndarray:
    """Rows of a full sinogram matching :func:`sparse_view_geometry`.

    Works for parallel-beam ``(M, N)`` sinograms and cone-beam
    ``(M, rows, cols)`` projection stacks alike — the leading axis is
    always the view axis.
    """
    if keep_every < 1:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    return np.ascontiguousarray(sinogram[::keep_every])


def limited_angle_geometry(geometry, fraction: float):
    """Geometry with the first ``floor(M * fraction)`` projections.

    The angular range shrinks proportionally
    (``M' * angle_range / M``), so the truncated geometry's uniformly
    spaced views reproduce the original prefix angles exactly.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    kept = int(np.floor(geometry.num_angles * fraction))
    if kept < 1:
        raise ValueError(
            f"fraction={fraction} keeps zero of {geometry.num_angles} views"
        )
    new_range = kept * float(geometry.angle_range) / geometry.num_angles
    return _subset_geometry(geometry, kept, new_range)


def limited_angle_sinogram(sinogram: np.ndarray, fraction: float) -> np.ndarray:
    """Rows of a full sinogram matching :func:`limited_angle_geometry`."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    kept = int(np.floor(sinogram.shape[0] * fraction))
    if kept < 1:
        raise ValueError(
            f"fraction={fraction} keeps zero of {sinogram.shape[0]} views"
        )
    return np.ascontiguousarray(sinogram[:kept])


@dataclass
class ScenarioResult:
    """A degraded-scan reconstruction and its provenance."""

    kind: str
    geometry: object
    operator: object
    solve: SolveResult
    image: np.ndarray
    views_kept: int
    views_dropped: int
    extra: dict[str, float] = field(default_factory=dict)


_SOLVERS = ("cgls", "tikhonov", "gradient", "tv")


def reconstruct_scenario(
    geometry,
    sinogram: np.ndarray,
    kind: str,
    keep_every: int = 4,
    fraction: float = 0.5,
    solver: str = "tv",
    strength: float = 0.05,
    num_iterations: int = 30,
    config: OperatorConfig | None = None,
    cache=None,
    **solver_kwargs,
) -> ScenarioResult:
    """Degrade a full scan and reconstruct it with a regularized solve.

    Parameters
    ----------
    geometry, sinogram:
        The *full* scan: its geometry and measured sinogram (view-major
        array, ``(M, N)`` or ``(M, rows, cols)``).
    kind:
        ``"sparse-view"`` (keeps every ``keep_every``-th view) or
        ``"limited-angle"`` (keeps the first ``fraction`` of views).
    solver:
        ``"cgls"`` (unregularized baseline), ``"tikhonov"``,
        ``"gradient"`` (smoothness Tikhonov), or ``"tv"`` (IRLS total
        variation, the default — missing-data artifacts are piecewise
        constant-friendly).
    strength, num_iterations, **solver_kwargs:
        Forwarded to the selected solver.
    config, cache:
        Forwarded to :func:`repro.core.preprocess` for the degraded
        geometry's operator (plan caching works as usual: the degraded
        geometry fingerprints like any other).
    """
    if kind == "sparse-view":
        sub_geometry = sparse_view_geometry(geometry, keep_every)
        sub_sinogram = sparse_view_sinogram(sinogram, keep_every)
    elif kind == "limited-angle":
        sub_geometry = limited_angle_geometry(geometry, fraction)
        sub_sinogram = limited_angle_sinogram(sinogram, fraction)
    else:
        raise ValueError(
            f"unknown scenario kind {kind!r}; expected 'sparse-view' or "
            "'limited-angle'"
        )
    if solver not in _SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; expected one of {_SOLVERS}")

    dropped = geometry.num_angles - sub_geometry.num_angles
    add_count(SCENARIO_RUNS, 1)
    add_count(SCENARIO_VIEWS_DROPPED, dropped)
    with span("scenario", kind=kind, solver=solver, views=sub_geometry.num_angles):
        operator, _ = preprocess(sub_geometry, config=config, cache=cache)
        y = operator.sinogram_to_ordered(sub_sinogram)
        if solver == "cgls":
            result = cgls(operator, y, num_iterations=num_iterations, **solver_kwargs)
        elif solver == "tikhonov":
            result = regularized_cgls(
                operator,
                y,
                strength=strength,
                num_iterations=num_iterations,
                regularizer="identity",
                **solver_kwargs,
            )
        elif solver == "gradient":
            result = regularized_cgls(
                operator,
                y,
                strength=strength,
                num_iterations=num_iterations,
                regularizer="gradient",
                **solver_kwargs,
            )
        else:
            result = tv_cgls(
                operator,
                y,
                strength=strength,
                num_iterations=num_iterations,
                **solver_kwargs,
            )
        # Cone-beam geometries reconstruct a volume; 2D geometries an
        # image.  (to_ordered flattens either, only the inverse differs.)
        if hasattr(sub_geometry, "volume_shape"):
            image = operator.ordered_to_volume(result.x)
        else:
            image = operator.ordered_to_image(result.x)
    return ScenarioResult(
        kind=kind,
        geometry=sub_geometry,
        operator=operator,
        solve=result,
        image=image,
        views_kept=sub_geometry.num_angles,
        views_dropped=dropped,
    )
