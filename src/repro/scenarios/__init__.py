"""Beamline workload scenarios over the memoized pipeline.

Degraded-scan reconstructions (sparse-view, limited-angle) paired with
the explicit regularizers of :mod:`repro.solvers.regularized`, and the
tomocupy-style ``try-center`` rotation-axis sweep run as one
batched-RHS solve.  See ``docs/scenarios.md``.
"""

from .degraded import (
    ScenarioResult,
    limited_angle_geometry,
    limited_angle_sinogram,
    reconstruct_scenario,
    sparse_view_geometry,
    sparse_view_sinogram,
)
from .try_center import (
    TryCenterResult,
    center_slab,
    nominal_center,
    reconstruction_entropy,
    shift_sinogram,
    try_center,
)

__all__ = [
    "ScenarioResult",
    "TryCenterResult",
    "center_slab",
    "limited_angle_geometry",
    "limited_angle_sinogram",
    "nominal_center",
    "reconstruct_scenario",
    "reconstruction_entropy",
    "shift_sinogram",
    "sparse_view_geometry",
    "sparse_view_sinogram",
    "try_center",
]
