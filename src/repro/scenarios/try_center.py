"""Rotation-center sweep as one batched-RHS solve (tomocupy's "try-center").

A mis-calibrated rotation axis shows up as a channel shift of every
projection; reconstructing with the wrong center produces
characteristic crescent/ghost artifacts.  The beamline recipe
(tomocupy / tomopy ``find_center``) is to reconstruct one slice at
*many* candidate centers and pick the visually sharpest one.

MemXCT's batched-RHS machinery makes this nearly free: the candidate
sinograms (the same slice, channel-shifted per candidate center) are
packed into one ``(num_rays, S)`` slab and solved by a **single**
:func:`repro.solvers.cgls_batch` call — one operator traversal per
iteration regardless of the candidate count, instead of ``S`` separate
solves.  Per-column results are bit-identical to looped single solves
(the batch contract), so the sweep changes cost, not answers.

Scoring follows tomopy: Shannon entropy of the reconstruction's
intensity histogram, *minimized* — a correctly centered slice is
sharper, concentrating mass in fewer bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import OperatorConfig, preprocess
from ..obs import SCENARIO_CENTER_CANDIDATES, SCENARIO_RUNS, add_count, span
from ..solvers import BatchSolveResult, cgls_batch

__all__ = [
    "TryCenterResult",
    "shift_sinogram",
    "center_slab",
    "nominal_center",
    "reconstruction_entropy",
    "try_center",
]


def nominal_center(geometry) -> float:
    """The rotation-axis position the operator assumes, in channel units.

    The geometry's ``channel_offsets`` are ``(k - N/2 + 0.5)`` pixels,
    so offset zero — the rotation axis — falls at channel coordinate
    ``(N - 1) / 2``.
    """
    return (geometry.num_channels - 1) / 2.0


def shift_sinogram(sinogram: np.ndarray, shift: float) -> np.ndarray:
    """Shift a sinogram's channel axis by a fractional channel count.

    ``out[i, j] = sinogram[i, j + shift]`` with linear interpolation
    between neighboring channels and zero fill outside the detector —
    the standard alignment resample.  ``shift`` is in channel units and
    may be fractional; ``shift=0`` returns an exact copy.
    """
    sinogram = np.asarray(sinogram)
    if sinogram.ndim != 2:
        raise ValueError(f"expected a 2D (M, N) sinogram, got shape {sinogram.shape}")
    n = sinogram.shape[1]
    pos = np.arange(n, dtype=np.float64) + float(shift)
    lo = np.floor(pos).astype(np.int64)
    w = pos - lo
    lo_valid = (lo >= 0) & (lo < n)
    hi_valid = (lo + 1 >= 0) & (lo + 1 < n)
    lo_idx = np.clip(lo, 0, n - 1)
    hi_idx = np.clip(lo + 1, 0, n - 1)
    out = (1.0 - w) * sinogram[:, lo_idx] * lo_valid + w * sinogram[:, hi_idx] * hi_valid
    return out.astype(sinogram.dtype, copy=False)


def center_slab(operator, sinogram: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pack per-candidate shifted sinograms into a ``(num_rays, S)`` slab.

    Column ``j`` is the input sinogram re-aligned as if the rotation
    axis sat at ``centers[j]`` (channel units), converted to the
    operator's ordered measurement layout.  Feed the slab to
    :func:`repro.solvers.cgls_batch` — or solve columns one by one to
    check the batch contract; the results are bit-identical.
    """
    centers = np.asarray(centers, dtype=np.float64).reshape(-1)
    if centers.size == 0:
        raise ValueError("centers must be non-empty")
    nominal = nominal_center(operator.geometry)
    slab = np.empty((operator.num_rays, centers.size), dtype=operator.solve_dtype)
    for j, center in enumerate(centers):
        shifted = shift_sinogram(sinogram, center - nominal)
        slab[:, j] = operator.sinogram_to_ordered(shifted)
    return slab


def reconstruction_entropy(image: np.ndarray, bins: int = 128) -> float:
    """Shannon entropy of the intensity histogram (tomopy's criterion).

    Lower is sharper: a correctly centered reconstruction concentrates
    intensity mass in fewer histogram bins than one smeared by
    center-of-rotation artifacts.  A constant image (zero dynamic
    range) scores 0 — maximally concentrated.
    """
    flat = np.asarray(image, dtype=np.float64).ravel()
    lo, hi = float(flat.min()), float(flat.max())
    if not np.isfinite(lo) or not np.isfinite(hi):
        return float("inf")
    if hi <= lo:
        return 0.0
    counts, _ = np.histogram(flat, bins=bins, range=(lo, hi))
    p = counts[counts > 0] / flat.size
    return float(-np.sum(p * np.log(p)))


@dataclass
class TryCenterResult:
    """Outcome of a rotation-center sweep."""

    centers: np.ndarray
    scores: np.ndarray
    best_index: int
    best_center: float
    batch: BatchSolveResult
    images: np.ndarray  # (S, n, n) reconstructions, candidate-major
    extra: dict[str, float] = field(default_factory=dict)


def try_center(
    geometry,
    sinogram: np.ndarray,
    centers,
    num_iterations: int = 10,
    operator=None,
    config: OperatorConfig | None = None,
    cache=None,
    bins: int = 128,
    tolerance: float = 0.0,
) -> TryCenterResult:
    """Sweep candidate rotation centers with one batched solve.

    Parameters
    ----------
    geometry, sinogram:
        The scan geometry and the measured single-slice sinogram
        (``(M, N)``, row-major).
    centers:
        Candidate rotation-axis positions in channel units (e.g.
        ``nominal_center(geometry) + np.arange(-2, 2.25, 0.25)``).
    num_iterations:
        CGLS budget per candidate; sweeps want a cheap, artifact-
        revealing partial reconstruction, not a converged one.
    operator:
        Pre-built operator for ``geometry`` (skips ``preprocess``);
        built on demand otherwise (``config``/``cache`` forwarded).

    Returns a :class:`TryCenterResult`; ``best_center`` minimizes the
    histogram entropy of the candidate reconstructions.
    """
    centers = np.asarray(centers, dtype=np.float64).reshape(-1)
    if centers.size == 0:
        raise ValueError("centers must be non-empty")
    add_count(SCENARIO_RUNS, 1)
    add_count(SCENARIO_CENTER_CANDIDATES, centers.size)
    with span("scenario.try_center", candidates=centers.size):
        if operator is None:
            operator, _ = preprocess(geometry, config=config, cache=cache)
        slab = center_slab(operator, sinogram, centers)
        batch = cgls_batch(
            operator, slab, num_iterations=num_iterations, tolerance=tolerance
        )
        n = operator.geometry.grid.n
        images = np.empty((centers.size, n, n), dtype=batch.X.dtype)
        scores = np.empty(centers.size, dtype=np.float64)
        for j in range(centers.size):
            images[j] = operator.ordered_to_image(batch.column(j).x)
            scores[j] = reconstruction_entropy(images[j], bins=bins)
        best = int(np.argmin(scores))
    return TryCenterResult(
        centers=centers,
        scores=scores,
        best_index=best,
        best_center=float(centers[best]),
        batch=batch,
        images=images,
    )
