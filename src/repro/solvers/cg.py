"""Conjugate-gradient least-squares solver (CGLS).

MemXCT's solver of choice (paper Section 3.5.2): CG on the normal
equations ``A^T A x = A^T y``.  Compared with SIRT it converges faster
because (1) the full gradient is used, (2) the step size is computed
analytically — which costs the extra forward projection of the search
direction each iteration — and (3) the three-term recurrence keeps new
directions conjugate to previous ones.

The implementation is the textbook CGLS recurrence (paper ref [24],
Barrett et al.), which applies ``A`` and ``A^T`` exactly once per
iteration.

Resilience hooks (see ``docs/resilience.md``):

* ``checkpoint`` — a :class:`~repro.resilience.CheckpointManager`
  snapshots the full recurrence state ``(x, r, p, gamma, gamma0)``
  every N iterations; ``resume`` continues a killed run
  **bit-exactly** from such a snapshot.
* ``health`` — a :class:`~repro.resilience.HealthMonitor` watches each
  iterate; on NaN/Inf or sustained divergence the solver rolls back to
  the last checkpoint and restarts the recurrence with a halved step
  scale (damped steepest-descent restart) instead of crashing.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ProjectionOperator,
    SolveResult,
    iteration_span,
    observe_health,
    resolve_resume,
    solve_span,
    solver_dtype,
)

__all__ = ["cgls"]


def cgls(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 30,
    x0: np.ndarray | None = None,
    tolerance: float = 0.0,
    callback=None,
    checkpoint=None,
    resume=None,
    health=None,
) -> SolveResult:
    """Run CGLS iterations for ``min_x ||A x - y||``.

    Parameters
    ----------
    op:
        The system operator.
    y:
        Measured sinogram (flat, length ``op.num_rays``).
    num_iterations:
        Iteration budget.  The paper uses an early-termination
        heuristic of 30 iterations for its datasets; see
        :func:`repro.solvers.lcurve.lcurve_corner` for choosing the
        stopping index a posteriori.
    x0:
        Initial tomogram estimate (zeros by default).
    tolerance:
        Relative gradient-norm stopping threshold
        (``||A^T r|| <= tolerance * ||A^T y||``); 0 disables.
    callback:
        Optional ``callback(iteration, x)`` invoked after each update.
    checkpoint:
        Optional :class:`~repro.resilience.CheckpointManager`; the
        recurrence state is snapshotted per its periodic policy.
    resume:
        Checkpoint to continue from (a
        :class:`~repro.resilience.SolverCheckpoint`, a manager, or a
        file path).  Continuation is bit-exact: no operator
        applications are re-run to reconstruct state.
    health:
        Optional :class:`~repro.resilience.HealthMonitor`.
    """
    # Solver state lives in the operator's advertised precision:
    # float64 historically, float32 on the end-to-end fp32 path.
    work = solver_dtype(op)
    y = np.asarray(y, dtype=work).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"sinogram has {y.shape[0]} entries, expected {op.num_rays}")

    restored = resolve_resume(resume, "cg")

    with solve_span("cg", num_iterations=num_iterations):
        if restored is not None:
            x = np.array(restored.arrays["x"], dtype=work)
            r = np.array(restored.arrays["r"], dtype=work)
            p = np.array(restored.arrays["p"], dtype=work)
            gamma = float(restored.scalars["gamma"])
            gamma0 = float(restored.scalars["gamma0"])
            damping = float(restored.scalars.get("damping", 1.0))
            start_iteration = restored.iteration
            result = SolveResult(x=x, iterations=start_iteration)
            result.residual_norms = list(restored.residual_norms)
            result.solution_norms = list(restored.solution_norms)
        else:
            x = (
                np.zeros(op.num_pixels, dtype=work)
                if x0 is None
                else np.asarray(x0, dtype=work).copy()
            )
            r = y - np.asarray(op.forward(x), dtype=work)
            s = np.asarray(op.adjoint(r), dtype=work)
            p = s.copy()
            gamma = float(s @ s)
            gamma0 = gamma
            damping = 1.0
            start_iteration = 0
            result = SolveResult(x=x, iterations=0)
            result.residual_norms.append(float(np.linalg.norm(r)))
            result.solution_norms.append(float(np.linalg.norm(x)))

        if gamma == 0.0:
            # All-zero gradient at the start (e.g. an all-zero sinogram
            # with x0 = 0): x already solves the normal equations and
            # every alpha/beta denominator downstream would be zero.
            result.x = x
            result.converged = True
            result.stop_reason = "zero gradient at start: x0 solves the normal equations"
            return result

        for it in range(start_iteration, num_iterations):
            if gamma == 0.0:
                result.converged = True
                result.stop_reason = "exact solution reached"
                break
            with iteration_span("cg", it):
                q = np.asarray(op.forward(p), dtype=work)
                qq = float(q @ q)
                if qq == 0.0:
                    # p in null(A) can only follow from gamma == 0 in
                    # exact arithmetic; guard the alpha denominator
                    # against the float edge case regardless.
                    result.converged = True
                    result.stop_reason = "search direction in null space"
                    break
                alpha = damping * (gamma / qq)
                x += alpha * p
                r -= alpha * q
                s = np.asarray(op.adjoint(r), dtype=work)
                gamma_new = float(s @ s)
                beta = gamma_new / gamma
                p = s + beta * p
                gamma = gamma_new

                result.iterations = it + 1
                rnorm = float(np.linalg.norm(r))
                result.residual_norms.append(rnorm)
                result.solution_norms.append(float(np.linalg.norm(x)))

                # Health verdict comes BEFORE the snapshot: a poisoned
                # iterate landing on a save boundary must never
                # overwrite the healthy rollback target.
                action = observe_health(health, it + 1, x, rnorm)
                if action == "ok" and checkpoint is not None:
                    from ..resilience.checkpoint import SolverCheckpoint

                    checkpoint.maybe_save(
                        SolverCheckpoint(
                            solver="cg",
                            iteration=it + 1,
                            arrays={"x": x, "r": r, "p": p},
                            scalars={
                                "gamma": gamma,
                                "gamma0": gamma0,
                                "damping": damping,
                            },
                            residual_norms=result.residual_norms,
                            solution_norms=result.solution_norms,
                        )
                    )
            if action != "ok":
                last = checkpoint.last if checkpoint is not None else None
                if action == "rollback" and last is not None:
                    # Damped restart from the snapshot: restore the
                    # iterate and residual, rebuild the search direction
                    # as steepest descent, and halve the step scale.
                    x = np.array(last.arrays["x"], dtype=work)
                    r = np.array(last.arrays["r"], dtype=work)
                    s = np.asarray(op.adjoint(r), dtype=work)
                    p = s.copy()
                    gamma = float(s @ s)
                    damping *= 0.5
                    result.x = x
                    result.iterations = last.iteration
                    result.residual_norms = list(last.residual_norms)
                    result.solution_norms = list(last.solution_norms)
                    health.rolled_back()
                    continue
                if last is not None:
                    # Abort returns the last healthy snapshot, not the
                    # poisoned iterate.
                    x = np.array(last.arrays["x"], dtype=work)
                    result.x = x
                    result.iterations = last.iteration
                    result.residual_norms = list(last.residual_norms)
                    result.solution_norms = list(last.solution_norms)
                incident = health.last_incident
                result.stop_reason = (
                    f"numerical health abort: {incident.detail}"
                    if incident is not None
                    else "numerical health abort"
                )
                break
            if callback is not None:
                callback(it + 1, x)
            if tolerance > 0.0 and gamma <= (tolerance**2) * gamma0:
                result.converged = True
                result.stop_reason = "gradient tolerance reached"
                break

    result.x = x
    if not result.stop_reason:
        result.stop_reason = "iteration budget exhausted"
    return result
