"""Conjugate-gradient least-squares solver (CGLS).

MemXCT's solver of choice (paper Section 3.5.2): CG on the normal
equations ``A^T A x = A^T y``.  Compared with SIRT it converges faster
because (1) the full gradient is used, (2) the step size is computed
analytically — which costs the extra forward projection of the search
direction each iteration — and (3) the three-term recurrence keeps new
directions conjugate to previous ones.

The implementation is the textbook CGLS recurrence (paper ref [24],
Barrett et al.), which applies ``A`` and ``A^T`` exactly once per
iteration.
"""

from __future__ import annotations

import numpy as np

from .base import ProjectionOperator, SolveResult, iteration_span, solve_span

__all__ = ["cgls"]


def cgls(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 30,
    x0: np.ndarray | None = None,
    tolerance: float = 0.0,
    callback=None,
) -> SolveResult:
    """Run CGLS iterations for ``min_x ||A x - y||``.

    Parameters
    ----------
    op:
        The system operator.
    y:
        Measured sinogram (flat, length ``op.num_rays``).
    num_iterations:
        Iteration budget.  The paper uses an early-termination
        heuristic of 30 iterations for its datasets; see
        :func:`repro.solvers.lcurve.lcurve_corner` for choosing the
        stopping index a posteriori.
    x0:
        Initial tomogram estimate (zeros by default).
    tolerance:
        Relative gradient-norm stopping threshold
        (``||A^T r|| <= tolerance * ||A^T y||``); 0 disables.
    callback:
        Optional ``callback(iteration, x)`` invoked after each update.
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"sinogram has {y.shape[0]} entries, expected {op.num_rays}")
    x = (
        np.zeros(op.num_pixels, dtype=np.float64)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )

    with solve_span("cg", num_iterations=num_iterations):
        r = y - np.asarray(op.forward(x), dtype=np.float64)
        s = np.asarray(op.adjoint(r), dtype=np.float64)
        p = s.copy()
        gamma = float(s @ s)
        gamma0 = gamma

        result = SolveResult(x=x, iterations=0)
        result.residual_norms.append(float(np.linalg.norm(r)))
        result.solution_norms.append(float(np.linalg.norm(x)))

        for it in range(num_iterations):
            if gamma == 0.0:
                result.converged = True
                result.stop_reason = "exact solution reached"
                break
            with iteration_span("cg", it):
                q = np.asarray(op.forward(p), dtype=np.float64)
                qq = float(q @ q)
                if qq == 0.0:
                    result.stop_reason = "search direction in null space"
                    break
                alpha = gamma / qq
                x += alpha * p
                r -= alpha * q
                s = np.asarray(op.adjoint(r), dtype=np.float64)
                gamma_new = float(s @ s)
                beta = gamma_new / gamma
                p = s + beta * p
                gamma = gamma_new

                result.iterations = it + 1
                result.residual_norms.append(float(np.linalg.norm(r)))
                result.solution_norms.append(float(np.linalg.norm(x)))
            if callback is not None:
                callback(it + 1, x)
            if tolerance > 0.0 and gamma <= (tolerance**2) * gamma0:
                result.converged = True
                result.stop_reason = "gradient tolerance reached"
                break

    result.x = x
    if not result.stop_reason:
        result.stop_reason = "iteration budget exhausted"
    return result
