"""SIRT — simultaneous iterative reconstruction technique.

The solver used by the compute-centric Trace baseline (paper refs
[10]).  Each iteration applies

    x_{k+1} = x_k + C A^T R (y - A x_k)

where ``R = diag(1 / row-sums of A)`` and ``C = diag(1 / column-sums
of A)``.  One forward and one backprojection per iteration, like CGLS,
but with a fixed preconditioned-Richardson step instead of an optimal
one — hence the slower convergence seen in paper Fig. 8(a).
"""

from __future__ import annotations

import numpy as np

from .base import ProjectionOperator, SolveResult, iteration_span, solve_span

__all__ = ["sirt"]


def _safe_reciprocal(v: np.ndarray) -> np.ndarray:
    """1/v with zeros mapped to zero (rays/pixels outside the support)."""
    out = np.zeros_like(v, dtype=np.float64)
    nonzero = v != 0
    out[nonzero] = 1.0 / v[nonzero]
    return out


def sirt(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 45,
    x0: np.ndarray | None = None,
    relaxation: float = 1.0,
    nonnegativity: bool = False,
    callback=None,
) -> SolveResult:
    """Run SIRT iterations.

    Parameters
    ----------
    op:
        System operator; row/column sums are obtained from
        ``op.row_sums()`` / ``op.col_sums()`` when available and by
        applying the operator to all-ones vectors otherwise.
    y:
        Measured sinogram.
    num_iterations:
        Iteration budget (the Trace comparison in paper Table 4 runs
        45).
    relaxation:
        Step scaling in ``(0, 2)``; 1.0 is classic SIRT.
    nonnegativity:
        Clip negative pixels after each update (a common physical
        constraint ``C`` in the paper's Eq. 1).
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"sinogram has {y.shape[0]} entries, expected {op.num_rays}")
    x = (
        np.zeros(op.num_pixels, dtype=np.float64)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )

    if hasattr(op, "row_sums") and hasattr(op, "col_sums"):
        row_sums = np.asarray(op.row_sums(), dtype=np.float64)
        col_sums = np.asarray(op.col_sums(), dtype=np.float64)
    else:
        row_sums = np.asarray(op.forward(np.ones(op.num_pixels)), dtype=np.float64)
        col_sums = np.asarray(op.adjoint(np.ones(op.num_rays)), dtype=np.float64)
    r_inv = _safe_reciprocal(row_sums)
    c_inv = _safe_reciprocal(col_sums)

    result = SolveResult(x=x, iterations=0)
    residual = y - np.asarray(op.forward(x), dtype=np.float64)
    result.residual_norms.append(float(np.linalg.norm(residual)))
    result.solution_norms.append(float(np.linalg.norm(x)))

    with solve_span("sirt", num_iterations=num_iterations):
        for it in range(num_iterations):
            with iteration_span("sirt", it):
                update = c_inv * np.asarray(
                    op.adjoint(r_inv * residual), dtype=np.float64
                )
                x += relaxation * update
                if nonnegativity:
                    np.maximum(x, 0.0, out=x)
                residual = y - np.asarray(op.forward(x), dtype=np.float64)

                result.iterations = it + 1
                result.residual_norms.append(float(np.linalg.norm(residual)))
                result.solution_norms.append(float(np.linalg.norm(x)))
            if callback is not None:
                callback(it + 1, x)

    result.x = x
    result.stop_reason = "iteration budget exhausted"
    return result
