"""SIRT — simultaneous iterative reconstruction technique.

The solver used by the compute-centric Trace baseline (paper refs
[10]).  Each iteration applies

    x_{k+1} = x_k + C A^T R (y - A x_k)

where ``R = diag(1 / row-sums of A)`` and ``C = diag(1 / column-sums
of A)``.  One forward and one backprojection per iteration, like CGLS,
but with a fixed preconditioned-Richardson step instead of an optimal
one — hence the slower convergence seen in paper Fig. 8(a).
"""

from __future__ import annotations

import numpy as np

from .base import (
    ProjectionOperator,
    SolveResult,
    iteration_span,
    observe_health,
    resolve_resume,
    solve_span,
    solver_dtype,
)

__all__ = ["sirt"]


def _safe_reciprocal(v: np.ndarray) -> np.ndarray:
    """1/v with zeros mapped to zero (rays/pixels outside the support).

    Preserves the input dtype — the fp32 path must not smuggle float64
    scaling vectors back into the recurrence.
    """
    out = np.zeros_like(v)
    nonzero = v != 0
    out[nonzero] = 1.0 / v[nonzero]
    return out


def sirt(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 45,
    x0: np.ndarray | None = None,
    relaxation: float = 1.0,
    nonnegativity: bool = False,
    callback=None,
    checkpoint=None,
    resume=None,
    health=None,
) -> SolveResult:
    """Run SIRT iterations.

    Parameters
    ----------
    op:
        System operator; row/column sums are obtained from
        ``op.row_sums()`` / ``op.col_sums()`` when available and by
        applying the operator to all-ones vectors otherwise.
    y:
        Measured sinogram.
    num_iterations:
        Iteration budget (the Trace comparison in paper Table 4 runs
        45).
    relaxation:
        Step scaling in ``(0, 2)``; 1.0 is classic SIRT.
    nonnegativity:
        Clip negative pixels after each update (a common physical
        constraint ``C`` in the paper's Eq. 1).
    checkpoint:
        Optional :class:`~repro.resilience.CheckpointManager`;
        SIRT's full recurrence state is the iterate ``x`` (the
        residual is recomputed from it), so snapshots are one array.
    resume:
        Checkpoint to continue from (bit-exact: the residual recompute
        ``y - A x`` is the same operation the uninterrupted run
        performs with the same operands).
    health:
        Optional :class:`~repro.resilience.HealthMonitor`; rollback
        restores the snapshot and halves the relaxation.
    """
    work = solver_dtype(op)
    y = np.asarray(y, dtype=work).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"sinogram has {y.shape[0]} entries, expected {op.num_rays}")

    restored = resolve_resume(resume, "sirt")
    if restored is not None:
        x = np.array(restored.arrays["x"], dtype=work)
        relaxation = float(restored.scalars.get("relaxation", relaxation))
        start_iteration = restored.iteration
    else:
        x = (
            np.zeros(op.num_pixels, dtype=work)
            if x0 is None
            else np.asarray(x0, dtype=work).copy()
        )
        start_iteration = 0

    if hasattr(op, "row_sums") and hasattr(op, "col_sums"):
        row_sums = np.asarray(op.row_sums(), dtype=work)
        col_sums = np.asarray(op.col_sums(), dtype=work)
    else:
        row_sums = np.asarray(op.forward(np.ones(op.num_pixels)), dtype=work)
        col_sums = np.asarray(op.adjoint(np.ones(op.num_rays)), dtype=work)
    r_inv = _safe_reciprocal(row_sums)
    c_inv = _safe_reciprocal(col_sums)

    result = SolveResult(x=x, iterations=start_iteration)
    residual = y - np.asarray(op.forward(x), dtype=work)
    if restored is not None:
        result.residual_norms = list(restored.residual_norms)
        result.solution_norms = list(restored.solution_norms)
    else:
        result.residual_norms.append(float(np.linalg.norm(residual)))
        result.solution_norms.append(float(np.linalg.norm(x)))

    with solve_span("sirt", num_iterations=num_iterations):
        for it in range(start_iteration, num_iterations):
            with iteration_span("sirt", it):
                update = c_inv * np.asarray(
                    op.adjoint(r_inv * residual), dtype=work
                )
                x += relaxation * update
                if nonnegativity:
                    np.maximum(x, 0.0, out=x)
                residual = y - np.asarray(op.forward(x), dtype=work)

                result.iterations = it + 1
                rnorm = float(np.linalg.norm(residual))
                result.residual_norms.append(rnorm)
                result.solution_norms.append(float(np.linalg.norm(x)))

                # Health verdict comes BEFORE the snapshot: a poisoned
                # iterate landing on a save boundary must never
                # overwrite the healthy rollback target.
                action = observe_health(health, it + 1, x, rnorm)
                if action == "ok" and checkpoint is not None:
                    from ..resilience.checkpoint import SolverCheckpoint

                    checkpoint.maybe_save(
                        SolverCheckpoint(
                            solver="sirt",
                            iteration=it + 1,
                            arrays={"x": x},
                            scalars={"relaxation": relaxation},
                            residual_norms=result.residual_norms,
                            solution_norms=result.solution_norms,
                        )
                    )
            if action != "ok":
                last = checkpoint.last if checkpoint is not None else None
                if action == "rollback" and last is not None:
                    x = np.array(last.arrays["x"], dtype=work)
                    residual = y - np.asarray(op.forward(x), dtype=work)
                    relaxation *= 0.5
                    result.x = x
                    result.iterations = last.iteration
                    result.residual_norms = list(last.residual_norms)
                    result.solution_norms = list(last.solution_norms)
                    health.rolled_back()
                    continue
                if last is not None:
                    # Abort returns the last healthy snapshot, not the
                    # poisoned iterate.
                    x = np.array(last.arrays["x"], dtype=work)
                    result.x = x
                    result.iterations = last.iteration
                    result.residual_norms = list(last.residual_norms)
                    result.solution_norms = list(last.solution_norms)
                incident = health.last_incident
                result.stop_reason = (
                    f"numerical health abort: {incident.detail}"
                    if incident is not None
                    else "numerical health abort"
                )
                break
            if callback is not None:
                callback(it + 1, x)

    result.x = x
    if not result.stop_reason:
        result.stop_reason = "iteration budget exhausted"
    return result
