"""Iterative solvers (paper Section 3.5.2): CGLS, SIRT, SGD, L-curve."""

from .base import (
    MatrixOperator,
    ProjectionOperator,
    SolveResult,
    observe_health,
    resolve_resume,
    solver_dtype,
)
from .batched import (
    BatchSolveResult,
    adjoint_batch,
    cgls_batch,
    forward_batch,
    mlem_batch,
    sirt_batch,
)
from .cg import cgls
from .fbp import fbp, ramp_filter
from .icd import icd
from .mlem import mlem
from .lcurve import lcurve_corner, overfit_onset
from .sgd import sgd
from .regularized import (
    GradientAugmentedOperator,
    GradientOperator,
    TikhonovOperator,
    regularized_cgls,
    tv_cgls,
)
from .sirt import sirt

__all__ = [
    "MatrixOperator",
    "ProjectionOperator",
    "SolveResult",
    "BatchSolveResult",
    "cgls",
    "cgls_batch",
    "sirt_batch",
    "mlem_batch",
    "forward_batch",
    "adjoint_batch",
    "fbp",
    "ramp_filter",
    "icd",
    "mlem",
    "TikhonovOperator",
    "GradientOperator",
    "GradientAugmentedOperator",
    "regularized_cgls",
    "tv_cgls",
    "lcurve_corner",
    "overfit_onset",
    "observe_health",
    "resolve_resume",
    "sgd",
    "sirt",
    "solver_dtype",
]
