"""Iterative solvers (paper Section 3.5.2): CGLS, SIRT, SGD, L-curve."""

from .base import (
    MatrixOperator,
    ProjectionOperator,
    SolveResult,
    observe_health,
    resolve_resume,
)
from .cg import cgls
from .fbp import fbp, ramp_filter
from .icd import icd
from .mlem import mlem
from .lcurve import lcurve_corner, overfit_onset
from .sgd import sgd
from .regularized import TikhonovOperator, regularized_cgls
from .sirt import sirt

__all__ = [
    "MatrixOperator",
    "ProjectionOperator",
    "SolveResult",
    "cgls",
    "fbp",
    "ramp_filter",
    "icd",
    "mlem",
    "TikhonovOperator",
    "regularized_cgls",
    "lcurve_corner",
    "overfit_onset",
    "observe_health",
    "resolve_resume",
    "sgd",
    "sirt",
]
