"""Common solver interfaces.

All iterative schemes (paper Section 3.5.2) are written against a
minimal linear-operator protocol — ``forward`` (``A x``), ``adjoint``
(``A^T y``) and the two shapes — so that the serial MemXCT operator,
the compute-centric operator, and the distributed operator are
interchangeable ("plug-and-play" in the paper's words).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..obs import SOLVER_ITERATIONS, add_count, span
from ..precision import solver_dtype
from ..resilience.checkpoint import CheckpointError, CheckpointManager, SolverCheckpoint

__all__ = [
    "ProjectionOperator",
    "MatrixOperator",
    "SolveResult",
    "solve_span",
    "iteration_span",
    "resolve_resume",
    "observe_health",
    "solver_dtype",
]


def solve_span(solver: str, **attrs) -> span:
    """Span wrapping one whole solve (``solver.solve``).

    Every solver opens this around its iteration loop so solver
    iterations nest under it in the captured span tree.
    """
    return span("solver.solve", solver=solver, **attrs)


def iteration_span(solver: str, iteration: int) -> span:
    """Span wrapping one solver iteration (``solver.iteration``).

    Also bumps the :data:`repro.obs.SOLVER_ITERATIONS` counter, so
    captures can assert on how many iterations actually ran.  Costs two
    ``perf_counter`` calls per iteration when observation is inactive —
    noise next to the two SpMVs an iteration performs.
    """
    add_count(SOLVER_ITERATIONS, 1)
    return span("solver.iteration", solver=solver, iteration=iteration)


def resolve_resume(resume, solver: str) -> SolverCheckpoint | None:
    """Normalize a solver's ``resume`` argument into a checkpoint.

    Accepts a :class:`~repro.resilience.SolverCheckpoint`, a
    :class:`~repro.resilience.CheckpointManager`, or a checkpoint file
    path; validates that the snapshot belongs to ``solver`` (resuming a
    CG run with SIRT state would be silent nonsense).  An unusable or
    missing checkpoint raises :class:`~repro.resilience.CheckpointError`
    — an explicit resume must never silently cold-start.
    """
    if resume is None:
        return None
    if isinstance(resume, SolverCheckpoint):
        checkpoint = resume
    elif isinstance(resume, CheckpointManager):
        checkpoint = resume.require()
    else:
        checkpoint = CheckpointManager(resume).require()
    if checkpoint.solver != solver:
        raise CheckpointError(
            f"checkpoint holds {checkpoint.solver!r} state, cannot resume "
            f"a {solver!r} solve from it"
        )
    return checkpoint


def observe_health(health, iteration: int, x: np.ndarray, residual_norm: float) -> str:
    """Health hook run inside each iteration span.

    Returns ``"ok"`` when no monitor is attached or the iterate is
    healthy, otherwise the monitor's verdict (``"rollback"`` /
    ``"abort"``) for the solver's recovery policy to act on.
    """
    if health is None:
        return "ok"
    return health.observe(iteration, x, residual_norm)


@runtime_checkable
class ProjectionOperator(Protocol):
    """Protocol for the tomographic system operator ``A``."""

    @property
    def num_rays(self) -> int:
        """Sinogram length (rows of ``A``)."""
        ...

    @property
    def num_pixels(self) -> int:
        """Tomogram length (columns of ``A``)."""
        ...

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward projection ``y = A x``."""
        ...

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        """Backprojection ``x = A^T y``."""
        ...


class MatrixOperator:
    """Minimal :class:`ProjectionOperator` over an explicit matrix pair.

    Useful whenever a raw :class:`repro.sparse.CSRMatrix` (or anything
    with a compatible ``spmv``) should drive the solvers directly —
    custom geometries, test systems, externally supplied matrices.
    The transpose is built with the scan-based (locality-preserving)
    transposition when not supplied.

    ``dtype`` mirrors ``OperatorConfig.dtype``: ``None`` keeps the
    historical mixed precision (float32 kernels, float64 solver state),
    ``"float32"``/``"float64"`` select an end-to-end precision (the
    solvers read it back through :func:`repro.precision.solver_dtype`).
    """

    def __init__(self, matrix, transpose=None, dtype=None):
        from ..precision import compute_dtype, parse_dtype
        from ..sparse import scan_transpose  # local import avoids a cycle

        self.matrix = matrix
        self.transpose = transpose if transpose is not None else scan_transpose(matrix)
        if self.transpose.shape != (matrix.shape[1], matrix.shape[0]):
            raise ValueError(
                f"transpose shape {self.transpose.shape} does not match "
                f"matrix shape {matrix.shape}"
            )
        self.dtype = parse_dtype(dtype)
        self.compute_dtype = compute_dtype(self.dtype)
        self.solve_dtype = np.dtype(
            np.float32 if self.dtype == "float32" else np.float64
        )

    @property
    def num_rays(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_pixels(self) -> int:
        return self.matrix.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.matrix.spmv(np.asarray(x, dtype=self.compute_dtype))

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        return self.transpose.spmv(np.asarray(y, dtype=self.compute_dtype))

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Multi-RHS forward: ``Y = A X`` for an ``(num_pixels, S)`` slab."""
        return self.matrix.spmv_batch(np.asarray(x, dtype=self.compute_dtype))

    def adjoint_batch(self, y: np.ndarray) -> np.ndarray:
        """Multi-RHS adjoint: ``X = A^T Y`` for an ``(num_rays, S)`` slab."""
        return self.transpose.spmv_batch(np.asarray(y, dtype=self.compute_dtype))

    def row_sums(self) -> np.ndarray:
        return self.matrix.row_sums()

    def col_sums(self) -> np.ndarray:
        return self.matrix.col_sums()


@dataclass
class SolveResult:
    """Outcome of an iterative reconstruction.

    ``residual_norms[i]`` is ``||A x_i - y||`` and
    ``solution_norms[i]`` is ``||x_i||`` *after* iteration ``i``; the
    pair traces the L-curve of paper Fig. 8(a).
    """

    x: np.ndarray
    iterations: int
    residual_norms: list[float] = field(default_factory=list)
    solution_norms: list[float] = field(default_factory=list)
    converged: bool = False
    stop_reason: str = ""

    def lcurve(self) -> tuple[np.ndarray, np.ndarray]:
        """(residual-norm, solution-norm) series for L-curve plots."""
        return np.asarray(self.residual_norms), np.asarray(self.solution_norms)
