"""Regularized CGLS — the R(x) of the paper's Eq. (1).

The paper's formulation ``min ||y - A x||^2 + R(x)`` accommodates a
regularizer; MemXCT itself regularizes implicitly by early
termination, but the plug-and-play claim (Section 3.5.2) means an
explicit regularizer should drop in with minor modifications.  This
module provides

* ``R(x) = lambda ||x||^2`` — standard Tikhonov / ridge, via the
  augmented system ``[A; sqrt(l) I] x = [y; 0]``;
* ``R(x) = lambda ||D x||^2`` — gradient (first-difference) Tikhonov,
  via ``[A; sqrt(l) W D]`` with optional per-edge weights ``W``;
* anisotropic total variation ``R(x) = lambda ||D x||_1`` — solved by
  IRLS (lagged diffusivity): a short sequence of weighted-gradient
  solves whose weights ``w_e = (|(D x)_e|^2 + eps^2)^(-1/2)`` re-linearize
  the 1-norm around the previous iterate.

All augmentations are expressed through wrapper operators, so the
underlying forward/backprojection kernels (and their distributed
variants) are reused untouched — and they *honor the base operator's
precision*: the wrappers advertise the base's ``solve_dtype`` /
``compute_dtype`` and never force float64, so an end-to-end fp32
operator stays single-precision through a regularized solve (the PR 6
contract).

``regularized_cgls``/``tv_cgls`` report the **data-term** residual
``||y - A x||`` in ``SolveResult.residual_norms``, not the augmented
residual: the augmented norm inflates with ``strength`` and would make
convergence (and L-curve) comparisons against unregularized solves
meaningless.
"""

from __future__ import annotations

import numpy as np

from .base import ProjectionOperator, SolveResult, solver_dtype
from .cg import cgls

__all__ = [
    "regularized_cgls",
    "tv_cgls",
    "TikhonovOperator",
    "GradientOperator",
    "GradientAugmentedOperator",
]


class GradientOperator:
    """Forward-difference gradient ``D`` on a 2D image layout.

    ``apply`` maps a flat vector (optionally in a permuted/ordered
    layout) to the stacked ``[d/dx; d/dy]`` differences of the
    row-major image; ``adjoint`` is the exact transpose (negative
    divergence with one-sided boundary handling).

    Parameters
    ----------
    shape:
        Image shape ``(rows, cols)``.
    perm:
        Optional layout permutation: ``x_layout[k] = x_rowmajor[perm[k]]``
        (e.g. ``operator.tomo_ordering.perm``).  ``None`` means the
        vector already is row-major.
    """

    def __init__(self, shape: tuple[int, int], perm: np.ndarray | None = None):
        rows, cols = int(shape[0]), int(shape[1])
        if rows <= 0 or cols <= 0:
            raise ValueError(f"image shape must be positive, got {shape}")
        self.shape = (rows, cols)
        self.num_cells = rows * cols
        self.num_edges = rows * (cols - 1) + (rows - 1) * cols
        if perm is not None:
            perm = np.asarray(perm, dtype=np.int64)
            if perm.shape[0] != self.num_cells:
                raise ValueError(
                    f"perm has {perm.shape[0]} entries, expected {self.num_cells}"
                )
            rank = np.empty_like(perm)
            rank[perm] = np.arange(perm.shape[0], dtype=np.int64)
        else:
            rank = None
        self.perm = perm
        self.rank = rank

    def _to_image(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x).reshape(-1)
        if self.perm is not None:
            # x is in layout order; rank scatters it back to row-major.
            x = x[self.rank]
        return x.reshape(self.shape)

    def apply(self, x: np.ndarray) -> np.ndarray:
        img = self._to_image(x)
        dx = img[:, 1:] - img[:, :-1]
        dy = img[1:, :] - img[:-1, :]
        return np.concatenate([dx.ravel(), dy.ravel()])

    def adjoint(self, g: np.ndarray) -> np.ndarray:
        g = np.asarray(g).reshape(-1)
        if g.shape[0] != self.num_edges:
            raise ValueError(f"expected {self.num_edges} edge values, got {g.shape[0]}")
        rows, cols = self.shape
        ndx = rows * (cols - 1)
        dx = g[:ndx].reshape(rows, cols - 1)
        dy = g[ndx:].reshape(rows - 1, cols)
        out = np.zeros(self.shape, dtype=g.dtype)
        out[:, 1:] += dx
        out[:, :-1] -= dx
        out[1:, :] += dy
        out[:-1, :] -= dy
        flat = out.reshape(-1)
        if self.perm is not None:
            flat = flat[self.perm]
        return flat


class _AugmentedBase:
    """Shared plumbing of the ``[A; sqrt(l) P]`` wrapper operators.

    Advertises the base operator's precision so :func:`cgls` keeps the
    solver state in the base's ``solve_dtype`` — the historical code
    hard-coded float64 here and silently broke the end-to-end fp32
    path.
    """

    def __init__(self, base: ProjectionOperator, strength: float):
        if strength < 0:
            raise ValueError(f"regularization strength must be >= 0, got {strength}")
        self.base = base
        self.strength = strength
        self.solve_dtype = solver_dtype(base)
        self.compute_dtype = np.dtype(
            getattr(base, "compute_dtype", None) or self.solve_dtype
        )
        self._sqrt = float(np.sqrt(strength))

    @property
    def num_pixels(self) -> int:
        return self.base.num_pixels


class TikhonovOperator(_AugmentedBase):
    """Augmented operator ``[A; sqrt(lambda) I]`` over a base operator."""

    @property
    def num_rays(self) -> int:
        return self.base.num_rays + self.base.num_pixels

    def forward(self, x: np.ndarray) -> np.ndarray:
        work = self.solve_dtype
        x = np.asarray(x, dtype=work)
        top = np.asarray(self.base.forward(x), dtype=work)
        return np.concatenate([top, (self._sqrt * x).astype(work, copy=False)])

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        work = self.solve_dtype
        y = np.asarray(y, dtype=work)
        data, prior = y[: self.base.num_rays], y[self.base.num_rays :]
        bottom = (self._sqrt * prior).astype(work, copy=False)
        return np.asarray(self.base.adjoint(data), dtype=work) + bottom

    def prior_norm(self, x: np.ndarray) -> float:
        """``||P x||`` of the prior term (identity: just ``||x||``)."""
        return float(np.linalg.norm(np.asarray(x, dtype=self.solve_dtype)))


class GradientAugmentedOperator(_AugmentedBase):
    """Augmented operator ``[A; sqrt(lambda) W D]`` over a base operator.

    ``D`` is the forward-difference gradient of
    :class:`GradientOperator`; ``W = diag(weights)`` carries optional
    per-edge IRLS weights (``None`` = unweighted gradient Tikhonov).

    ``shape``/``perm`` describe the base operator's image layout; when
    omitted they are taken from a :class:`repro.core.MemXCTOperator`'s
    tomogram ordering, so ordered-coordinate operators work without
    ceremony.
    """

    def __init__(
        self,
        base: ProjectionOperator,
        strength: float,
        shape: tuple[int, int] | None = None,
        perm: np.ndarray | None = None,
        weights: np.ndarray | None = None,
    ):
        super().__init__(base, strength)
        if shape is None:
            ordering = getattr(base, "tomo_ordering", None)
            if ordering is None:
                raise ValueError(
                    "shape is required for operators without a tomo_ordering"
                )
            shape = (ordering.rows, ordering.cols)
            perm = ordering.perm
        self.gradient = GradientOperator(shape, perm)
        if self.gradient.num_cells != base.num_pixels:
            raise ValueError(
                f"image shape {shape} has {self.gradient.num_cells} cells, "
                f"operator expects {base.num_pixels}"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=self.solve_dtype).reshape(-1)
            if weights.shape[0] != self.gradient.num_edges:
                raise ValueError(
                    f"{weights.shape[0]} weights for "
                    f"{self.gradient.num_edges} gradient edges"
                )
        self.weights = weights

    @property
    def num_rays(self) -> int:
        return self.base.num_rays + self.gradient.num_edges

    def _weighted_gradient(self, x: np.ndarray) -> np.ndarray:
        g = self.gradient.apply(x)
        if self.weights is not None:
            g = g * self.weights
        return (self._sqrt * g).astype(self.solve_dtype, copy=False)

    def forward(self, x: np.ndarray) -> np.ndarray:
        work = self.solve_dtype
        x = np.asarray(x, dtype=work)
        top = np.asarray(self.base.forward(x), dtype=work)
        return np.concatenate([top, self._weighted_gradient(x)])

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        work = self.solve_dtype
        y = np.asarray(y, dtype=work)
        data, prior = y[: self.base.num_rays], y[self.base.num_rays :]
        if self.weights is not None:
            prior = prior * self.weights
        bottom = (self._sqrt * self.gradient.adjoint(prior)).astype(work, copy=False)
        return np.asarray(self.base.adjoint(data), dtype=work) + bottom

    def prior_norm(self, x: np.ndarray) -> float:
        """``||W D x||`` of the prior term."""
        g = self.gradient.apply(np.asarray(x, dtype=self.solve_dtype))
        if self.weights is not None:
            g = g * self.weights
        return float(np.linalg.norm(g))


def _augmented_solve(
    augmented, y: np.ndarray, num_iterations: int, **kwargs
) -> SolveResult:
    """Run CGLS on the augmented system and rewrite the residual series.

    CGLS records the *augmented* residual ``||r_aug||`` where
    ``||r_aug||^2 = ||y - A x||^2 + strength * ||P x||^2``.  The prior
    norms ``||P x_i||`` are tracked per iterate (via the solver's
    callback, starting from ``x_0``), so the data-term residual is
    recovered exactly as ``sqrt(||r_aug||^2 - strength * ||P x||^2)``
    without any extra operator applications.
    """
    work = augmented.solve_dtype
    rhs = np.concatenate(
        [
            np.asarray(y, dtype=work).reshape(-1),
            np.zeros(augmented.num_rays - augmented.base.num_rays, dtype=work),
        ]
    )
    prior_norms: list[float] = []
    user_callback = kwargs.pop("callback", None)

    def _track(iteration: int, x: np.ndarray) -> None:
        prior_norms.append(augmented.prior_norm(x))
        if user_callback is not None:
            user_callback(iteration, x)

    result = cgls(
        augmented, rhs, num_iterations=num_iterations, callback=_track, **kwargs
    )

    x0 = kwargs.get("x0")
    first = augmented.prior_norm(x0) if x0 is not None else 0.0
    priors = [first, *prior_norms]
    # Early-termination paths can break out before the callback fires;
    # pad with the final iterate's prior (and truncate symmetric cases)
    # so the series stays aligned with residual_norms.
    while len(priors) < len(result.residual_norms):
        priors.append(augmented.prior_norm(result.x))
    priors_arr = np.asarray(priors[: len(result.residual_norms)])
    aug = np.asarray(result.residual_norms, dtype=np.float64)
    data_sq = np.maximum(aug**2 - augmented.strength * priors_arr**2, 0.0)
    result.residual_norms = [float(v) for v in np.sqrt(data_sq)]
    return result


def regularized_cgls(
    op: ProjectionOperator,
    y: np.ndarray,
    strength: float,
    num_iterations: int = 30,
    regularizer: str = "identity",
    shape: tuple[int, int] | None = None,
    perm: np.ndarray | None = None,
    **kwargs,
) -> SolveResult:
    """Solve ``min ||A x - y||^2 + strength * ||P x||^2`` with CGLS.

    ``regularizer`` selects ``P``: ``"identity"`` (classic Tikhonov) or
    ``"gradient"`` (first-difference smoothness; ``shape``/``perm``
    locate the image layout for operators without a ``tomo_ordering``).

    Returns a :class:`SolveResult` whose ``residual_norms`` are the
    **data-term** residuals ``||y - A x_i||`` — directly comparable
    against an unregularized solve — while ``solution_norms`` still
    trace ``||x_i||`` for the L-curve.
    """
    if regularizer == "identity":
        augmented = TikhonovOperator(op, strength)
    elif regularizer == "gradient":
        augmented = GradientAugmentedOperator(op, strength, shape=shape, perm=perm)
    else:
        raise ValueError(
            f"unknown regularizer {regularizer!r}; expected 'identity' or 'gradient'"
        )
    return _augmented_solve(augmented, y, num_iterations, **kwargs)


def tv_cgls(
    op: ProjectionOperator,
    y: np.ndarray,
    strength: float,
    num_iterations: int = 10,
    outer_iterations: int = 4,
    epsilon: float = 1e-3,
    shape: tuple[int, int] | None = None,
    perm: np.ndarray | None = None,
    **kwargs,
) -> SolveResult:
    """Anisotropic total-variation solve by IRLS (lagged diffusivity).

    Each outer pass solves the weighted-gradient Tikhonov problem
    ``min ||A x - y||^2 + strength * ||W D x||^2`` with
    ``W = diag((|D x_prev|^2 + epsilon^2)^(-1/4))`` — the standard
    re-linearization of ``||D x||_1`` — warm-starting from the previous
    iterate.  ``num_iterations`` is the inner CGLS budget per pass.

    Returns the last pass's :class:`SolveResult` (data-term residuals,
    like :func:`regularized_cgls`); ``iterations`` counts the inner
    iterations of that final pass.
    """
    if outer_iterations < 1:
        raise ValueError(f"outer_iterations must be >= 1, got {outer_iterations}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    probe = GradientAugmentedOperator(op, strength, shape=shape, perm=perm)
    grad = probe.gradient
    x = kwargs.pop("x0", None)
    weights = None
    result: SolveResult | None = None
    for _ in range(outer_iterations):
        augmented = GradientAugmentedOperator(
            op, strength, shape=grad.shape, perm=grad.perm, weights=weights
        )
        result = _augmented_solve(augmented, y, num_iterations, x0=x, **kwargs)
        x = result.x
        magnitudes = grad.apply(np.asarray(x, dtype=np.float64))
        weights = (magnitudes**2 + epsilon**2) ** (-0.25)
    return result
