"""Tikhonov-regularized CGLS — the R(x) of the paper's Eq. (1).

The paper's formulation ``min ||y - A x||^2 + R(x)`` accommodates a
regularizer; MemXCT itself regularizes implicitly by early
termination, but the plug-and-play claim (Section 3.5.2) means an
explicit regularizer should drop in with minor modifications.  This
module provides ``R(x) = lambda ||x||^2`` (standard Tikhonov / ridge),
solved with the same CGLS recurrence on the augmented system

    [ A            ]       [ y ]
    [ sqrt(l) * I  ] x  =  [ 0 ] .

The augmentation is expressed through a wrapper operator, so the
underlying forward/backprojection kernels (and their distributed
variants) are reused untouched.
"""

from __future__ import annotations

import numpy as np

from .base import ProjectionOperator, SolveResult
from .cg import cgls

__all__ = ["regularized_cgls", "TikhonovOperator"]


class TikhonovOperator:
    """Augmented operator ``[A; sqrt(lambda) I]`` over a base operator."""

    def __init__(self, base: ProjectionOperator, strength: float):
        if strength < 0:
            raise ValueError(f"regularization strength must be >= 0, got {strength}")
        self.base = base
        self.strength = strength
        self._sqrt = float(np.sqrt(strength))

    @property
    def num_rays(self) -> int:
        return self.base.num_rays + self.base.num_pixels

    @property
    def num_pixels(self) -> int:
        return self.base.num_pixels

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        top = np.asarray(self.base.forward(x), dtype=np.float64)
        return np.concatenate([top, self._sqrt * np.asarray(x, dtype=np.float64)])

    def adjoint(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64)
        data, prior = y[: self.base.num_rays], y[self.base.num_rays :]
        return np.asarray(self.base.adjoint(data), dtype=np.float64) + self._sqrt * prior


def regularized_cgls(
    op: ProjectionOperator,
    y: np.ndarray,
    strength: float,
    num_iterations: int = 30,
    **kwargs,
) -> SolveResult:
    """Solve ``min ||A x - y||^2 + strength * ||x||^2`` with CGLS.

    Returns a :class:`SolveResult` whose residual norms are those of
    the *augmented* system (data residual plus prior penalty).
    """
    augmented = TikhonovOperator(op, strength)
    rhs = np.concatenate(
        [np.asarray(y, dtype=np.float64).reshape(-1), np.zeros(op.num_pixels)]
    )
    return cgls(augmented, rhs, num_iterations=num_iterations, **kwargs)
