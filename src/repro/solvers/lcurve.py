"""L-curve analysis and the early-termination heuristic.

Paper Fig. 8(a) plots the residual norm ``||A x_i - y||`` against the
solution norm ``||x_i||`` over iterations.  For CG the curve develops a
sharp corner: beyond it the residual barely improves while the solution
norm grows — noise being fitted.  MemXCT terminates at the corner
(~30 iterations on RDS1), "practically considered as a regularization
method" (Section 3.5.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["lcurve_corner", "overfit_onset"]


def lcurve_corner(residual_norms: np.ndarray, solution_norms: np.ndarray) -> int:
    """Index of the L-curve corner (maximum curvature in log-log space).

    Uses the standard discrete curvature of the parametric curve
    ``(log r_i, log s_i)``.  Returns an iteration index into the input
    series; series shorter than 3 points, or degenerate series with no
    interior curvature at all (e.g. constant norms), return the last
    index — "no corner found" must not read as "stop at iteration 0",
    which would terminate CG before it starts.
    """
    r = np.log(np.maximum(np.asarray(residual_norms, dtype=np.float64), 1e-300))
    s = np.log(np.maximum(np.asarray(solution_norms, dtype=np.float64), 1e-300))
    n = r.shape[0]
    if n < 3:
        return n - 1
    dr = np.gradient(r)
    ds = np.gradient(s)
    d2r = np.gradient(dr)
    d2s = np.gradient(ds)
    denom = np.power(dr * dr + ds * ds, 1.5)
    with np.errstate(divide="ignore", invalid="ignore"):
        curvature = np.abs(dr * d2s - ds * d2r) / denom
    curvature[~np.isfinite(curvature)] = 0.0
    # Endpoints have one-sided derivatives; exclude them.
    curvature[0] = curvature[-1] = 0.0
    corner = int(np.argmax(curvature))
    if curvature[corner] <= 0.0:
        return n - 1
    return corner


def overfit_onset(
    residual_norms: np.ndarray,
    solution_norms: np.ndarray,
    residual_tol: float = 1e-3,
    growth_tol: float = 1e-4,
) -> int:
    """First iteration where overfitting is detected.

    Overfitting onset = the residual's relative per-iteration
    improvement has fallen below ``residual_tol`` while the solution
    norm still grows by more than ``growth_tol`` relatively — further
    iterations add noise, not signal.  Returns the last index if the
    condition never triggers.
    """
    r = np.asarray(residual_norms, dtype=np.float64)
    s = np.asarray(solution_norms, dtype=np.float64)
    if r.shape != s.shape:
        raise ValueError("residual and solution series must have equal length")
    n = r.shape[0]
    for i in range(1, n):
        res_gain = (r[i - 1] - r[i]) / max(r[i - 1], 1e-300)
        sol_growth = (s[i] - s[i - 1]) / max(s[i - 1], 1e-300)
        if res_gain < residual_tol and sol_growth > growth_tol:
            return i
    return n - 1
