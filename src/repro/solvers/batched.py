"""Batched multi-RHS solvers: one cached operator, S slices per call.

MemXCT memoizes one ray-tracing operator and reuses it every iteration
(paper Section 3.5); the same operator is equally reusable across every
*slice* of a 3D stack.  These solvers run the CG/SIRT/MLEM recurrences
on an ``(N, S)`` slab of ``S`` independent right-hand sides at once:
every forward/backprojection is a single multi-RHS SpMV
(:meth:`repro.core.MemXCTOperator.forward_batch`) that streams the
regular matrix data once for all ``S`` slices, replacing ``S``
per-slice Python round-trips per iteration.

**Bit-exactness.**  Column ``j`` of a batched solve is bit-identical
to the corresponding single-slice solve of ``Y[:, j]``: the batched
SpMV kernels reduce each column in the same order as their 1D
counterparts, elementwise slab arithmetic is the same scalar
arithmetic, and the per-column scalar reductions (dot products, norms)
are computed on contiguous column copies through the very same BLAS
calls the single-slice solvers issue.  ``tests/test_batched_solvers.py``
asserts this with ``np.array_equal``.

**Convergence masks.**  Columns converge independently: a column whose
stopping criterion fires is *frozen* — excluded from every subsequent
update via masked column indexing, so its final state is exactly the
state at its own stopping iteration, not ``num_iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import SOLVER_ITERATIONS, add_count, span
from .base import ProjectionOperator, SolveResult, solve_span, solver_dtype

__all__ = [
    "BatchSolveResult",
    "cgls_batch",
    "sirt_batch",
    "mlem_batch",
    "forward_batch",
    "adjoint_batch",
]

_EPS = 1e-12  # MLEM ratio guard, matching repro.solvers.mlem


def forward_batch(op: ProjectionOperator, x: np.ndarray) -> np.ndarray:
    """``Y = A X`` over an ``(num_pixels, S)`` slab.

    Uses the operator's native multi-RHS path when it has one and falls
    back to a per-column loop otherwise, so any
    :class:`~repro.solvers.base.ProjectionOperator` (including the
    distributed one) can drive the batched solvers.
    """
    if hasattr(op, "forward_batch"):
        return op.forward_batch(x)
    return np.stack([op.forward(x[:, j]) for j in range(x.shape[1])], axis=1)


def adjoint_batch(op: ProjectionOperator, y: np.ndarray) -> np.ndarray:
    """``X = A^T Y`` over an ``(num_rays, S)`` slab (loop fallback)."""
    if hasattr(op, "adjoint_batch"):
        return op.adjoint_batch(y)
    return np.stack([op.adjoint(y[:, j]) for j in range(y.shape[1])], axis=1)


def _column_dots(slab: np.ndarray, columns: np.ndarray, out: np.ndarray) -> None:
    """``out[j] = slab[:, j] @ slab[:, j]`` for the selected columns.

    Each column is copied contiguous before the dot so the BLAS call is
    identical (operands and summation path) to the single-slice
    solver's ``float(s @ s)`` — that is what makes the recurrence
    scalars, and hence the whole solve, bit-exact per column.
    """
    for j in columns:
        col = np.ascontiguousarray(slab[:, j])
        out[j] = float(col @ col)


def _column_norms(slab: np.ndarray) -> np.ndarray:
    """Per-column 2-norms, each on a contiguous copy (see _column_dots)."""
    out = np.empty(slab.shape[1], dtype=np.float64)
    for j in range(slab.shape[1]):
        out[j] = float(np.linalg.norm(np.ascontiguousarray(slab[:, j])))
    return out


@dataclass
class BatchSolveResult:
    """Outcome of one batched multi-RHS solve.

    ``X`` holds one reconstruction per column.  The convergence
    histories are ``(recorded, S)`` arrays — rows past a column's own
    ``iterations[j]`` repeat its frozen final value; :meth:`column`
    truncates them when adapting one column to a
    :class:`~repro.solvers.base.SolveResult`.
    """

    X: np.ndarray  # (num_pixels, S)
    iterations: np.ndarray  # (S,) iterations each column actually ran
    residual_norms: np.ndarray  # (recorded, S)
    solution_norms: np.ndarray  # (recorded, S)
    converged: np.ndarray  # (S,) bool
    stop_reasons: list[str] = field(default_factory=list)

    @property
    def num_rhs(self) -> int:
        return self.X.shape[1]

    def column(self, j: int) -> SolveResult:
        """View column ``j`` as a single-slice :class:`SolveResult`."""
        keep = int(self.iterations[j]) + 1
        result = SolveResult(
            x=np.ascontiguousarray(self.X[:, j]),
            iterations=int(self.iterations[j]),
            residual_norms=[float(v) for v in self.residual_norms[:keep, j]],
            solution_norms=[float(v) for v in self.solution_norms[:keep, j]],
            converged=bool(self.converged[j]),
            stop_reason=self.stop_reasons[j] if self.stop_reasons else "",
        )
        return result


class _History:
    """Per-iteration (S,) norm records, frozen columns carried forward."""

    def __init__(self, residual0: np.ndarray, solution0: np.ndarray):
        self.residual = [residual0]
        self.solution = [solution0]

    def record(self, active: np.ndarray, residual: np.ndarray, solution: np.ndarray):
        prev_r, prev_s = self.residual[-1], self.solution[-1]
        self.residual.append(np.where(active, residual, prev_r))
        self.solution.append(np.where(active, solution, prev_s))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.residual), np.asarray(self.solution)


def _slab(y: np.ndarray, num_rows: int, what: str, dtype=np.float64) -> np.ndarray:
    slab = np.asarray(y, dtype=dtype)
    if slab.ndim != 2:
        raise ValueError(f"{what} must be an (N, S) slab, got shape {slab.shape}")
    if slab.shape[0] != num_rows:
        raise ValueError(f"{what} has {slab.shape[0]} rows, expected {num_rows}")
    return slab


def _batch_iteration(solver: str, it: int, active: int, batch: int) -> span:
    """Span + truthful iteration accounting for one batched iteration.

    ``solver.iterations`` counts *logical per-slice iterations*: a
    batched iteration advancing ``active`` columns is ``active``
    single-slice iterations' worth of work.
    """
    add_count(SOLVER_ITERATIONS, active)
    return span("solver.iteration", solver=solver, iteration=it, batch=batch)


def cgls_batch(
    op: ProjectionOperator,
    Y: np.ndarray,
    num_iterations: int = 30,
    X0: np.ndarray | None = None,
    tolerance: float = 0.0,
    callback=None,
) -> BatchSolveResult:
    """Batched CGLS over an ``(num_rays, S)`` measurement slab.

    Each column runs the exact textbook recurrence of
    :func:`repro.solvers.cgls` — same operators, same scalar
    reductions — and freezes independently when its per-column gradient
    tolerance ``||A^T r_j|| <= tolerance * ||A^T y_j||`` fires.
    """
    work = solver_dtype(op)
    Y = _slab(Y, op.num_rays, "measurement slab", work)
    S = Y.shape[1]

    with solve_span("cg", num_iterations=num_iterations, batch=S):
        X = (
            np.zeros((op.num_pixels, S), dtype=work)
            if X0 is None
            else _slab(X0, op.num_pixels, "initial slab", work).copy()
        )
        R = Y - np.asarray(forward_batch(op, X), dtype=work)
        G = np.asarray(adjoint_batch(op, R), dtype=work)
        P = G.copy()
        gamma = np.empty(S, dtype=np.float64)
        _column_dots(G, np.arange(S), gamma)
        gamma0 = gamma.copy()

        iterations = np.zeros(S, dtype=np.int64)
        converged = np.zeros(S, dtype=bool)
        reasons = [""] * S
        # Zero gradient at the start: x0 already solves that column's
        # normal equations (e.g. an all-zero sinogram column).
        for j in np.flatnonzero(gamma == 0.0):
            converged[j] = True
            reasons[j] = "zero gradient at start: x0 solves the normal equations"
        active = ~converged

        history = _History(_column_norms(R), _column_norms(X))

        for it in range(num_iterations):
            if not active.any():
                break
            with _batch_iteration("cg", it, int(active.sum()), S):
                Q = np.asarray(forward_batch(op, P), dtype=work)
                qq = np.zeros(S, dtype=np.float64)
                act = np.flatnonzero(active)
                _column_dots(Q, act, qq)
                # A search direction in null(A) can only follow from a
                # zero gradient in exact arithmetic; freeze the column
                # against the float edge case regardless.
                null = active & (qq == 0.0)
                for j in np.flatnonzero(null):
                    converged[j] = True
                    reasons[j] = "search direction in null space"
                active &= ~null
                act = np.flatnonzero(active)
                if act.shape[0] == 0:
                    break

                # The step scalars are computed in float64 (matching the
                # single-slice solver's python-float arithmetic) and then
                # cast to the work dtype, so the slab updates below use
                # exactly the scalars the per-column solver would.
                alpha = (gamma[act] / qq[act]).astype(work)
                X[:, act] += alpha * P[:, act]
                R[:, act] -= alpha * Q[:, act]
                Gact = np.asarray(
                    adjoint_batch(op, np.ascontiguousarray(R[:, act])),
                    dtype=work,
                )
                gamma_new = np.empty(act.shape[0], dtype=np.float64)
                _column_dots(Gact, np.arange(act.shape[0]), gamma_new)
                beta = (gamma_new / gamma[act]).astype(work)
                P[:, act] = Gact + beta * P[:, act]
                gamma[act] = gamma_new

                iterations[act] = it + 1
                history.record(active, _column_norms(R), _column_norms(X))

            if callback is not None:
                callback(it + 1, X, active.copy())

            if tolerance > 0.0:
                done = active & (gamma <= (tolerance**2) * gamma0)
                for j in np.flatnonzero(done):
                    converged[j] = True
                    reasons[j] = "gradient tolerance reached"
                active &= ~done

            exact = active & (gamma == 0.0)
            for j in np.flatnonzero(exact):
                converged[j] = True
                reasons[j] = "exact solution reached"
            active &= ~exact

    res_hist, sol_hist = history.arrays()
    for j in range(S):
        if not reasons[j]:
            reasons[j] = "iteration budget exhausted"
    return BatchSolveResult(
        X=X,
        iterations=iterations,
        residual_norms=res_hist,
        solution_norms=sol_hist,
        converged=converged,
        stop_reasons=reasons,
    )


def _safe_reciprocal(v: np.ndarray) -> np.ndarray:
    out = np.zeros_like(v)  # preserves the solver's work dtype
    nonzero = v != 0
    out[nonzero] = 1.0 / v[nonzero]
    return out


def sirt_batch(
    op: ProjectionOperator,
    Y: np.ndarray,
    num_iterations: int = 45,
    X0: np.ndarray | None = None,
    relaxation: float = 1.0,
    nonnegativity: bool = False,
    tolerance: float = 0.0,
    callback=None,
) -> BatchSolveResult:
    """Batched SIRT over an ``(num_rays, S)`` slab.

    With ``tolerance == 0`` (the single-slice solver's only mode) every
    column runs the full budget and is bit-identical to
    :func:`repro.solvers.sirt`.  ``tolerance > 0`` freezes a column
    once its relative residual ``||r_j|| <= tolerance * ||y_j||``.
    """
    work = solver_dtype(op)
    Y = _slab(Y, op.num_rays, "measurement slab", work)
    S = Y.shape[1]

    X = (
        np.zeros((op.num_pixels, S), dtype=work)
        if X0 is None
        else _slab(X0, op.num_pixels, "initial slab", work).copy()
    )

    if hasattr(op, "row_sums") and hasattr(op, "col_sums"):
        row_sums = np.asarray(op.row_sums(), dtype=work)
        col_sums = np.asarray(op.col_sums(), dtype=work)
    else:
        row_sums = np.asarray(op.forward(np.ones(op.num_pixels)), dtype=work)
        col_sums = np.asarray(op.adjoint(np.ones(op.num_rays)), dtype=work)
    r_inv = _safe_reciprocal(row_sums)[:, None]
    c_inv = _safe_reciprocal(col_sums)[:, None]

    Resid = Y - np.asarray(forward_batch(op, X), dtype=work)
    ynorm = _column_norms(Y)

    iterations = np.zeros(S, dtype=np.int64)
    converged = np.zeros(S, dtype=bool)
    reasons = [""] * S
    active = np.ones(S, dtype=bool)
    history = _History(_column_norms(Resid), _column_norms(X))

    with solve_span("sirt", num_iterations=num_iterations, batch=S):
        for it in range(num_iterations):
            if not active.any():
                break
            with _batch_iteration("sirt", it, int(active.sum()), S):
                update = c_inv * np.asarray(
                    adjoint_batch(op, r_inv * Resid), dtype=work
                )
                act = np.flatnonzero(active)
                X[:, act] += relaxation * update[:, act]
                if nonnegativity:
                    # X[:, act] is a fancy-index copy; assign back.
                    X[:, act] = np.maximum(X[:, act], 0.0)
                # Frozen columns recompute to the same bits (the kernel
                # is deterministic on unchanged inputs), so the full
                # batched forward stays per-column exact.
                Resid = Y - np.asarray(forward_batch(op, X), dtype=work)

                iterations[act] = it + 1
                rnorm = _column_norms(Resid)
                history.record(active, rnorm, _column_norms(X))

            if callback is not None:
                callback(it + 1, X, active.copy())

            if tolerance > 0.0:
                done = active & (rnorm <= tolerance * ynorm)
                for j in np.flatnonzero(done):
                    converged[j] = True
                    reasons[j] = "residual tolerance reached"
                active &= ~done

    res_hist, sol_hist = history.arrays()
    for j in range(S):
        if not reasons[j]:
            reasons[j] = "iteration budget exhausted"
    return BatchSolveResult(
        X=X,
        iterations=iterations,
        residual_norms=res_hist,
        solution_norms=sol_hist,
        converged=converged,
        stop_reasons=reasons,
    )


def mlem_batch(
    op: ProjectionOperator,
    Y: np.ndarray,
    num_iterations: int = 50,
    X0: np.ndarray | None = None,
    tolerance: float = 0.0,
    callback=None,
) -> BatchSolveResult:
    """Batched MLEM over a non-negative ``(num_rays, S)`` slab.

    Column ``j`` with ``tolerance == 0`` is bit-identical to
    :func:`repro.solvers.mlem`; ``tolerance > 0`` freezes a column at
    relative residual ``||y_j - A x_j|| <= tolerance * ||y_j||``.
    """
    work = solver_dtype(op)
    Y = _slab(Y, op.num_rays, "measurement slab", work)
    if (Y < 0).any():
        raise ValueError("MLEM requires non-negative measurements")
    S = Y.shape[1]

    if X0 is None:
        X = np.ones((op.num_pixels, S), dtype=work)
    else:
        X = _slab(X0, op.num_pixels, "initial slab", work).copy()
        if (X <= 0).any():
            raise ValueError("MLEM initial estimate must be strictly positive")

    sensitivity = np.asarray(op.adjoint(np.ones(op.num_rays)), dtype=work)
    support = np.flatnonzero(sensitivity > _EPS)
    outside = np.flatnonzero(sensitivity <= _EPS)
    sens_col = sensitivity[support][:, None]

    Fwd = np.asarray(forward_batch(op, X), dtype=work)
    ynorm = _column_norms(Y)

    iterations = np.zeros(S, dtype=np.int64)
    converged = np.zeros(S, dtype=bool)
    reasons = [""] * S
    active = np.ones(S, dtype=bool)
    history = _History(_column_norms(Y - Fwd), _column_norms(X))

    with solve_span("mlem", num_iterations=num_iterations, batch=S):
        for it in range(num_iterations):
            if not active.any():
                break
            with _batch_iteration("mlem", it, int(active.sum()), S):
                act = np.flatnonzero(active)
                Ratio = np.zeros_like(Y)
                positive = Fwd > _EPS
                Ratio[positive] = Y[positive] / Fwd[positive]
                Back = np.asarray(adjoint_batch(op, Ratio), dtype=work)
                X[np.ix_(support, act)] *= (Back[support] / sens_col)[:, act]
                if outside.shape[0]:
                    X[np.ix_(outside, act)] = 0.0

                Fwd = np.asarray(forward_batch(op, X), dtype=work)
                iterations[act] = it + 1
                rnorm = _column_norms(Y - Fwd)
                history.record(active, rnorm, _column_norms(X))

            if callback is not None:
                callback(it + 1, X, active.copy())

            if tolerance > 0.0:
                done = active & (rnorm <= tolerance * ynorm)
                for j in np.flatnonzero(done):
                    converged[j] = True
                    reasons[j] = "residual tolerance reached"
                active &= ~done

    res_hist, sol_hist = history.arrays()
    for j in range(S):
        if not reasons[j]:
            reasons[j] = "iteration budget exhausted"
    return BatchSolveResult(
        X=X,
        iterations=iterations,
        residual_norms=res_hist,
        solution_norms=sol_hist,
        converged=converged,
        stop_reasons=reasons,
    )
