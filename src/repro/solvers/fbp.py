"""Filtered backprojection — the analytical baseline.

The paper's introduction frames the problem: direct solvers like FBP
are computationally cheap but degrade badly on noisy or undersampled
measurements, which is why iterative methods (and hence MemXCT's
performance work) matter.  This implementation provides that baseline
so the trade-off is measurable: ramp-filter each projection row in
Fourier space, backproject, and scale.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fbp", "ramp_filter"]

_WINDOWS = ("ramp", "shepp-logan", "hann")


def ramp_filter(num_channels: int, window: str = "ramp") -> np.ndarray:
    """Frequency response of the (apodized) ramp filter.

    Built from the band-limited spatial-domain ramp (Kak & Slaney) so
    the DC behaviour is correct, then optionally apodized.  Length is
    the FFT size (next power of two >= 2 * num_channels).
    """
    if window not in _WINDOWS:
        raise ValueError(f"unknown window {window!r}; expected one of {_WINDOWS}")
    size = 1
    while size < 2 * num_channels:
        size *= 2
    # Spatial-domain band-limited ramp kernel.
    n = np.concatenate([np.arange(0, size // 2 + 1), np.arange(size // 2 - 1, 0, -1)])
    kernel = np.zeros(size)
    kernel[0] = 0.25
    odd = n % 2 == 1
    kernel[odd] = -1.0 / (np.pi * n[odd]) ** 2
    response = 2.0 * np.real(np.fft.fft(kernel))
    freq = np.fft.fftfreq(size)
    if window == "shepp-logan":
        with np.errstate(divide="ignore", invalid="ignore"):
            sinc = np.sinc(freq)
        response *= np.abs(sinc)
    elif window == "hann":
        response *= 0.5 * (1.0 + np.cos(2.0 * np.pi * freq))
    return response


def fbp(operator, sinogram: np.ndarray, window: str = "ramp") -> np.ndarray:
    """Filtered backprojection of a 2D sinogram.

    Parameters
    ----------
    operator:
        Anything exposing ``backproject_sinogram(sino_2d) -> image_2d``
        (e.g. :class:`repro.core.MemXCTOperator`); the adjoint supplies
        the backprojection geometry.
    sinogram:
        Row-major ``(num_angles, num_channels)`` measurements.
    window:
        ``"ramp"`` (sharpest, noisiest), ``"shepp-logan"`` or
        ``"hann"`` (smoothest).

    Returns
    -------
    2D reconstructed image, scaled by ``pi / (2 * num_angles)``.
    """
    y = np.asarray(sinogram, dtype=np.float64)
    if y.ndim != 2:
        raise ValueError(f"sinogram must be 2D, got shape {y.shape}")
    num_angles, num_channels = y.shape
    response = ramp_filter(num_channels, window)
    size = response.shape[0]
    spectrum = np.fft.fft(y, n=size, axis=1)
    filtered = np.real(np.fft.ifft(spectrum * response[None, :], axis=1))
    filtered = filtered[:, :num_channels]
    image = operator.backproject_sinogram(filtered)
    return image * (np.pi / (2.0 * num_angles))
