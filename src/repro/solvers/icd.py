"""Iterative coordinate descent (ICD) — cuMBIR's solver.

The paper lists ICD (refs [16, 23]) among the schemes its
memory-centric operator supports "in a plug-and-play manner".  ICD
updates one pixel at a time to the exact minimizer of the quadratic
objective along that coordinate:

    delta_j = <a_j, r> / <a_j, a_j>,   x_j += delta_j,   r -= delta_j a_j

where ``a_j`` is column ``j`` of ``A`` and ``r`` the current residual.
Unlike CG/SIRT it needs *column* access — which the memoized
backprojection matrix provides for free (``A^T`` rows are ``A``
columns), exactly the structure CompXCT-style codes lack.

One "iteration" sweeps every pixel once, in the domain order (so a
Hilbert-ordered operator sweeps pixels along the space-filling curve —
good cache behaviour for the residual updates).
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix
from .base import SolveResult, iteration_span, solve_span

__all__ = ["icd"]


def icd(
    matrix: CSRMatrix,
    transpose: CSRMatrix,
    y: np.ndarray,
    num_sweeps: int = 5,
    x0: np.ndarray | None = None,
    nonnegativity: bool = False,
    callback=None,
) -> SolveResult:
    """Run ICD sweeps on ``min_x ||A x - y||^2``.

    Parameters
    ----------
    matrix, transpose:
        The forward matrix and its (scan-based) transpose; column ``j``
        of ``A`` is read as row ``j`` of ``A^T``.
    y:
        Measurement vector (ordered coordinates).
    num_sweeps:
        Full passes over all pixels.
    nonnegativity:
        Clamp each pixel at zero after its update (the constraint ``C``
        of the paper's Eq. 1; the coordinate-wise minimizer under a
        bound is the clamped unconstrained one).
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if y.shape[0] != matrix.num_rows:
        raise ValueError(f"y has {y.shape[0]} entries, expected {matrix.num_rows}")
    if transpose.num_rows != matrix.num_cols or transpose.num_cols != matrix.num_rows:
        raise ValueError("transpose shape does not match the matrix")
    x = (
        np.zeros(matrix.num_cols, dtype=np.float64)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )

    residual = y - matrix.spmv(x.astype(np.float32)).astype(np.float64)
    # Column norms <a_j, a_j> once (memoized, like everything else).
    col_sq = np.zeros(matrix.num_cols)
    np.add.at(col_sq, matrix.ind, matrix.val.astype(np.float64) ** 2)

    result = SolveResult(x=x, iterations=0)
    result.residual_norms.append(float(np.linalg.norm(residual)))
    result.solution_norms.append(float(np.linalg.norm(x)))

    displ, ind, val = transpose.displ, transpose.ind, transpose.val
    with solve_span("icd", num_iterations=num_sweeps):
        for sweep in range(num_sweeps):
            with iteration_span("icd", sweep):
                for j in range(matrix.num_cols):
                    lo, hi = displ[j], displ[j + 1]
                    if lo == hi or col_sq[j] == 0.0:
                        continue
                    rows = ind[lo:hi]
                    weights = val[lo:hi].astype(np.float64)
                    delta = float(weights @ residual[rows]) / col_sq[j]
                    if nonnegativity and x[j] + delta < 0.0:
                        delta = -x[j]
                    if delta != 0.0:
                        x[j] += delta
                        residual[rows] -= delta * weights
                result.iterations = sweep + 1
                result.residual_norms.append(float(np.linalg.norm(residual)))
                result.solution_norms.append(float(np.linalg.norm(x)))
            if callback is not None:
                callback(sweep + 1, x)

    result.x = x
    result.stop_reason = "sweep budget exhausted"
    return result
