"""MLEM — maximum-likelihood expectation maximization.

The classic solver for emission tomography (paper ref [44], Qi &
Leahy's review), included to round out the plug-and-play solver family
(Section 3.5.2): one more gradient-type scheme that drops onto the
memoized operator unchanged.  The multiplicative update

    x <- x / (A^T 1) * A^T ( y / (A x) )

preserves non-negativity by construction and maximizes the Poisson
likelihood of ``y`` — the statistically right objective for count
data, where CG/SIRT assume Gaussian noise.

MLEM requires non-negative data; rays with zero forward projection are
held out of the ratio (standard practice).
"""

from __future__ import annotations

import numpy as np

from .base import (
    ProjectionOperator,
    SolveResult,
    iteration_span,
    observe_health,
    resolve_resume,
    solve_span,
    solver_dtype,
)

__all__ = ["mlem"]

_EPS = 1e-12


def mlem(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 50,
    x0: np.ndarray | None = None,
    callback=None,
    checkpoint=None,
    resume=None,
    health=None,
) -> SolveResult:
    """Run MLEM iterations for non-negative measurements ``y``.

    Parameters
    ----------
    op:
        System operator (sensitivities come from ``adjoint`` of ones).
    y:
        Non-negative measurement vector.
    x0:
        Strictly positive initial estimate (default: uniform ones);
        zeros would be fixed points of the multiplicative update.
    checkpoint, resume:
        Periodic recurrence snapshots / bit-exact continuation (the
        multiplicative recurrence is fully determined by ``x``).
    health:
        Optional :class:`~repro.resilience.HealthMonitor`.  MLEM has
        no step size to damp, so an incident restores the last
        snapshot once and otherwise stops early with a truthful
        ``stop_reason``.
    """
    work = solver_dtype(op)
    y = np.asarray(y, dtype=work).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"y has {y.shape[0]} entries, expected {op.num_rays}")
    if (y < 0).any():
        raise ValueError("MLEM requires non-negative measurements")

    restored = resolve_resume(resume, "mlem")
    if restored is not None:
        x = np.array(restored.arrays["x"], dtype=work)
        start_iteration = restored.iteration
    else:
        if x0 is None:
            x = np.ones(op.num_pixels, dtype=work)
        else:
            x = np.asarray(x0, dtype=work).copy()
            if (x <= 0).any():
                raise ValueError("MLEM initial estimate must be strictly positive")
        start_iteration = 0

    sensitivity = np.asarray(op.adjoint(np.ones(op.num_rays)), dtype=work)
    support = sensitivity > _EPS

    result = SolveResult(x=x, iterations=start_iteration)
    forward = np.asarray(op.forward(x), dtype=work)
    if restored is not None:
        result.residual_norms = list(restored.residual_norms)
        result.solution_norms = list(restored.solution_norms)
    else:
        result.residual_norms.append(float(np.linalg.norm(y - forward)))
        result.solution_norms.append(float(np.linalg.norm(x)))

    with solve_span("mlem", num_iterations=num_iterations):
        for it in range(start_iteration, num_iterations):
            with iteration_span("mlem", it):
                ratio = np.zeros_like(y)
                positive = forward > _EPS
                ratio[positive] = y[positive] / forward[positive]
                back = np.asarray(op.adjoint(ratio), dtype=work)
                x[support] *= back[support] / sensitivity[support]
                x[~support] = 0.0

                forward = np.asarray(op.forward(x), dtype=work)
                result.iterations = it + 1
                rnorm = float(np.linalg.norm(y - forward))
                result.residual_norms.append(rnorm)
                result.solution_norms.append(float(np.linalg.norm(x)))

                # Health verdict comes BEFORE the snapshot: a poisoned
                # iterate landing on a save boundary must never
                # overwrite the healthy rollback target.
                action = observe_health(health, it + 1, x, rnorm)
                if action == "ok" and checkpoint is not None:
                    from ..resilience.checkpoint import SolverCheckpoint

                    checkpoint.maybe_save(
                        SolverCheckpoint(
                            solver="mlem",
                            iteration=it + 1,
                            arrays={"x": x},
                            residual_norms=result.residual_norms,
                            solution_norms=result.solution_norms,
                        )
                    )
            if action != "ok":
                last = checkpoint.last if checkpoint is not None else None
                if last is not None and np.all(np.isfinite(last.arrays["x"])):
                    x = np.array(last.arrays["x"], dtype=work)
                    result.x = x
                    result.iterations = last.iteration
                    result.residual_norms = list(last.residual_norms)
                    result.solution_norms = list(last.solution_norms)
                incident = health.last_incident
                result.stop_reason = (
                    f"numerical health abort: {incident.detail}"
                    if incident is not None
                    else "numerical health abort"
                )
                break
            if callback is not None:
                callback(it + 1, x)

    result.x = x
    if not result.stop_reason:
        result.stop_reason = "iteration budget exhausted"
    return result
