"""Mini-batch stochastic gradient descent solver.

Included to demonstrate the paper's "plug-and-play" claim (Section
3.5.2): any gradient-type scheme drops onto the memory-centric operator
with minor modifications.  Each step samples a batch of sinogram rows
and takes a gradient step on the corresponding partial objective, the
scheme cuMBIR's SGD solver uses (paper ref [16]).

Row subsetting needs access to the underlying rows of ``A``; operators
expose this through an optional ``row_subset_forward`` /
``row_subset_adjoint`` pair, with a generic masked fallback otherwise.
"""

from __future__ import annotations

import numpy as np

from .base import ProjectionOperator, SolveResult, iteration_span, solve_span

__all__ = ["sgd"]


def sgd(
    op: ProjectionOperator,
    y: np.ndarray,
    num_iterations: int = 100,
    batch_fraction: float = 0.1,
    step_size: float | None = None,
    x0: np.ndarray | None = None,
    seed: int = 0,
    callback=None,
) -> SolveResult:
    """Run mini-batch SGD on ``min_x 0.5 ||A x - y||^2``.

    Parameters
    ----------
    batch_fraction:
        Fraction of rays sampled per step.
    step_size:
        Fixed step; when omitted, a conservative ``1 / max row-sum^2``
        scale is estimated from the operator (guaranteeing descent for
        unit-norm-bounded rows).
    """
    if not 0.0 < batch_fraction <= 1.0:
        raise ValueError(f"batch fraction must be in (0, 1], got {batch_fraction}")
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if y.shape[0] != op.num_rays:
        raise ValueError(f"sinogram has {y.shape[0]} entries, expected {op.num_rays}")
    x = (
        np.zeros(op.num_pixels, dtype=np.float64)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )
    rng = np.random.default_rng(seed)
    batch = max(1, int(round(batch_fraction * op.num_rays)))

    if step_size is None:
        if hasattr(op, "row_sums"):
            scale = float(np.max(np.asarray(op.row_sums())))
        else:
            scale = float(np.max(np.asarray(op.forward(np.ones(op.num_pixels)))))
        step_size = 1.0 / max(scale * scale, 1e-12)

    has_subset = hasattr(op, "row_subset_forward") and hasattr(op, "row_subset_adjoint")

    result = SolveResult(x=x, iterations=0)
    residual0 = y - np.asarray(op.forward(x), dtype=np.float64)
    result.residual_norms.append(float(np.linalg.norm(residual0)))
    result.solution_norms.append(float(np.linalg.norm(x)))

    with solve_span("sgd", num_iterations=num_iterations):
        for it in range(num_iterations):
            with iteration_span("sgd", it):
                rows = np.sort(rng.choice(op.num_rays, size=batch, replace=False))
                if has_subset:
                    partial = np.asarray(
                        op.row_subset_forward(x, rows), dtype=np.float64
                    )
                    grad = np.asarray(
                        op.row_subset_adjoint(partial - y[rows], rows),
                        dtype=np.float64,
                    )
                else:
                    mask = np.zeros(op.num_rays)
                    full = np.asarray(op.forward(x), dtype=np.float64)
                    mask[rows] = full[rows] - y[rows]
                    grad = np.asarray(op.adjoint(mask), dtype=np.float64)
                x -= step_size * (op.num_rays / batch) * grad

                result.iterations = it + 1
                full_res = y - np.asarray(op.forward(x), dtype=np.float64)
                result.residual_norms.append(float(np.linalg.norm(full_res)))
                result.solution_norms.append(float(np.linalg.norm(x)))
            if callback is not None:
                callback(it + 1, x)

    result.x = x
    result.stop_reason = "iteration budget exhausted"
    return result
