"""Autotuned operator configurations (paper Section 4 / Fig 10).

The paper tunes its buffered SpMV per machine by sweeping partition and
buffer sizes and reading the heatmap.  This package automates that:
an analytic-model *predict* phase prunes the sweep, a short measured
*trial* phase picks the winner, and the decision is persisted next to
the plan cache keyed by a geometry+dtype fingerprint so warm runs skip
the search entirely.
"""

from .search import (
    DEFAULT_BUFFER_SIZES,
    DEFAULT_PARTITION_SIZES,
    Autotuner,
    Candidate,
    ScoredCandidate,
    TuneOutcome,
)
from .store import (
    RECORD_VERSION,
    TuneStore,
    TuningIntegrityWarning,
    TuningRecord,
    TuningRecordError,
    tune_fingerprint,
)

__all__ = [
    "Autotuner",
    "Candidate",
    "ScoredCandidate",
    "TuneOutcome",
    "DEFAULT_PARTITION_SIZES",
    "DEFAULT_BUFFER_SIZES",
    "RECORD_VERSION",
    "TuningRecord",
    "TuningRecordError",
    "TuningIntegrityWarning",
    "TuneStore",
    "tune_fingerprint",
]
