"""The two-phase configuration search.

Phase 1 — **predict**: every candidate ``(kernel, partition_size,
buffer_bytes)`` is scored with the analytic performance model of
:mod:`repro.machine.perf_model`, fed a cache-simulated miss rate from
:mod:`repro.cachesim` (measured once on a row sample — it barely moves
across configurations).  This prunes the sweep to a handful of
candidates without timing anything.

Phase 2 — **trial**: the top-K predicted candidates, plus the best
predicted candidate of every kernel family, crossed with the
worker-count options, are built for real and timed with short
forward+adjoint trials.  The measured winner is then *refined* by
coordinate descent over its one-axis neighbours (other partition sizes
at its buffer, other buffer sizes at its partition), and the surviving
finalists get an interleaved playoff so a single lucky sample cannot
decide.  The model ranks, the measurement decides — mirroring how the
paper tunes Fig 10's partition/buffer heatmaps per machine, while
staying robust on hosts whose ranking the KNL prior mispredicts.

The measurement hook is injectable (``measure=``) so tests can drive
the search with a deterministic cost function; ``mode="predict"`` skips
phase 2 entirely.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..machine import (
    DeviceSpec,
    KernelProfile,
    PerformanceModel,
    evaluate_configuration,
    get_device,
)
from ..obs import AUTOTUNE_CANDIDATES, AUTOTUNE_TRIALS, add_count, span
from ..sparse import CSRMatrix, build_buffered, build_ell

__all__ = [
    "Candidate",
    "ScoredCandidate",
    "TuneOutcome",
    "Autotuner",
    "DEFAULT_PARTITION_SIZES",
    "DEFAULT_BUFFER_SIZES",
]

DEFAULT_PARTITION_SIZES = (32, 64, 128, 256)
DEFAULT_BUFFER_SIZES = (8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024)
DEFAULT_KERNELS = ("csr", "buffered", "ell")

#: Buffer size recorded for kernels that have no buffer (csr/ell); the
#: OperatorConfig default, so applying such a record is a no-op there.
_NO_BUFFER = 32 * 1024


@dataclass(frozen=True)
class Candidate:
    """One point of the configuration space."""

    kernel: str
    partition_size: int
    buffer_bytes: int
    workers: int = 1

    def sort_key(self) -> tuple:
        """Deterministic tiebreak: simplest configuration first."""
        return (self.kernel, self.partition_size, self.buffer_bytes, self.workers)


@dataclass
class ScoredCandidate:
    """A candidate with its model prediction and (optional) trial time."""

    candidate: Candidate
    predicted_seconds: float
    measured_seconds: float | None = None

    @property
    def decision_seconds(self) -> float:
        """What the selection compares: measured when present."""
        return (
            self.predicted_seconds
            if self.measured_seconds is None
            else self.measured_seconds
        )


@dataclass
class TuneOutcome:
    """Result of one search: the winner plus the full scored space."""

    best: ScoredCandidate
    mode: str
    predictions: list[ScoredCandidate] = field(default_factory=list)
    trials: list[ScoredCandidate] = field(default_factory=list)

    @property
    def candidates_considered(self) -> int:
        return len(self.predictions)


class Autotuner:
    """Predict-then-trial search over operator configurations.

    Parameters
    ----------
    device:
        Device name or :class:`~repro.machine.DeviceSpec` the analytic
        model predicts for.  The model only *ranks* candidates — the
        measured trials on this host decide — so the paper's KNL spec
        is an adequate default prior.
    kernels, partition_sizes, buffer_sizes:
        The swept axes.  csr/ell candidates collapse the buffer axis
        (they have no buffer).
    workers_options:
        Worker counts crossed with the top predicted candidates during
        the trial phase (thread mode); ``None`` picks ``(1, 2)`` when
        the host has at least two CPUs.
    top_k:
        Number of predicted candidates that graduate to trials.
    trial_repeats:
        Timed forward+adjoint repetitions per trial; the minimum is
        kept (standard best-of-N noise rejection).
    measure:
        Optional ``measure(candidate, forward_layout, adjoint_layout)
        -> seconds`` override.  Tests inject a deterministic cost here;
        benchmarks can inject a higher-repeat timer.
    seed:
        Seed for the probe vectors and the miss-rate row sample.
    """

    def __init__(
        self,
        device: str | DeviceSpec = "KNL",
        kernels=DEFAULT_KERNELS,
        partition_sizes=DEFAULT_PARTITION_SIZES,
        buffer_sizes=DEFAULT_BUFFER_SIZES,
        workers_options=None,
        top_k: int = 3,
        trial_repeats: int = 3,
        measure=None,
        seed: int = 0,
        smt: int = 1,
        miss_sample_rows: int = 1024,
        miss_max_accesses: int = 200_000,
    ):
        self.device = get_device(device) if isinstance(device, str) else device
        self.kernels = tuple(kernels)
        self.partition_sizes = tuple(int(p) for p in partition_sizes)
        self.buffer_sizes = tuple(int(b) for b in buffer_sizes)
        if workers_options is None:
            workers_options = (1, 2) if (os.cpu_count() or 1) >= 2 else (1,)
        self.workers_options = tuple(int(w) for w in workers_options)
        self.top_k = int(top_k)
        self.trial_repeats = int(trial_repeats)
        self.measure = measure
        self.seed = int(seed)
        self.smt = int(smt)
        self.miss_sample_rows = int(miss_sample_rows)
        self.miss_max_accesses = int(miss_max_accesses)

    # -- phase 1: prediction -------------------------------------------

    def candidate_space(self) -> list[Candidate]:
        """The swept configurations (workers explored in trials only)."""
        out: list[Candidate] = []
        for kernel in self.kernels:
            if kernel == "csr":
                # Partition/buffer do not exist for the baseline kernel.
                out.append(Candidate("csr", 128, _NO_BUFFER))
            elif kernel == "ell":
                out.extend(
                    Candidate("ell", p, _NO_BUFFER) for p in self.partition_sizes
                )
            else:
                out.extend(
                    Candidate("buffered", p, b)
                    for p in self.partition_sizes
                    for b in self.buffer_sizes
                )
        return out

    def _miss_rate(self, matrix: CSRMatrix) -> float:
        """Cache-simulated gather miss rate, sampled once per search."""
        from ..cachesim import miss_rate_csr, sample_rows

        sample = sample_rows(matrix, self.miss_sample_rows, seed=self.seed)
        stats = miss_rate_csr(
            sample,
            capacity_bytes=int(self.device.l2_bytes),
            line_bytes=int(self.device.cache_line_bytes),
            max_accesses=self.miss_max_accesses,
        )
        return float(stats.miss_rate)

    def _ell_padded_nnz(self, matrix: CSRMatrix, partition_size: int) -> int:
        """Padded element count of the ELL layout, without building it."""
        row_nnz = np.asarray(matrix.row_nnz())
        total = 0
        for start in range(0, matrix.num_rows, partition_size):
            chunk = row_nnz[start : start + partition_size]
            total += int(chunk.max()) * int(chunk.shape[0]) if chunk.size else 0
        return total

    def predict(self, matrix: CSRMatrix) -> list[ScoredCandidate]:
        """Model-score every candidate; sorted best (fastest) first."""
        miss_rate = self._miss_rate(matrix)
        model = PerformanceModel(self.device)
        scored: list[ScoredCandidate] = []
        for cand in self.candidate_space():
            if cand.kernel == "buffered":
                point = evaluate_configuration(
                    matrix,
                    self.device,
                    cand.partition_size,
                    cand.buffer_bytes,
                    smt=self.smt,
                    miss_rate=miss_rate,
                )
                if not point.valid or point.gflops <= 0:
                    continue
                seconds = 2.0 * matrix.nnz / (point.gflops * 1e9)
            elif cand.kernel == "ell":
                padded = self._ell_padded_nnz(matrix, cand.partition_size)
                profile = KernelProfile.csr_baseline(
                    nnz=max(padded, 1), miss_rate=miss_rate
                )
                seconds = model.projection_time(profile, smt=self.smt)
            else:
                profile = KernelProfile.csr_baseline(
                    nnz=max(matrix.nnz, 1), miss_rate=miss_rate
                )
                seconds = model.projection_time(profile, smt=self.smt)
            scored.append(ScoredCandidate(cand, float(seconds)))
        scored.sort(key=lambda s: (s.predicted_seconds, s.candidate.sort_key()))
        return scored

    # -- phase 2: measured trials --------------------------------------

    def _build_layouts(self, matrix: CSRMatrix, transpose: CSRMatrix, cand: Candidate):
        if cand.kernel == "buffered":
            return (
                build_buffered(matrix, cand.partition_size, cand.buffer_bytes),
                build_buffered(transpose, cand.partition_size, cand.buffer_bytes),
            )
        if cand.kernel == "ell":
            return (
                build_ell(matrix, cand.partition_size),
                build_ell(transpose, cand.partition_size),
            )
        return matrix, transpose

    def _time_candidate(
        self, matrix: CSRMatrix, transpose: CSRMatrix, cand: Candidate
    ) -> float:
        """Best-of-N forward+adjoint wall time of one built candidate."""
        forward, adjoint = self._build_layouts(matrix, transpose, cand)
        if self.measure is not None:
            return float(self.measure(cand, forward, adjoint))
        rng = np.random.default_rng(self.seed)
        dtype = matrix.val.dtype
        x = rng.random(matrix.num_cols).astype(dtype)
        y = rng.random(matrix.num_rows).astype(dtype)

        def run_serial() -> float:
            fwd = (
                forward.spmv_vectorized
                if hasattr(forward, "spmv_vectorized")
                else forward.spmv
            )
            adj = (
                adjoint.spmv_vectorized
                if hasattr(adjoint, "spmv_vectorized")
                else adjoint.spmv
            )
            best = float("inf")
            for _ in range(self.trial_repeats):
                t0 = time.perf_counter()
                fwd(x)
                adj(y)
                best = min(best, time.perf_counter() - t0)
            return best

        if cand.workers <= 1:
            return run_serial()
        from ..parallel import ParallelSpmvEngine

        engine = ParallelSpmvEngine(
            workers=cand.workers,
            mode="thread",
            partition_size=cand.partition_size,
            forward_layout=forward,
            adjoint_layout=adjoint,
        )
        try:
            best = float("inf")
            for _ in range(self.trial_repeats):
                t0 = time.perf_counter()
                engine.apply("forward", x)
                engine.apply("adjoint", y)
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            engine.close()

    # -- the search ----------------------------------------------------

    def tune(
        self, matrix: CSRMatrix, transpose: CSRMatrix, mode: str = "auto"
    ) -> TuneOutcome:
        """Run the search; ``mode="predict"`` skips the trial phase."""
        with span("autotune.search", mode=mode, nnz=matrix.nnz):
            predictions = self.predict(matrix)
            if not predictions:
                raise ValueError(
                    "autotuner has no valid candidates "
                    "(check kernels/partition_sizes/buffer_sizes)"
                )
            add_count(AUTOTUNE_CANDIDATES, len(predictions))
            if mode == "predict":
                return TuneOutcome(
                    best=predictions[0], mode=mode, predictions=predictions
                )

            # Trial the global top-K plus the best-predicted candidate
            # of every kernel family.  The model ranks *within* a
            # family well (same cost formula), but cross-family
            # calibration depends on how closely this host matches the
            # modeled device — so no family is pruned wholesale on the
            # model's word alone.
            chosen = list(predictions[: self.top_k])
            seen_kernels = {s.candidate.kernel for s in chosen}
            for scored in predictions[self.top_k :]:
                if scored.candidate.kernel not in seen_kernels:
                    chosen.append(scored)
                    seen_kernels.add(scored.candidate.kernel)

            predicted_by_cand = {
                s.candidate: s.predicted_seconds for s in predictions
            }
            trials: list[ScoredCandidate] = []
            measured: dict[Candidate, float] = {}

            def trial(cand: Candidate) -> float:
                if cand in measured:
                    return measured[cand]
                with span(
                    "autotune.trial",
                    kernel=cand.kernel,
                    partition_size=cand.partition_size,
                    buffer_bytes=cand.buffer_bytes,
                    workers=cand.workers,
                ):
                    seconds = float(self._time_candidate(matrix, transpose, cand))
                add_count(AUTOTUNE_TRIALS, 1)
                measured[cand] = seconds
                base = replace(cand, workers=1)
                trials.append(
                    ScoredCandidate(
                        cand, predicted_by_cand.get(base, float("nan")), seconds
                    )
                )
                return seconds

            for scored in chosen:
                for workers in self.workers_options:
                    trial(replace(scored.candidate, workers=workers))

            def current_best() -> ScoredCandidate:
                return min(
                    trials, key=lambda t: (t.decision_seconds, t.candidate.sort_key())
                )

            # Coordinate-descent refinement around the trial winner:
            # re-trial its one-axis neighbours (other partition sizes at
            # its buffer, other buffer sizes at its partition) and
            # recenter while that improves.  This recovers from a model
            # whose within-family preference does not match this host,
            # at a handful of extra trials on the small swept grid.
            for _ in range(4):
                best = current_best()
                cand = best.candidate
                neighbours: list[Candidate] = []
                if cand.kernel in ("buffered", "ell"):
                    neighbours.extend(
                        replace(cand, partition_size=p)
                        for p in self.partition_sizes
                        if p != cand.partition_size
                    )
                if cand.kernel == "buffered":
                    neighbours.extend(
                        replace(cand, buffer_bytes=b)
                        for b in self.buffer_sizes
                        if b != cand.buffer_bytes
                    )
                fresh = [n for n in neighbours if n not in measured]
                if not fresh:
                    break
                for n in fresh:
                    trial(n)
                if current_best().candidate == cand:
                    break

            # Playoff: the surviving finalists are typically within
            # measurement noise of each other, and a single lucky
            # sample must not decide.  Re-measure the top few
            # interleaved and let each finalist keep its best time
            # across rounds.
            finalists = sorted(
                trials, key=lambda t: (t.decision_seconds, t.candidate.sort_key())
            )[:3]
            if len(finalists) > 1:
                for _ in range(2):
                    for scored in finalists:
                        seconds = float(
                            self._time_candidate(matrix, transpose, scored.candidate)
                        )
                        if seconds < scored.measured_seconds:
                            scored.measured_seconds = seconds

            best = current_best()
            return TuneOutcome(
                best=best, mode=mode, predictions=predictions, trials=trials
            )
