"""Persistence of autotuning decisions.

A tuning decision is tiny — the winning ``(kernel, partition_size,
buffer_bytes, workers)`` tuple plus its predicted/measured scores — so
records are stored as one JSON file per key under ``<plan cache
root>/tuning/``, right next to the operator plans they configure.  The
key is a SHA-256 fingerprint of everything the *search* depends on
(geometry, ordering scheme, compute dtype, record schema version) and
deliberately excludes the kernel configuration itself: that is the
output of the search, not an input.

Warm lookups are free: a valid record short-circuits the search
entirely.  A corrupt, schema-incompatible, or stale record (recorded on
a machine with a different CPU count) is *degraded*, never trusted: the
loader warns with :class:`TuningIntegrityWarning`, discards the file,
and reports a miss so the caller re-tunes from defaults.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core import KERNELS, OperatorConfig

__all__ = [
    "RECORD_VERSION",
    "TuningRecord",
    "TuningRecordError",
    "TuningIntegrityWarning",
    "TuneStore",
    "tune_fingerprint",
]

#: Schema version of persisted tuning records; bumping it invalidates
#: every existing record (they degrade to a re-tune, never misparse).
RECORD_VERSION = 1


class TuningRecordError(ValueError):
    """A persisted tuning record failed validation."""


class TuningIntegrityWarning(UserWarning):
    """A tuning record was corrupt or stale and has been discarded."""


def tune_fingerprint(
    geometry,
    ordering: str = "pseudo-hilbert",
    min_tiles: int = 16,
    tile_size: int | None = None,
    dtype: str | None = None,
) -> str:
    """SHA-256 key of a tuning request.

    Hashes the plan-fingerprint document minus its config section
    (the config is what tuning *produces*), plus the compute dtype
    (fp32 halves the vector traffic, so fp32 and fp64 tune separately)
    and the record schema version.
    """
    # Lazy: repro.cache imports repro.io which imports repro.core.
    from ..cache import fingerprint_inputs

    doc = fingerprint_inputs(
        geometry, None, ordering=ordering, min_tiles=min_tiles, tile_size=tile_size
    )
    del doc["config"]
    doc["tune"] = {"record_version": RECORD_VERSION, "dtype": dtype}
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class TuningRecord:
    """One persisted tuning decision."""

    key: str
    kernel: str
    partition_size: int
    buffer_bytes: int
    workers: int
    dtype: str | None
    mode: str
    predicted_seconds: float
    measured_seconds: float | None
    candidates_considered: int
    trials: int
    cpu_count: int
    record_version: int = RECORD_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "TuningRecord":
        """Validated deserialization; raises :class:`TuningRecordError`."""
        if not isinstance(doc, dict):
            raise TuningRecordError(f"tuning record must be an object, got {type(doc)}")
        if doc.get("record_version") != RECORD_VERSION:
            raise TuningRecordError(
                f"tuning record version {doc.get('record_version')!r} does not "
                f"match current schema {RECORD_VERSION}"
            )
        try:
            record = cls(
                key=str(doc["key"]),
                kernel=str(doc["kernel"]),
                partition_size=int(doc["partition_size"]),
                buffer_bytes=int(doc["buffer_bytes"]),
                workers=int(doc["workers"]),
                dtype=doc.get("dtype"),
                mode=str(doc.get("mode", "auto")),
                predicted_seconds=float(doc["predicted_seconds"]),
                measured_seconds=(
                    None
                    if doc.get("measured_seconds") is None
                    else float(doc["measured_seconds"])
                ),
                candidates_considered=int(doc.get("candidates_considered", 0)),
                trials=int(doc.get("trials", 0)),
                cpu_count=int(doc.get("cpu_count", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningRecordError(f"malformed tuning record: {exc}") from exc
        if record.kernel not in KERNELS:
            raise TuningRecordError(f"tuning record names unknown kernel {record.kernel!r}")
        if record.partition_size < 1 or record.buffer_bytes < 4 or record.workers < 1:
            raise TuningRecordError(
                "tuning record holds out-of-range configuration "
                f"(partition_size={record.partition_size}, "
                f"buffer_bytes={record.buffer_bytes}, workers={record.workers})"
            )
        return record

    def is_stale(self) -> bool:
        """True when the record was tuned on observably different hardware."""
        return self.cpu_count not in (0, os.cpu_count() or 0)

    def apply(self, config: OperatorConfig) -> OperatorConfig:
        """The tuned configuration derived from ``config``.

        Replaces the layout knobs with the record's winners and clears
        the ``tune`` request (it is now resolved).  An explicit
        ``config.workers`` always wins over the tuned worker count —
        the user's execution choice is respected; a tuned count of 1
        leaves ``workers=None`` so the ``REPRO_WORKERS`` environment
        fallback keeps working.
        """
        from dataclasses import replace

        workers = config.workers
        if workers is None and self.workers > 1:
            workers = self.workers
        return replace(
            config,
            kernel=self.kernel,
            partition_size=self.partition_size,
            buffer_bytes=self.buffer_bytes,
            workers=workers,
            tune=None,
        )


class TuneStore:
    """Directory of ``<key>.json`` tuning records."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @classmethod
    def resolve(cls, cache) -> "TuneStore | None":
        """Store co-located with the given plan-cache spec.

        Accepts everything :meth:`repro.cache.PlanCache.resolve` does,
        plus a ready ``TuneStore``.  Returns ``None`` when caching is
        off — tuning then runs but is not persisted.
        """
        if isinstance(cache, TuneStore):
            return cache
        from ..cache import PlanCache

        plan_cache = PlanCache.resolve(cache)
        if plan_cache is None:
            return None
        return cls(plan_cache.root / "tuning")

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> TuningRecord | None:
        """Load a record, degrading corrupt/stale entries to a miss."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            self._discard(path, f"unreadable tuning record {path.name}: {exc}")
            return None
        try:
            record = TuningRecord.from_dict(doc)
        except TuningRecordError as exc:
            self._discard(path, str(exc))
            return None
        if record.key != key:
            self._discard(path, f"tuning record key mismatch in {path.name}")
            return None
        if record.is_stale():
            self._discard(
                path,
                f"tuning record {path.name} was tuned with {record.cpu_count} "
                f"CPUs but this machine has {os.cpu_count()}",
            )
            return None
        return record

    def save(self, key: str, record: TuningRecord) -> Path:
        """Atomically persist a record (write temp + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)
        return path

    def entries(self) -> list[tuple[str, TuningRecord]]:
        """All valid records, sorted by key (invalid files skipped)."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                out.append((path.stem, record))
        return out

    def clear(self) -> int:
        """Delete every record file; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _discard(self, path: Path, reason: str) -> None:
        warnings.warn(
            f"{reason}; re-tuning from defaults", TuningIntegrityWarning, stacklevel=3
        )
        try:
            path.unlink()
        except OSError:
            pass
