"""Streaming multi-slice reconstruction executor.

The memory-centric bargain of the paper (Table 5) is that
preprocessing is paid once per *scan geometry* and amortized over every
slice of a 3D dataset.  This executor completes that story end-to-end:

* the raw ``(slices, angles, channels)`` stack is walked in chunks
  sized by an explicit slice count or a memory budget, so arbitrarily
  tall stacks run in bounded memory;
* each chunk flows through the conditioning stages
  (:mod:`repro.pipeline.stages`) and then into a **batched multi-RHS
  solve** — one cached operator drives all slices of the chunk per
  iteration, streaming the matrix once instead of once per slice;
* after every chunk the accumulated volume is checkpointed through
  :class:`repro.resilience.CheckpointManager`, so a killed run resumes
  at the next chunk with a bit-identical final volume.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.operator import MemXCTOperator, OperatorConfig
from ..core.preprocess import PreprocessReport, preprocess
from ..geometry import ParallelBeamGeometry
from ..obs import (
    PIPELINE_CHUNKS,
    PIPELINE_RESUMED_SLICES,
    PIPELINE_SLICES,
    REGISTRY,
    add_count,
    span,
)
from ..parallel.backend import make_backend, parse_workers
from ..resilience.checkpoint import CheckpointError, CheckpointManager, SolverCheckpoint
from ..solvers import cgls, cgls_batch, mlem, mlem_batch, sirt, sirt_batch, solver_dtype
from .stages import Stage, StageContext, default_stages

__all__ = [
    "StackResult",
    "reconstruct_stack",
    "chunk_slices_for_budget",
    "PIPELINE_SOLVERS",
]

PIPELINE_SOLVERS = ("cg", "sirt", "mlem")

#: Checkpoint tag distinguishing stack checkpoints from solver ones.
_CHECKPOINT_SOLVER = "pipeline"


@dataclass
class StackResult:
    """Everything produced by one stack reconstruction.

    ``extra["stage_times"]`` maps each conditioning stage name (plus
    ``"solve"``) to accumulated wall seconds — the split the CLI's
    ``--metrics`` prints so conditioning cost is visible next to solve
    cost without exporting a trace.
    """

    volume: np.ndarray  # (slices, n, n)
    operator: MemXCTOperator
    preprocess_report: PreprocessReport
    solver: str
    chunks: list[dict] = field(default_factory=list)
    stage_times: dict[str, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def num_slices(self) -> int:
        return self.volume.shape[0]


def chunk_slices_for_budget(
    budget_bytes: int, num_rays: int, num_pixels: int, num_slices: int
) -> int:
    """Slices per chunk that fit a working-set memory budget.

    Per slice the batched solve holds ~3 ray-length vectors (Y, R, Q)
    and ~4 pixel-length vectors (X, P, G and a staging copy) in
    float64, plus the conditioned sinogram itself — the budget model
    documented in ``docs/pipeline.md``.  Always returns at least 1:
    a single slice is the irreducible working set.
    """
    if budget_bytes <= 0:
        raise ValueError(f"memory budget must be positive, got {budget_bytes}")
    per_slice = 8 * (4 * num_rays + 4 * num_pixels)
    return int(max(1, min(num_slices, budget_bytes // per_slice)))


def _stack_fingerprint(raw_stack: np.ndarray, solver: str, iterations: int) -> np.ndarray:
    """Content hash binding a checkpoint to its exact inputs."""
    h = hashlib.sha256()
    h.update(str(raw_stack.shape).encode())
    h.update(str(raw_stack.dtype).encode())
    h.update(np.ascontiguousarray(raw_stack).tobytes())
    h.update(f"{solver}:{iterations}".encode())
    return np.frombuffer(h.digest(), dtype=np.uint8).copy()


def _solve_chunk_batched(solver, op, Y, iterations, tolerance, solver_kwargs):
    if solver == "cg":
        return cgls_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
    if solver == "sirt":
        return sirt_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
    return mlem_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)


def _solve_chunk_looped(
    solver, op, Y, iterations, tolerance, solver_kwargs, backend=None
):
    """Reference path: one single-slice solve per column.

    With a (thread) backend, the independent per-slice solves fan out
    across workers while the operator is pinned to serial kernels —
    parallelism moves to the coarser slice granularity instead of
    nesting inside the shared SpMV pools.  Results are stacked in slice
    order either way, so the volume is bit-identical.  Observation
    forces the serial loop: the span stack and counters are not safe
    against concurrent solver instrumentation.
    """

    def solve_one(j: int):
        y = np.ascontiguousarray(Y[:, j])
        if solver == "cg":
            res = cgls(op, y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
        elif solver == "sirt":
            res = sirt(op, y, num_iterations=iterations, **solver_kwargs)
        else:
            res = mlem(op, y, num_iterations=iterations, **solver_kwargs)
        return res.x, res.iterations

    if backend is not None and backend.workers > 1 and not REGISTRY.active:
        with op.serial_scope():
            results = backend.map(solve_one, range(Y.shape[1]))
    else:
        results = [solve_one(j) for j in range(Y.shape[1])]
    columns = [x for x, _ in results]
    iters = [it for _, it in results]
    return np.stack(columns, axis=1), iters


def reconstruct_stack(
    raw_stack: np.ndarray,
    geometry: ParallelBeamGeometry | None = None,
    *,
    darks: np.ndarray | None = None,
    flats: np.ndarray | None = None,
    stages: list[Stage] | None = None,
    solver: str = "cg",
    iterations: int = 30,
    tolerance: float = 0.0,
    batch: bool = True,
    chunk_slices: int | None = None,
    memory_budget_bytes: int | None = None,
    operator: MemXCTOperator | None = None,
    config: OperatorConfig | None = None,
    ordering: str = "pseudo-hilbert",
    cache=None,
    checkpoint=None,
    resume: bool = False,
    max_chunks: int | None = None,
    workers: int | str | None = None,
    dtype: str | None = None,
    tune: str | None = None,
    **solver_kwargs,
) -> StackResult:
    """Reconstruct a 3D stack of sinograms through the staged pipeline.

    Parameters
    ----------
    raw_stack:
        ``(slices, angles, channels)`` array — raw photon counts when
        ``darks``/``flats`` (or equivalent stages) are supplied, line
        integrals otherwise.
    geometry:
        Per-slice scan geometry; inferred from the stack shape when
        omitted.
    darks, flats:
        Calibration frames for the default conditioning chain (see
        :func:`repro.pipeline.default_stages`).  Ignored when
        ``stages`` is given explicitly.
    stages:
        Explicit conditioning chain.  Defaults to
        ``default_stages(darks, flats)`` when calibration is supplied,
        otherwise to no conditioning at all.
    solver:
        ``"cg"``, ``"sirt"`` or ``"mlem"``.
    tolerance:
        Per-slice early-stop tolerance (per-column convergence masks in
        the batched path); ``0`` runs the full budget.
    batch:
        Use the multi-RHS solvers (default).  ``False`` loops the
        single-slice solvers — bit-identical results, used as the
        reference in tests and benchmarks.
    chunk_slices, memory_budget_bytes:
        Chunking policy: an explicit slice count, or a working-set
        budget fed to :func:`chunk_slices_for_budget`.  Default is one
        chunk for the whole stack.
    operator, config, ordering, cache:
        Operator reuse and construction knobs, as in
        :func:`repro.core.reconstruct`; ``cache`` enables the on-disk
        plan cache so warm runs skip preprocessing entirely.
    checkpoint:
        Path (or :class:`~repro.resilience.CheckpointManager`) for
        per-chunk checkpoints of the accumulated volume.
    resume:
        Continue from ``checkpoint``.  The checkpoint's content
        fingerprint must match this exact stack/solver/iterations —
        resuming against different inputs raises
        :class:`~repro.resilience.CheckpointError`.  Completed chunks
        are skipped; the final volume is bit-identical to an
        uninterrupted run.
    max_chunks:
        Stop (cleanly, after checkpointing) once this many chunks were
        processed in *this* run — the hook CI uses to simulate a kill.
    workers:
        Parallel-execution spec (see :func:`repro.parallel.parse_workers`).
        The batched path parallelizes each multi-RHS SpMV across
        partition ranges; the looped path (``batch=False``) instead
        fans independent slice solves out to threads with the operator
        pinned serial, so the shared pools are never entered twice.
        Either way the volume is bit-identical to a serial run.
    dtype, tune:
        Compute precision and autotuning mode, folded into ``config``
        exactly as in :func:`repro.core.reconstruct` — they apply when
        preprocessing runs here (a passed-in ``operator`` keeps its own
        precision and layout).  With ``dtype="float32"`` the batched
        right-hand sides and solver state run in single precision; the
        assembled volume stays float64.
    """
    t_start = time.perf_counter()
    raw_stack = np.asarray(raw_stack)
    if raw_stack.ndim != 3:
        raise ValueError(
            f"raw stack must be (slices, angles, channels), got shape {raw_stack.shape}"
        )
    num_slices = raw_stack.shape[0]
    if geometry is None:
        geometry = ParallelBeamGeometry(raw_stack.shape[1], raw_stack.shape[2])
    if raw_stack.shape[1:] != geometry.sinogram_shape:
        raise ValueError(
            f"stack slices have shape {raw_stack.shape[1:]}, geometry expects "
            f"{geometry.sinogram_shape}"
        )
    if solver not in PIPELINE_SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {PIPELINE_SOLVERS}"
        )
    if chunk_slices is not None and memory_budget_bytes is not None:
        raise ValueError("pass either chunk_slices or memory_budget_bytes, not both")

    if stages is None:
        stages = default_stages(darks, flats) if darks is not None else []

    manager = None
    if checkpoint is not None:
        manager = (
            checkpoint
            if isinstance(checkpoint, CheckpointManager)
            else CheckpointManager(checkpoint, every=1)
        )
    if resume and manager is None:
        raise ValueError("resume=True requires a checkpoint")

    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if dtype is not None:
        overrides["dtype"] = dtype
    if tune is not None:
        overrides["tune"] = tune
    if overrides:
        config = replace(config or OperatorConfig(), **overrides)
        if workers is not None and operator is not None:
            operator.set_workers(workers)
    # Slice-level fan-out for the looped path is always thread-based:
    # each solve would otherwise pickle solver state into a process.
    slice_workers, _ = parse_workers(workers)
    slice_backend = (
        make_backend(slice_workers, "thread")
        if (not batch and slice_workers > 1)
        else None
    )

    with span("pipeline.run", slices=num_slices, solver=solver):
        if operator is None:
            operator, report = preprocess(
                geometry, config=config, ordering=ordering, cache=cache
            )
        else:
            report = PreprocessReport()

        if chunk_slices is None:
            if memory_budget_bytes is not None:
                chunk_slices = chunk_slices_for_budget(
                    memory_budget_bytes,
                    operator.num_rays,
                    operator.num_pixels,
                    num_slices,
                )
            else:
                chunk_slices = num_slices
        if chunk_slices < 1:
            raise ValueError(f"chunk_slices must be >= 1, got {chunk_slices}")

        fingerprint = _stack_fingerprint(raw_stack, solver, iterations)
        n = geometry.num_channels
        volume = np.zeros((num_slices, n, n), dtype=np.float64)
        done = np.zeros(num_slices, dtype=bool)
        ctx = StageContext(angles=geometry.angles())
        extra: dict = {}

        if resume:
            snapshot = manager.require()
            if snapshot.solver != _CHECKPOINT_SOLVER:
                raise CheckpointError(
                    f"checkpoint holds {snapshot.solver!r} state, not a "
                    "pipeline stack checkpoint"
                )
            stored = snapshot.arrays.get("fingerprint")
            if stored is None or not np.array_equal(stored, fingerprint):
                raise CheckpointError(
                    "checkpoint fingerprint does not match this stack/solver/"
                    "iterations; refusing to resume against different inputs"
                )
            volume = np.asarray(snapshot.arrays["volume"], dtype=np.float64).copy()
            done = np.asarray(snapshot.arrays["done"], dtype=bool).copy()
            if "center_shift" in snapshot.scalars:
                ctx.info["center_shift"] = snapshot.scalars["center_shift"]
            add_count(PIPELINE_RESUMED_SLICES, int(done.sum()))
            extra["resumed_slices"] = int(done.sum())

        chunk_records: list[dict] = []
        solve_seconds = 0.0
        processed = 0
        stopped_early = False

        for start in range(0, num_slices, chunk_slices):
            stop = min(start + chunk_slices, num_slices)
            if done[start:stop].all():
                continue
            if max_chunks is not None and processed >= max_chunks:
                stopped_early = True
                break
            with span("pipeline.chunk", start=start, stop=stop):
                ctx.info["slice_offset"] = start
                chunk = raw_stack[start:stop]
                for stage in stages:
                    chunk = stage(chunk, ctx)

                # Right-hand sides go straight to the operator's solve
                # precision: stacking to float64 first would silently
                # double the chunk's memory on the fp32 path.
                Y = np.stack(
                    [operator.sinogram_to_ordered(chunk[k]) for k in range(chunk.shape[0])],
                    axis=1,
                ).astype(solver_dtype(operator))
                if solver == "mlem":
                    # MLEM models counts; conditioning noise can leave
                    # slightly negative line integrals — clip at zero.
                    np.maximum(Y, 0.0, out=Y)

                t0 = time.perf_counter()
                with span("pipeline.solve", solver=solver, batch=Y.shape[1]):
                    if batch:
                        result = _solve_chunk_batched(
                            solver, operator, Y, iterations, tolerance, solver_kwargs
                        )
                        X, iters = result.X, result.iterations.tolist()
                    else:
                        X, iters = _solve_chunk_looped(
                            solver,
                            operator,
                            Y,
                            iterations,
                            tolerance,
                            solver_kwargs,
                            backend=slice_backend,
                        )
                chunk_seconds = time.perf_counter() - t0
                solve_seconds += chunk_seconds

                for k in range(stop - start):
                    volume[start + k] = operator.ordered_to_image(
                        np.ascontiguousarray(X[:, k])
                    )
                done[start:stop] = True
                add_count(PIPELINE_CHUNKS, 1)
                add_count(PIPELINE_SLICES, stop - start)
                chunk_records.append(
                    {
                        "start": start,
                        "stop": stop,
                        "seconds": chunk_seconds,
                        "iterations": iters,
                    }
                )
                processed += 1

                if manager is not None:
                    scalars = {}
                    if "center_shift" in ctx.info:
                        scalars["center_shift"] = float(ctx.info["center_shift"])
                    manager.save(
                        SolverCheckpoint(
                            solver=_CHECKPOINT_SOLVER,
                            iteration=int(done.sum()),
                            arrays={
                                "volume": volume,
                                "done": done.astype(np.uint8),
                                "fingerprint": fingerprint,
                            },
                            scalars=scalars,
                        )
                    )

    stage_times = dict(ctx.stage_times)
    extra["stage_times"] = {**stage_times, "solve": solve_seconds}
    if "center_shift" in ctx.info:
        extra["center_shift"] = ctx.info["center_shift"]
    if manager is not None and manager.path is not None:
        extra["checkpoint_path"] = str(manager.path)
    if stopped_early:
        extra["stopped_early"] = True
        extra["remaining_slices"] = int((~done).sum())

    return StackResult(
        volume=volume,
        operator=operator,
        preprocess_report=report,
        solver=solver,
        chunks=chunk_records,
        stage_times=stage_times,
        solve_seconds=solve_seconds,
        total_seconds=time.perf_counter() - t_start,
        extra=extra,
    )
