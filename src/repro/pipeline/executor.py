"""Streaming multi-slice reconstruction executor.

The memory-centric bargain of the paper (Table 5) is that
preprocessing is paid once per *scan geometry* and amortized over every
slice of a 3D dataset.  This executor completes that story end-to-end:

* the raw ``(slices, angles, channels)`` stack is pulled chunk-by-chunk
  from a :class:`~repro.dataio.ChunkSource` — an in-memory array, an
  ``.npz``-shard directory, or an HDF5/tomobank file — sized by an
  explicit slice count or a memory budget, so arbitrarily tall stacks
  run in bounded memory without ever materializing the full raw array;
* each chunk flows through the conditioning stages
  (:mod:`repro.pipeline.stages`) and then into a **batched multi-RHS
  solve** — one cached operator drives all slices of the chunk per
  iteration, streaming the matrix once instead of once per slice;
* with ``prefetch >= 1`` the chunk loop becomes an overlapped conveyor
  (:mod:`repro.dataio.conveyor`): a reader thread pulls the next chunks
  ahead of the solve and a writer thread drains finished slabs into an
  optional :class:`~repro.dataio.ChunkSink`, so disk time on both ends
  hides under the solve;
* after every chunk the run is checkpointed through
  :class:`repro.resilience.CheckpointManager`, so a killed run resumes
  at the next chunk with a bit-identical final volume.  The checkpoint
  fingerprint binds the *full* configuration — stack content, solver,
  iterations, tolerance, solver kwargs, solve precision, and the exact
  conditioning chain — so resuming against anything different is
  refused rather than silently blending two configurations.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.operator import MemXCTOperator, OperatorConfig
from ..core.preprocess import PreprocessReport, preprocess
from ..dataio import (
    ChunkSink,
    ChunkSource,
    Conveyor,
    ConveyorProgress,
    make_sink,
    open_source,
)
from ..geometry import ParallelBeamGeometry
from ..obs import (
    PIPELINE_CHUNKS,
    PIPELINE_RESUMED_SLICES,
    PIPELINE_SLICES,
    REGISTRY,
    add_count,
    span,
)
from ..parallel.backend import make_backend, parse_workers
from ..precision import parse_dtype, solver_dtype
from ..resilience.checkpoint import CheckpointError, CheckpointManager, SolverCheckpoint
from ..solvers import cgls, cgls_batch, mlem, mlem_batch, sirt, sirt_batch
from .stages import Stage, StageContext, default_stages

__all__ = [
    "StackResult",
    "reconstruct_stack",
    "chunk_slices_for_budget",
    "PIPELINE_SOLVERS",
]

PIPELINE_SOLVERS = ("cg", "sirt", "mlem")

#: Checkpoint tag distinguishing stack checkpoints from solver ones.
_CHECKPOINT_SOLVER = "pipeline"


@dataclass
class StackResult:
    """Everything produced by one stack reconstruction.

    ``volume`` is the assembled ``(slices, n, n)`` array on the
    in-memory path and ``None`` when a sink streamed the slabs out —
    the finalized location is then in ``extra["output_path"]``.
    ``extra["stage_times"]`` maps each conditioning stage name (plus
    ``"solve"``) to accumulated wall seconds — the split the CLI's
    ``--metrics`` prints so conditioning cost is visible next to solve
    cost without exporting a trace.
    """

    volume: np.ndarray | None
    operator: MemXCTOperator
    preprocess_report: PreprocessReport
    solver: str
    chunks: list[dict] = field(default_factory=list)
    stage_times: dict[str, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    total_slices: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_slices(self) -> int:
        return self.volume.shape[0] if self.volume is not None else self.total_slices


def chunk_slices_for_budget(
    budget_bytes: int,
    num_rays: int,
    num_pixels: int,
    num_slices: int,
    *,
    itemsize: int = 8,
    volume_in_memory: bool = True,
    prefetch: int = 0,
) -> int:
    """Slices per chunk that fit a working-set memory budget.

    The model (documented in ``docs/pipeline.md``) charges, per slice
    of a chunk, ~4 ray-length and ~4 pixel-length solver vectors at the
    solve precision's ``itemsize`` (8 for the float64 default, 4 on the
    fp32 path) plus the float64 conditioned chunk itself — multiplied
    by ``1 + prefetch`` since the conveyor parks that many extra raw
    chunks ahead of the solve.  When the accumulated output volume
    stays in memory (``volume_in_memory=True``, i.e. no streaming
    sink), its fixed float64 footprint is carved out of the budget
    first.  Always returns at least 1: a single slice is the
    irreducible working set.
    """
    if budget_bytes <= 0:
        raise ValueError(f"memory budget must be positive, got {budget_bytes}")
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if prefetch < 0:
        raise ValueError(f"prefetch must be >= 0, got {prefetch}")
    solve_per_slice = itemsize * (4 * num_rays + 4 * num_pixels)
    chunk_per_slice = 8 * num_rays * (1 + prefetch)
    per_slice = solve_per_slice + chunk_per_slice
    fixed = 8 * num_pixels * num_slices if volume_in_memory else 0
    available = budget_bytes - fixed
    return int(max(1, min(num_slices, available // per_slice)))


def _stack_fingerprint(
    source: ChunkSource,
    solver: str,
    iterations: int,
    tolerance: float,
    solve_dtype: str,
    stages: list[Stage],
    solver_kwargs: dict,
) -> np.ndarray:
    """Content hash binding a checkpoint to its exact configuration.

    Everything that changes the final volume participates: the stack
    content (via the source fingerprint), solver, iteration budget,
    tolerance, solve precision, every conditioning-stage parameter
    (:meth:`~repro.pipeline.stages.Stage.signature`), and any extra
    solver kwargs.  The leading version tag deliberately invalidates
    checkpoints from the earlier, under-binding scheme.
    """
    h = hashlib.sha256()
    h.update(b"stack-fingerprint-v2:")
    h.update(source.fingerprint())
    h.update(f"{solver}:{iterations}:{float(tolerance)!r}:{solve_dtype}".encode())
    for stage in stages:
        h.update(stage.signature().encode())
        h.update(b";")
    for key in sorted(solver_kwargs):
        h.update(f"{key}={solver_kwargs[key]!r};".encode())
    return np.frombuffer(h.digest(), dtype=np.uint8).copy()


def _solve_chunk_batched(solver, op, Y, iterations, tolerance, solver_kwargs):
    if solver == "cg":
        return cgls_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
    if solver == "sirt":
        return sirt_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
    return mlem_batch(op, Y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)


def _solve_chunk_looped(
    solver, op, Y, iterations, tolerance, solver_kwargs, backend=None
):
    """Reference path: one single-slice solve per column.

    With a (thread) backend, the independent per-slice solves fan out
    across workers while the operator is pinned to serial kernels —
    parallelism moves to the coarser slice granularity instead of
    nesting inside the shared SpMV pools.  Results are stacked in slice
    order either way, so the volume is bit-identical.  Observation
    forces the serial loop: the span stack and counters are not safe
    against concurrent solver instrumentation.
    """

    def solve_one(j: int):
        y = np.ascontiguousarray(Y[:, j])
        if solver == "cg":
            res = cgls(op, y, num_iterations=iterations, tolerance=tolerance, **solver_kwargs)
        elif solver == "sirt":
            res = sirt(op, y, num_iterations=iterations, **solver_kwargs)
        else:
            res = mlem(op, y, num_iterations=iterations, **solver_kwargs)
        return res.x, res.iterations

    if backend is not None and backend.workers > 1 and not REGISTRY.active:
        with op.serial_scope():
            results = backend.map(solve_one, range(Y.shape[1]))
    else:
        results = [solve_one(j) for j in range(Y.shape[1])]
    columns = [x for x, _ in results]
    iters = [it for _, it in results]
    return np.stack(columns, axis=1), iters


def _done_runs(done: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` runs of True in a boolean mask."""
    runs: list[tuple[int, int]] = []
    start = None
    for i, flag in enumerate(done):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(done)))
    return runs


def reconstruct_stack(
    raw_stack,
    geometry: ParallelBeamGeometry | None = None,
    *,
    darks: np.ndarray | None = None,
    flats: np.ndarray | None = None,
    stages: list[Stage] | None = None,
    solver: str = "cg",
    iterations: int = 30,
    tolerance: float = 0.0,
    batch: bool = True,
    chunk_slices: int | None = None,
    memory_budget_bytes: int | None = None,
    operator: MemXCTOperator | None = None,
    config: OperatorConfig | None = None,
    ordering: str = "pseudo-hilbert",
    cache=None,
    checkpoint=None,
    resume: bool = False,
    max_chunks: int | None = None,
    workers: int | str | None = None,
    dtype: str | None = None,
    tune: str | None = None,
    sink=None,
    compress: bool = False,
    prefetch: int = 0,
    progress=None,
    **solver_kwargs,
) -> StackResult:
    """Reconstruct a 3D stack of sinograms through the staged pipeline.

    Parameters
    ----------
    raw_stack:
        The raw acquisition: a ``(slices, angles, channels)`` array,
        any :class:`~repro.dataio.ChunkSource`, or a path
        :func:`~repro.dataio.open_source` understands (an ``.npz``
        stack, a shard directory, or an HDF5/tomobank file).  Raw
        photon counts when ``darks``/``flats`` (or equivalent stages)
        are supplied, line integrals otherwise.
    geometry:
        Per-slice scan geometry; inferred from the stack shape when
        omitted.
    darks, flats:
        Calibration frames for the default conditioning chain (see
        :func:`repro.pipeline.default_stages`).  Default to whatever
        the source carries (e.g. tomobank ``data_dark``/``data_white``);
        ignored when ``stages`` is given explicitly.
    stages:
        Explicit conditioning chain.  Defaults to
        ``default_stages(darks, flats)`` when calibration is supplied,
        otherwise to no conditioning at all.
    solver:
        ``"cg"``, ``"sirt"`` or ``"mlem"``.
    tolerance:
        Per-slice early-stop tolerance (per-column convergence masks in
        the batched path); ``0`` runs the full budget.
    batch:
        Use the multi-RHS solvers (default).  ``False`` loops the
        single-slice solvers — bit-identical results, used as the
        reference in tests and benchmarks.
    chunk_slices, memory_budget_bytes:
        Chunking policy: an explicit slice count, or a working-set
        budget fed to :func:`chunk_slices_for_budget` (dtype-aware, and
        aware of whether the output volume stays in memory).  Default
        is one chunk for the whole stack.
    operator, config, ordering, cache:
        Operator reuse and construction knobs, as in
        :func:`repro.core.reconstruct`; ``cache`` enables the on-disk
        plan cache so warm runs skip preprocessing entirely.
    checkpoint:
        Path (or :class:`~repro.resilience.CheckpointManager`) for
        per-chunk checkpoints.  On the in-memory path the accumulated
        volume is checkpointed; with a ``sink`` only the done mask is
        (the sink's own crash-safe shards hold the data), and a chunk
        is marked done only once its slab is confirmed written.
    resume:
        Continue from ``checkpoint``.  The checkpoint's content
        fingerprint must match this exact stack/solver/iterations/
        tolerance/precision/stage configuration — resuming against
        anything different raises
        :class:`~repro.resilience.CheckpointError`.  Completed chunks
        are skipped (never re-read from the source); the final volume
        is bit-identical to an uninterrupted run.
    max_chunks:
        Stop (cleanly, after checkpointing) once this many chunks were
        processed in *this* run — the hook CI uses to simulate a kill.
    workers:
        Parallel-execution spec (see :func:`repro.parallel.parse_workers`).
        The batched path parallelizes each multi-RHS SpMV across
        partition ranges; the looped path (``batch=False``) instead
        fans independent slice solves out to threads with the operator
        pinned serial, so the shared pools are never entered twice.
        Either way the volume is bit-identical to a serial run.
    dtype, tune:
        Compute precision and autotuning mode, folded into ``config``
        exactly as in :func:`repro.core.reconstruct` — they apply when
        preprocessing runs here.  With a passed-in ``operator``,
        ``dtype`` must match the operator's configured precision
        (a mismatch raises instead of being silently ignored) and
        ``tune`` has no effect (warned).  With ``dtype="float32"`` the
        batched right-hand sides and solver state run in single
        precision; the assembled volume stays float64.
    sink:
        Stream reconstructed slabs out instead of accumulating the
        volume in memory: a :class:`~repro.dataio.ChunkSink`, or a
        destination path for :func:`~repro.dataio.make_sink` (a shard
        directory, or a ``.raw`` file).  ``StackResult.volume`` is then
        ``None`` and ``extra["output_path"]`` points at the finalized
        output.
    compress:
        Write deflated shard archives when ``sink`` is a shard-directory
        path (trades write CPU for disk bytes); rejected for ``.raw``
        destinations.  Ignored when ``sink`` is already a constructed
        :class:`~repro.dataio.ChunkSink`.
    prefetch:
        Read-ahead depth for the overlapped conveyor; ``0`` (default)
        runs source reads and sink writes synchronously.  The streamed
        volume is bit-identical either way.
    progress:
        ``True`` for a queue-depth-driven progress/ETA line on stderr,
        or any object with ``update(done_slices, backlog)`` / ``done()``.
    """
    t_start = time.perf_counter()
    source = open_source(raw_stack, darks=darks, flats=flats)
    darks, flats = source.darks, source.flats
    num_slices = source.num_slices
    if geometry is None:
        geometry = ParallelBeamGeometry(source.shape[1], source.shape[2])
    if source.shape[1:] != geometry.sinogram_shape:
        raise ValueError(
            f"stack slices have shape {source.shape[1:]}, geometry expects "
            f"{geometry.sinogram_shape}"
        )
    if solver not in PIPELINE_SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {PIPELINE_SOLVERS}"
        )
    if chunk_slices is not None and memory_budget_bytes is not None:
        raise ValueError("pass either chunk_slices or memory_budget_bytes, not both")
    if prefetch < 0:
        raise ValueError(f"prefetch must be >= 0, got {prefetch}")

    if stages is None:
        stages = default_stages(darks, flats) if darks is not None else []

    manager = None
    if checkpoint is not None:
        manager = (
            checkpoint
            if isinstance(checkpoint, CheckpointManager)
            else CheckpointManager(checkpoint, every=1)
        )
    if resume and manager is None:
        raise ValueError("resume=True requires a checkpoint")

    if operator is not None:
        # A prebuilt operator fixes the precision and layout; the
        # overrides below must not be dropped on the floor silently.
        if dtype is not None and parse_dtype(dtype) != operator.config.dtype:
            have = operator.config.dtype or "the default mixed precision"
            raise ValueError(
                f"dtype={dtype!r} conflicts with the prebuilt operator "
                f"({have}); rebuild the operator with "
                f"OperatorConfig(dtype={dtype!r}) or drop the override"
            )
        if tune is not None:
            warnings.warn(
                "tune= has no effect on a prebuilt operator; omit operator= "
                "to let preprocessing run the autotuner",
                UserWarning,
                stacklevel=2,
            )
    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if dtype is not None:
        overrides["dtype"] = dtype
    if tune is not None:
        overrides["tune"] = tune
    if overrides:
        config = replace(config or OperatorConfig(), **overrides)
        if workers is not None and operator is not None:
            operator.set_workers(workers)
    # Slice-level fan-out for the looped path is always thread-based:
    # each solve would otherwise pickle solver state into a process.
    slice_workers, _ = parse_workers(workers)
    slice_backend = (
        make_backend(slice_workers, "thread")
        if (not batch and slice_workers > 1)
        else None
    )

    with span("pipeline.run", slices=num_slices, solver=solver):
        if operator is None:
            operator, report = preprocess(
                geometry, config=config, ordering=ordering, cache=cache
            )
        else:
            report = PreprocessReport()

        if chunk_slices is None:
            if memory_budget_bytes is not None:
                chunk_slices = chunk_slices_for_budget(
                    memory_budget_bytes,
                    operator.num_rays,
                    operator.num_pixels,
                    num_slices,
                    itemsize=solver_dtype(operator).itemsize,
                    volume_in_memory=sink is None,
                    prefetch=prefetch,
                )
            else:
                chunk_slices = num_slices
        if chunk_slices < 1:
            raise ValueError(f"chunk_slices must be >= 1, got {chunk_slices}")

        fingerprint = _stack_fingerprint(
            source,
            solver,
            iterations,
            tolerance,
            str(solver_dtype(operator)),
            stages,
            solver_kwargs,
        )
        n = geometry.num_channels
        if sink is not None and not isinstance(sink, ChunkSink):
            sink = make_sink(sink, num_slices, n, resume=resume,
                             compress=compress)
        volume = (
            np.zeros((num_slices, n, n), dtype=np.float64) if sink is None else None
        )
        done = np.zeros(num_slices, dtype=bool)
        ctx = StageContext(angles=geometry.angles())
        extra: dict = {}

        if resume:
            snapshot = manager.require()
            if snapshot.solver != _CHECKPOINT_SOLVER:
                raise CheckpointError(
                    f"checkpoint holds {snapshot.solver!r} state, not a "
                    "pipeline stack checkpoint"
                )
            stored = snapshot.arrays.get("fingerprint")
            if stored is None or not np.array_equal(stored, fingerprint):
                raise CheckpointError(
                    "checkpoint fingerprint does not match this stack/solver/"
                    "iterations/tolerance/precision/stage configuration; "
                    "refusing to resume against different inputs"
                )
            done = np.asarray(snapshot.arrays["done"], dtype=bool).copy()
            stored_volume = snapshot.arrays.get("volume")
            if sink is None:
                if stored_volume is None:
                    raise CheckpointError(
                        "checkpoint was written by a streaming-sink run and "
                        "holds no volume; resume with the same sink"
                    )
                volume = np.asarray(stored_volume, dtype=np.float64).copy()
            elif stored_volume is not None:
                # In-memory checkpoint resumed onto a sink: replay the
                # completed slices so the sink's output is whole.
                stored_volume = np.asarray(stored_volume, dtype=np.float64)
                for a, b in _done_runs(done):
                    sink.write(a, b, stored_volume[a:b])
            if "center_shift" in snapshot.scalars:
                ctx.info["center_shift"] = snapshot.scalars["center_shift"]
            add_count(PIPELINE_RESUMED_SLICES, int(done.sum()))
            extra["resumed_slices"] = int(done.sum())

        def save_checkpoint() -> None:
            if manager is None:
                return
            scalars = {}
            if "center_shift" in ctx.info:
                scalars["center_shift"] = float(ctx.info["center_shift"])
            arrays = {"done": done.astype(np.uint8), "fingerprint": fingerprint}
            if volume is not None:
                arrays["volume"] = volume
            manager.save(
                SolverCheckpoint(
                    solver=_CHECKPOINT_SOLVER,
                    iteration=int(done.sum()),
                    arrays=arrays,
                    scalars=scalars,
                )
            )

        # Plan the chunk ranges up front: completed (resumed) chunks are
        # dropped before the reader ever sees them, and max_chunks
        # truncates the plan so a "kill" run never reads ahead of what
        # it will solve.
        all_ranges = [
            (start, min(start + chunk_slices, num_slices))
            for start in range(0, num_slices, chunk_slices)
        ]
        pending = [(a, b) for a, b in all_ranges if not done[a:b].all()]
        stopped_early = max_chunks is not None and len(pending) > max_chunks
        if stopped_early:
            pending = pending[:max_chunks]

        reporter = None
        if progress is True:
            reporter = ConveyorProgress(num_slices, initial_done=int(done.sum()))
        elif progress:
            reporter = progress

        chunk_records: list[dict] = []
        solve_seconds = 0.0

        conveyor = Conveyor(source, pending, sink=sink, prefetch=prefetch)
        with conveyor:
            for start, stop, chunk in conveyor.chunks():
                with span("pipeline.chunk", start=start, stop=stop):
                    ctx.info["slice_offset"] = start
                    for stage in stages:
                        chunk = stage(chunk, ctx)

                    # Right-hand sides go straight to the operator's solve
                    # precision: stacking to float64 first would silently
                    # double the chunk's memory on the fp32 path.
                    Y = np.stack(
                        [operator.sinogram_to_ordered(chunk[k]) for k in range(chunk.shape[0])],
                        axis=1,
                    ).astype(solver_dtype(operator))
                    if solver == "mlem":
                        # MLEM models counts; conditioning noise can leave
                        # slightly negative line integrals — clip at zero.
                        np.maximum(Y, 0.0, out=Y)

                    t0 = time.perf_counter()
                    with span("pipeline.solve", solver=solver, batch=Y.shape[1]):
                        if batch:
                            result = _solve_chunk_batched(
                                solver, operator, Y, iterations, tolerance, solver_kwargs
                            )
                            X, iters = result.X, result.iterations.tolist()
                        else:
                            X, iters = _solve_chunk_looped(
                                solver,
                                operator,
                                Y,
                                iterations,
                                tolerance,
                                solver_kwargs,
                                backend=slice_backend,
                            )
                    chunk_seconds = time.perf_counter() - t0
                    solve_seconds += chunk_seconds

                    slab = np.stack(
                        [
                            operator.ordered_to_image(np.ascontiguousarray(X[:, k]))
                            for k in range(stop - start)
                        ]
                    )
                    if sink is None:
                        volume[start:stop] = slab
                        done[start:stop] = True
                    else:
                        conveyor.put(start, stop, slab)
                        # Only writer-confirmed slabs may enter the done
                        # mask: a slab parked in the write queue is lost
                        # on a crash, and resume must re-solve it.
                        for a, b in conveyor.take_written():
                            done[a:b] = True
                    add_count(PIPELINE_CHUNKS, 1)
                    add_count(PIPELINE_SLICES, stop - start)
                    chunk_records.append(
                        {
                            "start": start,
                            "stop": stop,
                            "seconds": chunk_seconds,
                            "iterations": iters,
                        }
                    )
                    save_checkpoint()
                    if reporter is not None:
                        reporter.update(int(done.sum()), conveyor.backlog)
            conveyor.finish()
        if sink is not None:
            for a, b in conveyor.take_written():
                done[a:b] = True
            # The in-flight slabs are durable now; record the final mask.
            save_checkpoint()
            if done.all():
                output_path = sink.finalize()
                if output_path is not None:
                    extra["output_path"] = str(output_path)
        if reporter is not None:
            reporter.done()
    source.close()

    stage_times = dict(ctx.stage_times)
    extra["stage_times"] = {**stage_times, "solve": solve_seconds}
    if "center_shift" in ctx.info:
        extra["center_shift"] = ctx.info["center_shift"]
    if manager is not None and manager.path is not None:
        extra["checkpoint_path"] = str(manager.path)
    if stopped_early:
        extra["stopped_early"] = True
        extra["remaining_slices"] = int((~done).sum())

    return StackResult(
        volume=volume,
        operator=operator,
        preprocess_report=report,
        solver=solver,
        chunks=chunk_records,
        stage_times=stage_times,
        solve_seconds=solve_seconds,
        total_seconds=time.perf_counter() - t_start,
        total_slices=num_slices,
        extra=extra,
    )
