"""Self-contained demo dataset for the streaming pipeline.

Builds a raw 3D acquisition the way a beamline would produce it:
a per-slice-varying phantom stack is forward-projected through the
*real* memoized operator (so the demo exercises the same tracing code
the reconstruction uses), converted to photon counts with dark/flat
structure, and optionally corrupted with ring gains and a
rotation-center shift.  The CLI's ``repro pipeline run --demo`` and the
CI smoke job are thin wrappers over this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operator import MemXCTOperator, OperatorConfig
from ..core.preprocess import PreprocessReport, preprocess
from ..geometry import ParallelBeamGeometry
from ..phantoms import (
    inject_center_shift,
    ring_gains,
    simulate_counts,
    stacked_shepp_logan,
    synthetic_darks_flats,
)

__all__ = ["DemoStack", "demo_stack"]


@dataclass
class DemoStack:
    """A synthetic raw acquisition plus its ground truth."""

    raw: np.ndarray  # (slices, angles, N) photon counts
    darks: np.ndarray  # (frames, slices, N)
    flats: np.ndarray  # (frames, slices, N)
    truth: np.ndarray  # (slices, n, n) phantom stack
    sinograms: np.ndarray  # (slices, angles, N) clean line integrals (scaled)
    geometry: ParallelBeamGeometry
    operator: MemXCTOperator
    preprocess_report: PreprocessReport
    center_shift: float
    attenuation_scale: float


def demo_stack(
    size: int = 64,
    num_slices: int = 8,
    num_angles: int | None = None,
    center_shift: float = 0.0,
    rings: bool = False,
    ring_amplitude: float = 0.08,
    poisson: bool = True,
    seed: int = 0,
    config: OperatorConfig | None = None,
    cache=None,
) -> DemoStack:
    """Simulate a raw stack acquisition over a Shepp–Logan volume.

    ``center_shift`` displaces the rotation axis by that many channels
    (what the pipeline's center-finding stage must recover);
    ``rings`` adds per-channel gain errors the ring-suppression stage
    must remove.  The returned ``sinograms`` are the clean line
    integrals *after* attenuation scaling — ``reconstruct_stack`` over
    ``raw`` should recover reconstructions of ``scale * truth``.
    """
    geometry = ParallelBeamGeometry(
        num_angles if num_angles is not None else size, size
    )
    operator, report = preprocess(geometry, config=config, cache=cache)

    truth = stacked_shepp_logan(size, num_slices)
    sinograms = np.stack(
        [operator.project_image(truth[k]) for k in range(num_slices)]
    ).astype(np.float64)

    max_val = float(sinograms.max()) if sinograms.size else 0.0
    scale = 2.0 / max_val if max_val > 0 else 1.0
    sinograms *= scale

    if center_shift:
        sinograms = inject_center_shift(sinograms, center_shift)

    darks, flats = synthetic_darks_flats(
        num_slices, geometry.num_channels, seed=seed + 1
    )
    gains = (
        ring_gains(geometry.num_channels, amplitude=ring_amplitude, seed=seed + 2)
        if rings
        else None
    )
    raw, _ = simulate_counts(
        sinograms,
        darks,
        flats,
        attenuation_scale=1.0,  # sinograms are already optical depths
        gains=gains,
        poisson=poisson,
        seed=seed,
    )
    return DemoStack(
        raw=raw,
        darks=darks,
        flats=flats,
        truth=truth,
        sinograms=sinograms,
        geometry=geometry,
        operator=operator,
        preprocess_report=report,
        center_shift=float(center_shift),
        attenuation_scale=scale,
    )
