"""Automatic rotation-center finding.

A parallel-beam scan over ``[0, pi)`` determines the rotation axis up
to calibration: if the axis projects to detector position
``(N - 1) / 2 + delta``, every reconstruction from the raw sinogram is
smeared by the uncorrected offset ``delta``.  Two estimators:

* ``"com"`` (default) — fit the per-angle attenuation centroid to the
  sinusoid ``c + a cos(theta) + b sin(theta)``.  The centroid of a
  parallel projection is the projection of the object's centroid, which
  traces that exact sinusoid around the rotation axis; the fitted
  offset ``c`` *is* the axis position.  A linear least-squares problem
  over all angles — sub-pixel accurate and noise-robust.
* ``"correlation"`` — cross-correlate the first projection with the
  mirrored opposite projection.  At ``theta + pi`` a parallel
  projection is the mirror of the one at ``theta`` about the axis, so
  the correlation peak sits at lag ``2 delta``; a parabolic fit through
  the peak's neighbours refines to sub-pixel.  Uses only two
  projections — cheap, and independent of the centroid model.
  Delegates to :func:`repro.measurement.estimate_center_of_rotation`
  (the single-slice primitive) and converts the absolute axis position
  to a shift.
"""

from __future__ import annotations

import numpy as np

from ..measurement import estimate_center_of_rotation

__all__ = ["find_center_shift", "CENTER_METHODS"]

CENTER_METHODS = ("com", "correlation")


def _center_of_mass_shift(sinogram: np.ndarray, angles: np.ndarray) -> float:
    weights = np.asarray(sinogram, dtype=np.float64)
    # Row-wise centroids; rows with no attenuation carry no information
    # and are dropped from the fit.  Rows with non-finite samples or a
    # vanishing total are equally uninformative (a near-zero total
    # amplifies noise into an arbitrary centroid), so they are skipped
    # with the same mask rather than poisoning the least-squares fit.
    finite_rows = np.isfinite(weights).all(axis=1)
    totals = np.where(finite_rows, weights.sum(axis=1, where=np.isfinite(weights)), 0.0)
    scale = float(np.abs(weights[finite_rows]).max()) if finite_rows.any() else 0.0
    threshold = max(scale * weights.shape[1] * 1e-12, 0.0)
    valid = finite_rows & (totals > threshold)
    if valid.sum() < 3:
        raise ValueError(
            "sinogram has fewer than 3 usable projections (non-empty, "
            "finite, with positive total attenuation); cannot fit the "
            "centroid sinusoid"
        )
    channels = np.arange(weights.shape[1], dtype=np.float64)
    centroids = (weights[valid] * channels).sum(axis=1) / totals[valid]
    ok = np.isfinite(centroids)
    if ok.sum() < 3:
        raise ValueError(
            "fewer than 3 projections yield a finite centroid; "
            "cannot fit the centroid sinusoid"
        )
    centroids = centroids[ok]
    th = angles[valid][ok]
    design = np.column_stack([np.ones(th.shape[0]), np.cos(th), np.sin(th)])
    coeffs, *_ = np.linalg.lstsq(design, centroids, rcond=None)
    return float(coeffs[0]) - (weights.shape[1] - 1) / 2.0


def _correlation_shift(sinogram: np.ndarray) -> float:
    # Mirroring about the axis at (N-1)/2 + delta maps channel i to
    # 2 delta + (N-1) - i, so the correlation lag equals 2 delta.
    # estimate_center_of_rotation returns the absolute axis position.
    return estimate_center_of_rotation(sinogram) - (sinogram.shape[1] - 1) / 2.0


def find_center_shift(
    sinogram: np.ndarray,
    angles: np.ndarray | None = None,
    method: str = "com",
) -> float:
    """Estimate the rotation-axis offset (in channels) of one sinogram.

    Parameters
    ----------
    sinogram:
        ``(num_angles, num_channels)`` line integrals (already
        log-transformed — both estimators assume attenuation, where
        empty channels are ~0).
    angles:
        Projection angles in radians; defaults to a uniform ``[0, pi)``
        raster matching :class:`repro.geometry.ParallelBeamGeometry`.
        Only the ``"com"`` method uses them.
    method:
        ``"com"`` or ``"correlation"`` (see module docstring).

    Returns
    -------
    ``delta`` such that the axis projects to ``(N - 1) / 2 + delta``.
    """
    sinogram = np.asarray(sinogram, dtype=np.float64)
    if sinogram.ndim != 2:
        raise ValueError(f"expected a 2D sinogram, got shape {sinogram.shape}")
    if method not in CENTER_METHODS:
        raise ValueError(
            f"unknown center method {method!r}; expected one of {CENTER_METHODS}"
        )
    if method == "correlation":
        return _correlation_shift(sinogram)
    if angles is None:
        angles = np.arange(sinogram.shape[0]) * (np.pi / sinogram.shape[0])
    else:
        angles = np.asarray(angles, dtype=np.float64)
        if angles.shape[0] != sinogram.shape[0]:
            raise ValueError(
                f"{angles.shape[0]} angles for {sinogram.shape[0]} projections"
            )
    return _center_of_mass_shift(sinogram, angles)
