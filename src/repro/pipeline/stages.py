"""Sinogram conditioning stages.

Raw beamline data is photon counts, not line integrals; between the
detector and the solver sits a conditioning chain (dark/flat-field
normalization, negative log, ring suppression, rotation-center
correction).  Each step here is an independently testable
:class:`Stage` operating on a ``(slices, angles, channels)`` chunk; the
base class wraps every application in an obs span and accumulates
per-stage wall time into the shared :class:`StageContext`, which is how
``result.extra["stage_times"]`` ends up reporting conditioning cost
next to solve cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..obs import span
from ..persist import raw_buffer
from .center import CENTER_METHODS, find_center_shift

__all__ = [
    "Stage",
    "StageContext",
    "DarkFlatNormalize",
    "NegativeLog",
    "RingSuppression",
    "CenterCorrection",
    "default_stages",
]


@dataclass
class StageContext:
    """Shared state threaded through one pipeline run.

    ``stage_times`` accumulates wall seconds per stage name across all
    chunks.  ``info`` carries cross-chunk stage state — notably the
    rotation-center estimate, which is computed once and reused so that
    every chunk (and any resumed run) applies the identical correction.
    """

    angles: np.ndarray | None = None
    stage_times: dict[str, float] = field(default_factory=dict)
    info: dict = field(default_factory=dict)


class Stage:
    """One conditioning step over a ``(slices, angles, channels)`` chunk."""

    #: Stage name used for spans, stage_times keys, and CLI reporting.
    name = "stage"

    def apply(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        raise NotImplementedError

    def signature(self) -> str:
        """Stable digest of this stage's configuration.

        Folded into the stack-checkpoint fingerprint: two runs whose
        conditioning chains differ in any parameter — a ring window, a
        center method, the calibration frames themselves — must refuse
        to share a checkpoint.  Array-valued parameters contribute a
        content hash; everything else its ``repr``.
        """
        parts = []
        for key in sorted(vars(self)):
            value = vars(self)[key]
            if isinstance(value, np.ndarray):
                digest = hashlib.sha256()
                digest.update(str(value.shape).encode())
                digest.update(str(value.dtype).encode())
                digest.update(raw_buffer(value))
                parts.append(f"{key}=ndarray:{digest.hexdigest()[:16]}")
            else:
                parts.append(f"{key}={value!r}")
        return f"{self.name}({', '.join(parts)})"

    def __call__(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 3:
            raise ValueError(
                f"stage {self.name!r} expects a (slices, angles, channels) "
                f"chunk, got shape {chunk.shape}"
            )
        with span("pipeline.stage", stage=self.name, slices=chunk.shape[0]) as sp:
            out = self.apply(chunk, ctx)
        ctx.stage_times[self.name] = ctx.stage_times.get(self.name, 0.0) + sp.duration
        return out


class DarkFlatNormalize(Stage):
    """Dark/flat-field normalization: counts -> transmission in (0, 1].

    ``t = (raw - dark) / (flat - dark)`` with the calibration frames
    averaged over their frame axis.  Accepts calibration shaped
    ``(channels,)`` (one fixed profile), ``(frames, channels)``
    (repeated exposures of one profile — frame-averaged), or
    ``(frames, slices, channels)`` (per-slice profiles, frame-averaged
    then sliced per chunk via the context's ``slice_offset``).  The
    transmission is clipped to ``[min_transmission, inf)`` so the
    downstream log never sees a non-positive value from a noisy or
    dead detector reading.
    """

    name = "dark_flat"

    def __init__(self, darks, flats, min_transmission: float = 1e-6):
        if min_transmission <= 0:
            raise ValueError(
                f"min_transmission must be positive, got {min_transmission}"
            )
        self.darks = np.asarray(darks, dtype=np.float64)
        self.flats = np.asarray(flats, dtype=np.float64)
        self.min_transmission = float(min_transmission)

    @staticmethod
    def _calibration(frames: np.ndarray) -> np.ndarray:
        # Reduce (frames, N) or (frames, slices, N) to the frame mean.
        if frames.ndim == 1:
            return frames
        if frames.ndim in (2, 3):
            return frames.mean(axis=0)
        raise ValueError(
            f"calibration must be (N,), (frames, N) or (frames, slices, N); "
            f"got shape {tuple(frames.shape)}"
        )

    def _aligned(self, cal: np.ndarray, chunk: np.ndarray, ctx: StageContext):
        if cal.ndim == 1:
            return cal[None, None, :]
        # Per-slice calibration: pick this chunk's rows.
        offset = int(ctx.info.get("slice_offset", 0))
        rows = cal[offset : offset + chunk.shape[0]]
        if rows.shape[0] != chunk.shape[0]:
            raise ValueError(
                f"per-slice calibration has {cal.shape[0]} slices; chunk at "
                f"offset {offset} needs {chunk.shape[0]}"
            )
        return rows[:, None, :]

    def apply(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        dark = self._aligned(self._calibration(self.darks), chunk, ctx)
        flat = self._aligned(self._calibration(self.flats), chunk, ctx)
        denom = flat - dark
        if (denom <= 0).any():
            raise ValueError("flat-field must exceed dark-field on every channel")
        transmission = (chunk - dark) / denom
        return np.clip(transmission, self.min_transmission, None)


class NegativeLog(Stage):
    """Beer–Lambert inversion: transmission -> line integrals."""

    name = "neg_log"

    def apply(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        if (chunk <= 0).any():
            raise ValueError(
                "negative-log stage needs strictly positive transmission; "
                "run dark/flat normalization (with clipping) first"
            )
        return -np.log(chunk)


def _median_smooth(profile: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window median of a 1D profile with edge replication."""
    half = window // 2
    padded = np.pad(profile, half, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, window)
    return np.median(windows, axis=1)


class RingSuppression(Stage):
    """Additive stripe (ring) suppression, wavelet-free.

    A constant per-channel gain error survives the log as an additive
    per-channel offset — a vertical stripe in the sinogram, a ring in
    the reconstruction.  Per slice: take the mean over angles (the
    stripe profile plus smooth object structure), median-smooth it to
    keep only the smooth part, and subtract the difference.  A median
    window of a few channels removes single-channel stripes while
    leaving genuine broad structure untouched.
    """

    name = "ring_suppress"

    def __init__(self, window: int = 5):
        if window < 3 or window % 2 == 0:
            raise ValueError(f"window must be an odd integer >= 3, got {window}")
        self.window = int(window)

    def apply(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        out = chunk.copy()
        for k in range(chunk.shape[0]):
            profile = chunk[k].mean(axis=0)
            stripe = profile - _median_smooth(profile, self.window)
            out[k] -= stripe[None, :]
        return out


def _shift_columns(sinogram: np.ndarray, shift: float) -> np.ndarray:
    """Shift a ``(angles, N)`` sinogram by ``shift`` channels (linear)."""
    n = sinogram.shape[-1]
    pos = np.arange(n, dtype=np.float64) - shift
    lo = np.clip(np.floor(pos).astype(np.int64), 0, n - 1)
    hi = np.clip(lo + 1, 0, n - 1)
    frac = np.clip(pos - lo, 0.0, 1.0)
    return sinogram[..., lo] * (1.0 - frac) + sinogram[..., hi] * frac


class CenterCorrection(Stage):
    """Estimate and undo a rotation-axis offset.

    The offset is estimated once — on the middle slice of the first
    chunk seen — and cached in ``ctx.info["center_shift"]`` so every
    subsequent chunk applies the *same* correction (the axis does not
    move between slices, and chunk-dependent estimates would make the
    result depend on chunking).  Pass ``shift`` to skip estimation and
    apply a known offset.
    """

    name = "center"

    def __init__(self, method: str = "com", shift: float | None = None):
        if method not in CENTER_METHODS:
            raise ValueError(
                f"unknown center method {method!r}; expected one of {CENTER_METHODS}"
            )
        self.method = method
        self.shift = shift

    def apply(self, chunk: np.ndarray, ctx: StageContext) -> np.ndarray:
        shift = ctx.info.get("center_shift")
        if shift is None:
            if self.shift is not None:
                shift = float(self.shift)
            else:
                mid = chunk.shape[0] // 2
                shift = find_center_shift(chunk[mid], ctx.angles, self.method)
            ctx.info["center_shift"] = float(shift)
        if shift == 0.0:
            return chunk
        out = np.empty_like(chunk)
        for k in range(chunk.shape[0]):
            out[k] = _shift_columns(chunk[k], -shift)
        return out


def default_stages(
    darks=None,
    flats=None,
    ring_window: int | None = 5,
    center_method: str | None = "com",
    center_shift: float | None = None,
) -> list[Stage]:
    """The standard conditioning chain for raw count data.

    Dark/flat normalization and the negative log are included only when
    calibration frames are supplied (pass ``darks=None`` for data that
    is already line integrals).  ``ring_window=None`` or
    ``center_method=None`` drop the respective stage.
    """
    stages: list[Stage] = []
    if darks is not None or flats is not None:
        if darks is None or flats is None:
            raise ValueError("dark/flat normalization needs both darks and flats")
        stages.append(DarkFlatNormalize(darks, flats))
        stages.append(NegativeLog())
    if ring_window is not None:
        stages.append(RingSuppression(ring_window))
    if center_method is not None or center_shift is not None:
        stages.append(
            CenterCorrection(method=center_method or "com", shift=center_shift)
        )
    return stages
