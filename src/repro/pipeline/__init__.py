"""repro.pipeline — streaming multi-slice reconstruction.

The staged pipeline that turns a raw 3D acquisition into a
reconstructed volume with one memoized operator:

* **Conditioning stages** (:mod:`repro.pipeline.stages`) — dark/flat
  normalization, negative log, additive ring suppression, automatic
  rotation-center correction; each an independently testable
  :class:`Stage` timed through the obs layer.
* **Center finding** (:mod:`repro.pipeline.center`) — sub-pixel
  rotation-axis estimation by centroid-sinusoid fit or opposite-
  projection cross-correlation.
* **Streaming executor** (:mod:`repro.pipeline.executor`) —
  memory-budgeted chunking, batched multi-RHS solves
  (:mod:`repro.solvers.batched`), warm operator reuse via the plan
  cache, and per-chunk checkpoint/resume.

See ``docs/pipeline.md`` for the full guide.
"""

from .center import CENTER_METHODS, find_center_shift
from .demo import DemoStack, demo_stack
from .executor import (
    PIPELINE_SOLVERS,
    StackResult,
    chunk_slices_for_budget,
    reconstruct_stack,
)
from .stages import (
    CenterCorrection,
    DarkFlatNormalize,
    NegativeLog,
    RingSuppression,
    Stage,
    StageContext,
    default_stages,
)

__all__ = [
    "CENTER_METHODS",
    "find_center_shift",
    "DemoStack",
    "demo_stack",
    "PIPELINE_SOLVERS",
    "StackResult",
    "chunk_slices_for_budget",
    "reconstruct_stack",
    "Stage",
    "StageContext",
    "DarkFlatNormalize",
    "NegativeLog",
    "RingSuppression",
    "CenterCorrection",
    "default_stages",
]
