"""Partition-padded ELL format (paper Section 3.1.4).

The GPU variant of the MemXCT baseline stores each row partition
(thread block) in column-major ELL: the block's rows are padded to the
block-local maximum row length, so consecutive threads (rows) read
consecutive memory locations — coalesced access.  Two details the paper
calls out versus cuSPARSE:

* padding is applied **per partition**, not per matrix, so a few long
  rows don't blow up the whole matrix;
* padded slots hold index ``0`` and value ``0`` and are multiplied
  redundantly instead of branched around, avoiding thread divergence.

The Python kernel walks the pad width with one vector operation per
column slot, mirroring the lockstep execution of a warp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix
from .partition import RowPartitions

__all__ = ["ELLPartitioned", "build_ell"]


@dataclass
class ELLPartitioned:
    """Partition-level padded ELL storage.

    Attributes
    ----------
    partitions:
        The row partitioning (one ELL slab per partition).
    widths:
        Pad width (max row nnz) of each partition.
    ind_slabs, val_slabs:
        Per-partition column-major arrays of shape
        ``(width, rows_in_partition)``; padded entries have index 0 and
        value 0.
    num_cols:
        Input-vector length.
    """

    partitions: RowPartitions
    widths: np.ndarray
    ind_slabs: list[np.ndarray]
    val_slabs: list[np.ndarray]
    num_cols: int

    @property
    def num_rows(self) -> int:
        return self.partitions.num_rows

    @property
    def padded_nnz(self) -> int:
        """Stored element count including padding."""
        return int(sum(slab.size for slab in self.val_slabs))

    @property
    def padding_overhead(self) -> float:
        """Fraction of stored elements that are padding."""
        real = sum(int(np.count_nonzero(slab)) for slab in self.val_slabs)
        total = self.padded_nnz
        return 1.0 - real / total if total else 0.0

    def partition_slice(self, part0: int, part1: int) -> "ELLPartitioned":
        """View-based sub-layout of the partition range ``[part0, part1)``.

        The per-partition slabs are shared (list slices of the same
        arrays), so worker-owned partition ranges of the parallel
        backend cost no slab copies.  Any kernel on the slice produces
        exactly rows ``[part0 * partsize, min(part1 * partsize,
        num_rows))`` of the parent's result, bit-identically.
        """
        if not 0 <= part0 <= part1 <= self.partitions.num_partitions:
            raise ValueError(
                f"partition range [{part0}, {part1}) outside "
                f"[0, {self.partitions.num_partitions})"
            )
        partsize = self.partitions.partition_size
        row0 = part0 * partsize
        row1 = min(part1 * partsize, self.num_rows)
        return ELLPartitioned(
            partitions=RowPartitions(row1 - row0, partsize),
            widths=self.widths[part0:part1],
            ind_slabs=self.ind_slabs[part0:part1],
            val_slabs=self.val_slabs[part0:part1],
            num_cols=self.num_cols,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Coalesced-style SpMV: one vector op per ELL column slot."""
        x = np.asarray(x)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} entries, expected {self.num_cols}")
        y = np.zeros(self.num_rows, dtype=np.result_type(x.dtype, np.float32))
        for part in range(self.partitions.num_partitions):
            start, stop = self.partitions.bounds(part)
            ind = self.ind_slabs[part]
            val = self.val_slabs[part]
            acc = np.zeros(stop - start, dtype=y.dtype)
            for w in range(ind.shape[0]):
                # Padded slots multiply x[0] by 0.0 — redundant work in
                # place of a branch, as on the GPU.
                acc += val[w] * x[ind[w]]
            y[start:stop] = acc
        return y

    def spmv_batch(self, x: np.ndarray) -> np.ndarray:
        """Coalesced-style multi-RHS SpMV for an ``(num_cols, S)`` slab.

        Each ELL column slot now updates an ``(rows, S)`` accumulator,
        so the padded layout is streamed once for all ``S`` right-hand
        sides.  Column ``j`` is bit-identical to ``spmv(x[:, j])``.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"expected an (num_cols, S) slab, got shape {x.shape}")
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} rows, expected {self.num_cols}")
        y = np.zeros(
            (self.num_rows, x.shape[1]), dtype=np.result_type(x.dtype, np.float32)
        )
        for part in range(self.partitions.num_partitions):
            start, stop = self.partitions.bounds(part)
            ind = self.ind_slabs[part]
            val = self.val_slabs[part]
            acc = np.zeros((stop - start, x.shape[1]), dtype=y.dtype)
            for w in range(ind.shape[0]):
                acc += val[w][:, None] * x[ind[w]]
            y[start:stop] = acc
        return y


def build_ell(matrix: CSRMatrix, partition_size: int) -> ELLPartitioned:
    """Convert a CSR matrix into partition-padded column-major ELL.

    The slabs inherit the matrix's value-storage dtype, so a
    ``float64`` matrix yields a full double-precision ELL layout.
    """
    parts = RowPartitions(matrix.num_rows, partition_size)
    widths = np.zeros(parts.num_partitions, dtype=np.int64)
    ind_slabs: list[np.ndarray] = []
    val_slabs: list[np.ndarray] = []
    row_nnz = matrix.row_nnz()
    for part in range(parts.num_partitions):
        start, stop = parts.bounds(part)
        nrows = stop - start
        width = int(row_nnz[start:stop].max()) if nrows else 0
        widths[part] = width
        ind = np.zeros((width, nrows), dtype=np.int32)
        val = np.zeros((width, nrows), dtype=matrix.val.dtype)
        for j, row in enumerate(range(start, stop)):
            lo, hi = matrix.displ[row], matrix.displ[row + 1]
            k = hi - lo
            ind[:k, j] = matrix.ind[lo:hi]
            val[:k, j] = matrix.val[lo:hi]
        ind_slabs.append(ind)
        val_slabs.append(val)
    return ELLPartitioned(
        partitions=parts,
        widths=widths,
        ind_slabs=ind_slabs,
        val_slabs=val_slabs,
        num_cols=matrix.num_cols,
    )
