"""Multi-stage input buffering (paper Section 3.3, Listing 3).

For each row partition, the distinct input elements it gathers are
collected (in domain order, so Hilbert locality carries over), split
into *stages* of at most one buffer's worth, and the partition's
nonzeros are regrouped by stage.  At execution time each stage is
explicitly copied from the input vector into a small buffer
(``input[i] = x[map[start + i]]``) and the stage's nonzeros then gather
from the buffer with **16-bit** local indices instead of 32-bit global
ones — the 25 % regular-bandwidth saving of Section 3.3.5.

Data structures follow Listing 3 exactly:

* ``partdispl`` — stage ranges per partition;
* ``stagedispl`` / ``stagenz`` — per-stage offsets into ``map``;
* ``map`` — global input indices to stage;
* ``displ`` — nonzero offsets indexed by ``stage * partsize + j``
  (row ``j`` within the partition);
* ``ind`` (uint16) / ``val`` — buffer-local indices and values in the
  stage-grouped order.

Two kernels are provided: :meth:`BufferedMatrix.spmv` walks
partition/stage/row exactly like Listing 3 (used in tests and the cache
simulator), and :meth:`BufferedMatrix.spmv_vectorized` evaluates the
identical dataflow with whole-array numpy operations (used by the
solvers and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix, csr_row_sums
from .partition import RowPartitions

__all__ = [
    "BufferedMatrix",
    "build_buffered",
    "validate_buffer_bytes",
    "BYTES_PER_INPUT_ELEMENT",
]

#: Input elements are float32.
BYTES_PER_INPUT_ELEMENT = 4

#: uint16 buffer addressing caps the buffer at 2^16 elements = 256 KB,
#: exactly the limit stated in paper Section 3.3.5.
_MAX_BUFFER_ELEMENTS = 1 << 16


def validate_buffer_bytes(buffer_bytes: int) -> int:
    """Validate a buffered-kernel capacity, returning the element count.

    Shared by :func:`build_buffered` and ``OperatorConfig`` so an
    out-of-range capacity fails at config construction, not after
    tracing has already been paid for.  The capacity must be a whole
    number of float32 elements — a non-multiple of 4 would silently
    floor (30 KB + 3 B behaving as 30 KB), so it is rejected instead.
    """
    if buffer_bytes % BYTES_PER_INPUT_ELEMENT:
        raise ValueError(
            f"buffer_bytes must be a multiple of {BYTES_PER_INPUT_ELEMENT} "
            f"(float32 elements), got {buffer_bytes}"
        )
    buffer_elements = buffer_bytes // BYTES_PER_INPUT_ELEMENT
    if buffer_elements < 1:
        raise ValueError(f"buffer too small: {buffer_bytes} bytes")
    if buffer_elements > _MAX_BUFFER_ELEMENTS:
        raise ValueError(
            f"buffer of {buffer_bytes} bytes exceeds 16-bit addressing "
            f"({_MAX_BUFFER_ELEMENTS * BYTES_PER_INPUT_ELEMENT} bytes max)"
        )
    return buffer_elements


@dataclass
class BufferedMatrix:
    """A CSR matrix re-laid-out for multi-stage input buffering."""

    partitions: RowPartitions
    buffer_elements: int
    partdispl: np.ndarray  # (numparts + 1,) stage ranges
    stagedispl: np.ndarray  # (numstages + 1,) offsets into map
    map: np.ndarray  # (sum stagenz,) int32 global input indices
    displ: np.ndarray  # (numstages * partsize + 1,) nonzero offsets
    ind: np.ndarray  # (nnz,) uint16 buffer-local indices
    val: np.ndarray  # (nnz,) values (float32, or float64 on the fp64 path)
    num_cols: int

    # -- properties ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.partitions.num_rows

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        return int(self.ind.shape[0])

    @property
    def num_stages(self) -> int:
        return self.stagedispl.shape[0] - 1

    @property
    def buffer_bytes(self) -> int:
        """Configured buffer capacity in bytes."""
        return self.buffer_elements * BYTES_PER_INPUT_ELEMENT

    def stages_per_partition(self) -> np.ndarray:
        """Stage count of each partition (paper Fig. 6(b))."""
        return np.diff(self.partdispl)

    # -- persistence ---------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the layout fields only, never the lazy index plan.

        ``_vector_plan`` caches derived index arrays on the instance;
        carrying that cache through pickling (the plan cache, the
        process-pool backend) would persist megabytes of redundant
        state and could go stale if ``displ``/``ind`` are replaced
        after a load.  It is rebuilt lazily on first use instead.
        """
        state = dict(self.__dict__)
        state.pop("_plan", None)
        return state

    def __setstate__(self, state: dict) -> None:
        state.pop("_plan", None)  # defensive: drop plans from old pickles
        self.__dict__.update(state)

    def map_bytes(self) -> int:
        """Extra memory traffic for staging: the ``map`` reads."""
        return int(self.map.shape[0]) * 4

    def regular_bytes_per_fma(self) -> float:
        """Regular-stream bytes per FMA: value bytes + 2 B uint16 index.

        6 B for the default float32 values (paper Section 3.3.5), 10 B
        on the opt-in float64 path.
        """
        return float(self.val.dtype.itemsize + 2)

    # -- kernels -------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Literal rendering of paper Listing 3 (partition/stage loops).

        Slow (Python-level loops over partitions and stages) but
        structurally identical to the C kernel; the cache simulator
        replays exactly this access pattern.
        """
        x = np.asarray(x)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} entries, expected {self.num_cols}")
        partsize = self.partitions.partition_size
        y = np.zeros(self.num_rows, dtype=np.result_type(x.dtype, np.float32))
        for part in range(self.partitions.num_partitions):
            row0, row1 = self.partitions.bounds(part)
            output = np.zeros(partsize, dtype=y.dtype)
            for stage in range(self.partdispl[part], self.partdispl[part + 1]):
                s0, s1 = self.stagedispl[stage], self.stagedispl[stage + 1]
                buffer = x[self.map[s0:s1]]  # explicit staging gather
                base = stage * partsize
                d = self.displ[base : base + partsize + 1]
                prod = self.val[d[0] : d[-1]] * buffer[self.ind[d[0] : d[-1]]]
                output += csr_row_sums(prod, d - d[0], partsize)
            y[row0:row1] += output[: row1 - row0]
        return y

    def _vector_plan(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index arrays shared by the vectorized kernels, built lazily.

        Returns ``(global_ind, keep, rows_kept)``: the buffer-global
        index of each nonzero, the mask of real (non-padding) row
        slots, and the output row of each kept slot.  Cached on the
        instance — the batched kernel amortizes this across all RHS
        columns of every call.
        """
        plan = getattr(self, "_plan", None)
        if plan is None:
            partsize = self.partitions.partition_size
            num_stages = self.num_stages
            stage_of_slot = np.repeat(np.arange(num_stages, dtype=np.int64), partsize)
            slot_nnz = np.diff(self.displ)
            stage_of_nnz = np.repeat(stage_of_slot, slot_nnz)
            global_ind = self.stagedispl[stage_of_nnz] + self.ind
            # Row j of partition p accumulates its slot in every stage.
            part_of_stage = np.repeat(
                np.arange(self.partitions.num_partitions, dtype=np.int64),
                np.diff(self.partdispl),
            )
            rows_of_slot = (
                part_of_stage.repeat(partsize) * partsize
                + np.tile(np.arange(partsize, dtype=np.int64), num_stages)
            )
            keep = rows_of_slot < self.num_rows
            plan = (global_ind, keep, rows_of_slot[keep])
            self._plan = plan
        return plan

    def spmv_vectorized(self, x: np.ndarray) -> np.ndarray:
        """Whole-array evaluation of the same staged dataflow.

        Gathers ``x`` through ``map`` once (the concatenation of all
        stage buffers), forms all products, and row-reduces with the
        stage-grouped ``displ``.  Numerically identical to
        :meth:`spmv`.
        """
        x = np.asarray(x)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} entries, expected {self.num_cols}")
        staged = x[self.map]  # all stage buffers back to back
        # Global buffer-index of each nonzero: stage offset + local uint16.
        global_ind, keep, rows_kept = self._vector_plan()
        prod = self.val * staged[global_ind]
        slot_sums = csr_row_sums(
            prod, self.displ, self.num_stages * self.partitions.partition_size
        )
        y = np.zeros(self.num_rows, dtype=np.result_type(x.dtype, np.float32))
        np.add.at(y, rows_kept, slot_sums[keep])
        return y

    def partition_slice(self, part0: int, part1: int) -> "BufferedMatrix":
        """View-based sub-layout of the partition range ``[part0, part1)``.

        The stage-grouped arrays of a contiguous partition range are
        themselves contiguous, so the slice shares ``map``/``ind``/
        ``val`` storage with the parent; only the small offset arrays
        are rebased copies.  Running any kernel on the slice produces
        exactly the rows ``[part0 * partsize, min(part1 * partsize,
        num_rows))`` of the parent's result, bit-identically — the
        contract the partition-parallel backend is built on.
        """
        if not 0 <= part0 <= part1 <= self.partitions.num_partitions:
            raise ValueError(
                f"partition range [{part0}, {part1}) outside "
                f"[0, {self.partitions.num_partitions})"
            )
        partsize = self.partitions.partition_size
        s0, s1 = int(self.partdispl[part0]), int(self.partdispl[part1])
        m0, m1 = int(self.stagedispl[s0]), int(self.stagedispl[s1])
        d0 = int(self.displ[s0 * partsize])
        d1 = int(self.displ[s1 * partsize])
        row0 = part0 * partsize
        row1 = min(part1 * partsize, self.num_rows)
        return BufferedMatrix(
            partitions=RowPartitions(row1 - row0, partsize),
            buffer_elements=self.buffer_elements,
            partdispl=self.partdispl[part0 : part1 + 1] - s0,
            stagedispl=self.stagedispl[s0 : s1 + 1] - m0,
            map=self.map[m0:m1],
            displ=self.displ[s0 * partsize : s1 * partsize + 1] - d0,
            ind=self.ind[d0:d1],
            val=self.val[d0:d1],
            num_cols=self.num_cols,
        )

    def spmv_batch(self, x: np.ndarray) -> np.ndarray:
        """Staged multi-RHS SpMV for an ``(num_cols, S)`` slab.

        The stage/index bookkeeping of :meth:`spmv_vectorized` is paid
        once per call (and the index plan is cached across calls) while
        the gathers and reductions run over all ``S`` columns at once.
        Column ``j`` is bit-identical to ``spmv_vectorized(x[:, j])``.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"expected an (num_cols, S) slab, got shape {x.shape}")
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} rows, expected {self.num_cols}")
        staged = x[self.map]  # (map length, S) stage buffers back to back
        global_ind, keep, rows_kept = self._vector_plan()
        prod = self.val[:, None] * staged[global_ind]
        slot_sums = csr_row_sums(
            prod, self.displ, self.num_stages * self.partitions.partition_size
        )
        y = np.zeros(
            (self.num_rows, x.shape[1]), dtype=np.result_type(x.dtype, np.float32)
        )
        np.add.at(y, rows_kept, slot_sums[keep])
        return y


def build_buffered(
    matrix: CSRMatrix,
    partition_size: int,
    buffer_bytes: int = 32 * 1024,
) -> BufferedMatrix:
    """Build the multi-stage buffered layout of ``matrix``.

    Parameters
    ----------
    matrix:
        CSR matrix whose columns are already in the desired domain
        order (stages follow that order, so Hilbert ordering must be
        applied *before* buffering — the paper applies the
        optimizations in that order for the same reason).
    partition_size:
        Rows per partition (thread block size).
    buffer_bytes:
        Buffer capacity; at most 256 KB because of uint16 addressing.
    """
    buffer_elements = validate_buffer_bytes(buffer_bytes)
    parts = RowPartitions(matrix.num_rows, partition_size)

    partdispl = np.zeros(parts.num_partitions + 1, dtype=np.int64)
    stage_sizes: list[int] = []
    map_parts: list[np.ndarray] = []
    displ_parts: list[np.ndarray] = []
    ind_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []

    for part in range(parts.num_partitions):
        row0, row1 = parts.bounds(part)
        lo, hi = matrix.displ[row0], matrix.displ[row1]
        cols = matrix.ind[lo:hi]
        vals = matrix.val[lo:hi]
        rows_local = np.repeat(
            np.arange(row1 - row0, dtype=np.int64), np.diff(matrix.displ[row0 : row1 + 1])
        )
        # Distinct inputs of the partition, in domain (ascending) order.
        distinct, inverse = np.unique(cols, return_inverse=True)
        num_stages = max(1, -(-distinct.shape[0] // buffer_elements))
        stage_of_nnz = inverse // buffer_elements
        local_ind = (inverse % buffer_elements).astype(np.uint16)

        # Group this partition's nonzeros by (stage, row), keeping the
        # within-row domain order.
        order = np.lexsort((np.arange(cols.shape[0]), rows_local, stage_of_nnz))
        sorted_stage = stage_of_nnz[order]
        sorted_rows = rows_local[order]
        ind_parts.append(local_ind[order])
        val_parts.append(vals[order])

        # Per-(stage, row-slot) counts -> displ block for this partition.
        partsize = parts.partition_size
        slot = sorted_stage * partsize + sorted_rows
        counts = np.bincount(slot, minlength=num_stages * partsize)
        displ_parts.append(counts.astype(np.int64))

        # Stage buffers: consecutive chunks of the distinct-input list.
        for s in range(num_stages):
            chunk = distinct[s * buffer_elements : (s + 1) * buffer_elements]
            map_parts.append(chunk.astype(np.int32))
            stage_sizes.append(chunk.shape[0])
        partdispl[part + 1] = partdispl[part] + num_stages

    stagedispl = np.zeros(len(stage_sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(stage_sizes, dtype=np.int64), out=stagedispl[1:])
    all_counts = (
        np.concatenate(displ_parts) if displ_parts else np.empty(0, dtype=np.int64)
    )
    displ = np.zeros(all_counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(all_counts, out=displ[1:])

    return BufferedMatrix(
        partitions=parts,
        buffer_elements=buffer_elements,
        partdispl=partdispl,
        stagedispl=stagedispl,
        map=np.concatenate(map_parts) if map_parts else np.empty(0, dtype=np.int32),
        displ=displ,
        ind=np.concatenate(ind_parts) if ind_parts else np.empty(0, dtype=np.uint16),
        val=np.concatenate(val_parts)
        if val_parts
        else np.empty(0, dtype=matrix.val.dtype),
        num_cols=matrix.num_cols,
    )
