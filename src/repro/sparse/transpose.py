"""Sparse transposition for building the backprojection matrix.

MemXCT derives ``A^T`` from ``A`` once during preprocessing.  The paper
(Section 3.5.1) insists on a *scan-based* transposition that preserves
the relative order of nonzeros — within each output row (a former
column), entries appear in increasing former-row order — because an
atomic-based transposition randomizes that order and destroys the
locality that the Hilbert ordering established.

``scan_transpose`` implements the order-preserving scheme (a stable
counting sort by column, the vectorized equivalent of Wang et al.'s
scan algorithm, paper ref [22]).  ``randomized_transpose`` emulates the
atomic scheme's arbitrary intra-row order and exists so the benchmarks
can measure what that loss of locality costs.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["scan_transpose", "randomized_transpose"]


def _transpose_with_order(matrix: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Build the transpose given a permutation grouping nonzeros by column."""
    counts = np.bincount(matrix.ind, minlength=matrix.num_cols)
    displ = np.zeros(matrix.num_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=displ[1:])
    row_ids = np.repeat(
        np.arange(matrix.num_rows, dtype=np.int64), np.diff(matrix.displ)
    )
    return CSRMatrix(
        displ=displ,
        ind=row_ids[order].astype(np.int32),
        val=matrix.val[order],
        num_cols=matrix.num_rows,
        value_dtype=matrix.value_dtype,
    )


def scan_transpose(matrix: CSRMatrix) -> CSRMatrix:
    """Order-preserving (scan-based) transposition of a CSR matrix.

    The nonzeros of each output row are sorted by their original row
    index, exactly as a serial scan over the input produces them.
    """
    order = np.argsort(matrix.ind, kind="stable")
    return _transpose_with_order(matrix, order)


def randomized_transpose(matrix: CSRMatrix, seed: int = 0) -> CSRMatrix:
    """Transposition with randomized intra-row nonzero order.

    Numerically equivalent to :func:`scan_transpose` (same matrix), but
    the nonzeros within each output row land in an arbitrary order, as
    they would under a concurrent atomic-based construction.  Used only
    to quantify the locality penalty in the benchmarks.
    """
    rng = np.random.default_rng(seed)
    keys = rng.random(matrix.nnz)
    order = np.lexsort((keys, matrix.ind))
    return _transpose_with_order(matrix, order)
