"""CSR sparse-matrix container and the baseline MemXCT SpMV kernel.

This mirrors the paper's Listing 2: a gather-only row-parallel SpMV

    for i in rows: y[i] = sum_j val[j] * x[ind[j]]

with the regular streams ``ind``/``val`` and the irregular gather
``x[ind[j]]``.  The Python kernel vectorizes the row loop with
``np.add.reduceat`` over the nonzero products, which is the idiomatic
numpy rendering of the same dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["CSRMatrix", "csr_row_sums"]


def csr_row_sums(values: np.ndarray, displ: np.ndarray, num_rows: int) -> np.ndarray:
    """Per-row sums of a CSR-ordered value stream.

    ``values`` holds the per-nonzero products, ``displ`` the row offsets
    (length ``num_rows + 1``).  Empty rows sum to zero; ``reduceat``
    alone would mis-handle them, so they are masked out explicitly.

    ``values`` may also be an ``(nnz, S)`` slab — one column per
    right-hand side — in which case the result is ``(num_rows, S)``;
    each column is reduced in exactly the same order as the 1D case, so
    the batched result is bit-identical per column.
    """
    out = np.zeros((num_rows,) + values.shape[1:], dtype=values.dtype)
    if values.shape[0] == 0 or num_rows == 0:
        return out
    starts = displ[:-1]
    nonempty = starts < displ[1:]
    if not nonempty.any():
        return out
    out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


@dataclass
class CSRMatrix:
    """Compressed-sparse-row matrix with explicit displ/ind/val arrays.

    The arrays correspond one-to-one to Listing 2 of the paper:
    ``displ`` (row offsets, ``int64``), ``ind`` (column indices,
    ``int32``) and ``val`` (intersection lengths, ``float32`` by
    default).  ``value_dtype`` opts a matrix into ``float64`` value
    storage — the full double-precision reference path; construction
    coerces ``val`` to exactly this dtype, so a matrix can never carry
    values wider than its declared precision by accident.
    """

    displ: np.ndarray
    ind: np.ndarray
    val: np.ndarray
    num_cols: int
    value_dtype: str = "float32"

    def __post_init__(self) -> None:
        vdtype = np.dtype(self.value_dtype)
        if vdtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"value_dtype must be float32 or float64, got {self.value_dtype!r}"
            )
        self.value_dtype = vdtype.name
        self.displ = np.asarray(self.displ, dtype=np.int64)
        self.ind = np.asarray(self.ind, dtype=np.int32)
        self.val = np.asarray(self.val, dtype=vdtype)
        if self.displ.ndim != 1 or self.displ.shape[0] < 1:
            raise ValueError("displ must be a 1D offsets array")
        if self.ind.shape != self.val.shape:
            raise ValueError("ind and val must have identical shapes")
        if self.displ[-1] != self.ind.shape[0]:
            raise ValueError("displ[-1] must equal nnz")
        if self.num_cols < 0:
            raise ValueError("num_cols must be non-negative")

    # -- construction -------------------------------------------------

    @classmethod
    def from_scipy(
        cls, matrix: sp.spmatrix, dtype: str | np.dtype = "float32"
    ) -> "CSRMatrix":
        """Convert any scipy sparse matrix (copies into our dtypes).

        ``dtype`` selects the value-storage precision (``float32``
        default, ``float64`` for the double-precision reference path).
        """
        csr = sp.csr_matrix(matrix)
        csr.sum_duplicates()
        return cls(
            displ=csr.indptr.astype(np.int64),
            ind=csr.indices.astype(np.int32),
            val=csr.data,
            num_cols=csr.shape[1],
            value_dtype=np.dtype(dtype).name,
        )

    def astype(self, dtype: str | np.dtype) -> "CSRMatrix":
        """Copy of this matrix with values stored in ``dtype``."""
        return CSRMatrix(
            displ=self.displ,
            ind=self.ind,
            val=self.val,
            num_cols=self.num_cols,
            value_dtype=np.dtype(dtype).name,
        )

    def to_scipy(self) -> sp.csr_matrix:
        """View as a scipy CSR matrix (shares the arrays)."""
        return sp.csr_matrix(
            (self.val, self.ind, self.displ), shape=self.shape, copy=False
        )

    # -- properties ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.displ.shape[0] - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        return int(self.ind.shape[0])

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros in each row."""
        return np.diff(self.displ)

    # -- kernels -------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Baseline gather-only SpMV (paper Listing 2): ``y = A x``."""
        x = np.asarray(x)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} entries, expected {self.num_cols}")
        prod = self.val * x[self.ind]
        return csr_row_sums(prod, self.displ, self.num_rows)

    def spmv_batch(self, x: np.ndarray) -> np.ndarray:
        """Multi-RHS SpMV: ``Y = A X`` for an ``(num_cols, S)`` slab.

        One pass over the regular streams (``ind``/``val``) drives all
        ``S`` right-hand sides; each irregular gather ``X[ind[j], :]``
        pulls ``S`` contiguous elements, amortizing the random access.
        Column ``j`` of the result is bit-identical to ``spmv(x[:, j])``.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"expected an (num_cols, S) slab, got shape {x.shape}")
        if x.shape[0] != self.num_cols:
            raise ValueError(f"x has {x.shape[0]} rows, expected {self.num_cols}")
        prod = self.val[:, None] * x[self.ind]
        return csr_row_sums(prod, self.displ, self.num_rows)

    def row_sums(self) -> np.ndarray:
        """Sum of values per row (used by SIRT scaling)."""
        return csr_row_sums(self.val, self.displ, self.num_rows)

    def col_sums(self) -> np.ndarray:
        """Sum of values per column (used by SIRT scaling)."""
        out = np.zeros(self.num_cols, dtype=self.val.dtype)
        np.add.at(out, self.ind, self.val)
        return out

    def permute(self, row_perm: np.ndarray | None, col_rank: np.ndarray | None) -> "CSRMatrix":
        """Reindex rows and/or columns.

        ``row_perm[k]`` is the old row placed at new row ``k`` (curve
        order to storage order; any subset or repetition of old rows is
        allowed — row subsets are how SGD minibatch operators are
        built); ``col_rank[old]`` is the new index of an old column and
        must be a bijection on ``[0, num_cols)`` — anything else would
        silently merge or drop columns while ``num_cols`` stays
        unchanged, producing a corrupt matrix.  This is how domain
        orderings are applied to the traced matrix without re-tracing.
        """
        displ, ind, val = self.displ, self.ind, self.val
        if row_perm is not None:
            row_perm = np.asarray(row_perm, dtype=np.int64)
            if row_perm.ndim != 1:
                raise ValueError(f"row_perm must be 1D, got shape {row_perm.shape}")
            if row_perm.size and (
                row_perm.min() < 0 or row_perm.max() >= self.num_rows
            ):
                raise ValueError(
                    f"row_perm indexes rows outside [0, {self.num_rows})"
                )
            counts = np.diff(displ)[row_perm]
            new_displ = np.zeros(len(row_perm) + 1, dtype=np.int64)
            np.cumsum(counts, out=new_displ[1:])
            gather = _concat_ranges(displ[row_perm], counts)
            ind = ind[gather]
            val = val[gather]
            displ = new_displ
        if col_rank is not None:
            col_rank = np.asarray(col_rank, dtype=np.int64)
            if col_rank.shape != (self.num_cols,):
                raise ValueError(
                    f"col_rank must have shape ({self.num_cols},), "
                    f"got {col_rank.shape}"
                )
            if self.num_cols:
                if col_rank.min() < 0 or col_rank.max() >= self.num_cols:
                    raise ValueError(
                        f"col_rank maps columns outside [0, {self.num_cols})"
                    )
                if np.bincount(col_rank, minlength=self.num_cols).max() > 1:
                    raise ValueError(
                        "col_rank is not injective: two old columns map to "
                        "the same new index"
                    )
            ind = col_rank[ind].astype(np.int32)
        return CSRMatrix(
            displ=displ,
            ind=ind,
            val=val,
            num_cols=self.num_cols,
            value_dtype=self.value_dtype,
        )

    def row_block(self, row0: int, row1: int) -> "CSRMatrix":
        """View-based sub-matrix of the contiguous row range ``[row0, row1)``.

        ``ind``/``val`` are views into this matrix's arrays (only the
        rebased ``displ`` is a fresh allocation), so worker-owned row
        blocks of the parallel backend cost O(rows) memory, not O(nnz).
        """
        if not 0 <= row0 <= row1 <= self.num_rows:
            raise ValueError(
                f"row range [{row0}, {row1}) outside [0, {self.num_rows})"
            )
        lo, hi = self.displ[row0], self.displ[row1]
        return CSRMatrix(
            displ=self.displ[row0 : row1 + 1] - lo,
            ind=self.ind[lo:hi],
            val=self.val[lo:hi],
            num_cols=self.num_cols,
            value_dtype=self.value_dtype,
        )

    def sort_rows_by_index(self) -> "CSRMatrix":
        """Sort the nonzeros of each row by column index (ascending).

        Keeps the irregular gathers of each row monotone in the ordered
        domain — required before stage assignment in the buffered
        kernel and beneficial for cache behaviour.
        """
        nrows = self.num_rows
        row_ids = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(self.displ))
        order = np.lexsort((self.ind, row_ids))
        return CSRMatrix(
            displ=self.displ.copy(),
            ind=self.ind[order],
            val=self.val[order],
            num_cols=self.num_cols,
            value_dtype=self.value_dtype,
        )


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of ``concat(arange(s, s + c) for s, c in zip(starts, counts))``.

    Vectorized: total length ``counts.sum()``.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    nonzero = counts > 0
    first_positions = (ends - counts)[nonzero]
    out[first_positions[0]] = starts[nonzero][0]
    if first_positions.shape[0] > 1:
        prev_end_value = starts[nonzero][:-1] + counts[nonzero][:-1] - 1
        out[first_positions[1:]] = starts[nonzero][1:] - prev_end_value
    return np.cumsum(out)
