"""Row partitioning of SpMV (paper Section 3.1.2).

The outer SpMV loop is split into fixed-size row partitions: OpenMP
threads on KNL process many partitions each, CUDA thread blocks on GPU
process one partition each.  Partition locality — each partition's rows
forming a connected 2D region — comes from the domain ordering, not
from this module; here we only cut the ordered row range into blocks
and expose per-partition footprint statistics (used by Fig. 6 and the
performance model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = [
    "RowPartitions",
    "partition_rows",
    "partition_input_footprints",
    "partition_data_reuse",
]


@dataclass(frozen=True)
class RowPartitions:
    """Fixed-size partitioning of ``num_rows`` rows.

    Attributes
    ----------
    num_rows:
        Total row count.
    partition_size:
        Rows per partition (the paper's ``partsize`` / block size); the
        final partition may be shorter.
    """

    num_rows: int
    partition_size: int

    def __post_init__(self) -> None:
        if self.partition_size <= 0:
            raise ValueError(f"partition size must be positive, got {self.partition_size}")
        if self.num_rows < 0:
            raise ValueError(f"row count must be non-negative, got {self.num_rows}")

    @property
    def num_partitions(self) -> int:
        return -(-self.num_rows // self.partition_size) if self.num_rows else 0

    def bounds(self, part: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` of partition ``part``."""
        if not 0 <= part < max(self.num_partitions, 1):
            raise IndexError(f"partition {part} out of range")
        start = part * self.partition_size
        return start, min(start + self.partition_size, self.num_rows)

    def all_bounds(self) -> np.ndarray:
        """Array of shape ``(num_partitions, 2)`` with all row ranges."""
        starts = np.arange(self.num_partitions, dtype=np.int64) * self.partition_size
        stops = np.minimum(starts + self.partition_size, self.num_rows)
        return np.stack([starts, stops], axis=1)


def partition_rows(matrix: CSRMatrix, partition_size: int) -> RowPartitions:
    """Partition the rows of ``matrix`` into blocks of ``partition_size``."""
    return RowPartitions(num_rows=matrix.num_rows, partition_size=partition_size)


def partition_input_footprints(
    matrix: CSRMatrix, partitions: RowPartitions
) -> list[np.ndarray]:
    """Distinct input (column) indices touched by each partition.

    The size of each footprint relative to the partition's nnz is the
    data-reuse factor shown in paper Fig. 6(a); the footprints are also
    what the multi-stage buffer stages through L1.
    """
    footprints: list[np.ndarray] = []
    for part in range(partitions.num_partitions):
        start, stop = partitions.bounds(part)
        cols = matrix.ind[matrix.displ[start] : matrix.displ[stop]]
        footprints.append(np.unique(cols))
    return footprints


def partition_data_reuse(matrix: CSRMatrix, partitions: RowPartitions) -> np.ndarray:
    """Average data reuse per partition: nnz / distinct inputs.

    Paper Fig. 6(a) reports 46.63 (tomogram partition) and 64.73
    (sinogram partition) for 64^2 partitions of 256^2 domains.
    """
    reuse = np.zeros(partitions.num_partitions)
    for part in range(partitions.num_partitions):
        start, stop = partitions.bounds(part)
        lo, hi = matrix.displ[start], matrix.displ[stop]
        cols = matrix.ind[lo:hi]
        distinct = np.unique(cols).shape[0]
        reuse[part] = (hi - lo) / distinct if distinct else 0.0
    return reuse
