"""Sparse kernels: CSR/ELL storage, scan transposition, row partitions,
and the multi-stage input-buffered SpMV (paper Sections 3.1, 3.3, 3.5.1)."""

from .buffering import (
    BYTES_PER_INPUT_ELEMENT,
    BufferedMatrix,
    build_buffered,
    validate_buffer_bytes,
)
from .csr import CSRMatrix, csr_row_sums
from .ell import ELLPartitioned, build_ell
from .partition import (
    RowPartitions,
    partition_data_reuse,
    partition_input_footprints,
    partition_rows,
)
from .transpose import randomized_transpose, scan_transpose

__all__ = [
    "BYTES_PER_INPUT_ELEMENT",
    "BufferedMatrix",
    "build_buffered",
    "validate_buffer_bytes",
    "CSRMatrix",
    "csr_row_sums",
    "ELLPartitioned",
    "build_ell",
    "RowPartitions",
    "partition_data_reuse",
    "partition_input_footprints",
    "partition_rows",
    "randomized_transpose",
    "scan_transpose",
]
