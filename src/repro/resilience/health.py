"""Numerical-health monitoring for iterative solvers.

Pathological sinograms (dead detector rows, saturated channels,
photon-starved scans) can drive an iterative solve to NaN/Inf or into
sustained residual divergence — and at 30+ iterations per slice times
thousands of slices, a silent NaN is worse than a crash.  The
:class:`HealthMonitor` watches the quantities every solver already
computes per iteration (the iterate and the residual norm appended
inside the ``solver.iteration`` span) and classifies each iteration:

* **ok** — carry on;
* **rollback** — an incident occurred (NaN/Inf, or the residual has
  exceeded ``divergence_factor`` times its best value for
  ``divergence_window`` consecutive iterations) and a checkpoint is
  worth restoring with a damped step;
* **abort** — the rollback budget is exhausted (or no recovery is
  possible); the solver should stop early with a truthful
  ``stop_reason`` instead of emitting garbage.

The monitor is policy-free about *how* to roll back — CGLS restarts
the recurrence from the checkpointed iterate with a halved step scale,
SIRT halves its relaxation — it only decides *when*.  Incidents and
rollbacks are reported through the ``health.*`` obs counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import HEALTH_EVENTS, HEALTH_ROLLBACKS, add_count

__all__ = ["HealthMonitor", "HealthIncident"]


@dataclass
class HealthIncident:
    """One detected numerical-health incident."""

    iteration: int
    kind: str  # "non-finite" | "divergence"
    detail: str


@dataclass
class HealthMonitor:
    """NaN/Inf and divergence watchdog with a bounded rollback budget.

    Parameters
    ----------
    divergence_window:
        Consecutive iterations the residual must stay above the
        divergence threshold before an incident is declared.
    divergence_factor:
        Multiple of the best-seen residual norm that counts as
        "diverged".
    max_rollbacks:
        Recovery attempts before the monitor demands an abort.
    """

    divergence_window: int = 5
    divergence_factor: float = 10.0
    max_rollbacks: int = 3
    incidents: list[HealthIncident] = field(default_factory=list)
    rollbacks: int = 0
    _best_residual: float = float("inf")
    _streak: int = 0

    def observe(self, iteration: int, x: np.ndarray, residual_norm: float) -> str:
        """Classify one completed iteration: ``ok``/``rollback``/``abort``."""
        incident = self._classify(iteration, x, residual_norm)
        if incident is None:
            return "ok"
        self.incidents.append(incident)
        add_count(HEALTH_EVENTS, 1)
        if self.rollbacks >= self.max_rollbacks:
            return "abort"
        return "rollback"

    def rolled_back(self) -> None:
        """The solver actually restored a checkpoint; consume budget."""
        self.rollbacks += 1
        self._streak = 0
        add_count(HEALTH_ROLLBACKS, 1)

    @property
    def last_incident(self) -> HealthIncident | None:
        return self.incidents[-1] if self.incidents else None

    def _classify(
        self, iteration: int, x: np.ndarray, residual_norm: float
    ) -> HealthIncident | None:
        if not np.isfinite(residual_norm) or not np.all(np.isfinite(x)):
            return HealthIncident(
                iteration=iteration,
                kind="non-finite",
                detail=f"NaN/Inf in iterate or residual at iteration {iteration}",
            )
        if residual_norm < self._best_residual:
            self._best_residual = residual_norm
            self._streak = 0
            return None
        if (
            self._best_residual > 0
            and residual_norm > self.divergence_factor * self._best_residual
        ):
            self._streak += 1
            if self._streak >= self.divergence_window:
                streak, self._streak = self._streak, 0
                return HealthIncident(
                    iteration=iteration,
                    kind="divergence",
                    detail=(
                        f"residual {residual_norm:.3g} stayed above "
                        f"{self.divergence_factor:g} x best "
                        f"({self._best_residual:.3g}) for {streak} iterations"
                    ),
                )
        else:
            self._streak = 0
        return None
