"""Bounded retry-with-exponential-backoff, shared across layers.

The reliable transport (PR 3) healed transient communication faults
with a bounded retry loop whose simulated latency doubled per attempt
(``backoff_base * 2**attempt``).  The same policy is what the conveyor
reader applies to transient source-read failures and what the job
server applies to transiently failed jobs — so the schedule lives here
once, as data, instead of three hand-rolled loops.

:class:`RetryPolicy` is pure policy: it yields the backoff delays and
classifies attempts; callers decide what "transient" means and how the
waiting happens (``time.sleep`` for real services, simulated charging
for the comm model).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule: ``backoff_base * 2**attempt``.

    ``max_retries`` counts *re*-tries: a policy with ``max_retries=2``
    allows three total attempts.  ``backoff_cap`` bounds the delay so a
    deep retry never sleeps unboundedly.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.backoff_base * (2**attempt), self.backoff_cap)

    def exhausted(self, attempt: int) -> bool:
        """Whether retry ``attempt`` (0-based) exceeds the budget."""
        return attempt >= self.max_retries

    def delays(self):
        """The full backoff schedule, one delay per allowed retry."""
        return [self.delay(a) for a in range(self.max_retries)]
