"""Deterministic fault injection for the simulated communicator.

At the 4096-node scale MemXCT targets, message loss, payload
corruption, link congestion, and node failure are routine events, not
exceptions.  This module provides a *seeded, reproducible* model of
those events so the distributed layer's recovery policies can be
exercised (and regression-tested) on a laptop:

* **drop** — a point-to-point message inside a collective never
  arrives and must be re-sent;
* **corrupt** — a message arrives with flipped bits; the receive-side
  CRC-32 verify catches it and requests re-delivery;
* **delay** — a message arrives late; the transport charges simulated
  backoff time but the payload is intact;
* **crash** — a rank dies at a scheduled collective call; the
  partitioned operator redistributes its subdomains to the survivors
  (graceful degradation) and the solve continues.

Faults are drawn from a :class:`numpy.random.Generator` seeded by the
config, so a given ``(spec, seed)`` pair replays the exact same fault
sequence — chaos tests are deterministic.

Specs are compact strings for CLI/env use::

    drop=0.05,corrupt=0.02,delay=0.01,crash=1@3,seed=42,retries=10

``crash=RANK@CALL`` kills ``RANK`` at the ``CALL``-th collective on the
communicator (1-based).  ``REPRO_FAULTS`` (spec) and
``REPRO_FAULT_SEED`` (default seed) activate injection ambiently so an
unmodified test suite can run under chaos.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

import numpy as np

from ..obs import (
    FAULT_CORRUPTIONS,
    FAULT_CRASHES,
    FAULT_DELAYS,
    FAULT_DROPS,
    FAULT_RETRIES,
    add_count,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RankCrashError",
    "CommDeliveryError",
    "parse_fault_spec",
    "payload_crc",
]


class RankCrashError(RuntimeError):
    """A simulated rank died; the collective cannot complete as-is."""

    def __init__(self, ranks):
        self.ranks = sorted(int(r) for r in ranks)
        super().__init__(f"simulated rank crash: {self.ranks}")


class CommDeliveryError(RuntimeError):
    """A message could not be delivered within the retry budget."""


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and schedule of the injected faults.

    ``drop`` / ``corrupt`` / ``delay`` are per-message probabilities in
    ``[0, 1)``; ``crashes`` maps a collective-call index (1-based) to
    the rank that dies there.  ``max_retries`` bounds the reliable
    transport's re-delivery attempts per message; ``backoff_base`` is
    the simulated first-retry latency (doubled per attempt).
    """

    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    crashes: tuple[tuple[int, int], ...] = ()  # (call_index, rank)
    seed: int = 0
    max_retries: int = 10
    backoff_base: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("drop", "corrupt", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"fault probability {name}={p} must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    @property
    def any_faults(self) -> bool:
        return bool(self.drop or self.corrupt or self.delay or self.crashes)

    @classmethod
    def parse(cls, spec: str, default_seed: int | None = None) -> "FaultConfig":
        """Build a config from a ``key=value,...`` spec string."""
        return parse_fault_spec(spec, default_seed=default_seed)

    @classmethod
    def from_env(cls) -> "FaultConfig | None":
        """Ambient config from ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``.

        Returns ``None`` when ``REPRO_FAULTS`` is unset or empty, so
        normal runs pay nothing.
        """
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        env_seed = os.environ.get("REPRO_FAULT_SEED")
        return parse_fault_spec(
            spec, default_seed=int(env_seed) if env_seed else None
        )


def parse_fault_spec(spec: str, default_seed: int | None = None) -> FaultConfig:
    """Parse ``drop=0.05,corrupt=0.02,crash=1@3,seed=42`` into a config."""
    kwargs: dict = {}
    crashes: list[tuple[int, int]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad fault spec item {item!r}: expected key=value "
                "(e.g. drop=0.05 or crash=1@3)"
            )
        key, _, value = item.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key in ("drop", "corrupt", "delay"):
            kwargs[key] = float(value)
        elif key == "crash":
            rank_s, sep, call_s = value.partition("@")
            rank = int(rank_s)
            call = int(call_s) if sep else 1
            if call < 1:
                raise ValueError(f"crash call index must be >= 1, got {call}")
            crashes.append((call, rank))
        elif key == "seed":
            kwargs["seed"] = int(value)
        elif key in ("retries", "max_retries"):
            kwargs["max_retries"] = int(value)
        elif key in ("backoff", "backoff_base"):
            kwargs["backoff_base"] = float(value)
        else:
            raise ValueError(
                f"unknown fault spec key {key!r}; expected one of "
                "drop/corrupt/delay/crash/seed/retries/backoff"
            )
    if "seed" not in kwargs and default_seed is not None:
        kwargs["seed"] = default_seed
    return FaultConfig(crashes=tuple(sorted(crashes)), **kwargs)


@dataclass
class FaultStats:
    """Running totals of what the injector did and what was healed."""

    drops: int = 0
    corruptions: int = 0
    delays: int = 0
    crashes: int = 0
    retries: int = 0
    recoveries: int = 0
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "drops": self.drops,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "crashes": self.crashes,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "backoff_seconds": self.backoff_seconds,
        }


class FaultInjector:
    """Draws per-message faults and tracks crashed ranks.

    One injector is attached to one (logical) communicator; its RNG
    stream advances deterministically with the sequence of collectives
    executed, so identical runs replay identical faults.  The injector
    survives graceful degradation: after a crash is absorbed the same
    instance (same RNG position, same schedule) drives the rebuilt
    communicator.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.stats = FaultStats()
        self.call_index = 0  # collectives started, 1-based after begin
        self._dead: set[int] = set()

    # -- crash schedule -------------------------------------------------

    def begin_collective(self) -> None:
        """Advance the collective clock; fire scheduled crashes."""
        self.call_index += 1
        for call, rank in self.config.crashes:
            if call == self.call_index and rank not in self._dead:
                self._dead.add(rank)
                self.stats.crashes += 1
                add_count(FAULT_CRASHES, 1)

    def dead_ranks(self) -> set[int]:
        return set(self._dead)

    def consume_crashes(self) -> set[int]:
        """Hand the dead set to the degradation path and clear it.

        After the partitioned operator redistributes a dead rank's
        subdomains, the survivors renumber — the old rank ids are
        meaningless, so the set is reset.
        """
        dead, self._dead = self._dead, set()
        return dead

    def record_recovery(self, n: int = 1) -> None:
        self.stats.recoveries += n

    # -- per-message faults ---------------------------------------------

    def draw(self, sender: int, receiver: int) -> str:
        """Fault outcome for one message: ok/drop/corrupt/delay.

        Local copies (``sender == receiver``) never fault — they are
        memcpys, not network traffic.
        """
        if sender == receiver:
            return "ok"
        cfg = self.config
        if not (cfg.drop or cfg.corrupt or cfg.delay):
            return "ok"
        u = float(self.rng.random())
        if u < cfg.drop:
            self.stats.drops += 1
            add_count(FAULT_DROPS, 1)
            return "drop"
        if u < cfg.drop + cfg.corrupt:
            self.stats.corruptions += 1
            add_count(FAULT_CORRUPTIONS, 1)
            return "corrupt"
        if u < cfg.drop + cfg.corrupt + cfg.delay:
            self.stats.delays += 1
            add_count(FAULT_DELAYS, 1)
            return "delay"
        return "ok"

    def corrupt_payload(self, payload: np.ndarray) -> np.ndarray:
        """A copy of ``payload`` with one byte flipped (never a no-op)."""
        arr = np.asarray(payload)
        if arr.nbytes == 0:
            return arr
        corrupted = arr.copy()
        view = corrupted.view(np.uint8).reshape(-1)
        offset = int(self.rng.integers(view.shape[0]))
        flip = int(self.rng.integers(1, 256))  # nonzero => guaranteed change
        view[offset] ^= flip
        return corrupted

    def charge_backoff(self, attempt: int, messages: int) -> None:
        """Account simulated exponential-backoff latency for a retry round."""
        self.stats.retries += messages
        self.stats.backoff_seconds += self.config.backoff_base * (2**attempt)
        add_count(FAULT_RETRIES, messages)


def payload_crc(payload: np.ndarray) -> int:
    """CRC-32 of a message payload (what the wire format would carry)."""
    arr = np.ascontiguousarray(np.asarray(payload))
    try:
        buf = memoryview(arr).cast("B")
    except (TypeError, NotImplementedError):
        buf = arr.tobytes()
    return zlib.crc32(buf) & 0xFFFFFFFF
